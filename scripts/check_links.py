#!/usr/bin/env python3
"""Markdown link checker for the docs CI lane.

Scans the given markdown files for inline links/images
(``[text](target)``) and reference definitions (``[label]: target``)
and verifies that every *local* target resolves:

* relative file targets must exist on disk (resolved against the
  linking file's directory);
* ``#anchor`` fragments — bare or attached to a local markdown file —
  must match a heading in the target document (GitHub slug rules:
  lowercase, spaces to dashes, punctuation dropped);
* ``http(s)``/``mailto`` targets are skipped (no network in CI).

Exit status 1 lists every broken link; 0 means all local links resolve.
Stdlib only, so it runs anywhere python3 does:

    python3 scripts/check_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
import unicodedata
from pathlib import Path

# Inline [text](target) — target ends at the first unescaped ')';
# images ![alt](target) match through the same pattern.  Fenced code
# blocks are stripped beforehand, so ASCII diagrams never false-match.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCED_CODE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: markup stripped (keeping its text),
    lowercase, alphanumerics and underscores kept, spaces/dashes to
    dashes, all other punctuation dropped."""
    # [text](url) contributes only its text; emphasis/code markers are
    # markup, but underscores inside identifiers are literal and kept.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("*", "").replace("`", "").strip()
    text = unicodedata.normalize("NFKD", text)
    slug = []
    for ch in text.lower():
        if ch.isalnum() or ch == "_":
            slug.append(ch)
        elif ch in (" ", "-"):
            slug.append("-")
        # other punctuation (including parentheses and dots) is dropped
    return "".join(slug)


def anchors_of(path: Path) -> set[str]:
    """All anchor ids GitHub generates for the document's headings,
    including the ``-1``/``-2`` suffixes of duplicate titles."""
    text = FENCED_CODE.sub("", path.read_text(encoding="utf-8"))
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for m in HEADING.finditer(text):
        slug = github_slug(m.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def links_of(text: str) -> list[str]:
    stripped = INLINE_CODE.sub("", FENCED_CODE.sub("", text))
    targets = [m.group(1) for m in INLINE_LINK.finditer(stripped)]
    targets += [m.group(1) for m in REFERENCE_DEF.finditer(stripped)]
    return targets


def check_file(md: Path) -> list[str]:
    errors = []
    for target in links_of(md.read_text(encoding="utf-8")):
        if target.startswith(SKIP_SCHEMES):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md}: broken link target: {target}")
                continue
        else:
            resolved = md.resolve()
        if fragment and resolved.suffix == ".md":
            # The fragment must match a generated anchor *exactly* —
            # HTML fragments are case-sensitive and GitHub ids are
            # lowercase, so '#Epoch-Lifecycle' is broken even when
            # '#epoch-lifecycle' exists.
            if fragment not in anchors_of(resolved):
                errors.append(f"{md}: missing anchor: {target}")
    return errors


def main() -> int:
    files = [Path(arg) for arg in sys.argv[1:]]
    if not files:
        sys.exit("usage: check_links.py FILE.md [FILE.md ...]")
    missing = [f for f in files if not f.exists()]
    for f in missing:
        print(f"check_links: no such file: {f}", file=sys.stderr)
    errors = [e for f in files if f.exists() for e in check_file(f)]
    for error in errors:
        print(error, file=sys.stderr)
    if errors or missing:
        return 1
    print(f"check_links: {len(files)} files, all local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
