#!/usr/bin/env python3
"""Perf-regression gate over BENCH_batch_lookup.json.

Compares a freshly emitted benchmark JSON (``bench_micro_ops
--batch-json``) against the committed baseline and fails (exit 1) when
any batch panel regresses by more than the threshold.

``BENCH_sharded_emulator.json`` files (``bench_sharded_throughput``)
are *accepted but never gated*: thread scheduling on shared CI runners
is too noisy to fail a job over, so when either input identifies
itself as the sharded benchmark the script prints a report-only
comparison (per-series aggregate speedups, placement scaling, the
recorded topology) and exits 0.  This lets CI run one check step over
both trajectory files and upload both as artifacts.

``BENCH_net_frontend.json`` files (``bench_net_frontend``) are handled
the same way: report-only (loopback TCP throughput is even noisier
than in-process threading), printing delivered req/s and the reply
latency percentiles.  ``BENCH_channel.json`` files (``bench_channel``)
are likewise report-only, printing the ring-vs-mutex hand-off speedup
per scenario, and ``BENCH_scenarios.json`` files (``bench_scenarios``)
print per-cell disruption / load-balance / recovery drift — the matrix
is deterministic, so drift means the workload or an algorithm changed,
but robustness characterisation is never a perf gate.
``BENCH_allocator.json`` files (``bench_alloc``) are report-only too:
they print the arena-vs-heap panels and the backing mode each run
landed on (huge/thp/page), which decides whether the numbers are even
comparable.  Pass
``--sharded-ref <BENCH_sharded_emulator
.json>`` to also print the delivered-vs-service comparison line — how
much of the in-process shard pipeline's service rate the socket path
delivers end to end.

Two comparison modes:

* ``speedup`` (default) — compares the *ratios* recorded in the JSON:
  the scalar-loop-vs-batch ``speedup`` of each results panel, and the
  per-kernel ``speedup_vs_scalar`` of the kernel panel.  Ratios divide
  out the absolute speed of the machine, so a baseline committed from
  one host remains comparable on a CI runner.  This is the mode the CI
  gate runs.

* ``absolute`` — compares ``batch_ns_per_lookup`` directly.  Only
  meaningful when baseline and fresh run on the same machine (the
  per-PR perf-trajectory workflow); results panels are skipped with a
  warning when the two files record different dispatched kernels.

The dispatched kernel name is recorded at the top level of the JSON and
per entry in the kernel panel, so runs are only ever compared
like-for-like.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")


def results_by_key(doc: dict) -> dict:
    return {
        (r["algorithm"], r["servers"]): r for r in doc.get("results", [])
    }


def panel_by_key(doc: dict) -> dict:
    panel = doc.get("kernel_panel", {})
    return {
        (e["kernel"], e.get("dimension", 0)): e
        for e in panel.get("entries", [])
    }


SHARDED_BENCHMARK = "sharded_emulator_throughput"


def is_sharded(doc: dict) -> bool:
    return doc.get("benchmark") == SHARDED_BENCHMARK


def report_sharded(base: dict, fresh: dict) -> int:
    """Report-only comparison of two sharded-emulator JSONs (exit 0)."""
    print("check_bench: sharded-emulator trajectory — report only, "
          "never gated (scheduling noise on shared runners)")
    topo = fresh.get("topology", {})
    if topo:
        print(
            "  fresh topology: "
            f"{topo.get('packages', '?')} package(s), "
            f"{topo.get('numa_nodes', '?')} NUMA node(s), "
            f"{topo.get('physical_cores', '?')} physical core(s), "
            f"{topo.get('allowed_cpus', '?')} allowed CPU(s), "
            f"placement {fresh.get('placement_policy', '?')}"
        )
    for key in sorted(set(base) | set(fresh)):
        base_series = base.get(key)
        fresh_series = fresh.get(key)
        if not (isinstance(base_series, list) and base_series
                and isinstance(base_series[0], dict)
                and "aggregate_speedup" in base_series[0]):
            continue
        if not isinstance(fresh_series, list):
            print(f"  note: fresh run lacks series {key}")
            continue
        fresh_by_shards = {e.get("shards"): e for e in fresh_series}
        for base_entry in base_series:
            fresh_entry = fresh_by_shards.get(base_entry.get("shards"))
            if fresh_entry is None:
                continue
            b = base_entry.get("aggregate_speedup", 0.0)
            f = fresh_entry.get("aggregate_speedup", 0.0)
            delta = (f - b) / b if b else 0.0
            pinned = fresh_entry.get("pinned_workers")
            pinned_note = (
                f", {pinned} pinned" if pinned is not None else ""
            )
            print(
                f"  [info] {key} shards={base_entry.get('shards')}: "
                f"speedup {b:.2f} -> {f:.2f} ({delta:+.1%}{pinned_note})"
            )
    for entry in fresh.get("placement_scaling", []):
        print(
            f"  [info] placement {entry.get('policy', '?')}: "
            f"service x{entry.get('service_speedup', 0.0):.2f}, "
            f"delivered x{entry.get('delivered_speedup', 0.0):.2f} "
            f"at {entry.get('shards', '?')} shards"
        )
    print("check_bench: sharded trajectory accepted (not gated)")
    return 0


CHANNEL_BENCHMARK = "channel"


def is_channel(doc: dict) -> bool:
    return doc.get("benchmark") == CHANNEL_BENCHMARK


def report_channel(base: dict, fresh: dict) -> int:
    """Report-only comparison of two channel JSONs (exit 0): per-scenario
    ring-vs-mutex speedup, baseline vs fresh."""
    print("check_bench: channel hand-off trajectory — report only, never "
          "gated (thread hand-off latency on shared runners)")
    topo = fresh.get("topology", {})
    if topo:
        print(
            "  fresh topology: "
            f"{topo.get('physical_cores', '?')} physical core(s), "
            f"{topo.get('allowed_cpus', '?')} allowed CPU(s), "
            f"{topo.get('numa_nodes', '?')} NUMA node(s)"
        )

    def speedups(doc: dict) -> dict:
        rates: dict = {}
        for entry in doc.get("results", []):
            if not isinstance(entry, dict):
                continue
            key = (entry.get("scenario"), entry.get("kind"))
            rates[key] = entry.get("items_per_second", 0.0)
        out = {}
        for (scenario, kind), rate in rates.items():
            if kind != "ring":
                continue
            mutex_rate = rates.get((scenario, "mutex"), 0.0)
            out[scenario] = rate / mutex_rate if mutex_rate else 0.0
        return out

    base_speedups = speedups(base)
    fresh_speedups = speedups(fresh)
    for scenario in sorted(set(base_speedups) | set(fresh_speedups)):
        b = base_speedups.get(scenario)
        f = fresh_speedups.get(scenario)
        if f is None:
            print(f"  note: fresh run lacks scenario {scenario}")
            continue
        base_note = f"baseline x{b:.2f} -> " if b is not None else ""
        marker = "ok" if f >= 1.0 else "note"
        print(
            f"  [{marker:4s}] {scenario}: {base_note}ring is x{f:.2f} "
            f"the mutex rate"
        )
    print("check_bench: channel trajectory accepted (not gated)")
    return 0


SCENARIOS_BENCHMARK = "scenarios"


def is_scenarios(doc: dict) -> bool:
    return doc.get("benchmark") == SCENARIOS_BENCHMARK


def report_scenarios(base: dict, fresh: dict) -> int:
    """Report-only comparison of two scenario-matrix JSONs (exit 0):
    per-cell disruption / load-balance / recovery deltas.  The metrics
    are deterministic for a fixed seed, so any delta means the workload
    or an algorithm changed — worth a look, never a gate (the matrix is
    a robustness characterisation, not a perf baseline)."""
    print("check_bench: scenario-matrix trajectory — report only, never "
          "gated (robustness characterisation, not a perf baseline)")
    if base.get("quick") != fresh.get("quick"):
        print(
            f"  note: quick flags differ (baseline "
            f"{base.get('quick')}, fresh {fresh.get('quick')}); "
            "cells are not like-for-like"
        )

    def cells_by_key(doc: dict) -> dict:
        return {
            (c.get("playbook"), c.get("algorithm")): c
            for c in doc.get("cells", [])
            if isinstance(c, dict)
        }

    base_cells = cells_by_key(base)
    fresh_cells = cells_by_key(fresh)
    drifted = 0
    for key in sorted(set(base_cells) | set(fresh_cells)):
        b = base_cells.get(key)
        f = fresh_cells.get(key)
        if b is None or f is None:
            print(f"  note: cell {key} present in only one run")
            continue
        deltas = []
        for field, digits in (("disruption", 4), ("load_chi_over_dof", 2),
                              ("recovery_ticks", 1)):
            bv = b.get(field, 0.0)
            fv = f.get(field, 0.0)
            if round(bv - fv, digits) != 0.0:
                deltas.append(f"{field} {bv:.{digits}f} -> {fv:.{digits}f}")
        if b.get("recovered") != f.get("recovered"):
            deltas.append(
                f"recovered {b.get('recovered')} -> {f.get('recovered')}"
            )
        if deltas:
            drifted += 1
            print(f"  [note] {key[0]}/{key[1]}: " + ", ".join(deltas))
    print(
        f"check_bench: scenario matrix accepted (not gated); "
        f"{drifted} cell(s) drifted out of "
        f"{len(set(base_cells) | set(fresh_cells))}"
    )
    return 0


ALLOCATOR_BENCHMARK = "allocator"


def is_allocator(doc: dict) -> bool:
    return doc.get("benchmark") == ALLOCATOR_BENCHMARK


def report_allocator(base: dict, fresh: dict) -> int:
    """Report-only comparison of two allocator JSONs (exit 0): the
    arena-vs-heap batch-lookup speedup and the snapshot-churn cycle
    cost.  Never gated — the numbers hinge on which backing the arenas
    landed on (huge/thp/page), and a CI runner without a hugepage pool
    is not comparable to a tuned host.  The recorded ``memory_backing``
    says which regime each file measured."""
    print("check_bench: allocator trajectory — report only, never gated "
          "(TLB behaviour depends on the runner's hugepage config)")
    base_backing = base.get("memory_backing", "?")
    fresh_backing = fresh.get("memory_backing", "?")
    if base_backing != fresh_backing:
        print(
            f"  note: memory backing differs (baseline {base_backing}, "
            f"fresh {fresh_backing}); numbers are not like-for-like"
        )
    else:
        print(f"  backing: {fresh_backing} (both runs)")

    def by_rows(doc: dict, panel: str) -> dict:
        return {
            e.get("rows"): e
            for e in doc.get(panel, [])
            if isinstance(e, dict)
        }

    for panel, field, unit in (
        ("batch_lookup", "batch_ns_per_lookup", "ns/lookup"),
        ("snapshot_churn", "publish_us", "us/cycle"),
    ):
        base_rows = by_rows(base, panel)
        fresh_rows = by_rows(fresh, panel)
        for rows in ("heap", "arena"):
            b = base_rows.get(rows, {}).get(field)
            f = fresh_rows.get(rows, {}).get(field)
            if f is None:
                print(f"  note: fresh run lacks {panel} rows={rows}")
                continue
            base_note = f"baseline {b:.1f} -> " if b is not None else ""
            print(f"  [info] {panel} rows={rows}: {base_note}{f:.1f} {unit}")
        fresh_arena = fresh_rows.get("arena", {})
        if panel == "batch_lookup" and "speedup_vs_heap" in fresh_arena:
            print(
                f"  [info] {panel}: arena is "
                f"x{fresh_arena['speedup_vs_heap']:.2f} the heap rate"
            )
        if panel == "snapshot_churn" and "recycled" in fresh_arena:
            print(
                f"  [info] {panel}: {fresh_arena['recycled']} arena "
                "free-list hits during the fresh run"
            )
    print("check_bench: allocator trajectory accepted (not gated)")
    return 0


NET_BENCHMARK = "net_frontend"


def is_net(doc: dict) -> bool:
    return doc.get("benchmark") == NET_BENCHMARK


def report_net(base: dict, fresh: dict, sharded_ref: dict | None) -> int:
    """Report-only comparison of two net-frontend JSONs (exit 0)."""
    print("check_bench: net front-end trajectory — report only, never "
          "gated (loopback TCP on shared runners)")
    topo = fresh.get("topology", {})
    if topo:
        print(
            "  fresh topology: "
            f"{topo.get('physical_cores', '?')} physical core(s), "
            f"{topo.get('allowed_cpus', '?')} allowed CPU(s), "
            f"io_threads {fresh.get('io_threads', '?')}, "
            f"shards {fresh.get('shards', '?')}, "
            f"backend {fresh.get('io_backend', '?')} "
            f"(io_uring {'available' if fresh.get('io_uring_supported') else 'unavailable'})"
        )
    base_results = base.get("results", {})
    fresh_results = fresh.get("results", {})
    if isinstance(base_results, dict) and isinstance(fresh_results, dict):
        b = base_results.get("requests_per_second", 0.0)
        f = fresh_results.get("requests_per_second", 0.0)
        delta = (f - b) / b if b else 0.0
        print(
            f"  [info] delivered: baseline {b:,.0f} req/s -> "
            f"fresh {f:,.0f} req/s ({delta:+.1%})"
        )
        print(
            "  [info] fresh latency: "
            f"p50 {fresh_results.get('p50_us', '?')} us, "
            f"p99 {fresh_results.get('p99_us', '?')} us, "
            f"p99.9 {fresh_results.get('p999_us', '?')} us "
            f"({fresh_results.get('errors', '?')} error(s) over "
            f"{fresh_results.get('requests', '?')} request(s))"
        )
    if sharded_ref is not None:
        print_delivered_vs_service(fresh, sharded_ref)
    print("check_bench: net front-end trajectory accepted (not gated)")
    return 0


def print_delivered_vs_service(net: dict, sharded: dict) -> None:
    """The delivered-vs-service line: socket-path throughput against the
    in-process shard pipeline's rates from the sharded benchmark."""
    series = sharded.get("results", [])
    if not (isinstance(series, list) and series):
        print("  note: sharded reference lacks a results series")
        return
    by_shards = {e.get("shards"): e for e in series if isinstance(e, dict)}
    point = by_shards.get(net.get("shards")) or series[-1]
    delivered = net.get("results", {}).get("requests_per_second", 0.0)
    service = point.get("aggregate_rps", 0.0)
    wall = point.get("wall_rps", 0.0)
    ratio = delivered / service if service else 0.0
    print(
        f"  [info] delivered vs service: socket path {delivered:,.0f} "
        f"req/s vs in-process service {service:,.0f} req/s "
        f"(wall {wall:,.0f}) at {point.get('shards', '?')} shard(s) "
        f"-> {ratio:.0%} of service capacity delivered end-to-end"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_batch_lookup.json")
    parser.add_argument("fresh", help="freshly emitted benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional regression (default 0.20)",
    )
    parser.add_argument(
        "--mode",
        choices=("speedup", "absolute"),
        default="speedup",
        help="compare machine-portable speedup ratios (default) or raw ns",
    )
    parser.add_argument(
        "--sharded-ref",
        default=None,
        metavar="JSON",
        help="BENCH_sharded_emulator.json to print the delivered-vs-"
             "service comparison against (net-frontend inputs only)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if is_channel(base) or is_channel(fresh):
        if is_channel(base) != is_channel(fresh):
            sys.exit(
                "check_bench: cannot compare a channel JSON against a "
                "different benchmark's JSON"
            )
        return report_channel(base, fresh)
    if is_allocator(base) or is_allocator(fresh):
        if is_allocator(base) != is_allocator(fresh):
            sys.exit(
                "check_bench: cannot compare an allocator JSON against "
                "a different benchmark's JSON"
            )
        return report_allocator(base, fresh)
    if is_scenarios(base) or is_scenarios(fresh):
        if is_scenarios(base) != is_scenarios(fresh):
            sys.exit(
                "check_bench: cannot compare a scenario-matrix JSON "
                "against a different benchmark's JSON"
            )
        return report_scenarios(base, fresh)
    if is_net(base) or is_net(fresh):
        if is_net(base) != is_net(fresh):
            sys.exit(
                "check_bench: cannot compare a net-frontend JSON "
                "against a different benchmark's JSON"
            )
        sharded_ref = load(args.sharded_ref) if args.sharded_ref else None
        if sharded_ref is not None and not is_sharded(sharded_ref):
            sys.exit("check_bench: --sharded-ref is not a sharded-emulator "
                     "JSON")
        return report_net(base, fresh, sharded_ref)
    if is_sharded(base) or is_sharded(fresh):
        if is_sharded(base) != is_sharded(fresh):
            sys.exit(
                "check_bench: cannot compare a sharded-emulator JSON "
                "against a batch-lookup JSON"
            )
        return report_sharded(base, fresh)
    base_kernel = base.get("kernel", "?")
    fresh_kernel = fresh.get("kernel", "?")
    print(
        f"check_bench: baseline kernel={base_kernel}, "
        f"fresh kernel={fresh_kernel}, mode={args.mode}, "
        f"threshold={args.threshold:.0%}"
    )

    failures: list[str] = []
    compared = 0

    def check(label: str, base_value: float, fresh_value: float,
              higher_is_better: bool) -> None:
        nonlocal compared
        compared += 1
        if base_value <= 0:
            return
        if higher_is_better:
            regression = (base_value - fresh_value) / base_value
        else:
            regression = (fresh_value - base_value) / base_value
        marker = "FAIL" if regression > args.threshold else "ok"
        print(
            f"  [{marker:4s}] {label}: baseline {base_value:.2f} -> "
            f"fresh {fresh_value:.2f} ({regression:+.1%} regression)"
        )
        if regression > args.threshold:
            failures.append(label)

    # --- batch panels (scalar-loop vs batch, one per algorithm) -------
    # These panels are measured under the dispatched kernel, and both
    # their absolute ns and their batching speedup legitimately shift
    # between kernel tiers (a runner without AVX-512 dispatches avx2),
    # so they are only compared like-for-like.  The per-kernel panel
    # below is always comparable: entries carry their own kernel name.
    skip_results = base_kernel != fresh_kernel
    if skip_results:
        print(
            "  warning: dispatched kernels differ "
            f"({base_kernel} vs {fresh_kernel}); skipping results "
            "comparison (kernel panel still gated)"
        )
    else:
        fresh_results = results_by_key(fresh)
        for key, base_entry in sorted(results_by_key(base).items()):
            fresh_entry = fresh_results.get(key)
            if fresh_entry is None:
                print(f"  warning: fresh run lacks results panel {key}")
                continue
            label = f"results {key[0]} k={key[1]}"
            if args.mode == "speedup":
                check(
                    label + " speedup",
                    base_entry["speedup"],
                    fresh_entry["speedup"],
                    higher_is_better=True,
                )
            else:
                check(
                    label + " batch_ns",
                    base_entry["batch_ns_per_lookup"],
                    fresh_entry["batch_ns_per_lookup"],
                    higher_is_better=False,
                )

    # --- per-kernel panel (matched by kernel name + dimension) --------
    fresh_panel = panel_by_key(fresh)
    for key, base_entry in sorted(panel_by_key(base).items()):
        fresh_entry = fresh_panel.get(key)
        if fresh_entry is None:
            # A kernel compiled into the baseline build may be missing
            # on this runner (e.g. no AVX-512): not a regression.
            print(f"  note: fresh run lacks kernel panel entry {key}")
            continue
        label = f"kernel {key[0]} d={key[1]}"
        if args.mode == "speedup":
            if key[0] == "scalar":
                continue  # speedup_vs_scalar is 1.0 by construction
            check(
                label + " speedup_vs_scalar",
                base_entry["speedup_vs_scalar"],
                fresh_entry["speedup_vs_scalar"],
                higher_is_better=True,
            )
        else:
            check(
                label + " batch_ns",
                base_entry["batch_ns_per_lookup"],
                fresh_entry["batch_ns_per_lookup"],
                higher_is_better=False,
            )

    if compared == 0:
        sys.exit("check_bench: nothing compared — incompatible files?")
    if failures:
        print(f"check_bench: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for label in failures:
            print(f"  - {label}")
        return 1
    print(f"check_bench: {compared} panel(s) compared, no regression "
          f"beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
