#include "core/circular.hpp"

#include <algorithm>

#include "hdc/ops.hpp"
#include "util/require.hpp"

namespace hdhash {

std::size_t circular_distance(std::size_t i, std::size_t j,
                              std::size_t n) noexcept {
  const std::size_t d = i > j ? i - j : j - i;
  return std::min(d, n - d);
}

namespace {

/// Algorithm 1 for even `count` (see the header's erratum note).
std::vector<hdc::hypervector> circular_set_even(std::size_t count,
                                                std::size_t dim,
                                                xoshiro256& rng,
                                                hdc::flip_policy policy) {
  HDHASH_ASSERT(count % 2 == 0);
  const std::size_t half = count / 2;
  const std::size_t weight = dim / count;  // bits flipped per step (d/m, m=n)
  HDHASH_REQUIRE(weight >= 1,
                 "dimension too small for this circle size (need dim >= count)");

  // Build the n/2 transformation hypervectors t (the FIFO queue contents).
  std::vector<hdc::hypervector> transforms;
  transforms.reserve(half);
  if (policy == hdc::flip_policy::fresh_bits) {
    // Reserve half·weight distinct positions so every t has disjoint
    // support; this makes the similarity profile exactly linear in the
    // circular distance.
    const std::vector<std::size_t> positions =
        sample_distinct(rng, dim, half * weight);
    for (std::size_t k = 0; k < half; ++k) {
      hdc::hypervector t(dim);
      for (std::size_t b = 0; b < weight; ++b) {
        t.set(positions[k * weight + b], true);
      }
      transforms.push_back(std::move(t));
    }
  } else {
    // Literal Algorithm 1: every t independently sampled (collisions
    // between steps possible; the profile saturates near the antipode).
    for (std::size_t k = 0; k < half; ++k) {
      transforms.push_back(hdc::random_flip_mask(dim, weight, rng));
    }
  }

  std::vector<hdc::hypervector> set;
  set.reserve(count);
  set.push_back(hdc::hypervector::random(dim, rng));  // c_1
  // Forward transformations T: bind each queued t in turn.
  for (std::size_t k = 0; k < half; ++k) {
    set.push_back(set.back() ^ transforms[k]);
  }
  // Backward transformations T^-1: dequeue (FIFO) and re-bind; XOR is
  // self-inverse, so this walks back toward c_1 along the far side of
  // the circle.  half - 1 steps complete the n vectors.
  for (std::size_t k = 0; k + 1 < half; ++k) {
    set.push_back(set.back() ^ transforms[k]);
  }
  HDHASH_ASSERT(set.size() == count);
  return set;
}

}  // namespace

std::vector<hdc::hypervector> circular_set(std::size_t count, std::size_t dim,
                                           xoshiro256& rng,
                                           hdc::flip_policy policy) {
  HDHASH_REQUIRE(count >= 2, "a circle needs at least two hypervectors");
  if (count % 2 == 0) {
    return circular_set_even(count, dim, rng, policy);
  }
  // Footnote 1: odd cardinality — generate 2·count and keep every other.
  std::vector<hdc::hypervector> doubled =
      circular_set_even(2 * count, dim, rng, policy);
  std::vector<hdc::hypervector> set;
  set.reserve(count);
  for (std::size_t i = 0; i < doubled.size(); i += 2) {
    set.push_back(std::move(doubled[i]));
  }
  return set;
}

}  // namespace hdhash
