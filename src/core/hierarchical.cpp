#include "core/hierarchical.hpp"

#include "util/require.hpp"

namespace hdhash {

hierarchical_hd_table::hierarchical_hd_table(const hash64& hash,
                                             hierarchical_config config)
    : hash_(&hash),
      config_(config),
      router_(hash,
              [&config] {
                hd_table_config r = config.router;
                // The router only ever holds `groups` keys.
                if (r.capacity <= config.groups) {
                  r.capacity = 2 * config.groups;
                }
                return r;
              }()) {
  HDHASH_REQUIRE(config.groups >= 2, "hierarchy needs at least two groups");
  shards_.reserve(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    hd_table_config shard = config_.shard;
    // Decorrelate shard circles from each other and from the router.
    shard.seed = config_.shard.seed + 0x9e37 * (g + 1);
    shards_.emplace_back(hash, shard);
  }
}

hierarchical_hd_table::hierarchical_hd_table(const hierarchical_hd_table&) =
    default;

std::size_t hierarchical_hd_table::shard_of(server_id server) const {
  return static_cast<std::size_t>(hash_->hash_u64(server, 0xC1A55) %
                                  shards_.size());
}

void hierarchical_hd_table::join(server_id server) {
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  const std::size_t shard = shard_of(server);
  shards_[shard].join(server);
  if (shards_[shard].server_count() == 1) {
    router_.join(static_cast<server_id>(shard));  // shard became routable
  }
  ++server_count_;
}

void hierarchical_hd_table::leave(server_id server) {
  HDHASH_REQUIRE(contains(server), "server not in the pool");
  const std::size_t shard = shard_of(server);
  shards_[shard].leave(server);
  if (shards_[shard].server_count() == 0) {
    router_.leave(static_cast<server_id>(shard));  // shard went dark
  }
  --server_count_;
}

server_id hierarchical_hd_table::lookup(request_id request) const {
  HDHASH_REQUIRE(server_count_ > 0, "lookup on an empty pool");
  const auto shard = static_cast<std::size_t>(router_.lookup(request));
  return shards_[shard].lookup(request);
}

bool hierarchical_hd_table::contains(server_id server) const {
  return shards_[shard_of(server)].contains(server);
}

std::vector<server_id> hierarchical_hd_table::servers() const {
  std::vector<server_id> result;
  result.reserve(server_count_);
  for (const hd_table& shard : shards_) {
    for (const server_id s : shard.servers()) {
      result.push_back(s);
    }
  }
  return result;
}

std::unique_ptr<dynamic_table> hierarchical_hd_table::clone() const {
  return std::unique_ptr<dynamic_table>(new hierarchical_hd_table(*this));
}

std::vector<memory_region> hierarchical_hd_table::fault_regions() {
  std::vector<memory_region> regions = router_.fault_regions();
  for (hd_table& shard : shards_) {
    const auto shard_regions = shard.fault_regions();
    regions.insert(regions.end(), shard_regions.begin(), shard_regions.end());
  }
  return regions;
}

}  // namespace hdhash
