#include "core/hierarchical.hpp"

#include "util/require.hpp"

namespace hdhash {

hierarchical_hd_table::hierarchical_hd_table(const hash64& hash,
                                             hierarchical_config config)
    : hash_(&hash),
      config_(config),
      router_(hash,
              [&config] {
                hd_table_config r = config.router;
                // The router only ever holds `groups` keys.
                if (r.capacity <= config.groups) {
                  r.capacity = 2 * config.groups;
                }
                return r;
              }()) {
  HDHASH_REQUIRE(config.groups >= 2, "hierarchy needs at least two groups");
  shards_.reserve(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    hd_table_config shard = config_.shard;
    // Decorrelate shard circles from each other and from the router.
    shard.seed = config_.shard.seed + 0x9e37 * (g + 1);
    shards_.emplace_back(hash, shard);
  }
}

hierarchical_hd_table::hierarchical_hd_table(const hierarchical_hd_table&) =
    default;

std::size_t hierarchical_hd_table::shard_of(server_id server) const {
  return static_cast<std::size_t>(hash_->hash_u64(server, 0xC1A55) %
                                  shards_.size());
}

void hierarchical_hd_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  const std::size_t shard = shard_of(server);
  shards_[shard].join(server, weight);
  if (shards_[shard].server_count() == 1) {
    router_.join(static_cast<server_id>(shard));  // shard became routable
  }
  ++server_count_;
}

void hierarchical_hd_table::leave(server_id server) {
  HDHASH_REQUIRE(contains(server), "server not in the pool");
  const std::size_t shard = shard_of(server);
  shards_[shard].leave(server);
  if (shards_[shard].server_count() == 0) {
    router_.leave(static_cast<server_id>(shard));  // shard went dark
  }
  --server_count_;
}

server_id hierarchical_hd_table::lookup(request_id request) const {
  HDHASH_REQUIRE(server_count_ > 0, "lookup on an empty pool");
  const auto shard = static_cast<std::size_t>(router_.lookup(request));
  return shards_[shard].lookup(request);
}

void hierarchical_hd_table::lookup_batch(std::span<const request_id> requests,
                                         std::span<server_id> out) const {
  HDHASH_REQUIRE(requests.size() == out.size(),
                 "lookup_batch output span must match the request block");
  if (requests.empty()) {
    return;
  }
  HDHASH_REQUIRE(server_count_ > 0, "lookup on an empty pool");
  // One batched router query assigns every request its shard.
  std::vector<server_id> shard_ids(requests.size());
  router_.lookup_batch(requests, shard_ids);

  // Counting-sort scatter: one flat permutation buffer instead of a
  // vector-of-vectors, so the scatter makes no per-shard allocations and
  // every shard's sub-block reaches that shard's probe-tiled sweep —
  // and through it the dispatched SIMD Hamming kernel — as a single
  // contiguous batch.
  std::vector<std::size_t> offsets(shards_.size() + 1, 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ++offsets[static_cast<std::size_t>(shard_ids[i]) + 1];
  }
  for (std::size_t g = 0; g < shards_.size(); ++g) {
    offsets[g + 1] += offsets[g];
  }
  std::vector<std::size_t> order(requests.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    order[cursor[static_cast<std::size_t>(shard_ids[i])]++] = i;
  }

  std::vector<request_id> block;
  std::vector<server_id> answers;
  for (std::size_t g = 0; g < shards_.size(); ++g) {
    const std::size_t begin = offsets[g];
    const std::size_t end = offsets[g + 1];
    if (begin == end) {
      continue;
    }
    block.resize(end - begin);
    answers.resize(end - begin);
    for (std::size_t j = begin; j < end; ++j) {
      block[j - begin] = requests[order[j]];
    }
    shards_[g].lookup_batch(block, answers);
    for (std::size_t j = begin; j < end; ++j) {
      out[order[j]] = answers[j - begin];
    }
  }
}

double hierarchical_hd_table::weight(server_id server) const {
  HDHASH_REQUIRE(contains(server), "server not in the pool");
  return shards_[shard_of(server)].weight(server);
}

table_stats hierarchical_hd_table::stats() const {
  table_stats s = router_.stats();
  double occupied = 0.0;
  double shard_cost = 0.0;
  for (const hd_table& shard : shards_) {
    const table_stats shard_stats = shard.stats();
    s.memory_bytes += shard_stats.memory_bytes;
    s.shared_bytes += shard_stats.shared_bytes;
    if (shard.server_count() > 0) {
      occupied += 1.0;
      shard_cost += shard_stats.expected_lookup_cost;
    }
  }
  // Router query plus the mean occupied shard's query — the
  // O(groups + k/groups) scaling the hierarchy buys.
  if (occupied > 0.0) {
    s.expected_lookup_cost += shard_cost / occupied;
  }
  return s;
}

bool hierarchical_hd_table::contains(server_id server) const {
  return shards_[shard_of(server)].contains(server);
}

std::vector<server_id> hierarchical_hd_table::servers() const {
  std::vector<server_id> result;
  result.reserve(server_count_);
  for (const hd_table& shard : shards_) {
    for (const server_id s : shard.servers()) {
      result.push_back(s);
    }
  }
  return result;
}

std::unique_ptr<dynamic_table> hierarchical_hd_table::clone() const {
  return std::unique_ptr<dynamic_table>(new hierarchical_hd_table(*this));
}

std::shared_ptr<const dynamic_table> hierarchical_hd_table::snapshot() const {
  // Warm the originals first so consecutive snapshots only re-decode
  // slots the intervening membership events invalidated, then freeze
  // the copy's inner tables so shard workers can query it concurrently.
  router_.warm_slot_cache();
  for (const hd_table& shard : shards_) {
    shard.warm_slot_cache();
  }
  std::shared_ptr<hierarchical_hd_table> copy(
      new hierarchical_hd_table(*this));
  copy->router_.freeze();
  for (hd_table& shard : copy->shards_) {
    shard.freeze();
  }
  return copy;
}

std::vector<memory_region> hierarchical_hd_table::fault_regions() {
  std::vector<memory_region> regions = router_.fault_regions();
  for (hd_table& shard : shards_) {
    const auto shard_regions = shard.fault_regions();
    regions.insert(regions.end(), shard_regions.begin(), shard_regions.end());
  }
  return regions;
}

}  // namespace hdhash
