#include "core/hd_table.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "hdc/similarity.hpp"
#include "simd/hamming_kernel.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace {
/// Salt decorrelating replica-row identifiers from real server ids.
constexpr std::uint64_t kReplicaSalt = 0x57A5'11D5'0C1E'F00DULL;
}  // namespace

hd_table::hd_table(const hash64& hash, hd_table_config config)
    : hash_(&hash),
      config_(std::move(config)),
      arena_(config_.arena_rows
                 ? (config_.arena ? config_.arena : mem::local_arena())
                 : nullptr),
      encoder_(config_.capacity, config_.dimension, hash, config_.seed,
               config_.policy),
      memory_(config_.dimension, config_.metric, arena_),
      cache_(mem::arena_allocator<std::optional<cached_slot>>(arena_)) {
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
}

hd_table::hd_table(const hd_table& other)
    : hash_(other.hash_),
      config_(other.config_),
      // Clones and snapshots draw from the source's arena: shared rows
      // have exactly one owning arena, so residency is counted once.
      arena_(other.arena_),
      encoder_(other.encoder_),
      memory_(other.memory_),
      members_(other.members_),
      row_owner_(other.row_owner_),
      cache_(other.cache_),
      // A copy is independently mutable regardless of the source's
      // snapshot state: membership maintenance must write its cache.
      frozen_(false) {}

hd_table& hd_table::operator=(const hd_table& other) {
  hash_ = other.hash_;
  config_ = other.config_;
  arena_ = other.arena_;
  encoder_ = other.encoder_;
  memory_ = other.memory_;
  members_ = other.members_;
  row_owner_ = other.row_owner_;
  cache_ = other.cache_;
  frozen_ = false;  // same contract as the copy constructor
  return *this;
}

void hd_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight > 0.0, "weight must be positive");
  HDHASH_REQUIRE(!members_.contains(server), "server already in the pool");
  const auto replicas = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(weight)));
  HDHASH_REQUIRE(memory_.size() + replicas < encoder_.size(),
                 "pool would reach the circle capacity (need n > k)");
  member_info info;
  // The table replicates round(weight) slots, so that is the weight it
  // actually serves: report the effective replication, not the raw
  // request, or the weighted-uniformity chi-squared expectation diverges
  // from the load the member really receives (weights 1.0 and 1.4 build
  // identical tables and must report identically).
  info.weight = static_cast<double>(replicas);
  info.row_keys.reserve(replicas);
  for (std::size_t replica = 0; replica < replicas; ++replica) {
    // The first row is the server's own encoding (bit-identical to the
    // unweighted v1 behaviour); extras are encodings of derived ids.
    const std::uint64_t key =
        replica == 0 ? server
                     : hash_->hash_pair(server, replica,
                                        config_.seed ^ kReplicaSalt);
    HDHASH_REQUIRE(!memory_.contains(key),
                   "replica identifier collision — change the table seed");
    memory_.insert(key, encoder_.encode(key));
    row_owner_.emplace(key, server);
    info.row_keys.push_back(key);
  }
  // Incremental cache maintenance: a new row changes a slot's decision
  // only if it beats the incumbent winner under the decode() rule, so
  // one distance per (new row, cached slot) — O(n) per replica instead
  // of the O(n·k) full rebuild — keeps every valid entry exact.
  if (config_.slot_cache && !frozen_) {
    for (const std::uint64_t key : info.row_keys) {
      const hdc::hypervector& row = memory_.at(key);
      for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
        if (!cache_[slot].has_value()) {
          continue;  // unresolved slots stay lazy
        }
        const std::uint64_t d = hdc::hamming_distance(row, encoder_.at(slot));
        if (beats_cached(*cache_[slot], d, key)) {
          cache_[slot] = cached_slot{server, key, d};
        }
      }
    }
  }
  members_.emplace(server, std::move(info));
}

void hd_table::leave(server_id server) {
  const auto it = members_.find(server);
  HDHASH_REQUIRE(it != members_.end(), "server not in the pool");
  for (const std::uint64_t key : it->second.row_keys) {
    memory_.erase(key);
    row_owner_.erase(key);
  }
  members_.erase(it);
  // Removing rows can only change slots the leaver was winning (the
  // minimum over the remaining rows is unchanged elsewhere), so only
  // those entries are re-decoded — lazily, on next touch or warm.
  if (config_.slot_cache && !frozen_) {
    for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
      if (cache_[slot].has_value() && cache_[slot]->owner == server) {
        cache_[slot] = std::nullopt;
      }
    }
  }
}

server_id hd_table::owner_of(std::uint64_t row_key) const {
  const auto it = row_owner_.find(row_key);
  // Every stored row has an owner; the fallback only matters if a caller
  // feeds a foreign key, where echoing it mirrors the corrupted-id
  // failure mode the robustness experiments observe.
  return it == row_owner_.end() ? row_key : it->second;
}

hdc::query_result hd_table::decode(const hdc::hypervector& probe,
                                   std::uint64_t* winner_distance) const {
  // Maximum-likelihood lattice decoding: snap each measured distance to
  // the nearest circle level (the code's lattice) before comparing, so a
  // per-row perturbation below step/2 bits cannot change the decision.
  // With lattice decoding off — or a degenerate circle whose step is 0,
  // where every distance would snap to one level — the step degrades to
  // 1, making the level the distance itself: the raw Eq. 2 argmax with
  // ties to the smaller key, exactly item_memory::query's rule.
  const double step = config_.lattice_decode && encoder_.step_bits() > 0
                          ? static_cast<double>(encoder_.step_bits())
                          : 1.0;
  struct best_entry {
    std::uint64_t key = 0;
    long long level = 0;
    bool valid = false;
  };
  best_entry best;
  std::uint64_t best_distance = 0;
  hdc::query_result result;
  result.best_score = -std::numeric_limits<double>::infinity();
  result.runner_up = -std::numeric_limits<double>::infinity();
  const auto dim = static_cast<double>(config_.dimension);
  memory_.visit([&](std::uint64_t key, const hdc::hypervector& row) {
    const std::uint64_t raw_distance = hdc::hamming_distance(row, probe);
    const auto distance = static_cast<double>(raw_distance);
    const auto level = static_cast<long long>(std::llround(distance / step));
    // Both metrics are affine in the Hamming distance; deriving the raw
    // score here avoids a second popcount pass over the row.
    const double raw = memory_.similarity_metric() == hdc::metric::cosine
                           ? 1.0 - 2.0 * distance / dim
                           : dim - distance;
    const bool wins = !best.valid || level < best.level ||
                      (level == best.level && key < best.key);
    if (wins) {
      if (best.valid) {
        result.runner_up = std::max(result.runner_up, result.best_score);
      }
      best = best_entry{key, level, true};
      best_distance = raw_distance;
      result.key = key;
      result.best_score = raw;
    } else {
      result.runner_up = std::max(result.runner_up, raw);
    }
  });
  if (winner_distance != nullptr) {
    *winner_distance = best_distance;
  }
  return result;
}

void hd_table::decode_slots(std::span<const std::size_t> slots,
                            std::span<server_id> winners,
                            cached_slot* detail) const {
  // One gather of the stored rows; scanning them in storage order keeps
  // the win/tie rule identical to the scalar decode().
  struct row_ref {
    std::uint64_t key;
    const std::uint64_t* words;
  };
  std::vector<row_ref> rows;
  rows.reserve(memory_.size());
  memory_.visit([&rows](std::uint64_t key, const hdc::hypervector& hv) {
    rows.push_back(row_ref{key, hv.words().data()});
  });
  const std::size_t words = (config_.dimension + 63) / 64;
  const std::uint64_t step = encoder_.step_bits();
  // Degenerate circles (step 0) cannot quantize; raw argmax, as decode().
  const bool lattice = config_.lattice_decode && step > 0;

  // Probe tile: each row word is loaded once and compared against kTile
  // probes — the word-parallel sweep an HDC accelerator's adder trees
  // perform across concurrent queries.  The XOR+popcount-accumulate over
  // the tile runs through the dispatched SIMD kernel (scalar / AVX2
  // Harley–Seal / AVX-512 VPOPCNTDQ, see simd/hamming_kernel.hpp); the
  // win/tie decision below stays in portable code so assignments are
  // bit-identical across kernels.
  constexpr std::size_t kTile = simd::kMaxTile;
  const simd::hamming_kernel& kernel = simd::active_kernel();
  // The winner is tracked as the half-open distance band [lo, hi) that
  // still *ties* it: a candidate strictly below `lo` beats the winner, a
  // candidate inside the band ties (smaller key wins), at or above `hi`
  // it loses.  For lattice decoding the band is the winning level's
  // quantization cell; for the raw argmax it is the single distance
  // {best_dist} (both Eq. 2 metrics are strictly decreasing in the
  // distance, so score order — including exact ties — is distance
  // order).  This keeps the per-row sweep in integer compares; the
  // division that derives a lattice level runs only when the winner
  // changes, O(log) times per sweep in expectation.
  struct best_state {
    std::uint64_t key = 0;
    std::uint64_t d = 0;   ///< winning row's exact distance
    std::uint64_t lo = 0;  ///< smallest distance that still ties
    std::uint64_t hi = 0;  ///< smallest distance that loses
    bool valid = false;
  };
  std::array<const std::uint64_t*, kTile> probes{};
  std::array<std::uint64_t, kTile> dist{};
  std::array<best_state, kTile> best{};
  for (std::size_t base = 0; base < slots.size(); base += kTile) {
    const std::size_t tile = std::min(kTile, slots.size() - base);
    for (std::size_t t = 0; t < kTile; ++t) {
      // Padding the tail tile with its first probe keeps the kernel on
      // its full-tile fast path (fixed trip count, unrolled).
      probes[t] = encoder_.at(slots[base + (t < tile ? t : 0)]).words().data();
    }
    best.fill(best_state{});
    for (const row_ref& row : rows) {
      kernel.tile_distance(row.words, probes.data(), kTile, words,
                           dist.data());
      for (std::size_t t = 0; t < tile; ++t) {
        best_state& b = best[t];
        const std::uint64_t d = dist[t];
        if (b.valid && d >= b.lo && (d >= b.hi || row.key >= b.key)) {
          continue;  // loses outright, or ties against a smaller key
        }
        b.key = row.key;
        b.d = d;
        b.valid = true;
        if (lattice) {
          // level = round-half-up(d / step), in exact integer form —
          // identical to decode()'s llround for every reachable
          // (distance, step) pair — and its cell [lo, hi).
          const std::uint64_t level = (2 * d + step) / (2 * step);
          b.lo = level == 0 ? 0 : (step * (2 * level - 1) + 1) / 2;
          b.hi = (step * (2 * level + 1) + 1) / 2;
        } else {
          b.lo = d;
          b.hi = d + 1;
        }
      }
    }
    for (std::size_t t = 0; t < tile; ++t) {
      winners[base + t] = owner_of(best[t].key);
      if (detail != nullptr) {
        detail[base + t] = cached_slot{winners[base + t], best[t].key,
                                       best[t].d};
      }
    }
  }
}

bool hd_table::beats_cached(const cached_slot& incumbent,
                            std::uint64_t distance,
                            std::uint64_t row_key) const {
  // Same decision as decode()/decode_slots, in exact integer form:
  // compare lattice levels (round-half-up of distance / step), ties to
  // the smaller row key.  Step degrades to 1 when lattice decoding is
  // off or the circle is degenerate, making the level the distance.
  const std::uint64_t step = config_.lattice_decode && encoder_.step_bits() > 0
                                 ? encoder_.step_bits()
                                 : 1;
  const std::uint64_t candidate_level = (2 * distance + step) / (2 * step);
  const std::uint64_t incumbent_level =
      (2 * incumbent.distance + step) / (2 * step);
  return candidate_level < incumbent_level ||
         (candidate_level == incumbent_level && row_key < incumbent.row_key);
}

server_id hd_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!memory_.empty(), "lookup on an empty pool");
  if (config_.slot_cache) {
    const std::size_t slot = encoder_.slot_of(request);
    if (cache_[slot].has_value()) {
      return cache_[slot]->owner;
    }
    std::uint64_t distance = 0;
    const std::uint64_t key = decode(encoder_.at(slot), &distance).key;
    const server_id owner = owner_of(key);
    if (!frozen_) {
      cache_[slot] = cached_slot{owner, key, distance};
    }
    return owner;
  }
  return owner_of(decode(encoder_.encode(request)).key);
}

void hd_table::lookup_batch(std::span<const request_id> requests,
                            std::span<server_id> out) const {
  HDHASH_REQUIRE(requests.size() == out.size(),
                 "lookup_batch output span must match the request block");
  if (requests.empty()) {
    return;
  }
  HDHASH_REQUIRE(!memory_.empty(), "lookup on an empty pool");

  // Enc has only n distinct outputs, so the block collapses to at most
  // min(|block|, n) distinct probes; encoding happens once per slot.
  std::vector<std::size_t> slot_of(requests.size());
  std::unordered_map<std::size_t, server_id> resolved;
  resolved.reserve(requests.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    slot_of[i] = encoder_.slot_of(requests[i]);
    const auto [it, fresh] = resolved.try_emplace(slot_of[i], server_id{0});
    if (!fresh) {
      continue;
    }
    if (config_.slot_cache && cache_[slot_of[i]].has_value()) {
      it->second = cache_[slot_of[i]]->owner;
    } else {
      pending.push_back(slot_of[i]);
    }
  }

  std::vector<server_id> winners(pending.size());
  std::vector<cached_slot> detail(pending.size());
  decode_slots(pending, winners, detail.data());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    resolved[pending[i]] = winners[i];
    if (config_.slot_cache && !frozen_) {
      cache_[pending[i]] = detail[i];
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    out[i] = resolved.at(slot_of[i]);
  }
}

void hd_table::warm_slot_cache() const {
  if (!config_.slot_cache || memory_.empty() || frozen_) {
    return;
  }
  // Only unresolved slots are decoded: after a leave that is the n/k
  // share the leaver owned, after a join it is nothing at all — the
  // incremental maintenance already updated every valid entry.
  std::vector<std::size_t> missing;
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    if (!cache_[slot].has_value()) {
      missing.push_back(slot);
    }
  }
  if (missing.empty()) {
    return;
  }
  std::vector<server_id> winners(missing.size());
  std::vector<cached_slot> detail(missing.size());
  decode_slots(missing, winners, detail.data());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache_[missing[i]] = detail[i];
  }
}

hdc::query_result hd_table::lookup_detailed(request_id request) const {
  HDHASH_REQUIRE(!memory_.empty(), "lookup on an empty pool");
  hdc::query_result result = decode(encoder_.encode(request));
  result.key = owner_of(result.key);
  return result;
}

double hd_table::weight(server_id server) const {
  const auto it = members_.find(server);
  HDHASH_REQUIRE(it != members_.end(), "server not in the pool");
  return it->second.weight;
}

table_stats hd_table::stats() const {
  table_stats s;
  const std::size_t words = (config_.dimension + 63) / 64;
  s.memory_bytes = memory_.size() * words * sizeof(std::uint64_t) +
                   cache_.size() * sizeof(std::optional<cached_slot>);
  // Rows held jointly with clones/snapshots cost this instance nothing
  // beyond bookkeeping; epoch-snapshot marginal residency is
  // memory_bytes - shared_bytes.
  s.shared_bytes = memory_.shared_bytes();
  // Every stored row is popcount-compared word by word — unless the
  // accelerator model answers from the slot cache in O(1).
  s.expected_lookup_cost =
      config_.slot_cache
          ? 1.0
          : static_cast<double>(memory_.size()) * static_cast<double>(words);
  if (arena_ != nullptr) {
    const mem::arena_stats arena = arena_->stats();
    s.arena_backing = mem::to_string(arena.backing);
    s.resident_pages = arena.resident_pages;
    s.hugepage_bytes = arena.hugepage_bytes;
  }
  return s;
}

bool hd_table::contains(server_id server) const {
  return members_.contains(server);
}

std::vector<server_id> hd_table::servers() const {
  // Storage order of the primary rows == join order; replica rows are
  // filtered out by the key != owner test.
  std::vector<server_id> result;
  result.reserve(members_.size());
  for (const std::uint64_t key : memory_.keys()) {
    const auto it = row_owner_.find(key);
    if (it != row_owner_.end() && it->second == key) {
      result.push_back(key);
    }
  }
  return result;
}

std::unique_ptr<dynamic_table> hd_table::clone() const {
  return std::make_unique<hd_table>(*this);
}

std::shared_ptr<const dynamic_table> hd_table::snapshot() const {
  // Publish the accelerator steady state: resolve any slots the last
  // membership event invalidated, then share a frozen copy.  The circle
  // and every row are shared copy-on-write, so the snapshot's marginal
  // footprint is the member maps and the resolved slot array.
  warm_slot_cache();
  auto copy = std::make_shared<hd_table>(*this);
  copy->freeze();
  return copy;
}

std::vector<memory_region> hd_table::fault_regions() {
  // Any fault-injection access may corrupt (or restore) the associative
  // memory, so memoized slot results can no longer be trusted.
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
  std::vector<memory_region> regions;
  for (std::span<std::uint64_t> row : memory_.storage()) {
    regions.push_back(memory_region{std::as_writable_bytes(row),
                                    "server-hypervectors"});
  }
  return regions;
}

}  // namespace hdhash
