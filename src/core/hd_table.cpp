#include "core/hd_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hdc/similarity.hpp"
#include "util/require.hpp"

namespace hdhash {

hd_table::hd_table(const hash64& hash, hd_table_config config)
    : hash_(&hash),
      config_(config),
      encoder_(config.capacity, config.dimension, hash, config.seed,
               config.policy),
      memory_(config.dimension, config.metric) {
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
}

void hd_table::join(server_id server) {
  HDHASH_REQUIRE(!memory_.contains(server), "server already in the pool");
  HDHASH_REQUIRE(memory_.size() + 1 < encoder_.size(),
                 "pool would reach the circle capacity (need n > k)");
  memory_.insert(server, encoder_.encode(server));
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
}

void hd_table::leave(server_id server) {
  memory_.erase(server);
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
}

hdc::query_result hd_table::decode(const hdc::hypervector& probe) const {
  if (!config_.lattice_decode) {
    return *memory_.query(probe);
  }
  // Maximum-likelihood lattice decoding: snap each measured distance to
  // the nearest circle level (the code's lattice) before comparing, so a
  // per-row perturbation below step/2 bits cannot change the decision.
  const double step = static_cast<double>(encoder_.step_bits());
  struct best_entry {
    std::uint64_t key = 0;
    long long level = 0;
    bool valid = false;
  };
  best_entry best;
  hdc::query_result result;
  result.best_score = -std::numeric_limits<double>::infinity();
  result.runner_up = -std::numeric_limits<double>::infinity();
  const auto dim = static_cast<double>(config_.dimension);
  memory_.visit([&](std::uint64_t key, const hdc::hypervector& row) {
    const auto distance =
        static_cast<double>(hdc::hamming_distance(row, probe));
    const auto level = static_cast<long long>(std::llround(distance / step));
    // Both metrics are affine in the Hamming distance; deriving the raw
    // score here avoids a second popcount pass over the row.
    const double raw = memory_.similarity_metric() == hdc::metric::cosine
                           ? 1.0 - 2.0 * distance / dim
                           : dim - distance;
    const bool wins = !best.valid || level < best.level ||
                      (level == best.level && key < best.key);
    if (wins) {
      if (best.valid) {
        result.runner_up = std::max(result.runner_up, result.best_score);
      }
      best = best_entry{key, level, true};
      result.key = key;
      result.best_score = raw;
    } else {
      result.runner_up = std::max(result.runner_up, raw);
    }
  });
  return result;
}

server_id hd_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!memory_.empty(), "lookup on an empty pool");
  if (config_.slot_cache) {
    const std::size_t slot = encoder_.slot_of(request);
    if (!cache_[slot].has_value()) {
      cache_[slot] = decode(encoder_.at(slot)).key;
    }
    return *cache_[slot];
  }
  return decode(encoder_.encode(request)).key;
}

void hd_table::warm_slot_cache() const {
  if (!config_.slot_cache || memory_.empty()) {
    return;
  }
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    if (!cache_[slot].has_value()) {
      cache_[slot] = decode(encoder_.at(slot)).key;
    }
  }
}

hdc::query_result hd_table::lookup_detailed(request_id request) const {
  HDHASH_REQUIRE(!memory_.empty(), "lookup on an empty pool");
  return decode(encoder_.encode(request));
}

bool hd_table::contains(server_id server) const {
  return memory_.contains(server);
}

std::unique_ptr<dynamic_table> hd_table::clone() const {
  return std::make_unique<hd_table>(*this);
}

std::vector<memory_region> hd_table::fault_regions() {
  // Any fault-injection access may corrupt (or restore) the associative
  // memory, so memoized slot results can no longer be trusted.
  if (config_.slot_cache) {
    cache_.assign(config_.capacity, std::nullopt);
  }
  std::vector<memory_region> regions;
  for (std::span<std::uint64_t> row : memory_.storage()) {
    regions.push_back(memory_region{std::as_writable_bytes(row),
                                    "server-hypervectors"});
  }
  return regions;
}

}  // namespace hdhash
