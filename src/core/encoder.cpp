#include "core/encoder.hpp"

#include "hdc/similarity.hpp"
#include "util/require.hpp"

namespace hdhash {

circle_encoder::circle_encoder(std::size_t count, std::size_t dim,
                               const hash64& hash, std::uint64_t seed,
                               hdc::flip_policy policy)
    : dim_(dim), hash_(&hash), seed_(seed) {
  xoshiro256 rng(seed);
  circle_ = std::make_shared<const std::vector<hdc::hypervector>>(
      circular_set(count, dim, rng, policy));
  step_bits_ = hdc::hamming_distance((*circle_)[0], (*circle_)[1]);
}

std::size_t circle_encoder::slot_of(std::uint64_t x) const {
  return static_cast<std::size_t>(hash_->hash_u64(x, seed_) % circle_->size());
}

const hdc::hypervector& circle_encoder::encode(std::uint64_t x) const {
  return (*circle_)[slot_of(x)];
}

const hdc::hypervector& circle_encoder::at(std::size_t slot) const {
  HDHASH_REQUIRE(slot < circle_->size(), "slot out of range");
  return (*circle_)[slot];
}

}  // namespace hdhash
