/// \file hierarchical.hpp
/// \brief Hierarchical HD hashing — the scaling scheme the paper sketches
/// in Section 5.1: "HD hashing can scale to much larger clusters, and
/// even be used hierarchically (standard way to scale such hashing
/// systems)".
///
/// Servers are partitioned into `groups` shards by `h(s) mod groups`;
/// each shard is an independent hd_table over its members, and a router
/// hd_table maps each request to a (non-empty) shard.  A lookup costs
/// O(groups + k/groups) row comparisons instead of O(k) — minimized at
/// groups ~ sqrt(k) — while each shard's circle keeps a large lattice
/// step, so the robustness guarantee *improves* with sharding for the
/// same total pool.
///
/// Disruption: joins/leaves only perturb the affected shard, except when
/// a shard becomes empty/non-empty (its slice of request space moves
/// wholesale between shards — the classic hierarchical trade-off, which
/// the tests quantify).
#pragma once

#include <memory>
#include <vector>

#include "core/hd_table.hpp"

namespace hdhash {

/// Configuration of a hierarchical HD table.
struct hierarchical_config {
  std::size_t groups = 16;          ///< number of shards
  hd_table_config shard{};          ///< per-shard hd_table parameters
  hd_table_config router{};         ///< router hd_table parameters
};

class hierarchical_hd_table final : public dynamic_table {
 public:
  explicit hierarchical_hd_table(const hash64& hash,
                                 hierarchical_config config = {});

  /// Weighted membership delegates to the owning shard's circle-slot
  /// replication (see hd_table::join).
  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;

  /// Batch lookup: one batched router query splits the block by shard,
  /// then each non-empty shard answers its sub-block with the tiled
  /// associative query.  Assignments match element-wise lookup().
  void lookup_batch(std::span<const request_id> requests,
                    std::span<server_id> out) const override;
  using dynamic_table::lookup_batch;

  double weight(server_id server) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return server_count_; }
  std::vector<server_id> servers() const override;
  std::string_view name() const noexcept override { return "hd-hierarchical"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Epoch snapshot: warms the router's and every group's slot cache
  /// (when enabled), then shares a frozen copy-on-write copy — all
  /// circle bases and item-memory rows are shared with *this (see
  /// hd_table::snapshot()).
  std::shared_ptr<const dynamic_table> snapshot() const override;

  /// Fault surface: the router's rows plus every shard's rows.
  std::vector<memory_region> fault_regions() override;

  std::size_t groups() const noexcept { return shards_.size(); }

  /// Shard a server id belongs to.
  std::size_t shard_of(server_id server) const;

 private:
  hierarchical_hd_table(const hierarchical_hd_table& other);

  const hash64* hash_;
  hierarchical_config config_;
  hd_table router_;                       // keys are shard indices
  std::vector<hd_table> shards_;          // one hd_table per group
  std::size_t server_count_ = 0;
};

}  // namespace hdhash
