/// \file hd_table.hpp
/// \brief Hyperdimensional hashing — the paper's primary contribution
/// (Section 3).
///
/// Servers and requests are encoded onto a circle of hypervectors
/// (Eq. 1); a request is routed to the server whose stored hypervector is
/// most similar to the request's encoding (Eq. 2, an associative-memory
/// query).  Robustness follows from the holographic representation: a
/// handful of flipped bits moves a 10,000-bit vector only marginally, so
/// the argmax — whose winner/runner-up margin is hundreds of bits — never
/// changes under realistic memory-error rates.
///
/// API v2 additions:
///  * lookup_batch() — the batch associative query.  Enc has only n
///    distinct outputs, so a request block first collapses to its unique
///    circle slots, then the item memory is swept once with each stored
///    row compared word-wise against a tile of probes (the software
///    analogue of an accelerator answering several queries per pass).
///  * weighted join — a member of weight w stores round(w) rows
///    (replicated circle slots), so it wins a proportional share of the
///    request space.  Weight 1 is bit-identical to the unweighted v1
///    behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/encoder.hpp"
#include "hdc/item_memory.hpp"
#include "mem/arena_allocator.hpp"
#include "mem/hugepage_arena.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// Construction parameters for hd_table.
struct hd_table_config {
  /// Hypervector dimensionality d.  The paper uses 10,000.
  std::size_t dimension = 10'000;
  /// Circle size n (must stay strictly above the largest pool size; the
  /// paper requires n > k).  Default 4096 = 2x the paper's largest pool.
  std::size_t capacity = 4096;
  /// Similarity metric δ of Eq. 2.  All binary metrics give the same
  /// argmax; inverse Hamming is what accelerator adder trees compute.
  hdc::metric metric = hdc::metric::inverse_hamming;
  /// Algorithm 1 bit-flip policy (see hdc/basis.hpp).
  hdc::flip_policy policy = hdc::flip_policy::fresh_bits;
  /// Seed for the circle construction and h(·).
  std::uint64_t seed = 0x9D0C'AB1E;
  /// Slot-result cache modelling an O(1) HDC accelerator lookup
  /// (Schmuck et al. 2019 do the query in one cycle; caching per circle
  /// slot is the software analogue because Enc has only n distinct
  /// outputs).  The cache is maintained *incrementally* across
  /// membership changes: a leave re-decodes only the slots the leaver
  /// owned, and a join compares the newcomer's rows against each slot's
  /// cached winner — O(n) row distances per event instead of an O(n·k)
  /// full rebuild — always yielding exactly the answers of a cold
  /// decode.  Off by default: robustness experiments must exercise the
  /// real associative query.
  bool slot_cache = false;
  /// Maximum-likelihood lattice decoding (default on).  Pairwise
  /// similarities of circular hypervectors are quantized in steps of
  /// ⌊d/n⌋ bits by construction, so the decoder snaps each measured
  /// Hamming distance to the nearest lattice level before comparing.  A
  /// perturbation of any stored row by fewer than step/2 bit flips then
  /// provably cannot change any assignment — the formal version of the
  /// paper's "HD hashing remains unaffected" claim.  Requests exactly
  /// equidistant between two servers resolve to the smaller server id,
  /// both with and without faults.  Disable to get the raw Eq. 2 argmax.
  bool lattice_decode = true;
  /// Hot-state placement (src/mem).  When `arena_rows` is set (the
  /// default) item-memory rows and the slot cache are carved from
  /// `arena` — or, when `arena` is null, from the calling thread's
  /// node-local arena (mem::local_arena(), created under the
  /// HDHASH_MEM/--mem request).  Clear `arena_rows` for the default-
  /// heap baseline the allocator benchmark compares against.
  std::shared_ptr<mem::hugepage_arena> arena;
  bool arena_rows = true;
};

/// The HD hashing dynamic hash table.
class hd_table final : public dynamic_table {
 public:
  /// \param hash  borrowed hash function (must outlive the table).
  explicit hd_table(const hash64& hash, hd_table_config config = {});

  /// Weighted membership by circle-slot replication: the member stores
  /// max(1, round(w)) rows (the first is its own encoding, extra
  /// replicas are encodings of derived identifiers), so the weight
  /// resolution is one circle slot.  weight() subsequently reports that
  /// effective replication — the share the member actually serves — not
  /// the raw requested value.  All rows count against the circle
  /// capacity n.
  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;

  /// Batch associative query: slot-dedupes the block, then sweeps the
  /// item memory once per probe tile with word-level reuse of each
  /// stored row.  Assignments are identical to element-wise lookup().
  void lookup_batch(std::span<const request_id> requests,
                    std::span<server_id> out) const override;
  using dynamic_table::lookup_batch;

  double weight(server_id server) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return members_.size(); }
  std::vector<server_id> servers() const override;
  std::string_view name() const noexcept override { return "hd"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Epoch snapshot: warms the slot cache (when enabled), then shares a
  /// frozen copy-on-write copy — the circle basis and every item-memory
  /// row are shared with *this, so the snapshot's marginal footprint is
  /// bookkeeping (maps + cache), not hypervectors.  The copy is frozen
  /// (see freeze()), making concurrent lookups on it race-free.
  std::shared_ptr<const dynamic_table> snapshot() const override;

  /// Marks this instance immutable-for-memoization: lookups consult the
  /// slot cache but never write it (a miss decodes without caching).
  /// Published snapshots are frozen so that any number of shard workers
  /// can resolve against one instance concurrently with no
  /// synchronization.  Irreversible for this instance; copies (clones,
  /// further snapshots) always start unfrozen — the copy constructor
  /// resets the flag, preserving clone()'s independently-mutable
  /// contract even for clones taken from a snapshot.
  void freeze() noexcept { frozen_ = true; }

  /// Copy shares the circle basis and item-memory rows copy-on-write;
  /// the copy is never frozen (see freeze()).
  hd_table(const hd_table& other);
  hd_table& operator=(const hd_table& other);

  /// Fault surface: the stored server hypervectors — the (in hardware:
  /// SRAM) rows of the associative memory.  The circle set C is not
  /// exposed: accelerators rematerialize basis hypervectors on the fly
  /// (Schmuck et al.), so C is not resident in error-prone memory.
  std::vector<memory_region> fault_regions() override;

  /// Resolves every circle slot into the slot cache so subsequent
  /// lookups are O(1).  Models an HDC accelerator's steady state, where
  /// the associative memory answers in one cycle from the first request.
  /// No-op unless config().slot_cache is set.
  void warm_slot_cache() const;

  /// Full query detail for a request: winning server, best and runner-up
  /// similarity.  `margin()/2` bounds the number of bit flips that can
  /// possibly change this request's assignment.  \pre pool non-empty.
  hdc::query_result lookup_detailed(request_id request) const;

  const hd_table_config& config() const noexcept { return config_; }
  const circle_encoder& encoder() const noexcept { return encoder_; }

 private:
  /// Per-member bookkeeping: the joined weight and the row keys its
  /// replicas are stored under (row_keys[0] == the server id itself).
  struct member_info {
    double weight = 1.0;
    std::vector<std::uint64_t> row_keys;
  };

  /// One memoized slot decision.  Besides the resolved owner, the
  /// winning row key and its exact Hamming distance are kept so
  /// membership events can maintain the cache incrementally: a join
  /// only needs (distance, key) of the incumbent to decide whether a
  /// new row beats it under the same lattice/tie rule as decode().
  struct cached_slot {
    server_id owner = 0;
    std::uint64_t row_key = 0;
    std::uint64_t distance = 0;
  };

  /// Decodes a probe to (winner row, raw scores) under the configured
  /// rule.  Winners are row keys; owner_of() maps them back to servers.
  /// When non-null, `winner_distance` receives the winning row's exact
  /// Hamming distance to the probe (the cache maintenance currency).
  hdc::query_result decode(const hdc::hypervector& probe,
                           std::uint64_t* winner_distance = nullptr) const;

  /// Decodes a block of circle slots to winning *owner* ids, scoring
  /// each item-memory row against a tile of probes through the
  /// dispatched SIMD Hamming kernel (simd/hamming_kernel.hpp); the
  /// win/tie rule runs on integer distance bands, bit-identical across
  /// kernels and to the scalar decode().  When non-null, `detail[i]`
  /// receives the winning row key and distance for slots[i].
  void decode_slots(std::span<const std::size_t> slots,
                    std::span<server_id> winners,
                    cached_slot* detail = nullptr) const;

  /// Maps a decoded row key to the member that owns it.
  server_id owner_of(std::uint64_t row_key) const;

  /// True when a candidate row at `distance` beats the incumbent cache
  /// entry under the exact decode() rule (lattice level compare, ties
  /// to the smaller row key).
  bool beats_cached(const cached_slot& incumbent, std::uint64_t distance,
                    std::uint64_t row_key) const;

  const hash64* hash_;
  hd_table_config config_;
  // The arena backing rows and the slot cache (nullptr = heap); shared
  // with clones and snapshots so shared residency has one owner.
  std::shared_ptr<mem::hugepage_arena> arena_;
  circle_encoder encoder_;
  hdc::item_memory memory_;
  std::unordered_map<server_id, member_info> members_;
  std::unordered_map<std::uint64_t, server_id> row_owner_;
  // Slot-result cache (accelerator model): slot -> winning decision,
  // maintained incrementally across join/leave.  Mutable because it is
  // a pure memoization of lookup(); frozen_ gates all writes so a
  // published snapshot is read-only shared state.  Arena-allocated:
  // the snapshot-time rebuild recycles the previous epoch's block
  // through the arena free list instead of the general heap.
  mutable std::vector<std::optional<cached_slot>,
                      mem::arena_allocator<std::optional<cached_slot>>>
      cache_;
  bool frozen_ = false;
};

}  // namespace hdhash
