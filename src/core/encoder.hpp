/// \file encoder.hpp
/// \brief The paper's encoding function Enc (Eq. 1):
/// Enc(x) = C[h(x) mod n] — servers and requests are hashed onto the
/// circle of hypervectors.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/circular.hpp"
#include "hashing/hash64.hpp"
#include "hdc/hypervector.hpp"

namespace hdhash {

/// Owns the circular set C and maps 64-bit identifiers onto it.
///
/// The circle is generated once at construction from (count, dim, seed);
/// two encoders constructed with identical parameters produce identical
/// circles — the property the HD table's clone() relies on.
///
/// The circle itself is immutable after construction and held behind a
/// shared pointer, so *copies* of an encoder (table clones, epoch
/// snapshots) share one basis instead of duplicating count × dim bits —
/// the dominant term of an HD table's footprint.  This mirrors how HDC
/// accelerators treat C: rematerialized/shared read-only state, never
/// per-replica working memory.
class circle_encoder {
 public:
  /// \param count   n, the number of circle nodes (must exceed the maximum
  ///                expected server pool; paper requires n > k).
  /// \param dim     hypervector dimensionality d (paper uses 10,000).
  /// \param hash    borrowed hash function h(·) (must outlive the encoder).
  /// \param seed    seeds both the circle construction and h(·).
  /// \param policy  Algorithm 1 bit-flip policy (see hdc/basis.hpp).
  circle_encoder(std::size_t count, std::size_t dim, const hash64& hash,
                 std::uint64_t seed,
                 hdc::flip_policy policy = hdc::flip_policy::fresh_bits);

  /// Circle slot of identifier `x`: h(x) mod n.
  std::size_t slot_of(std::uint64_t x) const;

  /// Enc(x): the circle hypervector of x's slot (borrowed reference,
  /// valid for the encoder's lifetime).
  const hdc::hypervector& encode(std::uint64_t x) const;

  /// The hypervector at a given slot.  \pre slot < size().
  const hdc::hypervector& at(std::size_t slot) const;

  std::size_t size() const noexcept { return circle_->size(); }
  std::size_t dim() const noexcept { return dim_; }

  /// Hamming distance between adjacent circle nodes — the similarity
  /// lattice step.  With the fresh-bits policy every pairwise distance on
  /// the circle is an exact multiple of this value, which is what makes
  /// lattice decoding (see hd_table) exact.
  std::size_t step_bits() const noexcept { return step_bits_; }

 private:
  std::size_t dim_;
  const hash64* hash_;
  std::uint64_t seed_;
  // Immutable after construction; shared (not copied) across encoder
  // copies so table clones and snapshots reuse one circle.
  std::shared_ptr<const std::vector<hdc::hypervector>> circle_;
  std::size_t step_bits_;
};

}  // namespace hdhash
