/// \file circular.hpp
/// \brief Circular-hypervectors — the paper's second contribution
/// (Section 4, Algorithm 1, Figure 3).
///
/// A circular set {c_1, …, c_n} represents a circle in hyperspace: the
/// similarity between c_i and c_j decays with the *circular* distance
/// min(|i−j|, n−|i−j|), with no discontinuity between c_n and c_1 (unlike
/// level-hypervectors).  Construction: start from a random hypervector;
/// perform n/2 forward transformations, each binding (XOR) a random
/// low-weight transformation hypervector `t` that is pushed onto a FIFO
/// queue; then obtain the remaining vectors by backward transformations
/// that pop and re-bind the queued `t`s (XOR is self-inverse), closing
/// the circle.
///
/// Erratum note: the paper's printed Algorithm 1 runs the forward loop
/// for i ∈ {2…n/2} (n/2 − 1 transformations) but dequeues n/2 times in
/// the backward loop, which would underflow the queue and reach c_1
/// again at index n − 1.  We implement the consistent variant — n/2
/// forward steps, n/2 − 1 backward steps — which yields exactly the
/// circular similarity profile of the paper's Figures 2 and 3 (and
/// matches the authors' later released implementation).  With the
/// fresh-bits flip policy and per-step weight ⌊d/n⌋ the profile is exact:
///   hamming(c_i, c_j) = ⌊d/n⌋ · min(|i−j|, n−|i−j|),
/// so antipodal vectors are quasi-orthogonal.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/basis.hpp"
#include "hdc/hypervector.hpp"

namespace hdhash {

/// Generates a circular set of `count` hypervectors of dimension `dim`.
///
/// Even `count` uses Algorithm 1 directly; odd `count` follows the
/// paper's footnote 1: generate 2·count vectors and keep every other one
/// (which halves the per-step granularity but preserves the circular
/// profile).
///
/// \pre count >= 2.
/// \pre dim >= count for even count (each forward step must flip at least
///      one bit), dim >= 2*count for odd count.
std::vector<hdc::hypervector> circular_set(
    std::size_t count, std::size_t dim, xoshiro256& rng,
    hdc::flip_policy policy = hdc::flip_policy::fresh_bits);

/// Circular index distance min(|i−j|, n−|i−j|) — the geometry the set's
/// similarity profile mirrors.
std::size_t circular_distance(std::size_t i, std::size_t j,
                              std::size_t n) noexcept;

}  // namespace hdhash
