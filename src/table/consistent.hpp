/// \file consistent.hpp
/// \brief Consistent hashing (Karger et al. 1997) — ring with binary
/// search, the paper's primary baseline (Section 2.1).
///
/// Servers and requests hash onto a circular 64-bit key space; a request
/// is served by the first server point clockwise from it (O(log n) binary
/// search).  `virtual_nodes` points per server (default 1, matching the
/// paper's basic description) can be raised to smooth the load
/// distribution at the cost of a proportionally larger ring — an effect
/// the uniformity ablation quantifies.
///
/// Fault surface: the ring itself — the sorted (position, server) array
/// that lookups binary-search.  Bit errors both displace server points
/// and break the sort order that binary search relies on, which is why
/// consistent hashing degrades so visibly in the paper's Figure 5.
#pragma once

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// How the clockwise successor is resolved on the stored ring.  Both are
/// exactly equivalent on intact memory; they differ in how corruption
/// propagates, which matters for the Figure 5 reproduction.
enum class ring_lookup_mode {
  /// std::upper_bound bisection — the production CPU implementation.
  /// A displaced ring point mis-routes only lookups whose bisection path
  /// crosses it (~log n entries), so it degrades mildly under bit errors.
  bisect,
  /// Rank resolution: index = |{positions <= t}| — the natural data-
  /// parallel (GPU reduction) implementation and the one that matches
  /// the paper's emulator scale of degradation: one displaced position
  /// shifts the rank of *every* request between its old and new value,
  /// an off-by-one across the whole displacement span.
  rank,
};

class consistent_table final : public dynamic_table {
 public:
  /// \param hash           borrowed hash function (must outlive the table).
  /// \param virtual_nodes  ring points per server; >= 1.
  /// \param seed           seed mixed into every hash evaluation.
  /// \param mode           successor resolution (see ring_lookup_mode).
  explicit consistent_table(const hash64& hash, std::size_t virtual_nodes = 1,
                            std::uint64_t seed = 0,
                            ring_lookup_mode mode = ring_lookup_mode::bisect);

  /// Weighted membership via ring-point multiplicity: a member of weight
  /// w owns round(w * virtual_nodes) ring points (at least one), so its
  /// expected share of the key space is proportional to w.  The load
  /// resolution is one ring point — construct with enough virtual nodes
  /// for the granularity the deployment needs.  weight() reports the
  /// effective value the ring realizes (ring points / virtual_nodes),
  /// which equals the requested weight only when it is representable at
  /// that resolution.
  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  double weight(server_id server) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return members_.size(); }
  std::vector<server_id> servers() const override;
  std::string_view name() const noexcept override {
    return mode_ == ring_lookup_mode::bisect ? "consistent"
                                             : "consistent-rank";
  }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const consistent_table>(*this);
  }

  std::vector<memory_region> fault_regions() override;

  std::size_t virtual_nodes() const noexcept { return virtual_nodes_; }
  std::size_t ring_size() const noexcept { return ring_.size(); }
  ring_lookup_mode lookup_mode() const noexcept { return mode_; }

 private:
  /// One point on the ring.  Kept as a plain 16-byte POD so the fault
  /// injector sees exactly the memory a real implementation would keep.
  struct ring_point {
    std::uint64_t position;
    server_id server;
  };

  /// Weight bookkeeping, separate from the ring: the ring alone is the
  /// routing state (and fault surface), exactly as in a production
  /// deployment where weights live in the control plane.
  struct member {
    server_id server;
    double weight;
  };

  std::uint64_t point_position(server_id server, std::size_t replica) const;
  std::size_t member_index(server_id server) const noexcept;  // size if absent
  std::size_t replica_count(double weight) const noexcept;

  const hash64* hash_;
  std::uint64_t seed_;
  std::size_t virtual_nodes_;
  ring_lookup_mode mode_;
  std::vector<member> members_;   // join order
  std::vector<ring_point> ring_;  // sorted by (position, server)
};

}  // namespace hdhash
