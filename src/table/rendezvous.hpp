/// \file rendezvous.hpp
/// \brief Rendezvous / highest-random-weight hashing (Thaler &
/// Ravishankar 1998) — the paper's second baseline (Section 2.2).
///
/// Request `r` goes to `argmax_s h(s, r)`.  Perfectly uniform assignment
/// and minimal disruption, but every lookup is O(n) in the pool size —
/// the scaling the paper's Figure 4 exhibits.
///
/// Fault surface: the stored server identifiers.  A corrupted identifier
/// re-randomizes `h(s, r)` for every request, so a few flipped bits
/// mismatch a few percent of requests (paper: ~4% at 10 flips, 512
/// servers) — far less than consistent hashing, but not zero like HD.
#pragma once

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class rendezvous_table final : public dynamic_table {
 public:
  explicit rendezvous_table(const hash64& hash, std::uint64_t seed = 0);

  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return servers_.size(); }
  std::vector<server_id> servers() const override { return servers_; }
  std::string_view name() const noexcept override { return "rendezvous"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const rendezvous_table>(*this);
  }

  std::vector<memory_region> fault_regions() override;

 private:
  const hash64* hash_;
  std::uint64_t seed_;
  std::vector<server_id> servers_;
};

}  // namespace hdhash
