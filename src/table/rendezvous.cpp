#include "table/rendezvous.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace hdhash {

rendezvous_table::rendezvous_table(const hash64& hash, std::uint64_t seed)
    : hash_(&hash), seed_(seed) {}

void rendezvous_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight == 1.0,
                 "plain rendezvous is unweighted (weight == 1); use "
                 "weighted-rendezvous for heterogeneous pools");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  servers_.push_back(server);
}

void rendezvous_table::leave(server_id server) {
  const auto it = std::find(servers_.begin(), servers_.end(), server);
  HDHASH_REQUIRE(it != servers_.end(), "server not in the pool");
  servers_.erase(it);
}

server_id rendezvous_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!servers_.empty(), "lookup on an empty pool");
  server_id best = servers_.front();
  std::uint64_t best_weight = hash_->hash_pair(best, request, seed_);
  for (std::size_t i = 1; i < servers_.size(); ++i) {
    const server_id candidate = servers_[i];
    const std::uint64_t weight = hash_->hash_pair(candidate, request, seed_);
    // Ties break toward the smaller identifier for determinism.
    if (weight > best_weight ||
        (weight == best_weight && candidate < best)) {
      best = candidate;
      best_weight = weight;
    }
  }
  return best;
}

table_stats rendezvous_table::stats() const {
  table_stats s;
  s.memory_bytes = servers_.size() * sizeof(server_id);
  // One hash per pool member per lookup — the O(n) scan of Figure 4.
  s.expected_lookup_cost = static_cast<double>(servers_.size());
  return s;
}

bool rendezvous_table::contains(server_id server) const {
  return std::find(servers_.begin(), servers_.end(), server) !=
         servers_.end();
}

std::unique_ptr<dynamic_table> rendezvous_table::clone() const {
  return std::make_unique<rendezvous_table>(*this);
}

std::vector<memory_region> rendezvous_table::fault_regions() {
  if (servers_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(servers_.data(), servers_.size())),
      "server-ids"}};
}

}  // namespace hdhash
