/// \file jump.hpp
/// \brief Jump consistent hash (Lamping & Veach 2014) — extension beyond
/// the paper's baselines.
///
/// Maps a key to one of `n` dense buckets in O(log n) expected time with
/// *no* per-server table state at lookup time — the entire mapping is
/// arithmetic.  Bucket indices are translated to server identifiers
/// through a slot array; a leaving server's slot is backfilled with the
/// last slot (so `leave` disrupts the departed server's keys plus the
/// moved slot's keys — the classic trade-off versus ring-based schemes,
/// quantified in the disruption bench).
///
/// Fault surface: the slot array only; the jump walk itself is stateless.
#pragma once

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class jump_table final : public dynamic_table {
 public:
  explicit jump_table(const hash64& hash, std::uint64_t seed = 0);

  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return slots_.size(); }
  std::vector<server_id> servers() const override { return slots_; }
  std::string_view name() const noexcept override { return "jump"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const jump_table>(*this);
  }

  std::vector<memory_region> fault_regions() override;

  /// The raw jump walk: bucket of `key` among `buckets` buckets.
  /// \pre buckets > 0.
  static std::size_t jump_bucket(std::uint64_t key, std::size_t buckets);

 private:
  const hash64* hash_;
  std::uint64_t seed_;
  std::vector<server_id> slots_;  // bucket index -> server
};

}  // namespace hdhash
