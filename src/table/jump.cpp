#include "table/jump.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace hdhash {

jump_table::jump_table(const hash64& hash, std::uint64_t seed)
    : hash_(&hash), seed_(seed) {}

std::size_t jump_table::jump_bucket(std::uint64_t key, std::size_t buckets) {
  HDHASH_REQUIRE(buckets > 0, "need at least one bucket");
  // Lamping & Veach's linear-congruential jump walk.
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(std::int64_t{1} << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::size_t>(b);
}

void jump_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight == 1.0, "jump hashing is unweighted (weight == 1)");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  slots_.push_back(server);
}

void jump_table::leave(server_id server) {
  const auto it = std::find(slots_.begin(), slots_.end(), server);
  HDHASH_REQUIRE(it != slots_.end(), "server not in the pool");
  // Backfill the vacated bucket with the tail bucket so the bucket space
  // stays dense; only the moved slot's keys remap beyond the departed
  // server's own.
  *it = slots_.back();
  slots_.pop_back();
}

server_id jump_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!slots_.empty(), "lookup on an empty pool");
  const std::uint64_t key = hash_->hash_u64(request, seed_);
  return slots_[jump_bucket(key, slots_.size())];
}

table_stats jump_table::stats() const {
  table_stats s;
  s.memory_bytes = slots_.size() * sizeof(server_id);
  // The jump walk visits ~ln(n) buckets in expectation.
  s.expected_lookup_cost =
      slots_.empty() ? 0.0
                     : 1.0 + std::log(static_cast<double>(slots_.size()));
  return s;
}

bool jump_table::contains(server_id server) const {
  return std::find(slots_.begin(), slots_.end(), server) != slots_.end();
}

std::unique_ptr<dynamic_table> jump_table::clone() const {
  return std::make_unique<jump_table>(*this);
}

std::vector<memory_region> jump_table::fault_regions() {
  if (slots_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(slots_.data(), slots_.size())),
      "bucket-slots"}};
}

}  // namespace hdhash
