/// \file modular.hpp
/// \brief Modular hashing — the naive baseline (paper Section 1).
///
/// Maps request `r` to `servers[h(r) mod n]`.  O(1) lookups, but any
/// change of `n` remaps virtually all requests; included to demonstrate
/// that failure mode in the disruption benchmarks.
#pragma once

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class modular_table final : public dynamic_table {
 public:
  /// \param hash  borrowed hash function (must outlive the table).
  /// \param seed  seed mixed into every hash evaluation.
  explicit modular_table(const hash64& hash, std::uint64_t seed = 0);

  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return servers_.size(); }
  std::vector<server_id> servers() const override { return servers_; }
  std::string_view name() const noexcept override { return "modular"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const modular_table>(*this);
  }

  /// Fault surface: the server slot array (the only live state).
  std::vector<memory_region> fault_regions() override;

 private:
  const hash64* hash_;
  std::uint64_t seed_;
  std::vector<server_id> servers_;
};

}  // namespace hdhash
