#include "table/weighted_rendezvous.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace hdhash {

weighted_rendezvous_table::weighted_rendezvous_table(const hash64& hash,
                                                     std::uint64_t seed)
    : hash_(&hash), seed_(seed) {}

std::size_t weighted_rendezvous_table::find_index(
    server_id server) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].server == server) {
      return i;
    }
  }
  return entries_.size();
}

void weighted_rendezvous_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  HDHASH_REQUIRE(weight > 0.0, "weight must be positive");
  entries_.push_back(entry{server, weight});
}

void weighted_rendezvous_table::set_weight(server_id server, double weight) {
  HDHASH_REQUIRE(weight > 0.0, "weight must be positive");
  const std::size_t index = find_index(server);
  HDHASH_REQUIRE(index != entries_.size(), "server not in the pool");
  entries_[index].weight = weight;
}

double weighted_rendezvous_table::weight(server_id server) const {
  const std::size_t index = find_index(server);
  HDHASH_REQUIRE(index != entries_.size(), "server not in the pool");
  return entries_[index].weight;
}

void weighted_rendezvous_table::leave(server_id server) {
  const std::size_t index = find_index(server);
  HDHASH_REQUIRE(index != entries_.size(), "server not in the pool");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

server_id weighted_rendezvous_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!entries_.empty(), "lookup on an empty pool");
  server_id best = entries_.front().server;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const entry& e : entries_) {
    // Map the 64-bit hash into (0, 1); the +1/+2 offsets exclude the
    // endpoints so the logarithm is finite.
    const double u =
        (static_cast<double>(hash_->hash_pair(e.server, request, seed_)) +
         1.0) *
        0x1.0p-64;
    const double score = -e.weight / std::log(u);
    if (score > best_score ||
        (score == best_score && e.server < best)) {
      best = e.server;
      best_score = score;
    }
  }
  return best;
}

table_stats weighted_rendezvous_table::stats() const {
  table_stats s;
  s.memory_bytes = entries_.size() * sizeof(entry);
  // One hash + one log per pool member per lookup.
  s.expected_lookup_cost = 2.0 * static_cast<double>(entries_.size());
  return s;
}

bool weighted_rendezvous_table::contains(server_id server) const {
  return find_index(server) != entries_.size();
}

std::vector<server_id> weighted_rendezvous_table::servers() const {
  std::vector<server_id> result;
  result.reserve(entries_.size());
  for (const entry& e : entries_) {
    result.push_back(e.server);
  }
  return result;
}

std::unique_ptr<dynamic_table> weighted_rendezvous_table::clone() const {
  return std::make_unique<weighted_rendezvous_table>(*this);
}

std::vector<memory_region> weighted_rendezvous_table::fault_regions() {
  if (entries_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(entries_.data(), entries_.size())),
      "server-entries"}};
}

}  // namespace hdhash
