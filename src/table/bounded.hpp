/// \file bounded.hpp
/// \brief Consistent hashing with bounded loads (Mirrokni, Thorup &
/// Zadimoghaddam, SODA 2018 — the paper's reference [13]).  Extension
/// beyond the paper's baselines.
///
/// Plain consistent hashing with one ring point per server has high arc
/// variance: the busiest server carries several times the mean load.
/// The bounded-loads variant caps every server at
/// ceil(c · assignments / servers) for a balance factor c > 1: an
/// assignment that would overflow its successor walks clockwise to the
/// next server with spare capacity.  This guarantees a peak-to-mean
/// ratio of at most ~c while preserving consistent hashing's minimal-
/// disruption behaviour in amortized terms.
///
/// Unlike the other tables, `assign` is *stateful* — the cap depends on
/// the number of assignments made so far — so this class models an
/// assignment stream (connections, jobs) rather than a stateless
/// router.  `lookup` is provided for interface compatibility and
/// answers "where would this request go right now" without recording
/// the assignment.
#pragma once

#include <unordered_map>

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class bounded_consistent_table final : public dynamic_table {
 public:
  /// \param hash            borrowed hash function (outlives the table).
  /// \param balance_factor  c > 1; smaller is more balanced, at the cost
  ///                        of longer clockwise walks (c = 1.25 is the
  ///                        value popularized by the Vimeo deployment).
  /// \param virtual_nodes   ring points per server.
  explicit bounded_consistent_table(const hash64& hash,
                                    double balance_factor = 1.25,
                                    std::size_t virtual_nodes = 1,
                                    std::uint64_t seed = 0);

  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  table_stats stats() const override;

  /// Where the next assignment of `request` would land, without
  /// recording it.
  server_id lookup(request_id request) const override;

  /// Batch peek: orders the block by ring position and walks the ring
  /// once, resolving each distinct successor point at most once (the
  /// load state is fixed across the block, so all requests landing on
  /// the same successor share one capped walk).  Assignments are
  /// identical to element-wise lookup() under the same recorded loads.
  void lookup_batch(std::span<const request_id> requests,
                    std::span<server_id> out) const override;
  using dynamic_table::lookup_batch;

  /// Assigns `request`, recording one unit of load on the chosen
  /// server.  \pre pool non-empty.
  server_id assign(request_id request);

  /// Forgets all recorded load (e.g. at an epoch boundary).
  void reset_loads() noexcept;

  /// Currently recorded load of a server (0 when absent).
  std::uint64_t load_of(server_id server) const;

  /// Total recorded assignments.
  std::uint64_t total_load() const noexcept { return total_load_; }

  /// The current per-server cap: ceil(c * (total_load + 1) / servers).
  std::uint64_t current_cap() const;

  bool contains(server_id server) const override;
  std::size_t server_count() const override { return loads_.size(); }
  std::vector<server_id> servers() const override;
  std::string_view name() const noexcept override { return "bounded"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const bounded_consistent_table>(*this);
  }

  std::vector<memory_region> fault_regions() override;

 private:
  struct ring_point {
    std::uint64_t position;
    server_id server;
  };

  /// Successor walk honouring the cap; pure for would_assign == false.
  server_id resolve(request_id request, bool record);

  /// Outcome of one capped clockwise walk: the chosen server and its
  /// load-map slot (nullptr when the walk surfaced a corrupted id that
  /// is not in the pool).
  struct walk_result {
    server_id server = 0;
    std::uint64_t* load = nullptr;
  };

  /// Clockwise capped walk starting at ring index `start`.  Mutates
  /// nothing itself; the returned load slot lets the recording path
  /// increment without a second map probe.
  walk_result walk_from(std::size_t start, std::uint64_t cap);

  /// Read-only wrapper for const callers (lookup/batch paths).
  server_id walk_server_from(std::size_t start, std::uint64_t cap) const {
    return const_cast<bounded_consistent_table*>(this)
        ->walk_from(start, cap)
        .server;
  }

  const hash64* hash_;
  std::uint64_t seed_;
  double balance_factor_;
  std::size_t virtual_nodes_;
  std::vector<ring_point> ring_;  // sorted by (position, server)
  std::unordered_map<server_id, std::uint64_t> loads_;
  std::uint64_t total_load_ = 0;
};

}  // namespace hdhash
