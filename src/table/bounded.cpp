#include "table/bounded.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace hdhash {

bounded_consistent_table::bounded_consistent_table(const hash64& hash,
                                                   double balance_factor,
                                                   std::size_t virtual_nodes,
                                                   std::uint64_t seed)
    : hash_(&hash),
      seed_(seed),
      balance_factor_(balance_factor),
      virtual_nodes_(virtual_nodes) {
  HDHASH_REQUIRE(balance_factor > 1.0,
                 "balance factor must exceed 1 (1 allows no slack at all)");
  HDHASH_REQUIRE(virtual_nodes >= 1, "need at least one ring point");
}

void bounded_consistent_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight == 1.0,
                 "bounded-loads balances by cap, not weight (weight == 1)");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  for (std::size_t replica = 0; replica < virtual_nodes_; ++replica) {
    const ring_point point{
        hash_->hash_pair(server, static_cast<std::uint64_t>(replica), seed_),
        server};
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const ring_point& a, const ring_point& b) {
          return a.position < b.position ||
                 (a.position == b.position && a.server < b.server);
        });
    ring_.insert(it, point);
  }
  loads_.emplace(server, 0);
}

void bounded_consistent_table::leave(server_id server) {
  HDHASH_REQUIRE(contains(server), "server not in the pool");
  std::erase_if(ring_,
                [server](const ring_point& p) { return p.server == server; });
  total_load_ -= loads_.at(server);
  loads_.erase(server);
}

std::uint64_t bounded_consistent_table::current_cap() const {
  HDHASH_REQUIRE(!loads_.empty(), "cap undefined for an empty pool");
  return static_cast<std::uint64_t>(
      std::ceil(balance_factor_ * static_cast<double>(total_load_ + 1) /
                static_cast<double>(loads_.size())));
}

bounded_consistent_table::walk_result bounded_consistent_table::walk_from(
    std::size_t start, std::uint64_t cap) {
  // Clockwise walk to the first server with spare capacity.  Bounded by
  // ring size: the cap admits total_load_+1 assignments in aggregate, so
  // a non-full server always exists.
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const ring_point& point = ring_[(start + step) % ring_.size()];
    // A bit-corrupted ring entry may carry an identifier that is not in
    // the pool; return it as an observable mismatch (matching the other
    // ring algorithms' failure mode) instead of faulting the service.
    const auto found = loads_.find(point.server);
    if (found == loads_.end()) {
      return walk_result{point.server, nullptr};
    }
    if (found->second < cap) {
      return walk_result{point.server, &found->second};
    }
  }
  HDHASH_ASSERT(false && "cap invariant violated");
  return walk_result{ring_.front().server, nullptr};
}

server_id bounded_consistent_table::resolve(request_id request, bool record) {
  HDHASH_REQUIRE(!ring_.empty(), "lookup on an empty pool");
  const std::uint64_t position = hash_->hash_u64(request, seed_);
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), position,
      [](std::uint64_t pos, const ring_point& p) { return pos < p.position; });
  const std::size_t start =
      it == ring_.end() ? 0
                        : static_cast<std::size_t>(it - ring_.begin());
  const walk_result chosen = walk_from(start, current_cap());
  if (record && chosen.load != nullptr) {
    ++*chosen.load;
    ++total_load_;
  }
  return chosen.server;
}

server_id bounded_consistent_table::lookup(request_id request) const {
  // Peeking does not mutate; resolve() only writes when record == true.
  return const_cast<bounded_consistent_table*>(this)->resolve(request, false);
}

void bounded_consistent_table::lookup_batch(
    std::span<const request_id> requests, std::span<server_id> out) const {
  HDHASH_REQUIRE(requests.size() == out.size(),
                 "lookup_batch output span must match the request block");
  if (requests.empty()) {
    return;
  }
  HDHASH_REQUIRE(!ring_.empty(), "lookup on an empty pool");
  // The merge path pays O(ring) per call (sortedness scan + memo
  // arrays); for small blocks — e.g. churn-segmented sub-batches — the
  // scalar loop is cheaper.
  if (requests.size() < 16 || requests.size() * 4 < ring_.size()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out[i] = lookup(requests[i]);
    }
    return;
  }
  const std::uint64_t cap = current_cap();

  // Order the block by ring position so one forward sweep of the sorted
  // ring finds every successor — B binary searches become one merge.
  std::vector<std::pair<std::uint64_t, std::size_t>> order(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    order[i] = {hash_->hash_u64(requests[i], seed_), i};
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // The load state is fixed for the whole block (peeks record nothing),
  // so every request sharing a successor point shares its capped walk:
  // resolve each distinct starting index once.  The single-sweep merge
  // assumes the ring is position-sorted; a fault-injected ring may not
  // be, and there the scalar path's bisection picks an arbitrary (but
  // deterministic) successor — fall back to the same bisection so the
  // batch answers stay bit-identical to element-wise lookup() even on
  // corrupted state.
  const bool sorted = std::is_sorted(
      ring_.begin(), ring_.end(),
      [](const ring_point& a, const ring_point& b) {
        return a.position < b.position;
      });
  std::vector<server_id> resolved(ring_.size());
  std::vector<bool> resolved_valid(ring_.size(), false);
  std::size_t cursor = 0;  // first ring point with position > current key
  for (const auto& [position, index] : order) {
    std::size_t start;
    if (sorted) {
      while (cursor < ring_.size() && ring_[cursor].position <= position) {
        ++cursor;
      }
      start = cursor == ring_.size() ? 0 : cursor;
    } else {
      const auto it = std::upper_bound(
          ring_.begin(), ring_.end(), position,
          [](std::uint64_t pos, const ring_point& p) {
            return pos < p.position;
          });
      start = it == ring_.end()
                  ? 0
                  : static_cast<std::size_t>(it - ring_.begin());
    }
    if (!resolved_valid[start]) {
      resolved[start] = walk_server_from(start, cap);
      resolved_valid[start] = true;
    }
    out[index] = resolved[start];
  }
}

server_id bounded_consistent_table::assign(request_id request) {
  return resolve(request, true);
}

void bounded_consistent_table::reset_loads() noexcept {
  for (auto& [server, load] : loads_) {
    load = 0;
  }
  total_load_ = 0;
}

std::uint64_t bounded_consistent_table::load_of(server_id server) const {
  const auto it = loads_.find(server);
  return it == loads_.end() ? 0 : it->second;
}

table_stats bounded_consistent_table::stats() const {
  table_stats s;
  s.memory_bytes = ring_.size() * sizeof(ring_point) +
                   loads_.size() * (sizeof(server_id) + sizeof(std::uint64_t));
  // Binary search plus the expected clockwise walk (short for c = 1.25).
  s.expected_lookup_cost =
      ring_.empty()
          ? 0.0
          : std::log2(static_cast<double>(ring_.size()) + 1.0) + 1.0;
  return s;
}

bool bounded_consistent_table::contains(server_id server) const {
  return loads_.contains(server);
}

std::vector<server_id> bounded_consistent_table::servers() const {
  std::vector<server_id> result;
  result.reserve(loads_.size());
  for (const ring_point& p : ring_) {
    if (std::find(result.begin(), result.end(), p.server) == result.end()) {
      result.push_back(p.server);
    }
  }
  return result;
}

std::unique_ptr<dynamic_table> bounded_consistent_table::clone() const {
  return std::make_unique<bounded_consistent_table>(*this);
}

std::vector<memory_region> bounded_consistent_table::fault_regions() {
  if (ring_.empty()) {
    return {};
  }
  // Only the ring is exposed: the load map is bookkeeping, not routing
  // state a production implementation would keep in error-prone DRAM
  // rows adjacent to the ring.
  return {memory_region{
      std::as_writable_bytes(std::span(ring_.data(), ring_.size())), "ring"}};
}

}  // namespace hdhash
