/// \file dynamic_table.hpp
/// \brief The dynamic hash table interface shared by every algorithm in
/// hdhash: modular, consistent, rendezvous, jump, Maglev and HD hashing.
///
/// "Dynamic hash table" is used in the paper's sense: a mapper from
/// request identifiers to the currently available server pool, where
/// servers join and leave at any time.  The two quality axes are
///  * minimal disruption — how few requests remap when the pool changes;
///  * uniformity — how evenly requests spread over servers.
///
/// Every implementation also exposes its live state for fault injection
/// (see fault/memory_region.hpp), which is how the robustness experiments
/// corrupt each algorithm's actual working memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "fault/memory_region.hpp"

namespace hdhash {

/// Unique identifier of a server (in practice: hash of an IP/endpoint).
using server_id = std::uint64_t;
/// Unique identifier of a request (in practice: hash of a key/URL/user).
using request_id = std::uint64_t;

/// Abstract request→server mapper over a dynamic server pool.
class dynamic_table : public fault_surface {
 public:
  /// Adds a server to the pool.
  /// \pre the server is not already present; pool below capacity (HD).
  virtual void join(server_id server) = 0;

  /// Removes a server from the pool.  \pre the server is present.
  virtual void leave(server_id server) = 0;

  /// Maps a request to a server.  \pre the pool is non-empty.
  ///
  /// Note: lookups on a fault-injected table may return identifiers that
  /// are not in the pool (e.g. a corrupted stored id) — that is the
  /// failure mode the robustness experiments measure.
  virtual server_id lookup(request_id request) const = 0;

  /// True when `server` is in the pool.
  virtual bool contains(server_id server) const = 0;

  /// Number of servers currently in the pool.
  virtual std::size_t server_count() const = 0;

  /// Servers currently in the pool (unspecified but deterministic order).
  virtual std::vector<server_id> servers() const = 0;

  /// Stable algorithm name, e.g. "consistent".
  virtual std::string_view name() const noexcept = 0;

  /// Deep copy with identical mapping behaviour; the emulator uses clones
  /// as pristine shadow oracles while the original is fault-injected.
  virtual std::unique_ptr<dynamic_table> clone() const = 0;
};

}  // namespace hdhash
