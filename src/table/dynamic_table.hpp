/// \file dynamic_table.hpp
/// \brief The dynamic hash table interface shared by every algorithm in
/// hdhash: modular, consistent, rendezvous, jump, Maglev and HD hashing.
///
/// "Dynamic hash table" is used in the paper's sense: a mapper from
/// request identifiers to the currently available server pool, where
/// servers join and leave at any time.  The two quality axes are
///  * minimal disruption — how few requests remap when the pool changes;
///  * uniformity — how evenly requests spread over servers.
///
/// API v2 extends the original scalar interface along three axes:
///  * batching — lookup_batch() maps a block of requests at once, the
///    shape under which HD hashing's associative query amortizes probe
///    encoding and sweeps its item memory word-parallel;
///  * weights — join() takes a relative capacity, so heterogeneous pools
///    (a 2x machine takes 2x the traffic) are first-class;
///  * introspection — stats() reports each algorithm's live memory
///    footprint and expected per-lookup cost for capacity planning.
///
/// Every implementation also exposes its live state for fault injection
/// (see fault/memory_region.hpp), which is how the robustness experiments
/// corrupt each algorithm's actual working memory.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "fault/memory_region.hpp"
#include "util/require.hpp"

namespace hdhash {

/// Unique identifier of a server (in practice: hash of an IP/endpoint).
using server_id = std::uint64_t;
/// Unique identifier of a request (in practice: hash of a key/URL/user).
using request_id = std::uint64_t;

/// Introspection snapshot of a table's resource profile.  Filled in by
/// every algorithm; the emulator and capacity-planning tools read it.
struct table_stats {
  /// Bytes of live routing state (the fault surface plus caches) —
  /// what a production deployment keeps resident per table instance.
  std::size_t memory_bytes = 0;
  /// Of memory_bytes, the bytes currently shared copy-on-write with
  /// other instances (clones or published snapshots of this table).
  /// memory_bytes - shared_bytes is the instance's marginal residency —
  /// what one more epoch snapshot actually costs.
  std::size_t shared_bytes = 0;
  /// Expected elemental operations per scalar lookup: hash evaluations
  /// for the classic algorithms, 64-bit word operations for the HD
  /// associative query.  Comparable within an algorithm across pool
  /// sizes (the Figure 4 x-axis), indicative across algorithms.
  double expected_lookup_cost = 0.0;
  /// Backing the hot state landed on: "huge", "thp" or "page" for
  /// arena-backed tables (src/mem), "heap" for the default allocator
  /// (every non-arena algorithm).  Points at a string literal — always
  /// valid.
  std::string_view arena_backing = "heap";
  /// Pages backing the owning arena's mapping set (2MB pages for huge
  /// chunks, 4KB otherwise) — the TLB-reach number.  Arena-level:
  /// tables sharing one arena report the same value (residency is
  /// attributed to the owning arena, counted once), and 0 means heap.
  std::size_t resident_pages = 0;
  /// Of the owning arena's reserved bytes, bytes on explicit-hugepage
  /// (MAP_HUGETLB) chunks.  Arena-level, like resident_pages.
  std::size_t hugepage_bytes = 0;
};

/// Abstract request→server mapper over a dynamic server pool.
class dynamic_table : public fault_surface {
 public:
  /// Adds a server to the pool with a relative capacity weight: a server
  /// with weight 2 should receive twice the traffic of a weight-1 peer.
  /// Weight support varies by algorithm — native scoring in
  /// weighted-rendezvous, ring-point multiplicity in consistent, circle-
  /// slot replication in hd; the unweighted algorithms (modular, jump,
  /// maglev, rendezvous, bounded) require weight == 1.
  /// \param server  identifier to add.
  /// \param weight  relative capacity; algorithms that realize weights by
  ///                discrete replication serve round(weight) (see weight()).
  /// \pre the server is not already present; weight > 0 (and == 1 for
  /// unweighted algorithms); pool below capacity (HD).
  /// \post contains(server); weight(server) reports the effective weight;
  /// previously published snapshots are unaffected.
  virtual void join(server_id server, double weight = 1.0) = 0;

  /// Removes a server from the pool.
  /// \pre the server is present.
  /// \post !contains(server); requests previously mapped to it remap to
  /// surviving members under each algorithm's disruption behaviour;
  /// previously published snapshots are unaffected.
  virtual void leave(server_id server) = 0;

  /// Maps a request to a server.  \pre the pool is non-empty.
  ///
  /// Note: lookups on a fault-injected table may return identifiers that
  /// are not in the pool (e.g. a corrupted stored id) — that is the
  /// failure mode the robustness experiments measure.
  virtual server_id lookup(request_id request) const = 0;

  /// Maps a block of requests to servers, writing `out[i]` for
  /// `requests[i]`.  Produces exactly the assignments of element-wise
  /// lookup(); overrides exist purely for throughput (hd_table and
  /// hd-hierarchical amortize probe encoding and sweep their item
  /// memories word-parallel across the block).
  /// \param requests  block of request identifiers to map.
  /// \param out       receives the assignment of each request, in order.
  /// \pre out.size() == requests.size(); pool non-empty unless the block
  /// is empty.
  /// \post out[i] == lookup(requests[i]) for every i, bit-identically.
  virtual void lookup_batch(std::span<const request_id> requests,
                            std::span<server_id> out) const {
    HDHASH_REQUIRE(requests.size() == out.size(),
                   "lookup_batch output span must match the request block");
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out[i] = lookup(requests[i]);
    }
  }

  /// Convenience overload allocating the output block.
  std::vector<server_id> lookup_batch(
      std::span<const request_id> requests) const {
    std::vector<server_id> out(requests.size());
    lookup_batch(requests, out);
    return out;
  }

  /// The weight a member carries (1 for unweighted algorithms).
  /// Algorithms that realize weights by discrete replication report the
  /// *effective* weight actually served — hd stores max(1, round(w))
  /// circle slots and reports that — so this may differ from the raw
  /// value passed to join() (weights 1.0 and 1.4 are the same hd table,
  /// and both report 1).  Uniformity expectations must be computed from
  /// this value, not the requested one.
  /// \param server  member to query.
  /// \pre the server is present.
  /// \post the returned value is > 0 and stable until the next
  /// join/leave.
  virtual double weight(server_id server) const {
    HDHASH_REQUIRE(contains(server), "server not in the pool");
    return 1.0;
  }

  /// Resource profile of the current state (see table_stats).
  /// \post memory_bytes covers the live routing state (fault surface
  /// plus caches); shared_bytes ≤ memory_bytes counts the portion
  /// shared copy-on-write with clones/snapshots of this table.
  virtual table_stats stats() const = 0;

  /// True when `server` is in the pool.
  virtual bool contains(server_id server) const = 0;

  /// Number of servers currently in the pool.
  virtual std::size_t server_count() const = 0;

  /// Servers currently in the pool (unspecified but deterministic order).
  virtual std::vector<server_id> servers() const = 0;

  /// Stable algorithm name, e.g. "consistent".
  virtual std::string_view name() const noexcept = 0;

  /// Deep copy with identical mapping behaviour; the emulator uses clones
  /// as pristine shadow oracles while the original is fault-injected.
  /// \post the clone is independently mutable; subsequent join/leave or
  /// fault injection on either table never affects the other.
  virtual std::unique_ptr<dynamic_table> clone() const = 0;

  /// Immutable published snapshot of the current mapping — the unit of
  /// epoch-based state sharing in the sharded emulator (emu/snapshot.hpp).
  ///
  /// The default implementation deep-copies via clone(); implementations
  /// with large immutable state override it to share that state
  /// copy-on-write (hd shares the circle basis and the item-memory rows,
  /// so a snapshot's marginal footprint is bookkeeping, not
  /// hypervectors).
  /// \post the returned table maps every request exactly as *this does
  /// at the time of the call, concurrent lookup()/lookup_batch() calls
  /// on it from multiple threads are safe (it is never mutated), and
  /// later join/leave/fault injection on *this never changes its
  /// answers.
  virtual std::shared_ptr<const dynamic_table> snapshot() const {
    return std::shared_ptr<const dynamic_table>(clone());
  }
};

}  // namespace hdhash
