/// \file weighted_rendezvous.hpp
/// \brief Weighted rendezvous hashing (HRW with heterogeneous server
/// capacities).  Extension beyond the paper's baselines.
///
/// Real pools are heterogeneous: a server with twice the capacity should
/// take twice the traffic.  Weighted HRW scores each server as
///   score(s, r) = -w_s / ln(u)   with   u = h(s, r) mapped to (0, 1),
/// which makes P[s wins] exactly proportional to w_s while retaining
/// rendezvous hashing's minimal disruption (changing one server's weight
/// only moves requests to/from that server).
#pragma once

#include <unordered_map>

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class weighted_rendezvous_table final : public dynamic_table {
 public:
  explicit weighted_rendezvous_table(const hash64& hash,
                                     std::uint64_t seed = 0);

  /// Weighted membership is native here: P[s wins] is exactly
  /// proportional to the weight.  \pre weight > 0, server not present.
  void join(server_id server, double weight = 1.0) override;

  /// Back-compat alias for the v1 API.  \pre weight > 0, server absent.
  void join_weighted(server_id server, double weight) {
    join(server, weight);
  }

  /// Updates a member's weight.  \pre server present, weight > 0.
  void set_weight(server_id server, double weight);

  /// The member's weight.  \pre server present.
  double weight(server_id server) const override;

  /// Back-compat alias for the v1 API.  \pre server present.
  double weight_of(server_id server) const { return weight(server); }

  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return entries_.size(); }
  std::vector<server_id> servers() const override;
  std::string_view name() const noexcept override {
    return "weighted-rendezvous";
  }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const weighted_rendezvous_table>(*this);
  }

  /// Fault surface: the (id, weight) entries — both fields are live
  /// routing state.
  std::vector<memory_region> fault_regions() override;

 private:
  struct entry {
    server_id server;
    double weight;
  };

  std::size_t find_index(server_id server) const noexcept;

  const hash64* hash_;
  std::uint64_t seed_;
  std::vector<entry> entries_;
};

}  // namespace hdhash
