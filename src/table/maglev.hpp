/// \file maglev.hpp
/// \brief Maglev hashing (Eisenbud et al., NSDI 2016) — extension beyond
/// the paper's baselines; cited by the paper as Google Cloud's software
/// load balancer.
///
/// Each server gets a pseudo-random preference permutation over a prime-
/// sized lookup table; table slots are filled by round-robin popping each
/// server's next preferred slot.  Lookup is a single O(1) index.  Any
/// pool change rebuilds the table (O(M) amortized), remapping only a
/// small fraction of slots in expectation.
///
/// Fault surface: the lookup table (slot → server index) plus the server
/// list — by far the largest baseline surface, which makes Maglev an
/// interesting extra point in the robustness study.
#pragma once

#include <cstdint>

#include "hashing/hash64.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class maglev_table final : public dynamic_table {
 public:
  /// \param table_size  size M of the lookup table; must be a prime
  ///                    larger than the expected server count (the NSDI
  ///                    paper uses 65537 for ~hundreds of backends).
  explicit maglev_table(const hash64& hash, std::size_t table_size = 65537,
                        std::uint64_t seed = 0);

  void join(server_id server, double weight = 1.0) override;
  void leave(server_id server) override;
  server_id lookup(request_id request) const override;
  table_stats stats() const override;
  bool contains(server_id server) const override;
  std::size_t server_count() const override { return servers_.size(); }
  std::vector<server_id> servers() const override { return servers_; }
  std::string_view name() const noexcept override { return "maglev"; }
  std::unique_ptr<dynamic_table> clone() const override;

  /// Shared immutable snapshot: the state is plain value members
  /// and const lookups are pure, so one shared deep copy is already
  /// a safe concurrently-readable snapshot (see dynamic_table).
  std::shared_ptr<const dynamic_table> snapshot() const override {
    return std::make_shared<const maglev_table>(*this);
  }

  std::vector<memory_region> fault_regions() override;

  std::size_t table_size() const noexcept { return table_size_; }

 private:
  void rebuild();

  const hash64* hash_;
  std::uint64_t seed_;
  std::size_t table_size_;
  std::vector<server_id> servers_;
  std::vector<std::uint32_t> lookup_;  // slot -> index into servers_
};

/// True when `n` is prime (trial division; table sizes are small).
bool is_prime(std::size_t n) noexcept;

}  // namespace hdhash
