#include "table/consistent.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace hdhash {

consistent_table::consistent_table(const hash64& hash,
                                   std::size_t virtual_nodes,
                                   std::uint64_t seed, ring_lookup_mode mode)
    : hash_(&hash), seed_(seed), virtual_nodes_(virtual_nodes), mode_(mode) {
  HDHASH_REQUIRE(virtual_nodes >= 1, "need at least one ring point per server");
}

std::uint64_t consistent_table::point_position(server_id server,
                                               std::size_t replica) const {
  return hash_->hash_pair(server, static_cast<std::uint64_t>(replica), seed_);
}

void consistent_table::join(server_id server) {
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  for (std::size_t replica = 0; replica < virtual_nodes_; ++replica) {
    const ring_point point{point_position(server, replica), server};
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point, [](const ring_point& a,
                                              const ring_point& b) {
          return a.position < b.position ||
                 (a.position == b.position && a.server < b.server);
        });
    ring_.insert(it, point);
  }
  ++server_count_;
}

void consistent_table::leave(server_id server) {
  HDHASH_REQUIRE(contains(server), "server not in the pool");
  std::erase_if(ring_, [server](const ring_point& p) {
    return p.server == server;
  });
  --server_count_;
}

server_id consistent_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!ring_.empty(), "lookup on an empty pool");
  const std::uint64_t position = hash_->hash_u64(request, seed_);
  // First ring point clockwise from the request, wrapping at the top.
  // On an intact ring both modes return the same point; see
  // ring_lookup_mode for how they diverge under memory corruption.
  if (mode_ == ring_lookup_mode::rank) {
    std::size_t rank = 0;
    for (const ring_point& p : ring_) {
      rank += p.position <= position ? 1 : 0;
    }
    return ring_[rank % ring_.size()].server;
  }
  // Note: after fault injection the ring may no longer be sorted; the
  // bisection below still terminates and returns a deterministic (but
  // possibly wrong) point — exactly the failure mode under study.
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), position,
      [](std::uint64_t pos, const ring_point& p) { return pos < p.position; });
  return it == ring_.end() ? ring_.front().server : it->server;
}

bool consistent_table::contains(server_id server) const {
  return std::any_of(ring_.begin(), ring_.end(), [server](const ring_point& p) {
    return p.server == server;
  });
}

std::vector<server_id> consistent_table::servers() const {
  std::vector<server_id> result;
  result.reserve(server_count_);
  for (const ring_point& p : ring_) {
    if (std::find(result.begin(), result.end(), p.server) == result.end()) {
      result.push_back(p.server);
    }
  }
  return result;
}

std::unique_ptr<dynamic_table> consistent_table::clone() const {
  return std::make_unique<consistent_table>(*this);
}

std::vector<memory_region> consistent_table::fault_regions() {
  if (ring_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(ring_.data(), ring_.size())), "ring"}};
}

}  // namespace hdhash
