#include "table/consistent.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace hdhash {

consistent_table::consistent_table(const hash64& hash,
                                   std::size_t virtual_nodes,
                                   std::uint64_t seed, ring_lookup_mode mode)
    : hash_(&hash), seed_(seed), virtual_nodes_(virtual_nodes), mode_(mode) {
  HDHASH_REQUIRE(virtual_nodes >= 1, "need at least one ring point per server");
}

std::uint64_t consistent_table::point_position(server_id server,
                                               std::size_t replica) const {
  return hash_->hash_pair(server, static_cast<std::uint64_t>(replica), seed_);
}

std::size_t consistent_table::member_index(server_id server) const noexcept {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].server == server) {
      return i;
    }
  }
  return members_.size();
}

std::size_t consistent_table::replica_count(double weight) const noexcept {
  const auto points = static_cast<std::size_t>(
      std::llround(weight * static_cast<double>(virtual_nodes_)));
  return std::max<std::size_t>(1, points);
}

void consistent_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight > 0.0, "weight must be positive");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  const std::size_t replicas = replica_count(weight);
  // Unlike hd_table, the ring has no structural capacity, so bound the
  // weight-driven replication explicitly: a runaway weight would
  // otherwise translate into millions of sorted-vector inserts.
  constexpr std::size_t kMaxRingPointsPerMember = std::size_t{1} << 20;
  HDHASH_REQUIRE(replicas <= kMaxRingPointsPerMember,
                 "weight * virtual_nodes exceeds the per-member ring-point "
                 "bound (2^20)");
  for (std::size_t replica = 0; replica < replicas; ++replica) {
    const ring_point point{point_position(server, replica), server};
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point, [](const ring_point& a,
                                              const ring_point& b) {
          return a.position < b.position ||
                 (a.position == b.position && a.server < b.server);
        });
    ring_.insert(it, point);
  }
  // Report the weight the ring actually realizes — replicas at a
  // resolution of 1/virtual_nodes — not the raw request (same contract
  // as hd_table: weights that replicate identically must report
  // identically).
  members_.push_back(member{
      server,
      static_cast<double>(replicas) / static_cast<double>(virtual_nodes_)});
}

void consistent_table::leave(server_id server) {
  const std::size_t index = member_index(server);
  HDHASH_REQUIRE(index != members_.size(), "server not in the pool");
  std::erase_if(ring_, [server](const ring_point& p) {
    return p.server == server;
  });
  members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(index));
}

double consistent_table::weight(server_id server) const {
  const std::size_t index = member_index(server);
  HDHASH_REQUIRE(index != members_.size(), "server not in the pool");
  return members_[index].weight;
}

table_stats consistent_table::stats() const {
  table_stats s;
  s.memory_bytes =
      ring_.size() * sizeof(ring_point) + members_.size() * sizeof(member);
  // Bisection is O(log ring); rank resolution scans the whole ring.
  s.expected_lookup_cost =
      ring_.empty() ? 0.0
      : mode_ == ring_lookup_mode::rank
          ? static_cast<double>(ring_.size())
          : std::log2(static_cast<double>(ring_.size()) + 1.0);
  return s;
}

server_id consistent_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!ring_.empty(), "lookup on an empty pool");
  const std::uint64_t position = hash_->hash_u64(request, seed_);
  // First ring point clockwise from the request, wrapping at the top.
  // On an intact ring both modes return the same point; see
  // ring_lookup_mode for how they diverge under memory corruption.
  if (mode_ == ring_lookup_mode::rank) {
    std::size_t rank = 0;
    for (const ring_point& p : ring_) {
      rank += p.position <= position ? 1 : 0;
    }
    return ring_[rank % ring_.size()].server;
  }
  // Note: after fault injection the ring may no longer be sorted; the
  // bisection below still terminates and returns a deterministic (but
  // possibly wrong) point — exactly the failure mode under study.
  const auto it = std::upper_bound(
      ring_.begin(), ring_.end(), position,
      [](std::uint64_t pos, const ring_point& p) { return pos < p.position; });
  return it == ring_.end() ? ring_.front().server : it->server;
}

bool consistent_table::contains(server_id server) const {
  return member_index(server) != members_.size();
}

std::vector<server_id> consistent_table::servers() const {
  std::vector<server_id> result;
  result.reserve(members_.size());
  for (const member& m : members_) {
    result.push_back(m.server);
  }
  return result;
}

std::unique_ptr<dynamic_table> consistent_table::clone() const {
  return std::make_unique<consistent_table>(*this);
}

std::vector<memory_region> consistent_table::fault_regions() {
  if (ring_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(ring_.data(), ring_.size())), "ring"}};
}

}  // namespace hdhash
