#include "table/maglev.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace hdhash {

bool is_prime(std::size_t n) noexcept {
  if (n < 2) {
    return false;
  }
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      return false;
    }
  }
  return true;
}

maglev_table::maglev_table(const hash64& hash, std::size_t table_size,
                           std::uint64_t seed)
    : hash_(&hash), seed_(seed), table_size_(table_size) {
  HDHASH_REQUIRE(is_prime(table_size),
                 "maglev table size must be prime for full permutations");
}

void maglev_table::rebuild() {
  lookup_.assign(servers_.empty() ? 0 : table_size_, 0);
  if (servers_.empty()) {
    return;
  }
  const std::size_t n = servers_.size();
  const std::size_t m = table_size_;

  // Per-server permutation parameters (offset, skip) as in the NSDI paper.
  std::vector<std::size_t> offset(n);
  std::vector<std::size_t> skip(n);
  std::vector<std::size_t> next(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offset[i] = static_cast<std::size_t>(
        hash_->hash_pair(servers_[i], 0xA11CE, seed_) % m);
    skip[i] = static_cast<std::size_t>(
        hash_->hash_pair(servers_[i], 0xB0B, seed_) % (m - 1)) + 1;
  }

  std::vector<bool> taken(m, false);
  std::size_t filled = 0;
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      // Pop this server's next preferred slot that is still free.
      std::size_t slot;
      do {
        slot = (offset[i] + next[i] * skip[i]) % m;
        ++next[i];
      } while (taken[slot]);
      taken[slot] = true;
      lookup_[slot] = static_cast<std::uint32_t>(i);
      ++filled;
    }
  }
}

void maglev_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight == 1.0, "maglev hashing is unweighted (weight == 1)");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  HDHASH_REQUIRE(servers_.size() < table_size_,
                 "maglev pool cannot exceed its table size");
  servers_.push_back(server);
  rebuild();
}

void maglev_table::leave(server_id server) {
  const auto it = std::find(servers_.begin(), servers_.end(), server);
  HDHASH_REQUIRE(it != servers_.end(), "server not in the pool");
  servers_.erase(it);
  rebuild();
}

server_id maglev_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!servers_.empty(), "lookup on an empty pool");
  const std::uint64_t h = hash_->hash_u64(request, seed_);
  const std::uint32_t index = lookup_[static_cast<std::size_t>(h % table_size_)];
  // A corrupted lookup entry may point past the server list; map it to a
  // deterministic invalid identifier so the mismatch is observable rather
  // than undefined behaviour.
  if (index >= servers_.size()) {
    return static_cast<server_id>(~std::uint64_t{0} - index);
  }
  return servers_[index];
}

table_stats maglev_table::stats() const {
  table_stats s;
  s.memory_bytes = lookup_.size() * sizeof(std::uint32_t) +
                   servers_.size() * sizeof(server_id);
  s.expected_lookup_cost = 1.0;  // one hash, one table index
  return s;
}

bool maglev_table::contains(server_id server) const {
  return std::find(servers_.begin(), servers_.end(), server) !=
         servers_.end();
}

std::unique_ptr<dynamic_table> maglev_table::clone() const {
  return std::make_unique<maglev_table>(*this);
}

std::vector<memory_region> maglev_table::fault_regions() {
  std::vector<memory_region> regions;
  if (!lookup_.empty()) {
    regions.push_back(memory_region{
        std::as_writable_bytes(std::span(lookup_.data(), lookup_.size())),
        "lookup-table"});
  }
  if (!servers_.empty()) {
    regions.push_back(memory_region{
        std::as_writable_bytes(std::span(servers_.data(), servers_.size())),
        "server-ids"});
  }
  return regions;
}

}  // namespace hdhash
