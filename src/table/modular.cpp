#include "table/modular.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace hdhash {

modular_table::modular_table(const hash64& hash, std::uint64_t seed)
    : hash_(&hash), seed_(seed) {}

void modular_table::join(server_id server, double weight) {
  HDHASH_REQUIRE(weight == 1.0, "modular hashing is unweighted (weight == 1)");
  HDHASH_REQUIRE(!contains(server), "server already in the pool");
  servers_.push_back(server);
}

void modular_table::leave(server_id server) {
  const auto it = std::find(servers_.begin(), servers_.end(), server);
  HDHASH_REQUIRE(it != servers_.end(), "server not in the pool");
  servers_.erase(it);
}

server_id modular_table::lookup(request_id request) const {
  HDHASH_REQUIRE(!servers_.empty(), "lookup on an empty pool");
  const std::uint64_t h = hash_->hash_u64(request, seed_);
  return servers_[static_cast<std::size_t>(h % servers_.size())];
}

table_stats modular_table::stats() const {
  table_stats s;
  s.memory_bytes = servers_.size() * sizeof(server_id);
  s.expected_lookup_cost = 1.0;  // one hash, one index
  return s;
}

bool modular_table::contains(server_id server) const {
  return std::find(servers_.begin(), servers_.end(), server) !=
         servers_.end();
}

std::unique_ptr<dynamic_table> modular_table::clone() const {
  return std::make_unique<modular_table>(*this);
}

std::vector<memory_region> modular_table::fault_regions() {
  if (servers_.empty()) {
    return {};
  }
  return {memory_region{
      std::as_writable_bytes(std::span(servers_.data(), servers_.size())),
      "server-slots"}};
}

}  // namespace hdhash
