#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace hdhash {

double mean(std::span<const double> values) {
  HDHASH_REQUIRE(!values.empty(), "mean of an empty sample is undefined");
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double stddev_population(std::span<const double> values) {
  HDHASH_REQUIRE(!values.empty(), "stddev of an empty sample is undefined");
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::span<const double> values, double pct) {
  HDHASH_REQUIRE(!values.empty(), "percentile of an empty sample is undefined");
  HDHASH_REQUIRE(pct >= 0.0 && pct <= 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lower] + frac * (sorted[lower + 1] - sorted[lower]);
}

summary_stats summarize(std::span<const double> values) {
  summary_stats s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev_population(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = percentile(values, 50.0);
  s.p95 = percentile(values, 95.0);
  s.p99 = percentile(values, 99.0);
  return s;
}

}  // namespace hdhash
