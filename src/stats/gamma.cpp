#include "stats/gamma.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace hdhash {
namespace {

// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// P(a, x) by its power series; converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  if (x == 0.0) {
    return 0.0;
  }
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Q(a, x) by Lentz's continued fraction; converges quickly for x > a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  HDHASH_REQUIRE(x > 0.0, "log_gamma requires a positive argument");
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    acc += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

double regularized_gamma_p(double a, double x) {
  HDHASH_REQUIRE(a > 0.0, "shape parameter must be positive");
  HDHASH_REQUIRE(x >= 0.0, "argument must be non-negative");
  if (x < a + 1.0) {
    return gamma_p_series(a, x);
  }
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  HDHASH_REQUIRE(a > 0.0, "shape parameter must be positive");
  HDHASH_REQUIRE(x >= 0.0, "argument must be non-negative");
  if (x < a + 1.0) {
    return 1.0 - gamma_p_series(a, x);
  }
  return gamma_q_continued_fraction(a, x);
}

}  // namespace hdhash
