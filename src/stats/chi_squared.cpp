#include "stats/chi_squared.hpp"

#include "stats/gamma.hpp"
#include "util/require.hpp"

namespace hdhash {

double chi_squared_statistic_uniform(std::span<const std::uint64_t> counts) {
  HDHASH_REQUIRE(!counts.empty(), "need at least one bin");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    total += c;
  }
  HDHASH_REQUIRE(total > 0, "need at least one observation");
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double statistic = 0.0;
  for (const std::uint64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    statistic += diff * diff / expected;
  }
  return statistic;
}

double chi_squared_survival(double x, double k) {
  HDHASH_REQUIRE(k > 0.0, "degrees of freedom must be positive");
  HDHASH_REQUIRE(x >= 0.0, "statistic must be non-negative");
  return regularized_gamma_q(k / 2.0, x / 2.0);
}

chi_squared_result chi_squared_uniform(std::span<const std::uint64_t> counts) {
  chi_squared_result result;
  result.statistic = chi_squared_statistic_uniform(counts);
  result.degrees_of_freedom = static_cast<double>(counts.size()) - 1.0;
  result.p_value = result.degrees_of_freedom > 0.0
                       ? chi_squared_survival(result.statistic,
                                              result.degrees_of_freedom)
                       : 1.0;
  return result;
}

}  // namespace hdhash
