#include "stats/histogram.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace hdhash {

histogram::histogram(std::size_t bins) : counts_(bins, 0) {
  HDHASH_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void histogram::add(std::size_t index, std::uint64_t weight) {
  HDHASH_REQUIRE(index < counts_.size(), "bin index out of range");
  counts_[index] += weight;
  total_ += weight;
}

std::uint64_t histogram::count(std::size_t index) const {
  HDHASH_REQUIRE(index < counts_.size(), "bin index out of range");
  return counts_[index];
}

std::uint64_t histogram::max_count() const noexcept {
  return counts_.empty() ? 0
                         : *std::max_element(counts_.begin(), counts_.end());
}

double histogram::peak_to_mean() const {
  HDHASH_REQUIRE(total_ > 0, "peak_to_mean of an empty histogram");
  const double mean_count =
      static_cast<double>(total_) / static_cast<double>(counts_.size());
  return static_cast<double>(max_count()) / mean_count;
}

void histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace hdhash
