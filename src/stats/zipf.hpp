/// \file zipf.hpp
/// \brief Zipf-distributed sampling for skewed request workloads.
///
/// Real request streams (web caching, P2P lookups) are heavy-tailed; the
/// emulator's generator offers a Zipf mode alongside the uniform mode used
/// by the paper's experiments.  Implemented by explicit inverse-CDF lookup
/// (binary search over the precomputed CDF), exact for the bounded key
/// universes used here.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hdhash {

/// Samples ranks in [0, n) with P(rank = k) ∝ 1 / (k+1)^s.
class zipf_sampler {
 public:
  /// \param n    universe size; must be positive.
  /// \param s    skew exponent; 0 degenerates to uniform, 1 is classic Zipf.
  zipf_sampler(std::size_t n, double s);

  /// Draws one rank using the caller's generator.
  std::size_t sample(xoshiro256& rng) const;

  /// Probability mass of a given rank.  \pre rank < size().
  double pmf(std::size_t rank) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0.
  double skew_;
};

}  // namespace hdhash
