#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace hdhash {

zipf_sampler::zipf_sampler(std::size_t n, double s) : skew_(s) {
  HDHASH_REQUIRE(n > 0, "zipf universe must be non-empty");
  HDHASH_REQUIRE(s >= 0.0, "zipf skew must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) {
    c /= acc;
  }
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

std::size_t zipf_sampler::sample(xoshiro256& rng) const {
  const double u = uniform_unit(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double zipf_sampler::pmf(std::size_t rank) const {
  HDHASH_REQUIRE(rank < cdf_.size(), "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace hdhash
