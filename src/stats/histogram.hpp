/// \file histogram.hpp
/// \brief Fixed-bin counting histogram for per-server load accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hdhash {

/// Counts occurrences over a fixed number of integer-identified bins.
/// Used to accumulate the requests-per-server distribution that feeds the
/// χ² uniformity test.
class histogram {
 public:
  /// \param bins number of bins; must be positive.
  explicit histogram(std::size_t bins);

  /// Increments bin `index`.  \pre index < bins().
  void add(std::size_t index, std::uint64_t weight = 1);

  /// Count in one bin.  \pre index < bins().
  std::uint64_t count(std::size_t index) const;

  /// All counts, indexed by bin.
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  std::size_t bins() const noexcept { return counts_.size(); }

  /// Sum of all bin counts.
  std::uint64_t total() const noexcept { return total_; }

  /// Largest bin count (peak load).
  std::uint64_t max_count() const noexcept;

  /// max_count / (total / bins): 1.0 is perfectly balanced.  \pre total()>0.
  double peak_to_mean() const;

  /// Resets every bin to zero.
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hdhash
