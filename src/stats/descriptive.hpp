/// \file descriptive.hpp
/// \brief Descriptive statistics used when reporting benchmark series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hdhash {

/// Summary of a sample: mean, population standard deviation, extrema and
/// selected percentiles (linear interpolation between order statistics).
struct summary_stats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes summary statistics of `values`.  \pre values is non-empty.
summary_stats summarize(std::span<const double> values);

/// Percentile in [0, 100] by linear interpolation; `values` need not be
/// sorted (an internal copy is sorted).  \pre values non-empty.
double percentile(std::span<const double> values, double pct);

/// Mean of the sample.  \pre values non-empty.
double mean(std::span<const double> values);

/// Population standard deviation.  \pre values non-empty.
double stddev_population(std::span<const double> values);

}  // namespace hdhash
