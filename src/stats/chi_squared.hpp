/// \file chi_squared.hpp
/// \brief Pearson's χ² goodness-of-fit test against the uniform
/// distribution — the metric of the paper's Figure 6.
///
/// The paper measures the discrepancy between the observed requests-per-
/// server distribution and the uniform distribution as
///   χ² = Σ_i (R(s_i) − E)² / E,   E = |R| / |S|.
#pragma once

#include <cstdint>
#include <span>

namespace hdhash {

/// Result of a χ² goodness-of-fit evaluation.
struct chi_squared_result {
  double statistic = 0.0;        ///< Pearson's χ² statistic.
  double degrees_of_freedom = 0; ///< bins − 1.
  double p_value = 1.0;          ///< P(X ≥ statistic) under H0 (uniformity).
};

/// χ² of observed counts against the uniform expectation E = total/bins.
/// \pre counts is non-empty and the total count is positive.
chi_squared_result chi_squared_uniform(std::span<const std::uint64_t> counts);

/// Pearson statistic only (the quantity plotted in Fig. 6).
double chi_squared_statistic_uniform(std::span<const std::uint64_t> counts);

/// Upper-tail probability of a χ² variate: P(X ≥ x) with k degrees of
/// freedom.  \pre k > 0, x >= 0.
double chi_squared_survival(double x, double k);

}  // namespace hdhash
