/// \file gamma.hpp
/// \brief Special functions needed for χ² p-values.
///
/// Self-contained implementations (series + continued-fraction, in the
/// style of Numerical Recipes) of the log-gamma function and the
/// regularized incomplete gamma functions.  Accurate to ~1e-12 over the
/// parameter ranges exercised by the experiments (degrees of freedom up to
/// a few thousand).
#pragma once

namespace hdhash {

/// Natural log of the gamma function (Lanczos approximation).
/// \pre x > 0.
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a).
/// \pre a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
/// \pre a > 0, x >= 0.
double regularized_gamma_q(double a, double x);

}  // namespace hdhash
