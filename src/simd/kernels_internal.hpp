/// \file kernels_internal.hpp
/// \brief Library-internal registry of the kernel singletons.
///
/// The HDHASH_HAVE_KERNEL_* macros are PRIVATE compile definitions set
/// by CMakeLists.txt on the hdhash target whenever the matching
/// translation unit's ISA flags are accepted by the compiler, so this
/// header is consistent across all library TUs but is not part of the
/// public include surface.
#pragma once

#include "simd/hamming_kernel.hpp"

namespace hdhash::simd::detail {

extern const hamming_kernel scalar_kernel;
#ifdef HDHASH_HAVE_KERNEL_AVX2
extern const hamming_kernel avx2_kernel;
#endif
#ifdef HDHASH_HAVE_KERNEL_AVX512
extern const hamming_kernel avx512_kernel;
#endif

}  // namespace hdhash::simd::detail
