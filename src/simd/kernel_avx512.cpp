/// \file kernel_avx512.cpp
/// \brief AVX-512 VPOPCNTDQ kernel.
///
/// Compiled with -mavx512f -mavx512vpopcntdq (see CMakeLists.txt); none
/// of this TU's code may run before supported() passes.  VPOPCNTDQ
/// counts eight 64-bit words per instruction, so the whole XOR+popcount
/// reduction is three instructions per 512-bit block.  The tail that
/// does not fill a block is read with a masked load (`maskz_loadu`), so
/// the kernel never touches memory past `words` — the masked-tail
/// discipline the conformance suite checks under ASan with
/// partial-word dimensions.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.hpp"

namespace hdhash::simd::detail {
namespace {

bool supported_avx512() noexcept {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

inline __m512i xor_block(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t w) noexcept {
  return _mm512_xor_si512(_mm512_loadu_si512(a + w),
                          _mm512_loadu_si512(b + w));
}

inline __m512i xor_block_masked(__mmask8 m, const std::uint64_t* a,
                                const std::uint64_t* b,
                                std::size_t w) noexcept {
  return _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + w),
                          _mm512_maskz_loadu_epi64(m, b + w));
}

std::uint64_t distance_avx512(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(xor_block(a, b, w)));
  }
  if (w < words) {
    const auto m = static_cast<__mmask8>((1u << (words - w)) - 1u);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(xor_block_masked(m, a, b, w)));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

/// Full kMaxTile tile with one accumulator register per probe: each
/// 512-bit row block is loaded once and scored against all eight
/// probes — the adder-tree sweep shape, with the row load amortised in
/// registers rather than through L1.
void tile_full(const std::uint64_t* row, const std::uint64_t* const* probes,
               std::size_t words, std::uint64_t* dist) noexcept {
  static_assert(kMaxTile == 8, "accumulator set sized for 8-probe tiles");
  __m512i a0 = _mm512_setzero_si512(), a1 = _mm512_setzero_si512();
  __m512i a2 = _mm512_setzero_si512(), a3 = _mm512_setzero_si512();
  __m512i a4 = _mm512_setzero_si512(), a5 = _mm512_setzero_si512();
  __m512i a6 = _mm512_setzero_si512(), a7 = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i rv = _mm512_loadu_si512(row + w);
    const auto score = [&](const std::uint64_t* p) noexcept {
      return _mm512_popcnt_epi64(
          _mm512_xor_si512(rv, _mm512_loadu_si512(p + w)));
    };
    a0 = _mm512_add_epi64(a0, score(probes[0]));
    a1 = _mm512_add_epi64(a1, score(probes[1]));
    a2 = _mm512_add_epi64(a2, score(probes[2]));
    a3 = _mm512_add_epi64(a3, score(probes[3]));
    a4 = _mm512_add_epi64(a4, score(probes[4]));
    a5 = _mm512_add_epi64(a5, score(probes[5]));
    a6 = _mm512_add_epi64(a6, score(probes[6]));
    a7 = _mm512_add_epi64(a7, score(probes[7]));
  }
  if (w < words) {
    const auto m = static_cast<__mmask8>((1u << (words - w)) - 1u);
    const __m512i rv = _mm512_maskz_loadu_epi64(m, row + w);
    const auto score = [&](const std::uint64_t* p) noexcept {
      return _mm512_popcnt_epi64(
          _mm512_xor_si512(rv, _mm512_maskz_loadu_epi64(m, p + w)));
    };
    a0 = _mm512_add_epi64(a0, score(probes[0]));
    a1 = _mm512_add_epi64(a1, score(probes[1]));
    a2 = _mm512_add_epi64(a2, score(probes[2]));
    a3 = _mm512_add_epi64(a3, score(probes[3]));
    a4 = _mm512_add_epi64(a4, score(probes[4]));
    a5 = _mm512_add_epi64(a5, score(probes[5]));
    a6 = _mm512_add_epi64(a6, score(probes[6]));
    a7 = _mm512_add_epi64(a7, score(probes[7]));
  }
  dist[0] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a0));
  dist[1] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a1));
  dist[2] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a2));
  dist[3] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a3));
  dist[4] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a4));
  dist[5] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a5));
  dist[6] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a6));
  dist[7] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a7));
}

void tile_distance_avx512(const std::uint64_t* row,
                          const std::uint64_t* const* probes, std::size_t tile,
                          std::size_t words, std::uint64_t* dist) noexcept {
  if (tile == kMaxTile) {
    tile_full(row, probes, words, dist);
    return;
  }
  for (std::size_t t = 0; t < tile; ++t) {
    dist[t] = distance_avx512(row, probes[t], words);
  }
}

}  // namespace

const hamming_kernel avx512_kernel = {
    "avx512", 3, supported_avx512, distance_avx512, tile_distance_avx512};

}  // namespace hdhash::simd::detail
