/// \file hamming_kernel.hpp
/// \brief SIMD Hamming-distance kernels with runtime dispatch.
///
/// Every hot path in hdhash reduces to the same primitive: XOR two
/// packed 64-bit word arrays and accumulate the popcount — the software
/// form of the wide adder trees in HDC accelerators (Schmuck et al.
/// 2019).  This header is the seam between that primitive and its
/// ISA-specific implementations:
///
///   * `scalar`  — portable `std::popcount` loop, always compiled in.
///   * `avx2`    — Harley–Seal carry-save popcount over 256-bit lanes
///                 (Muła, Kurz & Lemire 2018), compiled only when the
///                 compiler accepts `-mavx2`.
///   * `avx512`  — VPOPCNTDQ popcount over 512-bit lanes with masked
///                 tail loads, compiled only when the compiler accepts
///                 `-mavx512vpopcntdq`.
///
/// Each kernel lives in its own translation unit compiled with exactly
/// the ISA flags it needs (see CMakeLists.txt), so the rest of the
/// library stays baseline-portable; a kernel's code is only ever
/// executed after its `supported()` CPUID probe passes.  Dispatch picks
/// the best supported kernel once, on first use; the choice can be
/// overridden for testing with the `HDHASH_FORCE_KERNEL` environment
/// variable (or the CMake cache variable of the same name, which sets
/// the build-time default), or in-process via set_active_kernel().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hdhash::simd {

/// Maximum number of probes a tile_distance call scores per pass.  The
/// probe-tiled sweeps in hd_table size their tiles to this.
inline constexpr std::size_t kMaxTile = 8;

/// One Hamming-distance kernel tier.  Plain constant-initialised
/// function-pointer table: no dynamic initialisation, so kernels are
/// safe to consult from any static-init context.
struct hamming_kernel {
  /// Stable identifier ("scalar", "avx2", "avx512") — recorded in bench
  /// JSON and accepted by HDHASH_FORCE_KERNEL.
  std::string_view name;

  /// Auto-dispatch rank; the highest-priority supported kernel wins.
  int priority;

  /// CPUID probe: true when the running CPU can execute this kernel.
  /// Must itself be baseline-portable code.
  bool (*supported)() noexcept;

  /// sum_w popcount(a[w] ^ b[w]) over `words` 64-bit words.  Reads
  /// exactly `words` words from each operand — never past the end (the
  /// AVX-512 kernel uses masked tail loads; the others fall back to
  /// scalar tail words).
  std::uint64_t (*distance)(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) noexcept;

  /// Probe-tile accumulate: dist[t] = sum_w popcount(row[w] ^
  /// probes[t][w]) for t < tile.  \pre tile <= kMaxTile.  The row words
  /// are reused across all probes of the tile — the memory-locality
  /// shape of an accelerator answering several queries per row pass.
  void (*tile_distance)(const std::uint64_t* row,
                        const std::uint64_t* const* probes, std::size_t tile,
                        std::size_t words, std::uint64_t* dist) noexcept;
};

/// All kernels compiled into this build, best tier first.  Entries may
/// still be unsupported on the running CPU — check supported().
std::span<const hamming_kernel* const> compiled_kernels() noexcept;

/// Compiled-in kernel by name, or nullptr.
const hamming_kernel* find_kernel(std::string_view name) noexcept;

/// The dispatched kernel.  Resolved once on first call: an
/// HDHASH_FORCE_KERNEL override (environment, then CMake default) is
/// honoured strictly — naming a kernel that is not compiled in or not
/// runnable on this CPU throws hdhash::precondition_error — otherwise
/// the highest-priority supported kernel is selected.
const hamming_kernel& active_kernel();

/// In-process override (used by the per-kernel bench panel and the
/// conformance suite).  Returns false if `name` is unknown or the CPU
/// cannot run it; the active kernel is unchanged in that case.
bool set_active_kernel(std::string_view name) noexcept;

/// Discards any resolved/forced choice so the next active_kernel() call
/// re-runs dispatch (environment override included).
void reset_active_kernel() noexcept;

}  // namespace hdhash::simd
