/// \file dispatch.cpp
/// \brief Runtime kernel selection: CPUID probe, force override, registry.
#include <atomic>
#include <cstdlib>
#include <iterator>
#include <string>

#include "simd/kernels_internal.hpp"
#include "util/require.hpp"

namespace hdhash::simd {

namespace {

/// Compiled-in tiers, best first.  Which entries exist is decided at
/// configure time (per-TU ISA flags + HDHASH_HAVE_KERNEL_* defines).
const hamming_kernel* const kCompiled[] = {
#ifdef HDHASH_HAVE_KERNEL_AVX512
    &detail::avx512_kernel,
#endif
#ifdef HDHASH_HAVE_KERNEL_AVX2
    &detail::avx2_kernel,
#endif
    &detail::scalar_kernel,
};

/// The resolved choice.  nullptr = not yet dispatched.  Stores are rare
/// (first use, explicit set/reset); loads are one relaxed read on the
/// batch path.  Re-resolving concurrently is benign: resolve() is
/// deterministic for a fixed environment.
std::atomic<const hamming_kernel*> g_active{nullptr};

const hamming_kernel* resolve() {
  const char* forced = std::getenv("HDHASH_FORCE_KERNEL");
#ifdef HDHASH_FORCE_KERNEL_DEFAULT
  // Build-time default (CMake -DHDHASH_FORCE_KERNEL=...); the
  // environment variable still wins so one binary can test every tier.
  if (forced == nullptr || *forced == '\0') {
    forced = HDHASH_FORCE_KERNEL_DEFAULT;
  }
#endif
  if (forced != nullptr && *forced != '\0') {
    const hamming_kernel* k = find_kernel(forced);
    HDHASH_REQUIRE(k != nullptr,
                   std::string("HDHASH_FORCE_KERNEL names '") + forced +
                       "', which is not compiled into this build");
    HDHASH_REQUIRE(k->supported(),
                   std::string("HDHASH_FORCE_KERNEL names '") + forced +
                       "', which this CPU cannot execute");
    return k;
  }
  const hamming_kernel* best = &detail::scalar_kernel;  // always supported
  for (const hamming_kernel* k : kCompiled) {
    if (k->supported() && k->priority > best->priority) {
      best = k;
    }
  }
  return best;
}

}  // namespace

std::span<const hamming_kernel* const> compiled_kernels() noexcept {
  return {kCompiled, std::size(kCompiled)};
}

const hamming_kernel* find_kernel(std::string_view name) noexcept {
  for (const hamming_kernel* k : kCompiled) {
    if (k->name == name) {
      return k;
    }
  }
  return nullptr;
}

const hamming_kernel& active_kernel() {
  const hamming_kernel* k = g_active.load(std::memory_order_relaxed);
  if (k == nullptr) {
    k = resolve();
    g_active.store(k, std::memory_order_relaxed);
  }
  return *k;
}

bool set_active_kernel(std::string_view name) noexcept {
  const hamming_kernel* k = find_kernel(name);
  if (k == nullptr || !k->supported()) {
    return false;
  }
  g_active.store(k, std::memory_order_relaxed);
  return true;
}

void reset_active_kernel() noexcept {
  g_active.store(nullptr, std::memory_order_relaxed);
}

}  // namespace hdhash::simd
