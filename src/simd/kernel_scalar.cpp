/// \file kernel_scalar.cpp
/// \brief Portable scalar Hamming kernel — the reference tier.
///
/// Compiled with the library's baseline flags only (plus -mpopcnt where
/// available, so std::popcount lowers to the POPCNT instruction instead
/// of a libgcc call).  Every other kernel must be bit-identical to this
/// one; the conformance suite enforces it.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.hpp"

namespace hdhash::simd::detail {
namespace {

bool supported_scalar() noexcept { return true; }

std::uint64_t distance_scalar(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

/// Fixed-trip-count tile: the compile-time probe count lets the inner
/// loop unroll fully, which is where the scalar tier's word-reuse win
/// over a probe-at-a-time loop comes from.
template <std::size_t Tile>
void tile_fixed(const std::uint64_t* row, const std::uint64_t* const* probes,
                std::size_t words, std::uint64_t* dist) noexcept {
  std::uint64_t acc[Tile] = {};
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t rw = row[w];
    for (std::size_t t = 0; t < Tile; ++t) {
      acc[t] += static_cast<std::uint64_t>(std::popcount(rw ^ probes[t][w]));
    }
  }
  for (std::size_t t = 0; t < Tile; ++t) {
    dist[t] = acc[t];
  }
}

void tile_distance_scalar(const std::uint64_t* row,
                          const std::uint64_t* const* probes, std::size_t tile,
                          std::size_t words, std::uint64_t* dist) noexcept {
  if (tile == kMaxTile) {
    tile_fixed<kMaxTile>(row, probes, words, dist);
    return;
  }
  for (std::size_t t = 0; t < tile; ++t) {
    dist[t] = 0;
  }
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t rw = row[w];
    for (std::size_t t = 0; t < tile; ++t) {
      dist[t] += static_cast<std::uint64_t>(std::popcount(rw ^ probes[t][w]));
    }
  }
}

}  // namespace

const hamming_kernel scalar_kernel = {
    "scalar", 0, supported_scalar, distance_scalar, tile_distance_scalar};

}  // namespace hdhash::simd::detail
