/// \file kernel_avx2.cpp
/// \brief AVX2 Harley–Seal popcount kernel.
///
/// Compiled with -mavx2 (see CMakeLists.txt); none of this TU's code may
/// run before supported() passes.  The popcount core is the Harley–Seal
/// carry-save-adder scheme of Muła, Kurz & Lemire, "Faster population
/// counts using AVX2 instructions" (2018): a CSA tree compresses 16
/// 256-bit XOR blocks per iteration so the byte-LUT popcount runs once
/// per 16 vectors instead of once per vector.  Tail words that do not
/// fill a 256-bit lane are handled with scalar popcount — the kernel
/// never loads past `words` (the classic SIMD popcount overread bug;
/// the conformance suite runs under ASan to keep it that way).
#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.hpp"

namespace hdhash::simd::detail {
namespace {

bool supported_avx2() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

/// Per-byte popcount (0..8 per byte) via nibble shuffle LUT.
inline __m256i bytecount256(__m256i v) noexcept {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

/// Full popcount, horizontally summed into the four 64-bit lanes by SAD
/// against zero.
inline __m256i popcount256(__m256i v) noexcept {
  return _mm256_sad_epu8(bytecount256(v), _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = full-add of three bit columns.
inline void csa256(__m256i& h, __m256i& l, __m256i a, __m256i b,
                   __m256i c) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

/// XOR of one 256-bit block of each operand (4 words at offset w).
inline __m256i xor_block(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t w) noexcept {
  return _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
}

inline std::uint64_t hsum64(__m256i v) noexcept {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

std::uint64_t distance_avx2(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) noexcept {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  std::size_t w = 0;
  // Harley–Seal main loop: 16 vectors (64 words, 4096 bits) per pass.
  for (; w + 64 <= words; w += 64) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    csa256(twos_a, ones, ones, xor_block(a, b, w + 0), xor_block(a, b, w + 4));
    csa256(twos_b, ones, ones, xor_block(a, b, w + 8), xor_block(a, b, w + 12));
    csa256(fours_a, twos, twos, twos_a, twos_b);
    csa256(twos_a, ones, ones, xor_block(a, b, w + 16),
           xor_block(a, b, w + 20));
    csa256(twos_b, ones, ones, xor_block(a, b, w + 24),
           xor_block(a, b, w + 28));
    csa256(fours_b, twos, twos, twos_a, twos_b);
    csa256(eights_a, fours, fours, fours_a, fours_b);
    csa256(twos_a, ones, ones, xor_block(a, b, w + 32),
           xor_block(a, b, w + 36));
    csa256(twos_b, ones, ones, xor_block(a, b, w + 40),
           xor_block(a, b, w + 44));
    csa256(fours_a, twos, twos, twos_a, twos_b);
    csa256(twos_a, ones, ones, xor_block(a, b, w + 48),
           xor_block(a, b, w + 52));
    csa256(twos_b, ones, ones, xor_block(a, b, w + 56),
           xor_block(a, b, w + 60));
    csa256(fours_b, twos, twos, twos_a, twos_b);
    csa256(eights_b, fours, fours, fours_a, fours_b);
    csa256(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, popcount256(sixteens));
  }
  // Fold the CSA levels in the vector domain (one horizontal sum at the
  // very end): at 4096-dim rows — a single Harley–Seal block — a
  // per-level extract epilogue would cost as much as the main loop.
  __m256i acc = _mm256_slli_epi64(total, 4);
  acc = _mm256_add_epi64(acc, _mm256_slli_epi64(popcount256(eights), 3));
  acc = _mm256_add_epi64(acc, _mm256_slli_epi64(popcount256(fours), 2));
  acc = _mm256_add_epi64(acc, _mm256_slli_epi64(popcount256(twos), 1));
  acc = _mm256_add_epi64(acc, popcount256(ones));
  // Whole 256-bit lanes the CSA tree did not cover.
  for (; w + 4 <= words; w += 4) {
    acc = _mm256_add_epi64(acc, popcount256(xor_block(a, b, w)));
  }
  std::uint64_t result = hsum64(acc);
  // Scalar tail: up to three words, never loading past the array.
  for (; w < words; ++w) {
    result += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return result;
}

/// Four probes per pass with a one-level carry-save state per probe:
/// each pass XORs two row blocks (8 words) against the probe, folds
/// them into the probe's persistent `ones` via a CSA, and popcounts
/// only the weight-2 carry — halving the byte-LUT popcount work (the
/// shuffle/SAD port is the AVX2 bottleneck) relative to a popcount per
/// block.  Four probes, not eight: 4 accumulators + 4 CSA states + two
/// row blocks + LUT constants just fit the 16 ymm registers.
void tile4(const std::uint64_t* row, const std::uint64_t* const* probes,
           std::size_t words, std::uint64_t* dist) noexcept {
  const std::uint64_t* const p0 = probes[0];
  const std::uint64_t* const p1 = probes[1];
  const std::uint64_t* const p2 = probes[2];
  const std::uint64_t* const p3 = probes[3];
  __m256i bytes0 = _mm256_setzero_si256(), bytes1 = _mm256_setzero_si256();
  __m256i bytes2 = _mm256_setzero_si256(), bytes3 = _mm256_setzero_si256();
  __m256i ones0 = _mm256_setzero_si256(), ones1 = _mm256_setzero_si256();
  __m256i ones2 = _mm256_setzero_si256(), ones3 = _mm256_setzero_si256();
  __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
  const auto flush = [&]() noexcept {
    const __m256i zero = _mm256_setzero_si256();
    acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(bytes0, zero));
    acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(bytes1, zero));
    acc2 = _mm256_add_epi64(acc2, _mm256_sad_epu8(bytes2, zero));
    acc3 = _mm256_add_epi64(acc3, _mm256_sad_epu8(bytes3, zero));
    bytes0 = bytes1 = bytes2 = bytes3 = zero;
  };
  std::size_t w = 0;
  std::size_t strips_since_flush = 0;
  // Main strip: 16 words (four blocks) per probe per pass — two CSA
  // folds per probe with the weight-2 carries byte-counted into an epi8
  // accumulator; the SAD reduction is deferred to flush().  Each strip
  // adds at most 16 to a byte counter, so 15 strips (240 < 255) are
  // safe between flushes.
  for (; w + 16 <= words; w += 16) {
    const __m256i rv0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    const __m256i rv1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w + 4));
    const __m256i rv2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w + 8));
    const __m256i rv3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w + 12));
    const auto fold2 = [&](const std::uint64_t* p, __m256i& ones,
                           __m256i& bytes) noexcept {
      __m256i twos_a, twos_b;
      csa256(twos_a, ones, ones,
             _mm256_xor_si256(rv0, _mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(p + w))),
             _mm256_xor_si256(
                 rv1, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(p + w + 4))));
      csa256(twos_b, ones, ones,
             _mm256_xor_si256(
                 rv2, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(p + w + 8))),
             _mm256_xor_si256(
                 rv3, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(p + w + 12))));
      bytes = _mm256_add_epi8(
          bytes, _mm256_add_epi8(bytecount256(twos_a), bytecount256(twos_b)));
    };
    fold2(p0, ones0, bytes0);
    fold2(p1, ones1, bytes1);
    fold2(p2, ones2, bytes2);
    fold2(p3, ones3, bytes3);
    if (++strips_since_flush == 15) {
      flush();
      strips_since_flush = 0;
    }
  }
  flush();
  // acc counts pairs (weight 2); ones holds the weight-1 residue.
  acc0 = _mm256_add_epi64(_mm256_slli_epi64(acc0, 1), popcount256(ones0));
  acc1 = _mm256_add_epi64(_mm256_slli_epi64(acc1, 1), popcount256(ones1));
  acc2 = _mm256_add_epi64(_mm256_slli_epi64(acc2, 1), popcount256(ones2));
  acc3 = _mm256_add_epi64(_mm256_slli_epi64(acc3, 1), popcount256(ones3));
  // Up to three whole 256-bit blocks past the 16-word strips.
  for (; w + 4 <= words; w += 4) {
    const __m256i rv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    const auto last = [&](const std::uint64_t* p) noexcept {
      return popcount256(_mm256_xor_si256(
          rv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w))));
    };
    acc0 = _mm256_add_epi64(acc0, last(p0));
    acc1 = _mm256_add_epi64(acc1, last(p1));
    acc2 = _mm256_add_epi64(acc2, last(p2));
    acc3 = _mm256_add_epi64(acc3, last(p3));
  }
  dist[0] = hsum64(acc0);
  dist[1] = hsum64(acc1);
  dist[2] = hsum64(acc2);
  dist[3] = hsum64(acc3);
  // Scalar tail words, never loading past the arrays.
  for (; w < words; ++w) {
    const std::uint64_t rw = row[w];
    dist[0] += static_cast<std::uint64_t>(std::popcount(rw ^ p0[w]));
    dist[1] += static_cast<std::uint64_t>(std::popcount(rw ^ p1[w]));
    dist[2] += static_cast<std::uint64_t>(std::popcount(rw ^ p2[w]));
    dist[3] += static_cast<std::uint64_t>(std::popcount(rw ^ p3[w]));
  }
}

void tile_distance_avx2(const std::uint64_t* row,
                        const std::uint64_t* const* probes, std::size_t tile,
                        std::size_t words, std::uint64_t* dist) noexcept {
  std::size_t t = 0;
  for (; t + 4 <= tile; t += 4) {
    tile4(row, probes + t, words, dist + t);
  }
  // Partial groups: the row stays resident in L1 across the tile, so
  // per-pair Harley–Seal passes still reuse it.
  for (; t < tile; ++t) {
    dist[t] = distance_avx2(row, probes[t], words);
  }
}

}  // namespace

const hamming_kernel avx2_kernel = {
    "avx2", 2, supported_avx2, distance_avx2, tile_distance_avx2};

}  // namespace hdhash::simd::detail
