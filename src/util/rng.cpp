#include "util/rng.hpp"

#include <unordered_set>

#include "util/require.hpp"

namespace hdhash {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

xoshiro256::xoshiro256(std::uint64_t seed) noexcept {
  // Seed through SplitMix64 per the xoshiro authors' recommendation; this
  // guarantees a non-zero state for every seed value.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64_next(sm);
  }
}

xoshiro256::result_type xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t jump_word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump_word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] ^= state_[i];
        }
      }
      (*this)();
    }
  }
  state_ = acc;
}

std::uint64_t uniform_below(xoshiro256& rng, std::uint64_t bound) {
  HDHASH_REQUIRE(bound > 0, "bound must be positive");
  // Lemire's multiply-shift with rejection of the biased low range.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double uniform_unit(xoshiro256& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

std::vector<std::size_t> sample_distinct(xoshiro256& rng, std::size_t universe,
                                         std::size_t count) {
  HDHASH_REQUIRE(count <= universe,
                 "cannot sample more distinct indices than the universe size");
  // Floyd's algorithm: iterate j over the last `count` slots of the
  // universe; each draw is uniform over [0, j] and collides with an
  // already-chosen value with probability < count/universe.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(count * 2);
  std::vector<std::size_t> result;
  result.reserve(count);
  for (std::size_t j = universe - count; j < universe; ++j) {
    const auto t = static_cast<std::size_t>(
        uniform_below(rng, static_cast<std::uint64_t>(j) + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace hdhash
