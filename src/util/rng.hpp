/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component in hdhash (hypervector sampling, workload
/// generation, fault injection) draws from these generators so that
/// experiments are reproducible bit-for-bit across platforms.  We implement
/// the generators ourselves instead of using `std::mt19937` +
/// `std::uniform_int_distribution` because the standard distributions are
/// not guaranteed to produce identical streams across standard libraries.
///
/// The core generator is xoshiro256** (Blackman & Vigna), seeded through
/// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hdhash {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used both as a standalone mixer and to seed xoshiro256**.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** — a small, fast, high-quality 64-bit PRNG.
///
/// Satisfies the C++ `uniform_random_bit_generator` concept so it can be
/// plugged into standard algorithms, but all hdhash code uses the explicit
/// helpers below for cross-platform determinism.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Returns the next 64 random bits.
  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls to operator(); used to split streams.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Uniform integer in [0, bound) without modulo bias (Lemire's method
/// with rejection).  \pre bound > 0.
std::uint64_t uniform_below(xoshiro256& rng, std::uint64_t bound);

/// Uniform double in [0, 1) with 53 bits of randomness.
double uniform_unit(xoshiro256& rng) noexcept;

/// Samples `count` *distinct* indices uniformly from [0, universe).
/// Uses Floyd's algorithm, O(count) expected time, independent of
/// `universe`.  The result is returned in sampling order (not sorted).
/// \pre count <= universe.
std::vector<std::size_t> sample_distinct(xoshiro256& rng, std::size_t universe,
                                         std::size_t count);

/// In-place Fisher–Yates shuffle driven by the deterministic generator.
template <typename T>
void shuffle(xoshiro256& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(uniform_below(rng, static_cast<std::uint64_t>(i)));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace hdhash
