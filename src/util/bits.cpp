#include "util/bits.hpp"

namespace hdhash {

void flip_bit_in_bytes(std::span<std::byte> bytes,
                       std::size_t bit_index) noexcept {
  bytes[bit_index / 8] ^= static_cast<std::byte>(1U << (bit_index % 8));
}

bool test_bit_in_bytes(std::span<const std::byte> bytes,
                       std::size_t bit_index) noexcept {
  return (static_cast<unsigned>(bytes[bit_index / 8]) >> (bit_index % 8)) & 1U;
}

}  // namespace hdhash
