/// \file require.hpp
/// \brief Lightweight contract checking used across the hdhash libraries.
///
/// Public API entry points validate their preconditions with
/// HDHASH_REQUIRE, which throws (so misuse is reported even in release
/// builds), while internal invariants use HDHASH_ASSERT, which aborts in
/// debug builds and compiles away in release builds.  This follows the
/// C++ Core Guidelines (I.6 "Prefer Expects() for expressing
/// preconditions").
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

namespace hdhash {

/// Exception thrown when a documented API precondition is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* func,
                                            const std::string& message) {
  std::string what = "hdhash precondition violated in ";
  what += func;
  what += ": (";
  what += expr;
  what += ")";
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw precondition_error(what);
}
}  // namespace detail

}  // namespace hdhash

/// Validate a documented precondition; throws hdhash::precondition_error on
/// failure.  Always active, including in release builds.
#define HDHASH_REQUIRE(expr, message)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hdhash::detail::throw_precondition(#expr, __func__, (message));   \
    }                                                                     \
  } while (false)

/// Internal invariant check; compiled out in release builds.
#define HDHASH_ASSERT(expr) assert(expr)
