/// \file bits.hpp
/// \brief Bit-level helpers shared by the HDC substrate and fault injector.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace hdhash {

/// Number of 64-bit words needed to store `bit_count` bits.
constexpr std::size_t words_for_bits(std::size_t bit_count) noexcept {
  return (bit_count + 63) / 64;
}

/// Mask with the low `bit_count % 64` bits set, or all ones when the count
/// is a multiple of 64.  Used to keep the tail word of packed bit arrays
/// canonical (unused high bits always zero).
constexpr std::uint64_t tail_mask(std::size_t bit_count) noexcept {
  const std::size_t rem = bit_count % 64;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

/// Tests bit `index` of a packed word array.
inline bool test_bit(std::span<const std::uint64_t> words,
                     std::size_t index) noexcept {
  return (words[index / 64] >> (index % 64)) & 1U;
}

/// Sets bit `index` of a packed word array to `value`.
inline void set_bit(std::span<std::uint64_t> words, std::size_t index,
                    bool value) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (index % 64);
  if (value) {
    words[index / 64] |= mask;
  } else {
    words[index / 64] &= ~mask;
  }
}

/// Inverts bit `index` of a packed word array.
inline void flip_bit(std::span<std::uint64_t> words,
                     std::size_t index) noexcept {
  words[index / 64] ^= std::uint64_t{1} << (index % 64);
}

/// Population count over a packed word array.
inline std::size_t popcount(std::span<const std::uint64_t> words) noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

/// Inverts bit `bit_index` (0 = least-significant bit of byte 0) within an
/// arbitrary byte buffer.  This is the primitive used by the fault
/// injector, which operates on raw memory regions rather than typed words.
void flip_bit_in_bytes(std::span<std::byte> bytes, std::size_t bit_index) noexcept;

/// Tests bit `bit_index` within an arbitrary byte buffer.
bool test_bit_in_bytes(std::span<const std::byte> bytes,
                       std::size_t bit_index) noexcept;

}  // namespace hdhash
