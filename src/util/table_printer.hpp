/// \file table_printer.hpp
/// \brief ASCII table / CSV emission for the benchmark harness.
///
/// Every figure-reproduction binary prints its results both as a
/// human-readable aligned table and (optionally) as CSV, so plots can be
/// regenerated from the captured output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdhash {

/// Collects rows of string cells and renders them right-aligned under a
/// header.  Numeric formatting is the caller's responsibility (see
/// format_double / format_si below).
class table_printer {
 public:
  /// \param columns header labels; every row must have the same arity.
  explicit table_printer(std::vector<std::string> columns);

  /// Appends one row.  \pre cells.size() == column count.
  void add_row(std::vector<std::string> cells);

  /// Renders the aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders the same data as CSV (header + rows).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 3);

/// Formats a duration given in nanoseconds with an adaptive unit
/// (ns / us / ms / s), e.g. "12.34 us".
std::string format_duration_ns(double nanoseconds);

/// Formats a percentage (0.0–1.0 input) as e.g. "12.3%".
std::string format_percent(double fraction, int precision = 2);

}  // namespace hdhash
