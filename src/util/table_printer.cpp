#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/require.hpp"

namespace hdhash {

table_printer::table_printer(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  HDHASH_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void table_printer::add_row(std::vector<std::string> cells) {
  HDHASH_REQUIRE(cells.size() == columns_.size(),
                 "row arity must match the header");
  rows_.push_back(std::move(cells));
}

void table_printer::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align within the column width.
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < total; ++i) {
    os << '-';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void table_printer::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_duration_ns(double nanoseconds) {
  const char* unit = "ns";
  double value = nanoseconds;
  if (value >= 1e9) {
    value /= 1e9;
    unit = "s";
  } else if (value >= 1e6) {
    value /= 1e6;
    unit = "ms";
  } else if (value >= 1e3) {
    value /= 1e3;
    unit = "us";
  }
  return format_double(value, 2) + " " + unit;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace hdhash
