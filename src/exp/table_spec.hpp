/// \file table_spec.hpp
/// \brief Typed, builder-style construction of hdhash tables — the v2
/// entry point replacing stringly-typed make_table().
///
/// A table_spec names an algorithm up front (one named constructor per
/// algorithm, so a typo is a compile error instead of a runtime string
/// mismatch) and chains tuning knobs fluently:
///
///   auto table = table_spec::hd().dimension(4096).seed(7).build();
///   auto ring  = table_spec::consistent().vnodes(64).hash("siphash24")
///                    .build();
///
/// The v1 string entry point make_table(name, options) remains as a thin
/// shim over table_spec::algorithm(name) so existing benches, examples
/// and CLI tooling keep working unchanged.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "exp/factory.hpp"

namespace hdhash {

/// Fluent specification of one table instance.
class table_spec {
 public:
  // One named constructor per algorithm in all_algorithms().
  static table_spec modular();
  static table_spec consistent();
  static table_spec consistent_rank();
  static table_spec rendezvous();
  static table_spec weighted_rendezvous();
  static table_spec bounded();
  static table_spec jump();
  static table_spec maglev();
  static table_spec hd();
  static table_spec hd_hierarchical();

  /// Generic entry for dynamically chosen algorithms (sweeps, CLIs).
  /// \throws precondition_error naming the valid algorithms when `name`
  /// is not one of all_algorithms().
  static table_spec algorithm(std::string_view name);

  // Shared knobs.
  table_spec& hash(std::string_view name);    ///< registered hash for h(·)
  table_spec& seed(std::uint64_t value);      ///< seeds the table and circle

  // Per-algorithm knobs (no-ops for algorithms that ignore them, so a
  // spec can be built generically and specialized per sweep point).
  table_spec& vnodes(std::size_t count);      ///< consistent/bounded ring
  table_spec& maglev_size(std::size_t size);  ///< prime lookup-table size
  table_spec& balance_factor(double c);       ///< bounded-loads slack
  table_spec& groups(std::size_t count);      ///< hd-hierarchical shards
  table_spec& dimension(std::size_t d);       ///< hd hypervector bits
  table_spec& capacity(std::size_t n);        ///< hd circle size (n > k)
  table_spec& metric(hdc::metric m);          ///< hd similarity metric
  table_spec& flip_policy(hdc::flip_policy p);///< hd circle construction
  table_spec& slot_cache(bool enabled);       ///< hd accelerator model
  table_spec& lattice_decode(bool enabled);   ///< hd ML decoding

  /// Bulk import of a v1 option block (the make_table shim path).
  table_spec& options(const table_options& options);

  /// Algorithm this spec will build, e.g. "hd".
  std::string_view algorithm_name() const noexcept { return name_; }

  /// The assembled option block.  Returned by value with hash_name
  /// re-pointed at this spec's storage, so it stays valid for the
  /// spec's lifetime regardless of how the spec was copied around.
  table_options current_options() const noexcept;

  /// Constructs the table.  \throws precondition_error on invalid knob
  /// combinations (e.g. a composite maglev table size).
  std::unique_ptr<dynamic_table> build() const;

 private:
  explicit table_spec(std::string name);

  std::string name_;
  // The hash is owned here as a string; options_.hash_name is dead
  // state and re-pointed at hash_name_ only when options are handed
  // out (current_options/build), so the compiler-generated special
  // members stay correct.
  std::string hash_name_;
  table_options options_;
};

}  // namespace hdhash
