#include "exp/disruption.hpp"

#include <vector>

#include "emu/generator.hpp"
#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

disruption_result run_disruption(std::string_view algorithm,
                                 const disruption_config& config,
                                 const table_options& options) {
  HDHASH_REQUIRE(config.servers >= 2, "need at least two servers");
  table_options opts = options;
  if (opts.hd.capacity <= config.servers + config.events) {  // keep n > k
    opts.hd.capacity = 2 * (config.servers + config.events);
  }
  opts.hd.slot_cache = true;

  auto table = make_table(algorithm, opts);
  workload_config workload;
  workload.initial_servers = config.servers;
  workload.seed = config.seed;
  const generator gen(workload);
  std::vector<std::uint64_t> pool = gen.initial_server_ids();
  for (const std::uint64_t id : pool) {
    table->join(id);
  }

  std::vector<std::uint64_t> request_ids;
  request_ids.reserve(config.requests);
  xoshiro256 rng(config.seed ^ 0xd15ca7d);
  for (std::size_t i = 0; i < config.requests; ++i) {
    request_ids.push_back(splitmix_hash::mix(rng()));
  }
  auto snapshot = [&] {
    std::vector<server_id> result(request_ids.size());
    table->lookup_batch(request_ids, result);
    return result;
  };
  auto changed_fraction = [&](const std::vector<server_id>& a,
                              const std::vector<server_id>& b) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      changed += a[i] != b[i] ? 1 : 0;
    }
    return static_cast<double>(changed) / static_cast<double>(a.size());
  };
  auto owned_fraction = [&](const std::vector<server_id>& assignment,
                            server_id owner) {
    std::size_t owned = 0;
    for (const server_id s : assignment) {
      owned += s == owner ? 1 : 0;
    }
    return static_cast<double>(owned) / static_cast<double>(assignment.size());
  };

  disruption_result result;
  std::size_t next_index = config.servers;
  for (std::size_t e = 0; e < config.events; ++e) {
    // Join a fresh server and measure the remap against the minimum (the
    // share the new server ends up owning).
    const auto before_join = snapshot();
    const std::uint64_t newcomer =
        generator::server_id_at(config.seed, next_index++);
    table->join(newcomer);
    pool.push_back(newcomer);
    const auto after_join = snapshot();
    result.join_remap += changed_fraction(before_join, after_join);
    result.join_minimum += owned_fraction(after_join, newcomer);

    // Leave a deterministic victim and measure against the minimum (the
    // share the victim owned).
    const std::size_t victim_index =
        static_cast<std::size_t>(uniform_below(rng, pool.size()));
    const std::uint64_t victim = pool[victim_index];
    const auto before_leave = snapshot();
    table->leave(victim);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim_index));
    const auto after_leave = snapshot();
    result.leave_remap += changed_fraction(before_leave, after_leave);
    result.leave_minimum += owned_fraction(before_leave, victim);
  }
  const auto events = static_cast<double>(config.events);
  result.join_remap /= events;
  result.join_minimum /= events;
  result.leave_remap /= events;
  result.leave_minimum /= events;
  return result;
}

}  // namespace hdhash
