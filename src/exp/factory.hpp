/// \file factory.hpp
/// \brief Construction of any hdhash algorithm by name, with shared
/// options — the v1 string entry point, now a thin shim over the typed
/// table_spec builder (exp/table_spec.hpp), which is the preferred v2
/// construction API.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/hd_table.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// Options shared by all algorithms plus per-algorithm tuning knobs.
struct table_options {
  std::string_view hash_name = "xxhash64";  ///< registered hash for h(·)
  std::uint64_t seed = 0;                   ///< hash seed (tables)
  std::size_t consistent_vnodes = 1;        ///< ring points per server
  std::size_t maglev_table_size = 65537;    ///< prime lookup-table size
  double bounded_balance_factor = 1.25;     ///< bounded-loads c factor
  std::size_t hierarchical_groups = 8;      ///< shards of hd-hierarchical
  hd_table_config hd{};                     ///< HD hashing parameters
};

/// Creates a table by algorithm name: "modular", "consistent",
/// "consistent-rank" (rank-resolved ring, see ring_lookup_mode),
/// "rendezvous", "jump", "maglev" or "hd".  Kept for string-driven
/// callers (CLIs, sweeps); new code should prefer the table_spec
/// builder.
/// \throws precondition_error listing all valid names for unknown ones.
std::unique_ptr<dynamic_table> make_table(std::string_view algorithm,
                                          const table_options& options = {});

/// The three algorithms the paper compares (Figures 4–6).
std::vector<std::string_view> paper_algorithms();

/// Every algorithm in the library (paper set + modular, jump, maglev).
std::vector<std::string_view> all_algorithms();

/// True when the named algorithm accepts join weights != 1 (consistent
/// via ring-point multiplicity, weighted-rendezvous natively, hd and
/// hd-hierarchical via circle-slot replication).  The scenario matrix
/// uses this to compile weighted playbooks per algorithm: weight-blind
/// algorithms get the identical stream with weights clamped to 1.
/// \throws precondition_error listing all valid names for unknown ones.
bool algorithm_supports_weights(std::string_view algorithm);

}  // namespace hdhash
