/// \file emulator_options.hpp
/// \brief One emulator flag surface for every driver: the parsed
/// `emulator_options` struct behind `--shards`, `--producers`, `--pin`,
/// `--replicated`, `--channel` and `--scenario`, consumed by the
/// benches, the examples and the shard-sweep driver.
///
/// Each of those knobs used to have its own ad-hoc scanner
/// (`parse_shards_flag`, `parse_pin_flag`, `parse_replicated_flag`,
/// plus per-bench env-var plumbing), so drivers drifted: some knew
/// `--shards auto`, some did not; error wording differed; new knobs
/// meant touching every main().  This parser replaces them (the old
/// helpers survive as deprecated shims over it, see exp/sharded.hpp):
///
///  * unknown flags are *ignored* — every driver has its own extra
///    flags (`--json`, `--requests`, `--connections`, …) and parses
///    them separately;
///  * malformed *known* flags are collected into `errors`, so a driver
///    fails loudly with every problem at once instead of silently
///    skipping the panel the user asked for;
///  * `auto` values resolve against the discovered host topology at
///    parse time (`--shards auto`, `--producers auto`), the same
///    sizing the net server uses;
///  * environment defaults (HDHASH_PIN, HDHASH_CHANNEL) apply exactly
///    when the flag is absent — a flag always wins over its env var.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "emu/channel.hpp"
#include "emu/sharded_emulator.hpp"
#include "mem/arena_options.hpp"
#include "runtime/placement_plan.hpp"

namespace hdhash {

/// Emulator knobs shared by every pipeline driver, with per-knob
/// presence so callers can distinguish "defaulted" from "requested".
struct emulator_options {
  /// --shards N | auto.  `shards` carries the resolved count (auto is
  /// resolved at parse time against the host topology, reserving the
  /// producer cores); 0 when the flag is absent — drivers keep their
  /// own default.
  bool shards_set = false;
  bool shards_auto = false;
  std::size_t shards = 0;

  /// --producers M | auto (auto: the io-reactor heuristic — one per
  /// four allowed physical cores, between 1 and 4).
  bool producers_set = false;
  bool producers_auto = false;
  std::size_t producers = 1;

  /// --pin none|compact|scatter|smt-aware; default per HDHASH_PIN.
  bool placement_set = false;
  runtime::placement_policy placement = runtime::default_placement_policy();

  /// --replicated (drivers default to snapshot membership).
  membership_mode membership = membership_mode::snapshot;

  /// --channel ring|mutex; default per HDHASH_CHANNEL.
  bool channel_set = false;
  channel_kind channel = default_channel_kind();

  /// --mem auto|huge|thp|page: memory backing the hot-state arenas are
  /// created under (src/mem/arena_options.hpp).  Wins over HDHASH_MEM;
  /// apply() installs it as the process-wide request, so it must run
  /// before the driver builds tables.  An unknown value lands in
  /// `errors`.
  bool mem_set = false;
  mem::mem_request mem = mem::mem_request::automatic;

  /// --scenario <name>: a named production playbook
  /// (scenario/playbooks.hpp) the driver should compile its workload
  /// from instead of the plain generator.  Empty when the flag is
  /// absent; an unknown name lands in `errors` listing every valid
  /// playbook.
  bool scenario_set = false;
  std::string scenario;

  /// One human-readable message per malformed known flag ("--shards
  /// needs a positive integer or auto").  Empty = parse clean.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }

  /// Copies every parsed knob onto a pipeline configuration (absent
  /// knobs leave the config's value untouched).
  void apply(sharded_config& config) const;
};

/// Scans argv for the shared emulator flags (both `--flag=value` and
/// `--flag value` forms).  Never throws on bad input — problems land
/// in `errors` so drivers report them all; unknown flags are ignored.
emulator_options parse_emulator_options(int argc, char** argv);

/// Strict positive-integer parse for CLI values: rejects empty input,
/// trailing garbage ("1e3"), out-of-range and non-positive values by
/// returning 0 (never silently truncates).
std::size_t parse_positive_value(const char* text);

}  // namespace hdhash
