/// \file disruption.hpp
/// \brief Minimal-disruption measurement: the defining property of
/// consistent-style hashing (paper Section 1 — "minimize the number of
/// redistributed requests when a resource joins or leaves").
///
/// Not a numbered figure in the paper, but the property its introduction
/// motivates; the disruption bench quantifies it for every algorithm,
/// including the modular baseline whose near-total remapping motivates
/// the whole field.
#pragma once

#include <cstdint>
#include <string_view>

#include "exp/factory.hpp"

namespace hdhash {

struct disruption_config {
  std::size_t servers = 128;      ///< pool size before the membership change
  std::size_t requests = 20'000;  ///< sampled request ids
  std::size_t events = 8;         ///< joins (and leaves) averaged over
  std::uint64_t seed = 3;
};

struct disruption_result {
  /// Fraction of requests whose server changed when one server joined,
  /// and the theoretical minimum (the share the new server must take).
  double join_remap = 0.0;
  double join_minimum = 0.0;
  /// Fraction remapped when one server left, and the minimum (the share
  /// the departed server owned).
  double leave_remap = 0.0;
  double leave_minimum = 0.0;
};

/// Measures average remap fractions for one algorithm.
disruption_result run_disruption(std::string_view algorithm,
                                 const disruption_config& config,
                                 const table_options& options);

}  // namespace hdhash
