#include "exp/similarity_matrix.hpp"

#include "core/circular.hpp"
#include "hdc/similarity.hpp"

namespace hdhash {

std::vector<std::vector<double>> similarity_matrix(basis_kind kind,
                                                   std::size_t count,
                                                   std::size_t dim,
                                                   std::uint64_t seed,
                                                   hdc::flip_policy policy) {
  xoshiro256 rng(seed);
  std::vector<hdc::hypervector> set;
  switch (kind) {
    case basis_kind::random:
      set = hdc::random_set(count, dim, rng);
      break;
    case basis_kind::level:
      set = hdc::level_set(count, dim, rng, policy);
      break;
    case basis_kind::circular:
      set = circular_set(count, dim, rng, policy);
      break;
  }
  std::vector<std::vector<double>> matrix(count, std::vector<double>(count));
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      matrix[i][j] = hdc::cosine(set[i], set[j]);
    }
  }
  return matrix;
}

std::string_view basis_kind_name(basis_kind kind) noexcept {
  switch (kind) {
    case basis_kind::random:
      return "random";
    case basis_kind::level:
      return "level";
    case basis_kind::circular:
      return "circular";
  }
  return "unknown";
}

}  // namespace hdhash
