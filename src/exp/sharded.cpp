#include "exp/sharded.hpp"

#include <algorithm>

#include "emu/generator.hpp"
#include "emu/sharded_emulator.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<std::size_t> shard_count_sweep(std::size_t max_shards) {
  max_shards = std::clamp<std::size_t>(max_shards, 1, 256);
  std::vector<std::size_t> counts;
  for (std::size_t n = 1; n <= max_shards; n *= 2) {
    counts.push_back(n);
  }
  if (counts.back() != max_shards) {
    counts.push_back(max_shards);
  }
  return counts;
}

// Deprecated shims: each re-runs the unified parser and projects out
// its one flag, so old drivers see exactly the historical structs while
// all parsing logic lives in exp/emulator_options.cpp.  (Suppressing
// the self-deprecation warning on the definitions only.)
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

bool parse_replicated_flag(int argc, char** argv) {
  return parse_emulator_options(argc, argv).membership ==
         membership_mode::replicated;
}

shards_flag parse_shards_flag(int argc, char** argv) {
  const emulator_options opts = parse_emulator_options(argc, argv);
  shards_flag flag;
  flag.present = opts.shards_set;
  flag.value = opts.shards;
  flag.auto_sized = opts.shards_auto;
  return flag;
}

pin_flag parse_pin_flag(int argc, char** argv) {
  const emulator_options opts = parse_emulator_options(argc, argv);
  pin_flag flag;
  flag.present = opts.placement_set;
  // The unified parser keeps the default policy on a malformed value
  // and records the problem in errors; the historical struct reported
  // the same condition as present-but-invalid.
  flag.valid = opts.placement_set;
  for (const std::string& error : opts.errors) {
    if (error.rfind("--pin", 0) == 0) {
      flag.valid = false;
    }
  }
  if (flag.valid) {
    flag.policy = opts.placement;
  }
  return flag;
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<shard_sweep_point> run_shard_sweep(std::string_view algorithm,
                                               const shard_sweep_config& config,
                                               const table_options& options) {
  HDHASH_REQUIRE(!config.shard_counts.empty(), "sweep needs shard counts");
  table_options opts = options;
  if (opts.hd.capacity <= config.servers + 2) {  // keep n > k under churn
    opts.hd.capacity = 2 * (config.servers + 2);
  }

  workload_config workload;
  workload.initial_servers = config.servers;
  workload.request_count = config.requests;
  workload.churn_rate = config.churn_rate;
  workload.seed = config.seed;
  const generator gen(workload);
  const auto events = gen.generate();

  // Single-table reference: the plain emulator over the same events,
  // with the caller's unmodified options (real associative query).
  // Determinism of the sharded pipeline means reproducing this run's
  // load histogram bit for bit at every shard count.
  auto reference_table = make_table(algorithm, opts);
  emulator reference(*reference_table, config.buffer_capacity);
  const run_stats expected = reference.run(events);

  // Shadow oracles run in either mode since the scenario engine landed
  // epoch-published shadow snapshots; the sweep honours the caller's
  // membership choice unconditionally.
  const membership_mode membership = config.membership;
  // Snapshot mode publishes the accelerator steady state per epoch: the
  // hd slot cache is maintained incrementally by the producer and every
  // shard resolves from the shared frozen slot array.  The reference
  // above keeps the cache off, so matches_reference also certifies the
  // maintained cache against cold decoding.  Note the replicated mode
  // deliberately keeps the caller's cache setting (PR-2 pipeline as it
  // shipped): the two modes are compared as architectures, not as a
  // single-variable ablation — see docs/BENCHMARKS.md.
  table_options sharded_opts = opts;
  if (membership == membership_mode::snapshot) {
    sharded_opts.hd.slot_cache = true;
  }

  std::vector<shard_sweep_point> series;
  series.reserve(config.shard_counts.size());
  for (const std::size_t shards : config.shard_counts) {
    sharded_config emu_config;
    emu_config.shards = shards;
    emu_config.producers = config.producers;
    emu_config.buffer_capacity = config.buffer_capacity;
    emu_config.membership = membership;
    emu_config.shadow = config.shadow;
    emu_config.placement = config.placement;
    emu_config.channel = config.channel;
    sharded_emulator emu(
        [&](std::size_t) { return make_table(algorithm, sharded_opts); },
        emu_config);
    const sharded_report report = emu.run(events);

    shard_sweep_point point;
    point.shards = shards;
    point.producers = config.producers;
    point.merged = report.merged;
    point.wall_seconds = report.wall_seconds;
    point.aggregate_requests_per_second =
        report.aggregate_requests_per_second();
    point.wall_requests_per_second = report.wall_requests_per_second();
    point.table_memory_bytes = report.table_memory_bytes;
    point.snapshots_published = report.snapshots_published;
    point.placement = report.placement;
    for (const runtime::worker_info& worker : report.workers) {
      point.pinned_workers += worker.pinned ? 1 : 0;
    }
    point.matches_reference = report.merged.load == expected.load &&
                              report.merged.requests == expected.requests &&
                              report.merged.joins == expected.joins &&
                              report.merged.leaves == expected.leaves;
    series.push_back(std::move(point));
  }
  const double base = series.front().aggregate_requests_per_second;
  for (shard_sweep_point& point : series) {
    point.aggregate_speedup =
        base > 0.0 ? point.aggregate_requests_per_second / base : 0.0;
  }
  return series;
}

}  // namespace hdhash
