#include "exp/sharded.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "emu/generator.hpp"
#include "emu/sharded_emulator.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<std::size_t> shard_count_sweep(std::size_t max_shards) {
  max_shards = std::clamp<std::size_t>(max_shards, 1, 256);
  std::vector<std::size_t> counts;
  for (std::size_t n = 1; n <= max_shards; n *= 2) {
    counts.push_back(n);
  }
  if (counts.back() != max_shards) {
    counts.push_back(max_shards);
  }
  return counts;
}

std::size_t parse_positive_value(const char* text) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  // Reject trailing garbage ("1e3"), empty values and out-of-range
  // input outright instead of silently truncating.
  if (end == text || *end != '\0' || errno == ERANGE || value <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(value);
}

bool parse_replicated_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicated") == 0) {
      return true;
    }
  }
  return false;
}

namespace {

shards_flag parse_shards_value(const char* text) {
  if (std::strcmp(text, "auto") == 0) {
    // Sized to the discovered topology: one worker per allowed
    // physical core, one core reserved for the producer.
    return shards_flag{true, runtime::auto_shard_count(runtime::host_topology()),
                       true};
  }
  return shards_flag{true, parse_positive_value(text), false};
}

}  // namespace

shards_flag parse_shards_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      return parse_shards_value(argv[i] + 9);
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      // A bare trailing "--shards" is present-but-invalid, not absent:
      // the caller must error loudly rather than skip the panel.
      return i + 1 < argc ? parse_shards_value(argv[i + 1])
                          : shards_flag{true, 0, false};
    }
  }
  return shards_flag{};
}

pin_flag parse_pin_flag(int argc, char** argv) {
  const auto parse = [](const char* text) {
    pin_flag flag;
    flag.present = true;
    if (const auto policy = runtime::parse_placement_policy(text)) {
      flag.valid = true;
      flag.policy = *policy;
    }
    return flag;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pin=", 6) == 0) {
      return parse(argv[i] + 6);
    }
    if (std::strcmp(argv[i], "--pin") == 0) {
      return i + 1 < argc ? parse(argv[i + 1]) : pin_flag{true, false, {}};
    }
  }
  return pin_flag{};
}

std::vector<shard_sweep_point> run_shard_sweep(std::string_view algorithm,
                                               const shard_sweep_config& config,
                                               const table_options& options) {
  HDHASH_REQUIRE(!config.shard_counts.empty(), "sweep needs shard counts");
  table_options opts = options;
  if (opts.hd.capacity <= config.servers + 2) {  // keep n > k under churn
    opts.hd.capacity = 2 * (config.servers + 2);
  }

  workload_config workload;
  workload.initial_servers = config.servers;
  workload.request_count = config.requests;
  workload.churn_rate = config.churn_rate;
  workload.seed = config.seed;
  const generator gen(workload);
  const auto events = gen.generate();

  // Single-table reference: the plain emulator over the same events,
  // with the caller's unmodified options (real associative query).
  // Determinism of the sharded pipeline means reproducing this run's
  // load histogram bit for bit at every shard count.
  auto reference_table = make_table(algorithm, opts);
  emulator reference(*reference_table, config.buffer_capacity);
  const run_stats expected = reference.run(events);

  // Shadow oracles mirror per-shard replicas; snapshot mode has none.
  const membership_mode membership =
      config.shadow ? membership_mode::replicated : config.membership;
  // Snapshot mode publishes the accelerator steady state per epoch: the
  // hd slot cache is maintained incrementally by the producer and every
  // shard resolves from the shared frozen slot array.  The reference
  // above keeps the cache off, so matches_reference also certifies the
  // maintained cache against cold decoding.  Note the replicated mode
  // deliberately keeps the caller's cache setting (PR-2 pipeline as it
  // shipped): the two modes are compared as architectures, not as a
  // single-variable ablation — see docs/BENCHMARKS.md.
  table_options sharded_opts = opts;
  if (membership == membership_mode::snapshot) {
    sharded_opts.hd.slot_cache = true;
  }

  std::vector<shard_sweep_point> series;
  series.reserve(config.shard_counts.size());
  for (const std::size_t shards : config.shard_counts) {
    sharded_config emu_config;
    emu_config.shards = shards;
    emu_config.buffer_capacity = config.buffer_capacity;
    emu_config.membership = membership;
    emu_config.shadow = config.shadow;
    emu_config.placement = config.placement;
    sharded_emulator emu(
        [&](std::size_t) { return make_table(algorithm, sharded_opts); },
        emu_config);
    const sharded_report report = emu.run(events);

    shard_sweep_point point;
    point.shards = shards;
    point.merged = report.merged;
    point.wall_seconds = report.wall_seconds;
    point.aggregate_requests_per_second =
        report.aggregate_requests_per_second();
    point.wall_requests_per_second = report.wall_requests_per_second();
    point.table_memory_bytes = report.table_memory_bytes;
    point.snapshots_published = report.snapshots_published;
    point.placement = report.placement;
    for (const runtime::worker_info& worker : report.workers) {
      point.pinned_workers += worker.pinned ? 1 : 0;
    }
    point.matches_reference = report.merged.load == expected.load &&
                              report.merged.requests == expected.requests &&
                              report.merged.joins == expected.joins &&
                              report.merged.leaves == expected.leaves;
    series.push_back(std::move(point));
  }
  const double base = series.front().aggregate_requests_per_second;
  for (shard_sweep_point& point : series) {
    point.aggregate_speedup =
        base > 0.0 ? point.aggregate_requests_per_second / base : 0.0;
  }
  return series;
}

}  // namespace hdhash
