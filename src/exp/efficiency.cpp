#include "exp/efficiency.hpp"

#include "emu/emulator.hpp"
#include "emu/generator.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<efficiency_point> run_efficiency(std::string_view algorithm,
                                             const efficiency_config& config,
                                             const table_options& options) {
  std::vector<efficiency_point> series;
  series.reserve(config.server_counts.size());
  for (const std::size_t servers : config.server_counts) {
    table_options opts = options;
    // The circle must stay strictly larger than the pool (n > k).
    if (opts.hd.capacity <= servers) {
      opts.hd.capacity = 2 * servers;
    }
    auto table = make_table(algorithm, opts);

    workload_config workload;
    workload.initial_servers = servers;
    workload.request_count = config.requests;
    workload.seed = config.seed;
    const generator gen(workload);
    const auto events = gen.generate();

    emulator emu(*table, config.batch);
    const run_stats stats = emu.run(events);
    HDHASH_REQUIRE(stats.requests == config.requests,
                   "emulator dropped requests");
    series.push_back(efficiency_point{servers, stats.avg_request_ns()});
  }
  return series;
}

}  // namespace hdhash
