/// \file similarity_matrix.hpp
/// \brief Figure 2 driver: pairwise cosine similarities within random,
/// level and circular basis-hypervector sets.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hdc/basis.hpp"

namespace hdhash {

/// Which basis construction to profile.
enum class basis_kind { random, level, circular };

/// Returns the `count` × `count` pairwise cosine-similarity matrix of a
/// freshly generated basis set (row-major).
std::vector<std::vector<double>> similarity_matrix(
    basis_kind kind, std::size_t count, std::size_t dim, std::uint64_t seed,
    hdc::flip_policy policy = hdc::flip_policy::fresh_bits);

/// Human-readable name of a basis kind.
std::string_view basis_kind_name(basis_kind kind) noexcept;

}  // namespace hdhash
