#include "exp/factory.hpp"

#include "exp/table_spec.hpp"

namespace hdhash {

std::unique_ptr<dynamic_table> make_table(std::string_view algorithm,
                                          const table_options& options) {
  // Thin shim over the v2 builder: validate the name (the error lists
  // every valid algorithm), import the v1 option block, build.
  return table_spec::algorithm(algorithm).options(options).build();
}

std::vector<std::string_view> paper_algorithms() {
  return {"consistent", "rendezvous", "hd"};
}

std::vector<std::string_view> all_algorithms() {
  return {"modular", "consistent", "consistent-rank",
          "rendezvous", "weighted-rendezvous", "bounded",
          "jump", "maglev", "hd", "hd-hierarchical"};
}

bool algorithm_supports_weights(std::string_view algorithm) {
  // Validate the name through the spec builder so unknown algorithms
  // fail with the same error everywhere.
  (void)table_spec::algorithm(algorithm);
  return algorithm == "consistent" || algorithm == "consistent-rank" ||
         algorithm == "weighted-rendezvous" || algorithm == "hd" ||
         algorithm == "hd-hierarchical";
}

}  // namespace hdhash
