#include "exp/factory.hpp"

#include <string>

#include <algorithm>

#include "core/hierarchical.hpp"
#include "hashing/registry.hpp"
#include "table/bounded.hpp"
#include "table/consistent.hpp"
#include "table/weighted_rendezvous.hpp"
#include "table/jump.hpp"
#include "table/maglev.hpp"
#include "table/modular.hpp"
#include "table/rendezvous.hpp"
#include "util/require.hpp"

namespace hdhash {

std::unique_ptr<dynamic_table> make_table(std::string_view algorithm,
                                          const table_options& options) {
  const hash64& hash = hash_by_name(options.hash_name);
  if (algorithm == "modular") {
    return std::make_unique<modular_table>(hash, options.seed);
  }
  if (algorithm == "consistent") {
    return std::make_unique<consistent_table>(hash, options.consistent_vnodes,
                                              options.seed);
  }
  if (algorithm == "consistent-rank") {
    return std::make_unique<consistent_table>(hash, options.consistent_vnodes,
                                              options.seed,
                                              ring_lookup_mode::rank);
  }
  if (algorithm == "rendezvous") {
    return std::make_unique<rendezvous_table>(hash, options.seed);
  }
  if (algorithm == "weighted-rendezvous") {
    return std::make_unique<weighted_rendezvous_table>(hash, options.seed);
  }
  if (algorithm == "bounded") {
    return std::make_unique<bounded_consistent_table>(
        hash, options.bounded_balance_factor, options.consistent_vnodes,
        options.seed);
  }
  if (algorithm == "hd-hierarchical") {
    hierarchical_config config;
    config.groups = options.hierarchical_groups;
    config.shard = options.hd;
    // Each shard holds ~k/groups servers; a quarter of the flat circle
    // keeps the lattice step large while bounding shard memory.
    config.shard.capacity =
        std::max<std::size_t>(64, options.hd.capacity / options.hierarchical_groups * 2);
    config.router = options.hd;
    config.router.capacity = 4 * options.hierarchical_groups;
    return std::make_unique<hierarchical_hd_table>(hash, config);
  }
  if (algorithm == "jump") {
    return std::make_unique<jump_table>(hash, options.seed);
  }
  if (algorithm == "maglev") {
    return std::make_unique<maglev_table>(hash, options.maglev_table_size,
                                          options.seed);
  }
  if (algorithm == "hd") {
    return std::make_unique<hd_table>(hash, options.hd);
  }
  HDHASH_REQUIRE(false, "unknown algorithm: " + std::string(algorithm));
  return nullptr;  // Unreachable.
}

std::vector<std::string_view> paper_algorithms() {
  return {"consistent", "rendezvous", "hd"};
}

std::vector<std::string_view> all_algorithms() {
  return {"modular", "consistent", "consistent-rank",
          "rendezvous", "weighted-rendezvous", "bounded",
          "jump", "maglev", "hd", "hd-hierarchical"};
}

}  // namespace hdhash
