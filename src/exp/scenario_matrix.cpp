#include "exp/scenario_matrix.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "emu/emulator.hpp"
#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace {

/// Probe χ² per degree of freedom against the weight-proportional
/// expectation E_i = probes · w_i / Σw (1 ≈ ideally balanced).
double chi_over_dof(const std::vector<server_id>& assignment,
                    const std::unordered_map<server_id, double>& weights) {
  if (weights.size() <= 1) {
    return 0.0;  // one server holds everything by definition
  }
  double total_weight = 0.0;
  for (const auto& [id, weight] : weights) {
    total_weight += weight;
  }
  std::unordered_map<server_id, std::uint64_t> counts;
  counts.reserve(weights.size());
  for (const server_id server : assignment) {
    ++counts[server];
  }
  const double probes = static_cast<double>(assignment.size());
  double chi = 0.0;
  for (const auto& [id, weight] : weights) {
    const double expected = probes * weight / total_weight;
    const auto it = counts.find(id);
    const double observed =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    const double diff = observed - expected;
    chi += diff * diff / expected;
  }
  return chi / static_cast<double>(weights.size() - 1);
}

/// One in-flight recovery measurement, anchored at a disruptive marker.
struct recovery_clock {
  std::size_t start_tick = 0;
};

scenario_cell run_cell(const compiled_scenario& compiled,
                       const std::string& algorithm, bool weighted,
                       const scenario_matrix_config& config) {
  table_options options = config.options;
  // Long membership histories: publish the hd accelerator steady state
  // (incrementally maintained, bit-identical to cold decoding) and size
  // the circle above the scenario's peak pool weight.
  options.hd.slot_cache = true;
  const std::size_t needed = 2 * (compiled.max_pool_weight + 2);
  if (options.hd.capacity < needed) {
    options.hd.capacity = needed;
  }
  auto table = make_table(algorithm, options);

  scenario_cell cell;
  cell.playbook = compiled.name;
  cell.algorithm = algorithm;
  cell.weighted = weighted;
  cell.requests = compiled.requests;
  cell.joins = compiled.joins;
  cell.leaves = compiled.leaves;

  // Fixed probe set, identical for every cell: mixed ids spanning the
  // request-id space (probe assignments, not live traffic, are what
  // the disruption and balance sweeps re-resolve).
  std::vector<request_id> probes;
  probes.reserve(config.probes);
  for (std::size_t i = 0; i < config.probes; ++i) {
    probes.push_back(splitmix_hash::mix(0x960BE5EEDULL + i));
  }

  // Apply the initial join burst, then baseline the probe assignment.
  const std::size_t first_phase_event = compiled.phases.front().first_event;
  std::unordered_map<server_id, double> weights;
  for (std::size_t i = 0; i < first_phase_event; ++i) {
    const event& e = compiled.events[i];
    table->join(e.id, e.weight);
    weights[e.id] = table->weight(e.id);
  }
  std::vector<server_id> prev_assign = table->lookup_batch(probes);
  std::vector<server_id> assign(probes.size());

  std::size_t event_cursor = first_phase_event;
  std::size_t marker_cursor = 0;
  std::size_t phase_cursor = 0;
  std::vector<recovery_clock> clocks;
  double recovery_sum = 0.0;
  std::size_t recovery_samples = 0;
  double disruption_sum = 0.0;
  double minimum_sum = 0.0;
  double phase_chi_sum = 0.0;
  std::size_t phase_chi_samples = 0;
  std::vector<request_id> tick_requests;
  std::vector<server_id> tick_answers;
  std::unordered_set<server_id> joined;
  std::unordered_set<server_id> left;

  for (std::size_t tick = 0; tick < compiled.total_ticks; ++tick) {
    // Disruptive markers anchor their recovery clocks at this tick.
    while (marker_cursor < compiled.markers.size() &&
           compiled.markers[marker_cursor].tick == tick) {
      if (compiled.markers[marker_cursor].disruptive) {
        clocks.push_back(recovery_clock{tick});
      }
      ++marker_cursor;
    }

    // Membership first (compilation emits a tick's churn and weight
    // events before its arrivals), then the tick's request batch.
    joined.clear();
    left.clear();
    tick_requests.clear();
    bool membership_changed = false;
    while (event_cursor < compiled.events.size() &&
           compiled.event_ticks[event_cursor] == tick) {
      const event& e = compiled.events[event_cursor++];
      switch (e.kind) {
        case event_kind::join:
          table->join(e.id, e.weight);
          weights[e.id] = table->weight(e.id);
          membership_changed = true;
          // A leave+rejoin within the tick (grey decay re-weighting)
          // keeps the server in the pool: probes staying on it are not
          // forced moves, so it joins neither census set.
          if (left.erase(e.id) == 0) {
            joined.insert(e.id);
          }
          break;
        case event_kind::leave:
          table->leave(e.id);
          weights.erase(e.id);
          membership_changed = true;
          if (joined.erase(e.id) == 0) {
            left.insert(e.id);
          }
          break;
        case event_kind::request:
          tick_requests.push_back(e.id);
          break;
      }
    }

    if (membership_changed) {
      ++cell.membership_episodes;
      table->lookup_batch(probes, assign);
      std::size_t changed = 0;
      std::size_t forced = 0;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        if (assign[i] != prev_assign[i]) {
          ++changed;
        }
        if (left.count(prev_assign[i]) != 0 || joined.count(assign[i]) != 0) {
          ++forced;  // had to move whatever the algorithm does
        }
      }
      const double n = static_cast<double>(probes.size());
      disruption_sum += static_cast<double>(changed) / n;
      minimum_sum += static_cast<double>(forced) / n;
      std::swap(prev_assign, assign);

      const double chi = chi_over_dof(prev_assign, weights);
      cell.worst_chi_over_dof = std::max(cell.worst_chi_over_dof, chi);
      if (chi <= config.recovery_chi_over_dof) {
        for (const recovery_clock& clock : clocks) {
          recovery_sum += static_cast<double>(tick - clock.start_tick);
          ++recovery_samples;
        }
        clocks.clear();
      }
    }

    if (!tick_requests.empty()) {
      tick_answers.resize(tick_requests.size());
      const std::int64_t start = timing_now_ns(timing_mode::wall);
      table->lookup_batch(tick_requests, tick_answers);
      cell.avg_request_ns +=
          static_cast<double>(timing_now_ns(timing_mode::wall) - start);
    }

    // Phase-end balance sample.
    if (tick + 1 == compiled.phases[phase_cursor].end_tick) {
      table->lookup_batch(probes, assign);
      const double chi = chi_over_dof(assign, weights);
      phase_chi_sum += chi;
      ++phase_chi_samples;
      cell.worst_chi_over_dof = std::max(cell.worst_chi_over_dof, chi);
      ++phase_cursor;
    }
  }

  // Markers that never recovered count their full remaining run.
  for (const recovery_clock& clock : clocks) {
    recovery_sum +=
        static_cast<double>(compiled.total_ticks - clock.start_tick);
    ++recovery_samples;
    cell.recovered = false;
  }

  if (cell.membership_episodes > 0) {
    disruption_sum /= static_cast<double>(cell.membership_episodes);
    minimum_sum /= static_cast<double>(cell.membership_episodes);
  }
  cell.disruption = disruption_sum;
  cell.disruption_minimum = minimum_sum;
  cell.load_chi_over_dof =
      phase_chi_samples > 0
          ? phase_chi_sum / static_cast<double>(phase_chi_samples)
          : 0.0;
  cell.recovery_ticks =
      recovery_samples > 0
          ? recovery_sum / static_cast<double>(recovery_samples)
          : -1.0;
  cell.avg_request_ns =
      cell.requests > 0
          ? cell.avg_request_ns / static_cast<double>(cell.requests)
          : 0.0;
  return cell;
}

}  // namespace

std::vector<scenario_cell> run_scenario_matrix(
    const scenario_matrix_config& config) {
  HDHASH_REQUIRE(config.probes >= 16, "probe set too small to measure");
  HDHASH_REQUIRE(config.recovery_chi_over_dof > 0.0,
                 "recovery threshold must be positive");
  std::vector<std::string> playbooks = config.playbooks;
  if (playbooks.empty()) {
    for (const std::string_view name : scenario_names()) {
      playbooks.emplace_back(name);
    }
  }
  std::vector<std::string> algorithms = config.algorithms;
  if (algorithms.empty()) {
    for (const std::string_view name : all_algorithms()) {
      algorithms.emplace_back(name);
    }
  }

  std::vector<scenario_cell> cells;
  cells.reserve(playbooks.size() * algorithms.size());
  for (const std::string& playbook : playbooks) {
    const scenario_config scenario = make_scenario(playbook, config.tuning);
    // Compile each row at most twice — the weighted stream for weight-
    // capable algorithms, the clamped (but otherwise identical) stream
    // for the rest — and share across the column axis.
    const compiled_scenario with_weights = compile_scenario(scenario, true);
    const compiled_scenario without_weights =
        compile_scenario(scenario, false);
    for (const std::string& algorithm : algorithms) {
      const bool weighted = algorithm_supports_weights(algorithm);
      cells.push_back(run_cell(weighted ? with_weights : without_weights,
                               algorithm, weighted, config));
    }
  }
  return cells;
}

}  // namespace hdhash
