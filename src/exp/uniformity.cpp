#include "exp/uniformity.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "emu/generator.hpp"
#include "hashing/splitmix_hash.hpp"
#include "stats/chi_squared.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<uniformity_point> run_uniformity(std::string_view algorithm,
                                             const uniformity_config& config,
                                             const table_options& options) {
  std::vector<uniformity_point> series;
  for (const std::size_t servers : config.server_counts) {
    table_options opts = options;
    if (opts.hd.capacity <= servers) {  // keep n > k
      opts.hd.capacity = 2 * servers;
    }
    opts.hd.slot_cache = true;  // exact memoization; see robustness.cpp

    auto table = make_table(algorithm, opts);
    workload_config workload;
    workload.initial_servers = servers;
    workload.seed = config.seed;
    const generator gen(workload);
    const auto server_ids = gen.initial_server_ids();
    for (const std::uint64_t id : server_ids) {
      table->join(id);
    }
    std::unordered_map<server_id, std::size_t> bin_of;
    bin_of.reserve(server_ids.size());
    for (std::size_t i = 0; i < server_ids.size(); ++i) {
      bin_of.emplace(server_ids[i], i);
    }

    std::vector<std::uint64_t> request_ids;
    request_ids.reserve(config.requests);
    xoshiro256 req_rng(config.seed ^ 0xc0ffee);
    for (std::size_t i = 0; i < config.requests; ++i) {
      request_ids.push_back(splitmix_hash::mix(req_rng()));
    }

    for (const std::size_t flips : config.bit_flip_levels) {
      const std::size_t trials = flips == 0 ? 1 : config.trials;
      double sum_chi = 0.0;
      double sum_invalid = 0.0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        bit_flip_injector injector(config.seed + 0x77 * (trial + 1) + flips);
        std::vector<flip_record> injected;
        if (flips > 0) {
          injected = injector.inject_random(*table, flips);
        }

        std::vector<server_id> answers(request_ids.size());
        table->lookup_batch(request_ids, answers);
        std::vector<std::uint64_t> counts(servers, 0);
        std::size_t invalid = 0;
        for (const server_id answer : answers) {
          const auto it = bin_of.find(answer);
          if (it == bin_of.end()) {
            ++invalid;  // corrupted identifier escaped the pool
          } else {
            ++counts[it->second];
          }
        }
        if (flips > 0) {
          bit_flip_injector::undo(*table, injected);
        }

        // Paper formula: E = |R| / |S| with |R| the total request count;
        // invalid answers therefore count against uniformity.
        const double expected = static_cast<double>(config.requests) /
                                static_cast<double>(servers);
        double chi = 0.0;
        for (const std::uint64_t c : counts) {
          const double diff = static_cast<double>(c) - expected;
          chi += diff * diff / expected;
        }
        sum_chi += chi;
        sum_invalid += static_cast<double>(invalid) /
                       static_cast<double>(config.requests);
      }
      uniformity_point point;
      point.servers = servers;
      point.bit_flips = flips;
      point.chi_squared = sum_chi / static_cast<double>(trials);
      point.chi_over_dof =
          servers > 1
              ? point.chi_squared / static_cast<double>(servers - 1)
              : 0.0;
      point.invalid_fraction = sum_invalid / static_cast<double>(trials);
      series.push_back(point);
    }
  }
  return series;
}

std::vector<weighted_uniformity_point> run_weighted_uniformity(
    std::string_view algorithm, const weighted_uniformity_config& config,
    const table_options& options) {
  HDHASH_REQUIRE(!config.weight_cycle.empty(),
                 "weighted uniformity needs at least one weight");
  std::vector<weighted_uniformity_point> series;
  for (const std::size_t servers : config.server_counts) {
    // Weighted joins replicate hd circle slots, so capacity must cover
    // the *summed* effective weight, not just the server count.
    double total_weight = 0.0;
    std::vector<double> weights(servers);
    for (std::size_t i = 0; i < servers; ++i) {
      weights[i] = config.weight_cycle[i % config.weight_cycle.size()];
      total_weight += weights[i];
    }
    table_options opts = options;
    const auto slots = static_cast<std::size_t>(total_weight) + servers;
    if (opts.hd.capacity <= slots) {  // keep n > k
      opts.hd.capacity = 2 * slots;
    }
    opts.hd.slot_cache = true;  // exact memoization; see robustness.cpp

    auto table = make_table(algorithm, opts);
    workload_config workload;
    workload.initial_servers = servers;
    workload.seed = config.seed;
    const generator gen(workload);
    const auto server_ids = gen.initial_server_ids();
    std::unordered_map<server_id, std::size_t> bin_of;
    bin_of.reserve(server_ids.size());
    for (std::size_t i = 0; i < server_ids.size(); ++i) {
      table->join(server_ids[i], weights[i]);
      bin_of.emplace(server_ids[i], i);
    }

    std::vector<std::uint64_t> request_ids;
    request_ids.reserve(config.requests);
    xoshiro256 req_rng(config.seed ^ 0xc0ffee);
    for (std::size_t i = 0; i < config.requests; ++i) {
      request_ids.push_back(splitmix_hash::mix(req_rng()));
    }
    std::vector<server_id> answers(request_ids.size());
    table->lookup_batch(request_ids, answers);
    std::vector<std::uint64_t> counts(servers, 0);
    for (const server_id answer : answers) {
      const auto it = bin_of.find(answer);
      HDHASH_REQUIRE(it != bin_of.end(),
                     "clean weighted lookup escaped the pool");
      ++counts[it->second];
    }

    weighted_uniformity_point point;
    point.servers = servers;
    const double max_weight =
        *std::max_element(weights.begin(), weights.end());
    for (std::size_t i = 0; i < servers; ++i) {
      const double expected = static_cast<double>(config.requests) *
                              weights[i] / total_weight;
      const double diff = static_cast<double>(counts[i]) - expected;
      point.chi_squared += diff * diff / expected;
      point.max_share_error = std::max(
          point.max_share_error,
          std::abs(diff) / static_cast<double>(config.requests));
      if (weights[i] == max_weight) {
        point.heavy_share += static_cast<double>(counts[i]) /
                             static_cast<double>(config.requests);
        point.heavy_share_expected += weights[i] / total_weight;
      }
    }
    point.chi_over_dof =
        servers > 1 ? point.chi_squared / static_cast<double>(servers - 1)
                    : 0.0;
    series.push_back(point);
  }
  return series;
}

}  // namespace hdhash
