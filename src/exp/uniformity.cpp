#include "exp/uniformity.hpp"

#include <unordered_map>

#include "emu/generator.hpp"
#include "hashing/splitmix_hash.hpp"
#include "stats/chi_squared.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<uniformity_point> run_uniformity(std::string_view algorithm,
                                             const uniformity_config& config,
                                             const table_options& options) {
  std::vector<uniformity_point> series;
  for (const std::size_t servers : config.server_counts) {
    table_options opts = options;
    if (opts.hd.capacity <= servers) {  // keep n > k
      opts.hd.capacity = 2 * servers;
    }
    opts.hd.slot_cache = true;  // exact memoization; see robustness.cpp

    auto table = make_table(algorithm, opts);
    workload_config workload;
    workload.initial_servers = servers;
    workload.seed = config.seed;
    const generator gen(workload);
    const auto server_ids = gen.initial_server_ids();
    for (const std::uint64_t id : server_ids) {
      table->join(id);
    }
    std::unordered_map<server_id, std::size_t> bin_of;
    bin_of.reserve(server_ids.size());
    for (std::size_t i = 0; i < server_ids.size(); ++i) {
      bin_of.emplace(server_ids[i], i);
    }

    std::vector<std::uint64_t> request_ids;
    request_ids.reserve(config.requests);
    xoshiro256 req_rng(config.seed ^ 0xc0ffee);
    for (std::size_t i = 0; i < config.requests; ++i) {
      request_ids.push_back(splitmix_hash::mix(req_rng()));
    }

    for (const std::size_t flips : config.bit_flip_levels) {
      const std::size_t trials = flips == 0 ? 1 : config.trials;
      double sum_chi = 0.0;
      double sum_invalid = 0.0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        bit_flip_injector injector(config.seed + 0x77 * (trial + 1) + flips);
        std::vector<flip_record> injected;
        if (flips > 0) {
          injected = injector.inject_random(*table, flips);
        }

        std::vector<server_id> answers(request_ids.size());
        table->lookup_batch(request_ids, answers);
        std::vector<std::uint64_t> counts(servers, 0);
        std::size_t invalid = 0;
        for (const server_id answer : answers) {
          const auto it = bin_of.find(answer);
          if (it == bin_of.end()) {
            ++invalid;  // corrupted identifier escaped the pool
          } else {
            ++counts[it->second];
          }
        }
        if (flips > 0) {
          bit_flip_injector::undo(*table, injected);
        }

        // Paper formula: E = |R| / |S| with |R| the total request count;
        // invalid answers therefore count against uniformity.
        const double expected = static_cast<double>(config.requests) /
                                static_cast<double>(servers);
        double chi = 0.0;
        for (const std::uint64_t c : counts) {
          const double diff = static_cast<double>(c) - expected;
          chi += diff * diff / expected;
        }
        sum_chi += chi;
        sum_invalid += static_cast<double>(invalid) /
                       static_cast<double>(config.requests);
      }
      uniformity_point point;
      point.servers = servers;
      point.bit_flips = flips;
      point.chi_squared = sum_chi / static_cast<double>(trials);
      point.chi_over_dof =
          servers > 1
              ? point.chi_squared / static_cast<double>(servers - 1)
              : 0.0;
      point.invalid_fraction = sum_invalid / static_cast<double>(trials);
      series.push_back(point);
    }
  }
  return series;
}

}  // namespace hdhash
