/// \file efficiency.hpp
/// \brief Figure 4 driver: average request-handling duration as the
/// server pool grows (2..2048 in powers of two, 10,000 requests, batch
/// size 256).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "exp/factory.hpp"

namespace hdhash {

/// Sweep parameters (defaults reproduce the paper's setup).
struct efficiency_config {
  std::vector<std::size_t> server_counts = {2,   4,   8,   16,  32,  64,
                                            128, 256, 512, 1024, 2048};
  std::size_t requests = 10'000;  ///< requests timed per pool size
  std::size_t batch = 256;        ///< emulator buffer capacity
  std::uint64_t seed = 42;
};

/// One point of the Figure 4 series.
struct efficiency_point {
  std::size_t servers = 0;
  double avg_request_ns = 0.0;
};

/// Runs the sweep for one algorithm.  Joins are excluded from the timing;
/// only request handling is measured, as in the paper.
std::vector<efficiency_point> run_efficiency(std::string_view algorithm,
                                             const efficiency_config& config,
                                             const table_options& options);

}  // namespace hdhash
