/// \file robustness.hpp
/// \brief Figure 5 driver: percentage of mismatched requests as bits of
/// the table's live memory are flipped (0..10 flips in the paper).
///
/// Protocol per (algorithm, pool size, flip count, trial):
///  1. populate the table and clone it as the pristine shadow oracle;
///  2. inject the error model into the table under test (not the shadow);
///  3. answer `requests` lookups from both; count differences;
///  4. restore the injected flips (XOR is involutive) for the next trial.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/error_model.hpp"
#include "exp/factory.hpp"

namespace hdhash {

struct robustness_config {
  std::size_t servers = 512;       ///< pool size (paper headline: 512)
  std::size_t requests = 10'000;   ///< lookups compared per trial
  std::size_t max_bit_flips = 10;  ///< sweep 0..max (paper: 10)
  std::size_t trials = 5;          ///< injection seeds averaged per point
  upset_kind kind = upset_kind::seu;  ///< seu sweep or one mcu burst
  std::uint64_t seed = 7;
};

struct mismatch_point {
  std::size_t bit_flips = 0;
  double mismatch_rate = 0.0;  ///< mean over trials
  double invalid_rate = 0.0;   ///< answered id not in the pool (subset)
  double worst_trial = 0.0;    ///< max mismatch rate over trials
};

/// Runs the bit-flip sweep for one algorithm.
std::vector<mismatch_point> run_mismatch_sweep(std::string_view algorithm,
                                               const robustness_config& config,
                                               const table_options& options);

}  // namespace hdhash
