#include "exp/robustness.hpp"

#include <algorithm>

#include "emu/generator.hpp"
#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

std::vector<mismatch_point> run_mismatch_sweep(std::string_view algorithm,
                                               const robustness_config& config,
                                               const table_options& options) {
  table_options opts = options;
  if (opts.hd.capacity <= config.servers) {  // keep n > k
    opts.hd.capacity = 2 * config.servers;
  }
  // Memoizing per-slot results is exact for HD hashing (Enc has only n
  // distinct outputs) and makes the sweep tractable on one CPU core; the
  // cache is invalidated on every injection/restore via fault_regions().
  opts.hd.slot_cache = true;

  auto table = make_table(algorithm, opts);
  workload_config workload;
  workload.initial_servers = config.servers;
  workload.seed = config.seed;
  const generator gen(workload);
  for (const std::uint64_t id : gen.initial_server_ids()) {
    table->join(id);
  }
  const auto shadow = table->clone();

  // Fixed request sample reused across flip counts and trials, so the
  // sweep isolates the effect of the error process.
  std::vector<std::uint64_t> request_ids;
  request_ids.reserve(config.requests);
  xoshiro256 req_rng(config.seed ^ 0xf1f1f1f1);
  for (std::size_t i = 0; i < config.requests; ++i) {
    request_ids.push_back(splitmix_hash::mix(req_rng()));
  }
  std::vector<server_id> truth(request_ids.size());
  shadow->lookup_batch(request_ids, truth);

  std::vector<mismatch_point> series;
  series.reserve(config.max_bit_flips + 1);
  for (std::size_t flips = 0; flips <= config.max_bit_flips; ++flips) {
    mismatch_point point;
    point.bit_flips = flips;
    double sum_mismatch = 0.0;
    double sum_invalid = 0.0;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      bit_flip_injector injector(config.seed + 0x1000 * (trial + 1) + flips);
      error_model model;
      model.kind = config.kind;
      if (config.kind == upset_kind::seu) {
        model.events = flips;
        model.burst_length = 1;
      } else {
        model.events = flips > 0 ? 1 : 0;
        model.burst_length = std::max<std::size_t>(flips, 1);
      }
      const auto injected = apply_error_model(model, injector, *table);

      // The corrupted table answers the request sample as one batch —
      // the same hot path the emulator and benchmarks exercise.
      std::vector<server_id> answers(request_ids.size());
      table->lookup_batch(request_ids, answers);
      std::size_t mismatches = 0;
      std::size_t invalid = 0;
      for (std::size_t i = 0; i < request_ids.size(); ++i) {
        if (answers[i] != truth[i]) {
          ++mismatches;
          if (!shadow->contains(answers[i])) {
            ++invalid;
          }
        }
      }
      bit_flip_injector::undo(*table, injected);

      const double rate = static_cast<double>(mismatches) /
                          static_cast<double>(request_ids.size());
      sum_mismatch += rate;
      sum_invalid += static_cast<double>(invalid) /
                     static_cast<double>(request_ids.size());
      point.worst_trial = std::max(point.worst_trial, rate);
    }
    point.mismatch_rate = sum_mismatch / static_cast<double>(config.trials);
    point.invalid_rate = sum_invalid / static_cast<double>(config.trials);
    series.push_back(point);
  }
  return series;
}

}  // namespace hdhash
