/// \file scenario_matrix.hpp
/// \brief The scenario × algorithm result matrix — the repo's standing
/// correctness-and-robustness harness over the production playbooks.
///
/// Every named playbook (scenario/playbooks.hpp) is compiled once and
/// replayed tick by tick through every table algorithm; each cell
/// reports the three production qualities the scenarios probe:
///
///  * **disruption** — after every tick that changed membership, a
///    fixed probe set is re-resolved and the fraction that remapped is
///    compared against the measured lower bound (probes that *had* to
///    move: previously on a leaver, or newly on a joiner);
///  * **load balance** — χ²/statistic-per-dof of the probe assignment
///    against the weight-proportional expectation, sampled after every
///    membership episode and at each phase end (1 ≈ ideally uniform);
///  * **recovery time** — ticks from each disruptive marker (rack
///    failure, first upgrade wave, …) until the probe χ²/dof is back
///    under the recovery threshold.
///
/// Weight-capable algorithms replay weighted playbook compilations;
/// weight-blind ones replay the identical stream with weights clamped
/// to 1 (same events, ids and ticks), so cells stay comparable across
/// the whole algorithm axis.
#pragma once

#include <string>
#include <vector>

#include "exp/factory.hpp"
#include "scenario/playbooks.hpp"

namespace hdhash {

/// Matrix extent and measurement knobs.
struct scenario_matrix_config {
  /// Playbooks to run (matrix rows); empty = every named playbook.
  std::vector<std::string> playbooks;
  /// Algorithms to run (matrix columns); empty = all_algorithms().
  std::vector<std::string> algorithms;
  /// Size knobs forwarded to make_scenario (tests shrink these).
  scenario_tuning tuning;
  /// Base table options; hd capacity is raised automatically to cover
  /// each scenario's peak pool weight, and the hd slot cache is turned
  /// on (the matrix replays long membership histories).
  table_options options;
  /// Probe-set size for disruption / load-balance sweeps.
  std::size_t probes = 2048;
  /// A cell counts as recovered once probe χ²/dof is at or below this.
  double recovery_chi_over_dof = 2.0;
};

/// One (playbook, algorithm) cell of the matrix.
struct scenario_cell {
  std::string playbook;
  std::string algorithm;
  /// The playbook was compiled with real join weights (the algorithm
  /// accepts them); false = weights clamped to 1.
  bool weighted = false;
  std::size_t requests = 0;  ///< request events replayed
  std::size_t joins = 0;     ///< join events (incl. the initial burst)
  std::size_t leaves = 0;    ///< leave events
  /// Ticks on which membership changed (each is one disruption sample).
  std::size_t membership_episodes = 0;
  /// Mean fraction of the probe set remapped per membership episode.
  double disruption = 0.0;
  /// Mean measured lower bound: probes that had to remap (previously
  /// on a leaver or newly on a joiner).  disruption == this bound is
  /// minimal-disruption behaviour; the gap is gratuitous remapping.
  double disruption_minimum = 0.0;
  /// Mean probe χ²/dof at phase ends (1 ≈ ideally balanced).
  double load_chi_over_dof = 0.0;
  /// Worst probe χ²/dof seen at any episode or phase end.
  double worst_chi_over_dof = 0.0;
  /// Mean ticks from a disruptive marker until χ²/dof recovered; 0 =
  /// instant (balanced right after the episode), -1 = the playbook has
  /// no disruptive markers.  Unrecovered markers count their full
  /// remaining run length and clear `recovered`.
  double recovery_ticks = -1.0;
  /// Every disruptive marker recovered before the run ended.
  bool recovered = true;
  /// Mean wall nanoseconds per replayed request (per-tick batches).
  double avg_request_ns = 0.0;
};

/// Runs the matrix: one cell per (playbook, algorithm) pair, playbooks
/// in row-major order.  Deterministic for a fixed config.
/// \throws precondition_error on unknown playbook/algorithm names or a
/// degenerate tuning.
std::vector<scenario_cell> run_scenario_matrix(
    const scenario_matrix_config& config);

}  // namespace hdhash
