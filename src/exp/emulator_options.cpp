#include "exp/emulator_options.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "runtime/worker_pool.hpp"
#include "scenario/playbooks.hpp"

namespace hdhash {

namespace {

/// Extracts the value of `--name=v` / `--name v` at position i;
/// nullptr when argv[i] is not this flag.  Advances *i over a consumed
/// separate-argument value.  A flag present with no value yields "".
const char* flag_value(int argc, char** argv, int* i, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[*i], name, len) != 0) {
    return nullptr;
  }
  const char* rest = argv[*i] + len;
  if (*rest == '=') {
    return rest + 1;
  }
  if (*rest != '\0') {
    return nullptr;  // a longer flag that merely shares the prefix
  }
  if (*i + 1 < argc) {
    ++*i;
    return argv[*i];
  }
  return "";
}

}  // namespace

std::size_t parse_positive_value(const char* text) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  // Reject trailing garbage ("1e3"), empty values and out-of-range
  // input outright instead of silently truncating.
  if (end == text || *end != '\0' || errno == ERANGE || value <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(value);
}

emulator_options parse_emulator_options(int argc, char** argv) {
  emulator_options opts;
  for (int i = 1; i < argc; ++i) {
    if (const char* value = flag_value(argc, argv, &i, "--shards")) {
      opts.shards_set = true;
      if (std::strcmp(value, "auto") == 0) {
        opts.shards_auto = true;  // resolved after the loop: the
                                  // reservation depends on --producers
      } else if ((opts.shards = parse_positive_value(value)) == 0) {
        opts.errors.push_back("--shards needs a positive integer or auto");
      }
    } else if (const char* value = flag_value(argc, argv, &i, "--producers")) {
      opts.producers_set = true;
      if (std::strcmp(value, "auto") == 0) {
        opts.producers_auto = true;
        opts.producers =
            runtime::plan_io_shard_split(runtime::host_topology()).io_threads;
      } else if ((opts.producers = parse_positive_value(value)) == 0) {
        opts.errors.push_back("--producers needs a positive integer or auto");
      }
    } else if (const char* value = flag_value(argc, argv, &i, "--pin")) {
      opts.placement_set = true;
      if (const auto policy = runtime::parse_placement_policy(value)) {
        opts.placement = *policy;
      } else {
        opts.errors.push_back(
            "--pin needs one of none|compact|scatter|smt-aware");
      }
    } else if (const char* value = flag_value(argc, argv, &i, "--channel")) {
      opts.channel_set = true;
      if (const auto kind = parse_channel_kind(value)) {
        opts.channel = *kind;
      } else {
        opts.errors.push_back("--channel needs one of ring|mutex");
      }
    } else if (const char* value = flag_value(argc, argv, &i, "--mem")) {
      opts.mem_set = true;
      if (const auto request = mem::parse_mem_request(value)) {
        opts.mem = *request;
      } else {
        opts.errors.push_back("--mem needs one of auto|huge|thp|page");
      }
    } else if (const char* value = flag_value(argc, argv, &i, "--scenario")) {
      opts.scenario_set = true;
      if (is_scenario_name(value)) {
        opts.scenario = value;
      } else {
        std::string message = "--scenario needs one of";
        for (const std::string_view name : scenario_names()) {
          message += ' ';
          message += name;
        }
        opts.errors.push_back(std::move(message));
      }
    } else if (std::strcmp(argv[i], "--replicated") == 0) {
      opts.membership = membership_mode::replicated;
    }
  }
  if (opts.shards_auto) {
    // Sized to the discovered topology: one worker per allowed
    // physical core, holding back the producer cores (one for the
    // historical caller-thread producer, M for a --producers fan-out).
    const std::size_t reserved = opts.producers > 1 ? opts.producers : 1;
    opts.shards =
        runtime::auto_shard_count(runtime::host_topology(), reserved);
  }
  if (opts.producers > 1 && opts.membership == membership_mode::replicated) {
    opts.errors.push_back(
        "--producers > 1 needs snapshot membership (drop --replicated)");
  }
  return opts;
}

void emulator_options::apply(sharded_config& config) const {
  if (shards_set && shards > 0) {
    config.shards = shards;
  }
  if (producers_set && producers > 0) {
    config.producers = producers;
  }
  if (placement_set) {
    config.placement = placement;
  }
  config.membership = membership;
  if (channel_set) {
    config.channel = channel;
  }
  if (mem_set) {
    // Process-wide, not per-config: arenas are created when the driver
    // builds its tables, after flags are applied.
    mem::set_mem_request_override(mem);
  }
}

}  // namespace hdhash
