/// \file uniformity.hpp
/// \brief Figure 6 driver: Pearson χ² between the observed
/// requests-per-server distribution and the uniform distribution, across
/// pool sizes and bit-error counts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/error_model.hpp"
#include "exp/factory.hpp"

namespace hdhash {

struct uniformity_config {
  std::vector<std::size_t> server_counts = {2,   4,   8,   16,  32,  64,
                                            128, 256, 512, 1024, 2048};
  std::vector<std::size_t> bit_flip_levels = {0, 10};
  std::size_t requests = 100'000;
  std::size_t trials = 3;  ///< injection seeds averaged per noisy point
  std::uint64_t seed = 11;
};

struct uniformity_point {
  std::size_t servers = 0;
  std::size_t bit_flips = 0;
  double chi_squared = 0.0;      ///< Pearson statistic (mean over trials)
  double chi_over_dof = 0.0;     ///< statistic / (servers − 1); ≈1 is ideal
  double invalid_fraction = 0.0; ///< requests answered with a non-pool id
};

/// Runs the uniformity sweep for one algorithm.  χ² uses the paper's
/// formula with E = |R| / |S| over the true server set; requests answered
/// with a corrupted (non-pool) identifier are reported separately and
/// depress the per-server counts.
std::vector<uniformity_point> run_uniformity(std::string_view algorithm,
                                             const uniformity_config& config,
                                             const table_options& options);

/// Heterogeneous-pool extension of the Figure 6 experiment (ROADMAP):
/// servers join with weights cycling through `weight_cycle`, and the
/// discrepancy is measured against the *weight-proportional*
/// expectation E_i = |R| · w_i / Σw instead of the uniform one.
struct weighted_uniformity_config {
  std::vector<std::size_t> server_counts = {8, 32, 128, 512};
  /// Requested join weights, assigned round-robin over the pool.
  /// Integral values keep every algorithm's realized replication exact
  /// (hd rounds weights to whole circle-slot replicas).
  std::vector<double> weight_cycle = {1.0, 2.0, 4.0};
  std::size_t requests = 100'000;
  std::uint64_t seed = 11;
};

struct weighted_uniformity_point {
  std::size_t servers = 0;
  double chi_squared = 0.0;  ///< Pearson vs weight-proportional expectation
  double chi_over_dof = 0.0; ///< statistic / (servers − 1); ≈1 is ideal
  /// max over servers of |observed share − expected share| — the
  /// worst-case proportionality miss, readable without a χ² table.
  double max_share_error = 0.0;
  /// Combined observed traffic share of the servers carrying the
  /// cycle's maximum weight, and the weight-proportional expectation
  /// of that share.  The coarse weights-took-effect signal: ignoring
  /// weights entirely would leave the heavy group at its head-count
  /// share instead.
  double heavy_share = 0.0;
  double heavy_share_expected = 0.0;
};

/// Runs the weighted sweep for one algorithm supporting weighted join
/// (consistent, weighted-rendezvous, hd).  χ² = Σ (O_i − E_i)² / E_i
/// with E_i the weight-proportional expectation of the *requested*
/// weights: the statistic measures how faithfully the algorithm
/// delivers the weights it was asked for.
std::vector<weighted_uniformity_point> run_weighted_uniformity(
    std::string_view algorithm, const weighted_uniformity_config& config,
    const table_options& options);

}  // namespace hdhash
