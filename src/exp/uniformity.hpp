/// \file uniformity.hpp
/// \brief Figure 6 driver: Pearson χ² between the observed
/// requests-per-server distribution and the uniform distribution, across
/// pool sizes and bit-error counts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/error_model.hpp"
#include "exp/factory.hpp"

namespace hdhash {

struct uniformity_config {
  std::vector<std::size_t> server_counts = {2,   4,   8,   16,  32,  64,
                                            128, 256, 512, 1024, 2048};
  std::vector<std::size_t> bit_flip_levels = {0, 10};
  std::size_t requests = 100'000;
  std::size_t trials = 3;  ///< injection seeds averaged per noisy point
  std::uint64_t seed = 11;
};

struct uniformity_point {
  std::size_t servers = 0;
  std::size_t bit_flips = 0;
  double chi_squared = 0.0;      ///< Pearson statistic (mean over trials)
  double chi_over_dof = 0.0;     ///< statistic / (servers − 1); ≈1 is ideal
  double invalid_fraction = 0.0; ///< requests answered with a non-pool id
};

/// Runs the uniformity sweep for one algorithm.  χ² uses the paper's
/// formula with E = |R| / |S| over the true server set; requests answered
/// with a corrupted (non-pool) identifier are reported separately and
/// depress the per-server counts.
std::vector<uniformity_point> run_uniformity(std::string_view algorithm,
                                             const uniformity_config& config,
                                             const table_options& options);

}  // namespace hdhash
