#include "exp/table_spec.hpp"

#include <algorithm>
#include <utility>

#include "core/hierarchical.hpp"
#include "hashing/registry.hpp"
#include "table/bounded.hpp"
#include "table/consistent.hpp"
#include "table/jump.hpp"
#include "table/maglev.hpp"
#include "table/modular.hpp"
#include "table/rendezvous.hpp"
#include "table/weighted_rendezvous.hpp"
#include "util/require.hpp"

namespace hdhash {

table_spec::table_spec(std::string name)
    : name_(std::move(name)), hash_name_(table_options{}.hash_name) {}

table_options table_spec::current_options() const noexcept {
  table_options options = options_;
  options.hash_name = hash_name_;
  return options;
}

table_spec table_spec::modular() { return table_spec("modular"); }
table_spec table_spec::consistent() { return table_spec("consistent"); }
table_spec table_spec::consistent_rank() {
  return table_spec("consistent-rank");
}
table_spec table_spec::rendezvous() { return table_spec("rendezvous"); }
table_spec table_spec::weighted_rendezvous() {
  return table_spec("weighted-rendezvous");
}
table_spec table_spec::bounded() { return table_spec("bounded"); }
table_spec table_spec::jump() { return table_spec("jump"); }
table_spec table_spec::maglev() { return table_spec("maglev"); }
table_spec table_spec::hd() { return table_spec("hd"); }
table_spec table_spec::hd_hierarchical() {
  return table_spec("hd-hierarchical");
}

table_spec table_spec::algorithm(std::string_view name) {
  const auto known = all_algorithms();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    std::string message = "unknown algorithm: ";
    message += name;
    message += " — valid algorithms:";
    for (const std::string_view algorithm : known) {
      message += ' ';
      message += algorithm;
    }
    throw precondition_error(message);
  }
  return table_spec(std::string(name));
}

table_spec& table_spec::hash(std::string_view name) {
  hash_name_ = std::string(name);
  return *this;
}

table_spec& table_spec::seed(std::uint64_t value) {
  options_.seed = value;
  options_.hd.seed = value;
  return *this;
}

table_spec& table_spec::vnodes(std::size_t count) {
  options_.consistent_vnodes = count;
  return *this;
}

table_spec& table_spec::maglev_size(std::size_t size) {
  options_.maglev_table_size = size;
  return *this;
}

table_spec& table_spec::balance_factor(double c) {
  options_.bounded_balance_factor = c;
  return *this;
}

table_spec& table_spec::groups(std::size_t count) {
  options_.hierarchical_groups = count;
  return *this;
}

table_spec& table_spec::dimension(std::size_t d) {
  options_.hd.dimension = d;
  return *this;
}

table_spec& table_spec::capacity(std::size_t n) {
  options_.hd.capacity = n;
  return *this;
}

table_spec& table_spec::metric(hdc::metric m) {
  options_.hd.metric = m;
  return *this;
}

table_spec& table_spec::flip_policy(hdc::flip_policy p) {
  options_.hd.policy = p;
  return *this;
}

table_spec& table_spec::slot_cache(bool enabled) {
  options_.hd.slot_cache = enabled;
  return *this;
}

table_spec& table_spec::lattice_decode(bool enabled) {
  options_.hd.lattice_decode = enabled;
  return *this;
}

table_spec& table_spec::options(const table_options& options) {
  hash_name_ = std::string(options.hash_name);
  options_ = options;
  return *this;
}

std::unique_ptr<dynamic_table> table_spec::build() const {
  const hash64& hash = hash_by_name(hash_name_);
  if (name_ == "modular") {
    return std::make_unique<modular_table>(hash, options_.seed);
  }
  if (name_ == "consistent") {
    return std::make_unique<consistent_table>(
        hash, options_.consistent_vnodes, options_.seed);
  }
  if (name_ == "consistent-rank") {
    return std::make_unique<consistent_table>(
        hash, options_.consistent_vnodes, options_.seed,
        ring_lookup_mode::rank);
  }
  if (name_ == "rendezvous") {
    return std::make_unique<rendezvous_table>(hash, options_.seed);
  }
  if (name_ == "weighted-rendezvous") {
    return std::make_unique<weighted_rendezvous_table>(hash, options_.seed);
  }
  if (name_ == "bounded") {
    return std::make_unique<bounded_consistent_table>(
        hash, options_.bounded_balance_factor, options_.consistent_vnodes,
        options_.seed);
  }
  if (name_ == "hd-hierarchical") {
    hierarchical_config config;
    config.groups = options_.hierarchical_groups;
    config.shard = options_.hd;
    // Each shard holds ~k/groups servers; a quarter of the flat circle
    // keeps the lattice step large while bounding shard memory.
    config.shard.capacity = std::max<std::size_t>(
        64, options_.hd.capacity / options_.hierarchical_groups * 2);
    config.router = options_.hd;
    config.router.capacity = 4 * options_.hierarchical_groups;
    return std::make_unique<hierarchical_hd_table>(hash, config);
  }
  if (name_ == "jump") {
    return std::make_unique<jump_table>(hash, options_.seed);
  }
  if (name_ == "maglev") {
    return std::make_unique<maglev_table>(hash, options_.maglev_table_size,
                                          options_.seed);
  }
  if (name_ == "hd") {
    return std::make_unique<hd_table>(hash, options_.hd);
  }
  // Unreachable through the named constructors and algorithm(); kept as
  // a guard for specs forged through future construction paths.
  HDHASH_REQUIRE(false, "unknown algorithm: " + name_);
  return nullptr;
}

}  // namespace hdhash
