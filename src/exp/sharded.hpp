/// \file sharded.hpp
/// \brief Shard-count sweep driver: runs one workload through the
/// sharded, double-buffered emulator at increasing shard counts and
/// reports throughput plus a determinism check against the single-table
/// reference run.
///
/// This is the multi-core scaling experiment the ROADMAP's "millions of
/// users" north star asks for: the robustness (fig5_mismatch) and
/// disruption (tab_disruption) drivers expose it behind `--shards N`,
/// and bench/sharded_throughput records it as BENCH_sharded_emulator.json.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "emu/emulator.hpp"
#include "emu/sharded_emulator.hpp"
#include "exp/emulator_options.hpp"
#include "exp/factory.hpp"

namespace hdhash {

struct shard_sweep_config {
  /// Shard counts to sweep, in order; the determinism check compares
  /// every point against a plain single-table emulator run.
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8, 16};
  std::size_t servers = 128;       ///< initial join burst
  std::size_t requests = 40'000;   ///< requests per point
  double churn_rate = 0.0;         ///< join/leave probability per slot
  std::size_t buffer_capacity = 256;  ///< per-shard batch size
  /// Mesh producer threads per point (>= 1; snapshot mode only when
  /// above 1 — see sharded_config::producers).
  std::size_t producers = 1;
  /// Shard-channel implementation of every point's ingest mesh.
  channel_kind channel = default_channel_kind();
  /// Membership mode of the sharded runs (the reference run is always a
  /// plain single-table emulator).  Snapshot by default — epoch-
  /// published shared state; shadow oracles work in either mode (an
  /// epoch-published pristine clone in snapshot mode, one clone per
  /// replica in replicated mode).
  membership_mode membership = membership_mode::snapshot;
  bool shadow = false;             ///< pristine mismatch oracle per run
  /// Worker placement policy of every sharded run (src/runtime/):
  /// compact by default (HDHASH_PIN overrides process-wide); never
  /// affects assignments, only where workers execute.
  runtime::placement_policy placement = runtime::default_placement_policy();
  std::uint64_t seed = 42;
};

struct shard_sweep_point {
  std::size_t shards = 0;
  /// Producers the point ran with (the sweep config's value).
  std::size_t producers = 1;
  run_stats merged;
  double wall_seconds = 0.0;
  /// Sum of per-shard service rates (requests / on-thread decode time):
  /// the pipeline capacity with one core per shard.
  double aggregate_requests_per_second = 0.0;
  /// Delivered wall-clock rate — bounded by the machine's core count.
  double wall_requests_per_second = 0.0;
  /// aggregate rate relative to this sweep's first point.
  double aggregate_speedup = 0.0;
  /// End-of-run resident table bytes (N replicas in replicated mode;
  /// ~one table plus snapshot bookkeeping in snapshot mode).
  std::size_t table_memory_bytes = 0;
  /// Epoch snapshots actually published (snapshot mode; 0 otherwise).
  std::size_t snapshots_published = 0;
  /// Placement policy the point's workers ran under.
  runtime::placement_policy placement = runtime::placement_policy::none;
  /// Workers whose affinity call actually succeeded (0 on platforms
  /// without pinning, or under policy `none`).
  std::size_t pinned_workers = 0;
  /// Merged load histogram (and request/join/leave counts) identical to
  /// the plain single-table emulator run over the same events.
  bool matches_reference = false;
};

/// Runs the sweep for one algorithm.  In replicated mode every shard
/// builds an identical table replica; in snapshot mode one producer
/// table is built per point — with the hd slot cache enabled, so each
/// published epoch carries the fully resolved accelerator-steady-state
/// slot array that all shards share.  The reference run uses one more
/// instance of the caller's *unmodified* options (the real associative
/// query), so the determinism check also certifies that the maintained
/// slot cache answers bit-identically to cold decoding.
std::vector<shard_sweep_point> run_shard_sweep(std::string_view algorithm,
                                               const shard_sweep_config& config,
                                               const table_options& options);

/// Shard counts {1, 2, 4, ...} up to and including `max_shards`, which
/// is clamped to [1, 256] (a CLI-facing guard: the drivers feed this
/// straight from --shards).
std::vector<std::size_t> shard_count_sweep(std::size_t max_shards);

// ---------------------------------------------------------------------
// Deprecated per-flag scanners.  All emulator flags now parse through
// one surface — `parse_emulator_options` (exp/emulator_options.hpp) —
// which also knows `--producers` and `--channel` and collects every
// malformed flag into one error list.  These shims (wrappers over the
// unified parser) keep old out-of-tree drivers compiling.

/// Result of scanning argv for `--shards`: distinguishes "not asked
/// for" from "asked for but malformed" so drivers can error loudly
/// instead of silently skipping the panel the user requested.
struct shards_flag {
  bool present = false;   ///< the flag appeared on the command line
  std::size_t value = 0;  ///< parsed count; 0 when absent or invalid
  /// The value was the literal `auto`: sized to the host topology via
  /// runtime::auto_shard_count (value carries the resolved count).
  bool auto_sized = false;
};

/// \deprecated Use parse_emulator_options() — its `shards_set` /
/// `shards_auto` / `shards` fields carry the same information.
[[deprecated("use parse_emulator_options (exp/emulator_options.hpp)")]]
shards_flag parse_shards_flag(int argc, char** argv);

/// Result of scanning argv for `--pin <policy>` / `--pin=<policy>`:
/// distinguishes absent (use the default policy) from present-but-
/// unknown (drivers error loudly, listing the valid names).
struct pin_flag {
  bool present = false;  ///< the flag appeared on the command line
  bool valid = false;    ///< its value parsed as a placement policy
  runtime::placement_policy policy = runtime::placement_policy::none;
};

/// \deprecated Use parse_emulator_options() — its `placement_set` /
/// `placement` fields (plus `errors`) carry the same information.
[[deprecated("use parse_emulator_options (exp/emulator_options.hpp)")]]
pin_flag parse_pin_flag(int argc, char** argv);

/// \deprecated Use parse_emulator_options() — its `membership` field
/// reports replicated when the flag is present.
[[deprecated("use parse_emulator_options (exp/emulator_options.hpp)")]]
bool parse_replicated_flag(int argc, char** argv);

// parse_positive_value lives in exp/emulator_options.hpp now (it is a
// generic strict CLI integer parser, not an emulator knob) and is
// re-exported here by the include above.

}  // namespace hdhash
