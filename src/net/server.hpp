/// \file server.hpp
/// \brief The TCP front-end: an epoll reactor over per-connection
/// protocol state machines, feeding parsed ROUTE batches into the
/// streaming shard router.
///
/// Thread model — one pinned `runtime::worker_pool` carries the whole
/// server, io cores reserved apart from shard cores:
///
/// ```
///           pool worker 0 .. io_threads-1        io loops (epoll)
///           pool worker io_threads .. +shards-1  shard decode loops
///
///   accept ──► io loop: read ► wire_parser ► batch ROUTEs ─┐
///                 ▲                                        ▼
///                 │ completion wakeup        stream_router channels
///                 └── encode replies ◄── shard workers (lookup_batch)
/// ```
///
/// Each io loop owns its epoll instance, an eventfd wakeup, and its
/// connections outright (no connection is ever touched by two io
/// threads).  Consecutive ROUTE commands on a connection accumulate
/// into one `stream_router::route_batch` (flushed at the configured
/// batch capacity, at end-of-readable-data, and before every
/// membership command — so requests observe exactly the membership
/// order of their connection's stream).  Replies are queued per
/// connection in arrival order: a pending ticket blocks the replies
/// behind it until its shard slices complete, which is what makes
/// pipelined streams come back in request order.
///
/// Graceful shutdown (`stop()`): the listener closes, every io loop
/// drains — open batches are flushed, in-flight tickets complete,
/// replies are written — then connections close, the shard router
/// drains its channels, and the pool goes idle.  Connections that
/// cannot drain (a peer that stopped reading) are force-closed after
/// `drain_timeout_seconds`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "emu/stream_router.hpp"
#include "net/io_backend.hpp"
#include "runtime/placement_plan.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash::net {

struct server_config {
  /// IPv4 address to bind (loopback by default — the bench/e2e shape).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Reactor threads (pool workers 0..io_threads-1).
  std::size_t io_threads = 1;
  /// Shard decode workers (pool workers io_threads..io_threads+shards-1).
  std::size_t shards = 1;
  /// ROUTE batch flush threshold per connection (the emulator's batch
  /// size; partial batches flush at end-of-readable-data regardless).
  std::size_t batch_capacity = 256;
  /// Per-lane channel depth before submit() backpressures the reactor.
  std::size_t channel_depth = 4;
  /// Shard-channel implementation of the router's ingest mesh: each io
  /// loop owns a private stream_router session (one single-producer
  /// lane per shard), lock-free rings by default (HDHASH_CHANNEL to
  /// override process-wide).
  channel_kind channel = default_channel_kind();
  /// Placement policy of the shared worker pool (io workers take the
  /// first CPUs in policy order, shard workers the next — the io/shard
  /// core split).
  runtime::placement_policy placement = runtime::default_placement_policy();
  /// Forced force-close horizon for connections that will not drain.
  double drain_timeout_seconds = 5.0;
};

/// Monotonic counters, readable at any time (approximate while running).
struct server_counters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests_routed = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t protocol_errors = 0;
};

/// The epoll-based TCP front-end.  Construct, start(), serve, stop().
class net_server {
 public:
  /// Builds the producer-owned routing table (called once).
  using table_factory = std::function<std::unique_ptr<dynamic_table>()>;

  /// \pre factory != nullptr; io_threads >= 1; shards >= 1.
  net_server(table_factory factory, server_config config);

  /// Stops (gracefully) if still running.
  ~net_server();

  net_server(const net_server&) = delete;
  net_server& operator=(const net_server&) = delete;

  /// Whether this build can run the reactor at all (Linux epoll).
  static bool supported() noexcept;

  /// Binds the listener and launches the io + shard jobs.  Throws
  /// std::runtime_error on bind failure, precondition_error on an
  /// unsupported platform.  \post port() is the bound port.
  void start();

  /// Graceful shutdown; see the file comment.  Idempotent.
  void stop();

  /// Bound TCP port (valid after start()).
  std::uint16_t port() const noexcept;

  bool running() const noexcept;

  server_counters counters() const;

  /// The routing engine (membership, epoch and routing statistics).
  const stream_router& router() const;
  stream_router& router();

  /// Reactor backend in use and the host capability probe behind it.
  io_backend backend() const noexcept;
  const io_backend_probe& probe() const noexcept;

  const server_config& config() const noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace hdhash::net
