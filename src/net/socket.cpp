#include "net/socket.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HDHASH_NET_POSIX 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace hdhash::net {

void unique_fd::reset(int fd) noexcept {
#if defined(HDHASH_NET_POSIX)
  if (fd_ >= 0) {
    ::close(fd_);
  }
#endif
  fd_ = fd;
}

#if defined(HDHASH_NET_POSIX)

bool sockets_supported() noexcept { return true; }

namespace {

void set_error(std::string* error, const char* where) {
  if (error != nullptr) {
    *error = std::string(where) + ": " + std::strerror(errno);
  }
}

bool make_address(const std::string& address, std::uint16_t port,
                  sockaddr_in& out, std::string* error) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &out.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid IPv4 address: " + address;
    }
    return false;
  }
  return true;
}

}  // namespace

unique_fd tcp_listen(const std::string& address, std::uint16_t port,
                     int backlog, std::uint16_t* bound_port,
                     std::string* error) {
  sockaddr_in addr;
  if (!make_address(address, port, addr, error)) {
    return unique_fd{};
  }
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return unique_fd{};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    set_error(error, "bind");
    return unique_fd{};
  }
  if (::listen(fd.get(), backlog) != 0) {
    set_error(error, "listen");
    return unique_fd{};
  }
  if (!set_nonblocking(fd.get(), true)) {
    set_error(error, "fcntl(O_NONBLOCK)");
    return unique_fd{};
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      set_error(error, "getsockname");
      return unique_fd{};
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

unique_fd tcp_connect(const std::string& address, std::uint16_t port,
                      std::string* error) {
  sockaddr_in addr;
  if (!make_address(address, port, addr, error)) {
    return unique_fd{};
  }
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return unique_fd{};
  }
  // Retry the connect on EINTR; everything else is the caller's problem.
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR) {
      continue;
    }
    set_error(error, "connect");
    return unique_fd{};
  }
  return fd;
}

bool set_nonblocking(int fd, bool enabled) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return false;
  }
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, wanted) == 0;
}

bool set_nodelay(int fd) noexcept {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) == 0;
}

#else  // !HDHASH_NET_POSIX

bool sockets_supported() noexcept { return false; }

namespace {
void unsupported(std::string* error) {
  if (error != nullptr) {
    *error = "BSD sockets are not available on this platform";
  }
}
}  // namespace

unique_fd tcp_listen(const std::string&, std::uint16_t, int, std::uint16_t*,
                     std::string* error) {
  unsupported(error);
  return unique_fd{};
}

unique_fd tcp_connect(const std::string&, std::uint16_t, std::string* error) {
  unsupported(error);
  return unique_fd{};
}

bool set_nonblocking(int, bool) noexcept { return false; }
bool set_nodelay(int) noexcept { return false; }

#endif  // HDHASH_NET_POSIX

}  // namespace hdhash::net
