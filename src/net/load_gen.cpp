#include "net/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <unistd.h>
#endif

namespace hdhash::net {

namespace {

using clock = std::chrono::steady_clock;

/// splitmix64 — small, seedable, and already the repo's mixing idiom;
/// the stream must be reproducible from (seed, connection) alone.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct connection_result {
  std::vector<std::uint64_t> latencies_us;
  std::map<server_id, std::uint64_t> server_load;
  std::vector<server_id> answers;
  std::size_t replies = 0;
  std::size_t errors = 0;
  std::string failure;  ///< non-empty → the connection aborted
};

#if defined(__unix__) || defined(__APPLE__)

bool write_all(int fd, const std::string& bytes, std::string& failure) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t written =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    if (written > 0) {
      offset += static_cast<std::size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) {
      continue;
    }
    failure = "write failed";
    return false;
  }
  return true;
}

void run_connection(const load_gen_config& config, std::size_t index,
                    connection_result& result) {
  const std::vector<request_id> ids = load_gen_ids(config, index);
  std::string error;
  const unique_fd fd = tcp_connect(config.host, config.port, &error);
  if (!fd.valid()) {
    result.failure = "connect: " + error;
    return;
  }
  set_nodelay(fd.get());

  result.latencies_us.reserve(ids.size());
  if (config.record_answers) {
    result.answers.reserve(ids.size());
  }

  reply_parser parser;
  std::string sendbuf;
  std::deque<clock::time_point> inflight;
  char line[64];
  char buffer[16 * 1024];
  std::size_t sent = 0;

  while (result.replies < ids.size()) {
    sendbuf.clear();
    const clock::time_point batch_start = clock::now();
    while (sent < ids.size() &&
           sent - result.replies < config.pipeline_depth) {
      const int formatted =
          std::snprintf(line, sizeof line, "ROUTE %llu\r\n",
                        static_cast<unsigned long long>(ids[sent]));
      sendbuf.append(line, static_cast<std::size_t>(formatted));
      inflight.push_back(batch_start);
      ++sent;
    }
    if (!sendbuf.empty() &&
        !write_all(fd.get(), sendbuf, result.failure)) {
      return;
    }
    const ssize_t received = ::read(fd.get(), buffer, sizeof buffer);
    if (received == 0) {
      result.failure = "server closed the connection mid-run";
      return;
    }
    if (received < 0) {
      if (errno == EINTR) {
        continue;
      }
      result.failure = "read failed";
      return;
    }
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(received)));
    wire_reply reply;
    for (;;) {
      const parse_result pulled = parser.next(reply);
      if (pulled == parse_result::need_more) {
        break;
      }
      if (pulled == parse_result::error) {
        result.failure = "reply parse: " + parser.error_message();
        return;
      }
      if (inflight.empty()) {
        result.failure = "received more replies than requests";
        return;
      }
      const clock::time_point sent_at = inflight.front();
      inflight.pop_front();
      result.latencies_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              clock::now() - sent_at)
              .count()));
      ++result.replies;
      if (reply.type == wire_reply::kind::integer) {
        ++result.server_load[reply.value];
        if (config.record_answers) {
          result.answers.push_back(reply.value);
        }
      } else {
        ++result.errors;
        if (config.record_answers) {
          result.answers.push_back(0);
        }
      }
    }
  }
}

#else  // !unix

void run_connection(const load_gen_config&, std::size_t,
                    connection_result& result) {
  result.failure = "sockets unsupported on this platform";
}

#endif

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         double quantile) {
  if (sorted.empty()) {
    return 0;
  }
  const double position =
      quantile * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(position)];
}

}  // namespace

std::vector<request_id> load_gen_ids(const load_gen_config& config,
                                     std::size_t connection) {
  HDHASH_REQUIRE(config.key_universe > 0, "key universe must be positive");
  std::vector<request_id> ids;
  ids.reserve(config.requests_per_connection);
  // Distinct streams per connection; identical runs for identical
  // (seed, connection) pairs regardless of connection count.
  std::uint64_t state =
      config.seed ^ (0xA076'1D64'78BD'642Full *
                     (static_cast<std::uint64_t>(connection) + 1));
  for (std::size_t i = 0; i < config.requests_per_connection; ++i) {
    ids.push_back(splitmix64(state) % config.key_universe);
  }
  return ids;
}

load_gen_report run_load_gen(const load_gen_config& config) {
  HDHASH_REQUIRE(config.connections >= 1, "need at least one connection");
  HDHASH_REQUIRE(config.pipeline_depth >= 1,
                 "pipeline depth must be positive");
  std::vector<connection_result> results(config.connections);
  std::vector<std::thread> threads;
  threads.reserve(config.connections);

  const clock::time_point start = clock::now();
  for (std::size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back(
        [&config, c, &results] { run_connection(config, c, results[c]); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double wall =
      std::chrono::duration<double>(clock::now() - start).count();

  load_gen_report report;
  report.wall_seconds = wall;
  std::vector<std::uint64_t> latencies;
  for (std::size_t c = 0; c < results.size(); ++c) {
    connection_result& result = results[c];
    if (!result.failure.empty()) {
      throw std::runtime_error("load_gen connection " + std::to_string(c) +
                               ": " + result.failure);
    }
    report.requests += result.replies;
    report.errors += result.errors;
    for (const auto& [server, count] : result.server_load) {
      report.server_load[server] += count;
    }
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    if (config.record_answers) {
      report.answers.push_back(std::move(result.answers));
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.p999_us = percentile(latencies, 0.999);
  report.max_us = latencies.empty() ? 0 : latencies.back();
  report.requests_per_second =
      wall > 0.0 ? static_cast<double>(report.requests) / wall : 0.0;
  return report;
}

}  // namespace hdhash::net
