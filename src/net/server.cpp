#include "net/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/hugepage_arena.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runtime/worker_pool.hpp"
#include "util/require.hpp"

#if defined(__linux__)
#define HDHASH_NET_EPOLL 1
#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace hdhash::net {

#if defined(HDHASH_NET_EPOLL)

namespace {

using clock = std::chrono::steady_clock;

/// One queued reply slot, in command-arrival order.  Either a routing
/// ticket whose answers materialize when the shard workers finish, or
/// an immediately encoded reply (+OK, +PONG, -ERR, $stats).
struct pending_reply {
  std::shared_ptr<stream_router::route_batch> ticket;  // null → immediate
  std::string immediate;
};

/// Per-connection state machine, owned by exactly one io loop.
struct connection {
  unique_fd fd;
  wire_parser parser;
  std::deque<pending_reply> replies;
  /// ROUTE accumulator: created on the first ROUTE after a flush and
  /// referenced by its pending_reply slot until submitted.
  std::shared_ptr<stream_router::route_batch> open_batch;
  std::string outbuf;
  std::size_t out_offset = 0;
  bool want_write = false;      ///< EPOLLOUT armed
  bool reading = true;          ///< EPOLLIN armed
  bool peer_closed = false;     ///< read() returned 0
  bool close_requested = false; ///< fatal protocol error or drain

  bool flushed() const {
    return replies.empty() && open_batch == nullptr &&
           out_offset >= outbuf.size();
  }
};

}  // namespace

struct net_server::impl {
  table_factory factory;
  server_config config;
  io_backend backend = io_backend::epoll;

  unique_fd listener;
  std::uint16_t bound_port = 0;
  std::unique_ptr<runtime::worker_pool> pool;
  std::unique_ptr<stream_router> route_engine;

  /// One reactor per io worker; created before the jobs launch and
  /// destroyed only with the server, so shard-worker completion posts
  /// can never race a dying loop.
  struct io_loop {
    impl* server = nullptr;
    std::size_t index = 0;
    /// This loop's private stream_router producer row: flushes push
    /// ROUTE slices straight into single-producer shard lanes —
    /// lock-free end to end with the default ring channels.
    stream_router::session route;
    unique_fd epoll_fd;
    unique_fd wake_fd;
    std::mutex inbox_mutex;
    std::vector<int> incoming_fds;
    std::vector<std::weak_ptr<connection>> completions;
    std::atomic<bool> draining{false};
    std::unordered_map<int, std::shared_ptr<connection>> conns;

    void wake() {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t written =
          ::write(wake_fd.get(), &one, sizeof one);
    }
  };
  std::vector<std::unique_ptr<io_loop>> loops;

  std::atomic<std::size_t> next_loop{0};
  std::atomic<bool> running{false};
  bool started = false;
  bool stopped = false;

  // io-loop liveness: stop() waits for the reactors to exit *before*
  // draining the shard channels (wait_idle would block on the decode
  // loops otherwise).
  std::mutex io_exit_mutex;
  std::condition_variable io_exited;
  std::size_t io_active = 0;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> open{0};
  std::atomic<std::uint64_t> joins{0};
  std::atomic<std::uint64_t> leaves{0};
  std::atomic<std::uint64_t> protocol_errors{0};

  void update_interest(io_loop& loop, connection& conn);
  void setup_connection(io_loop& loop, int fd);
  void close_connection(io_loop& loop, connection& conn);
  void accept_ready(io_loop& loop);
  void process_inbox(io_loop& loop);
  void process_commands(io_loop& loop, connection& conn);
  void flush_open_batch(io_loop& loop, connection& conn);
  void flush_replies(connection& conn);
  bool write_out(io_loop& loop, connection& conn);
  void maybe_close(io_loop& loop, connection& conn);
  void handle_read(io_loop& loop, const std::shared_ptr<connection>& conn);
  void begin_drain(io_loop& loop);
  void run_io_loop(io_loop& loop);
  std::string render_stats();
};

void net_server::impl::update_interest(io_loop& loop, connection& conn) {
  epoll_event event{};
  event.events = (conn.reading ? EPOLLIN : 0u) |
                 (conn.want_write ? EPOLLOUT : 0u);
  event.data.fd = conn.fd.get();
  ::epoll_ctl(loop.epoll_fd.get(), EPOLL_CTL_MOD, conn.fd.get(), &event);
}

void net_server::impl::setup_connection(io_loop& loop, int raw_fd) {
  unique_fd fd(raw_fd);
  if (loop.draining.load(std::memory_order_relaxed)) {
    return;  // refuse new work during shutdown; fd closes here
  }
  if (!set_nonblocking(fd.get(), true)) {
    return;
  }
  set_nodelay(fd.get());
  auto conn = std::make_shared<connection>();
  conn->fd = std::move(fd);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = conn->fd.get();
  if (::epoll_ctl(loop.epoll_fd.get(), EPOLL_CTL_ADD, conn->fd.get(),
                  &event) != 0) {
    return;
  }
  open.fetch_add(1, std::memory_order_relaxed);
  loop.conns.emplace(conn->fd.get(), std::move(conn));
}

void net_server::impl::close_connection(io_loop& loop, connection& conn) {
  const int fd = conn.fd.get();
  open.fetch_sub(1, std::memory_order_relaxed);
  // Erasing destroys the connection (the fd close deregisters it from
  // epoll); in-flight tickets stay alive through the router's own
  // shared_ptr and complete into a weak_ptr that no longer locks.
  loop.conns.erase(fd);
}

void net_server::impl::accept_ready(io_loop& loop) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or a transient accept error: epoll re-arms us
    }
    accepted.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target =
        next_loop.fetch_add(1, std::memory_order_relaxed) % loops.size();
    if (target == loop.index) {
      setup_connection(loop, fd);
      continue;
    }
    io_loop& other = *loops[target];
    {
      const std::lock_guard lock(other.inbox_mutex);
      other.incoming_fds.push_back(fd);
    }
    other.wake();
  }
}

void net_server::impl::process_inbox(io_loop& loop) {
  std::vector<int> fds;
  std::vector<std::weak_ptr<connection>> completions;
  {
    const std::lock_guard lock(loop.inbox_mutex);
    fds.swap(loop.incoming_fds);
    completions.swap(loop.completions);
  }
  for (const int fd : fds) {
    setup_connection(loop, fd);
  }
  for (const auto& weak : completions) {
    if (const std::shared_ptr<connection> conn = weak.lock()) {
      flush_replies(*conn);
      if (write_out(loop, *conn)) {
        maybe_close(loop, *conn);
      }
    }
  }
}

void net_server::impl::flush_open_batch(io_loop& loop, connection& conn) {
  if (conn.open_batch == nullptr) {
    return;
  }
  // May block briefly when a shard lane is full — that stall *is* the
  // backpressure path from the decode workers to the TCP window.  The
  // loop's private session pushes into its own single-producer lanes,
  // so concurrent io loops never contend a lock here.
  loop.route.submit(std::move(conn.open_batch));
  conn.open_batch = nullptr;
}

void net_server::impl::process_commands(io_loop& loop, connection& conn) {
  wire_command cmd;
  for (;;) {
    const parse_result result = conn.parser.next(cmd);
    if (result == parse_result::need_more) {
      return;
    }
    if (result == parse_result::error) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      pending_reply item;
      encode_error(item.immediate, conn.parser.error_message());
      conn.replies.push_back(std::move(item));
      if (conn.parser.failed()) {
        // Framing violation: answer, then drain and close.
        conn.close_requested = true;
        conn.reading = false;
        update_interest(loop, conn);
        return;
      }
      continue;
    }
    switch (cmd.kind) {
      case command_kind::ping: {
        pending_reply item;
        encode_pong(item.immediate);
        conn.replies.push_back(std::move(item));
        break;
      }
      case command_kind::stats: {
        pending_reply item;
        encode_bulk(item.immediate, render_stats());
        conn.replies.push_back(std::move(item));
        break;
      }
      case command_kind::route: {
        if (route_engine->members() == 0) {
          pending_reply item;
          encode_error(item.immediate, "no servers in pool");
          conn.replies.push_back(std::move(item));
          break;
        }
        if (conn.open_batch == nullptr) {
          auto ticket = std::make_shared<stream_router::route_batch>();
          ticket->requests.reserve(config.batch_capacity);
          io_loop* owner = &loop;
          ticket->on_complete = [owner, weak = std::weak_ptr<connection>(
                                            loop.conns.at(conn.fd.get()))] {
            {
              const std::lock_guard lock(owner->inbox_mutex);
              owner->completions.push_back(weak);
            }
            owner->wake();
          };
          conn.replies.push_back(pending_reply{ticket, {}});
          conn.open_batch = std::move(ticket);
        }
        conn.open_batch->requests.push_back(cmd.id);
        if (conn.open_batch->requests.size() >= config.batch_capacity) {
          flush_open_batch(loop, conn);
        }
        break;
      }
      case command_kind::join: {
        // Membership is a batch barrier: everything routed before this
        // JOIN must resolve against the pre-join epoch.
        flush_open_batch(loop, conn);
        pending_reply item;
        try {
          route_engine->join(cmd.id, cmd.weight);
          joins.fetch_add(1, std::memory_order_relaxed);
          encode_ok(item.immediate);
        } catch (const precondition_error&) {
          encode_error(item.immediate, "JOIN rejected (duplicate id, bad "
                                       "weight, or pool at capacity)");
        }
        conn.replies.push_back(std::move(item));
        break;
      }
      case command_kind::leave: {
        flush_open_batch(loop, conn);
        pending_reply item;
        try {
          route_engine->leave(cmd.id);
          leaves.fetch_add(1, std::memory_order_relaxed);
          encode_ok(item.immediate);
        } catch (const precondition_error&) {
          encode_error(item.immediate, "LEAVE rejected (server not in pool)");
        }
        conn.replies.push_back(std::move(item));
        break;
      }
    }
  }
}

void net_server::impl::flush_replies(connection& conn) {
  while (!conn.replies.empty()) {
    pending_reply& item = conn.replies.front();
    if (item.ticket != nullptr) {
      if (!item.ticket->done.load(std::memory_order_acquire)) {
        return;  // head-of-line ticket still in the shard workers
      }
      if (item.ticket->failed.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < item.ticket->requests.size(); ++i) {
          encode_error(conn.outbuf, "routing failed");
        }
      } else {
        for (const server_id server : item.ticket->answers) {
          encode_route_reply(conn.outbuf, server);
        }
      }
    } else {
      conn.outbuf.append(item.immediate);
    }
    conn.replies.pop_front();
  }
}

bool net_server::impl::write_out(io_loop& loop, connection& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    const ssize_t written =
        ::write(conn.fd.get(), conn.outbuf.data() + conn.out_offset,
                conn.outbuf.size() - conn.out_offset);
    if (written > 0) {
      conn.out_offset += static_cast<std::size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) {
      continue;
    }
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        update_interest(loop, conn);
      }
      return true;
    }
    close_connection(loop, conn);  // EPIPE/ECONNRESET: peer is gone
    return false;
  }
  conn.outbuf.clear();
  conn.out_offset = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_interest(loop, conn);
  }
  return true;
}

void net_server::impl::maybe_close(io_loop& loop, connection& conn) {
  const bool finished = conn.peer_closed || conn.close_requested ||
                        loop.draining.load(std::memory_order_relaxed);
  if (finished && conn.flushed()) {
    close_connection(loop, conn);
  }
}

void net_server::impl::handle_read(io_loop& loop,
                                   const std::shared_ptr<connection>& conn) {
  char buffer[16 * 1024];
  while (conn->reading) {
    const ssize_t received =
        ::read(conn->fd.get(), buffer, sizeof buffer);
    if (received > 0) {
      conn->parser.feed(
          std::string_view(buffer, static_cast<std::size_t>(received)));
      process_commands(loop, *conn);
      if (static_cast<std::size_t>(received) < sizeof buffer) {
        break;  // drained the socket — don't pay one extra EAGAIN read
      }
      continue;
    }
    if (received == 0) {
      conn->peer_closed = true;
      conn->reading = false;
      update_interest(loop, *conn);
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    close_connection(loop, *conn);
    return;
  }
  // End of readable data: a partial batch must not wait for more bytes
  // (pipelining-friendly is not latency-hostile).
  flush_open_batch(loop, *conn);
  flush_replies(*conn);
  if (write_out(loop, *conn)) {
    maybe_close(loop, *conn);
  }
}

void net_server::impl::begin_drain(io_loop& loop) {
  if (loop.index == 0 && listener.valid()) {
    listener.reset();  // closes and deregisters — no more accepts
  }
  // Stop reading everywhere, flush what is already parsed, and let
  // in-flight tickets complete; maybe_close() reaps each connection
  // the moment it is fully flushed.
  for (auto& [fd, conn] : loop.conns) {
    conn->reading = false;
    update_interest(loop, *conn);
    flush_open_batch(loop, *conn);
  }
  std::vector<connection*> flushable;
  flushable.reserve(loop.conns.size());
  for (auto& [fd, conn] : loop.conns) {
    flushable.push_back(conn.get());
  }
  for (connection* conn : flushable) {
    flush_replies(*conn);
    if (write_out(loop, *conn)) {
      maybe_close(loop, *conn);
    }
  }
}

void net_server::impl::run_io_loop(io_loop& loop) {
  epoll_event events[64];
  bool drain_started = false;
  clock::time_point drain_deadline{};
  for (;;) {
    const int ready =
        ::epoll_wait(loop.epoll_fd.get(), events, 64, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      break;  // reactor fd died — unrecoverable for this loop
    }
    for (int i = 0; i < (ready > 0 ? ready : 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd.get()) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t got =
            ::read(loop.wake_fd.get(), &drained, sizeof drained);
        continue;
      }
      if (loop.index == 0 && listener.valid() && fd == listener.get()) {
        accept_ready(loop);
        continue;
      }
      const auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) {
        continue;  // closed earlier in this batch
      }
      const std::shared_ptr<connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Let read() observe the condition (0 or an error) and close.
        conn->reading = true;
        handle_read(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        handle_read(loop, conn);
      }
      if ((events[i].events & EPOLLOUT) &&
          loop.conns.count(fd) != 0) {
        flush_replies(*conn);
        if (write_out(loop, *conn)) {
          maybe_close(loop, *conn);
        }
      }
    }
    process_inbox(loop);
    if (loop.draining.load(std::memory_order_relaxed)) {
      const clock::time_point now = clock::now();
      if (!drain_started) {
        drain_started = true;
        drain_deadline =
            now + std::chrono::duration_cast<clock::duration>(
                      std::chrono::duration<double>(
                          config.drain_timeout_seconds));
        begin_drain(loop);
      }
      if (loop.conns.empty()) {
        break;
      }
      if (now >= drain_deadline) {
        // Peers that stopped reading (or never will): cut them loose.
        while (!loop.conns.empty()) {
          close_connection(loop, *loop.conns.begin()->second);
        }
        break;
      }
    }
  }
}

std::string net_server::impl::render_stats() {
  // Memory-layer panel: which backing the hot state actually landed on
  // and the arena-level residency, aggregated over every node arena
  // (shared rows are attributed to their owning arena, counted once).
  const mem::arena_registry_stats arenas = mem::registry_stats();
  char line[768];
  const int written = std::snprintf(
      line, sizeof line,
      "requests_routed=%llu\r\nbatches_routed=%llu\r\nservers=%zu\r\n"
      "epoch=%llu\r\nsnapshots_published=%zu\r\nshards=%zu\r\n"
      "io_threads=%zu\r\nconnections_open=%llu\r\n"
      "connections_accepted=%llu\r\njoins=%llu\r\nleaves=%llu\r\n"
      "protocol_errors=%llu\r\nio_backend=%s\r\n"
      "arena_backing=%s\r\nresident_pages=%zu\r\nhugepage_bytes=%zu",
      static_cast<unsigned long long>(route_engine->requests_routed()),
      static_cast<unsigned long long>(route_engine->batches_routed()),
      route_engine->members(),
      static_cast<unsigned long long>(route_engine->epoch()),
      route_engine->published_epochs(), route_engine->shards(),
      config.io_threads,
      static_cast<unsigned long long>(open.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          accepted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(joins.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          leaves.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          protocol_errors.load(std::memory_order_relaxed)),
      std::string(to_string(backend)).c_str(),
      std::string(mem::to_string(arenas.backing)).c_str(),
      arenas.resident_pages, arenas.hugepage_bytes);
  return std::string(line, static_cast<std::size_t>(written));
}

bool net_server::supported() noexcept { return sockets_supported(); }

net_server::net_server(table_factory factory, server_config config)
    : impl_(std::make_unique<impl>()) {
  HDHASH_REQUIRE(factory != nullptr, "net server needs a table factory");
  HDHASH_REQUIRE(config.io_threads >= 1, "need at least one io thread");
  HDHASH_REQUIRE(config.shards >= 1, "need at least one shard");
  HDHASH_REQUIRE(config.batch_capacity >= 1,
                 "batch capacity must be positive");
  impl_->factory = std::move(factory);
  impl_->config = std::move(config);
}

net_server::~net_server() {
  try {
    stop();
  } catch (...) {
    // Destructor shutdown keeps exceptions (a worker fault surfaced by
    // wait_idle) from escaping; call stop() directly to observe them.
  }
}

void net_server::start() {
  impl& s = *impl_;
  HDHASH_REQUIRE(!s.started, "net server already started");
  s.backend = select_io_backend();
  std::string error;
  s.listener = tcp_listen(s.config.bind_address, s.config.port, 512,
                          &s.bound_port, &error);
  if (!s.listener.valid()) {
    throw std::runtime_error("net server cannot listen on " +
                             s.config.bind_address + ": " + error);
  }
  const std::size_t io = s.config.io_threads;
  s.pool = std::make_unique<runtime::worker_pool>(io + s.config.shards,
                                                  s.config.placement);
  auto table = s.factory();
  HDHASH_REQUIRE(table != nullptr, "table factory returned null");
  stream_router::config router_config;
  router_config.shards = s.config.shards;
  router_config.sessions = io;  // one private producer row per io loop
  router_config.channel_depth = s.config.channel_depth;
  router_config.channel = s.config.channel;
  s.route_engine = std::make_unique<stream_router>(std::move(table), *s.pool,
                                                   io, router_config);
  s.route_engine->start();

  s.loops.reserve(io);
  for (std::size_t i = 0; i < io; ++i) {
    auto loop = std::make_unique<impl::io_loop>();
    loop->server = &s;
    loop->index = i;
    loop->route = s.route_engine->open_session(i);
    loop->epoll_fd = unique_fd(::epoll_create1(EPOLL_CLOEXEC));
    loop->wake_fd =
        unique_fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!loop->epoll_fd.valid() || !loop->wake_fd.valid()) {
      throw std::runtime_error("net server cannot create reactor fds");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = loop->wake_fd.get();
    ::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD, loop->wake_fd.get(),
                &event);
    if (i == 0) {
      epoll_event accept_event{};
      accept_event.events = EPOLLIN;
      accept_event.data.fd = s.listener.get();
      ::epoll_ctl(loop->epoll_fd.get(), EPOLL_CTL_ADD, s.listener.get(),
                  &accept_event);
    }
    s.loops.push_back(std::move(loop));
  }
  s.io_active = io;
  s.started = true;
  s.running.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < io; ++i) {
    impl::io_loop* loop = s.loops[i].get();
    s.pool->submit(i, [&s, loop] {
      // Guarantees the exit signal even if the reactor throws — stop()
      // must never deadlock waiting on a loop that died early.
      struct exit_signal {
        impl& server;
        ~exit_signal() {
          {
            const std::lock_guard lock(server.io_exit_mutex);
            --server.io_active;
          }
          server.io_exited.notify_all();
        }
      } signal{s};
      s.run_io_loop(*loop);
    });
  }
}

void net_server::stop() {
  impl& s = *impl_;
  if (!s.started || s.stopped) {
    return;
  }
  s.stopped = true;
  s.running.store(false, std::memory_order_release);
  for (auto& loop : s.loops) {
    loop->draining.store(true, std::memory_order_relaxed);
    loop->wake();
  }
  {
    std::unique_lock lock(s.io_exit_mutex);
    s.io_exited.wait(lock, [&s] { return s.io_active == 0; });
  }
  // With the reactors parked, close the shard channels and drain: every
  // ticket submitted before the loops exited completes here, and the
  // pool's wait_idle rethrows the first worker fault.
  s.route_engine->stop();
}

std::uint16_t net_server::port() const noexcept { return impl_->bound_port; }

bool net_server::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

server_counters net_server::counters() const {
  const impl& s = *impl_;
  server_counters counters;
  counters.connections_accepted =
      s.accepted.load(std::memory_order_relaxed);
  counters.connections_open = s.open.load(std::memory_order_relaxed);
  counters.requests_routed =
      s.route_engine != nullptr ? s.route_engine->requests_routed() : 0;
  counters.joins = s.joins.load(std::memory_order_relaxed);
  counters.leaves = s.leaves.load(std::memory_order_relaxed);
  counters.protocol_errors =
      s.protocol_errors.load(std::memory_order_relaxed);
  return counters;
}

const stream_router& net_server::router() const {
  HDHASH_REQUIRE(impl_->route_engine != nullptr,
                 "router is available after start()");
  return *impl_->route_engine;
}

stream_router& net_server::router() {
  HDHASH_REQUIRE(impl_->route_engine != nullptr,
                 "router is available after start()");
  return *impl_->route_engine;
}

io_backend net_server::backend() const noexcept { return impl_->backend; }

const io_backend_probe& net_server::probe() const noexcept {
  return probe_io_backends();
}

const server_config& net_server::config() const noexcept {
  return impl_->config;
}

#else  // !HDHASH_NET_EPOLL

/// Non-Linux stub: construction works (so configuration code is
/// portable), start() fails loudly, supported() says why.
struct net_server::impl {
  table_factory factory;
  server_config config;
};

bool net_server::supported() noexcept { return false; }

net_server::net_server(table_factory factory, server_config config)
    : impl_(std::make_unique<impl>()) {
  HDHASH_REQUIRE(factory != nullptr, "net server needs a table factory");
  impl_->factory = std::move(factory);
  impl_->config = std::move(config);
}

net_server::~net_server() = default;

void net_server::start() {
  HDHASH_REQUIRE(false, "the epoll reactor needs Linux; "
                        "net_server::supported() reports availability");
}

void net_server::stop() {}

std::uint16_t net_server::port() const noexcept { return 0; }
bool net_server::running() const noexcept { return false; }
server_counters net_server::counters() const { return {}; }

const stream_router& net_server::router() const {
  HDHASH_REQUIRE(false, "net server unsupported on this platform");
}

stream_router& net_server::router() {
  HDHASH_REQUIRE(false, "net server unsupported on this platform");
}

io_backend net_server::backend() const noexcept { return io_backend::epoll; }

const io_backend_probe& net_server::probe() const noexcept {
  return probe_io_backends();
}

const server_config& net_server::config() const noexcept {
  return impl_->config;
}

#endif  // HDHASH_NET_EPOLL

}  // namespace hdhash::net
