#include "net/protocol.hpp"

#include <charconv>
#include <cstdio>

namespace hdhash::net {

namespace {

/// Splits `line` into at most `max_tokens` space-separated tokens.
/// Returns the token count, or -1 on empty tokens (doubled/leading/
/// trailing separators) or token overflow — both malformed.
int tokenize(std::string_view line, std::string_view* tokens,
             int max_tokens) {
  int count = 0;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t space = line.find(' ', pos);
    const std::size_t end = space == std::string_view::npos ? line.size()
                                                            : space;
    if (end == pos) {
      return -1;  // empty token
    }
    if (count == max_tokens) {
      return -1;  // too many tokens
    }
    tokens[count++] = line.substr(pos, end - pos);
    if (space == std::string_view::npos) {
      break;
    }
    pos = space + 1;
  }
  return count;
}

/// Strict full-token uint64 parse (decimal, no sign, no trailing junk).
bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty() || token.size() > 20) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Strict full-token positive double parse for JOIN weights.
bool parse_weight(std::string_view token, double& out) {
  if (token.empty() || token.size() > 32 || token.front() == '-' ||
      token.front() == '+') {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size() &&
         out > 0.0;
}

}  // namespace

wire_parser::wire_parser(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {}

void wire_parser::feed(std::string_view bytes) {
  if (failed_) {
    return;  // sink further input — the connection is going away
  }
  // Compact before the buffer doubles in dead prefix.
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes);
}

parse_result wire_parser::fail_line(std::string_view message,
                                    std::size_t consume) {
  error_.assign(message);
  offset_ += consume;
  return parse_result::error;
}

parse_result wire_parser::next(wire_command& out) {
  if (failed_) {
    return parse_result::error;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(offset_);
  const std::size_t newline = pending.find('\n');
  if (newline == std::string_view::npos) {
    if (pending.size() >= max_line_bytes_) {
      failed_ = true;
      error_ = "line exceeds protocol maximum";
      return parse_result::error;
    }
    return parse_result::need_more;
  }
  if (newline + 1 > max_line_bytes_) {
    failed_ = true;
    error_ = "line exceeds protocol maximum";
    return parse_result::error;
  }
  // Accept CRLF (canonical) and bare LF (manual/netcat sessions).
  std::string_view line = pending.substr(0, newline);
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  const std::size_t consume = newline + 1;
  if (line.empty()) {
    return fail_line("empty command", consume);
  }
  for (const char c : line) {
    if (c == '\0' || c == '\r') {
      return fail_line("control byte inside command", consume);
    }
  }
  std::string_view tokens[3];
  const int count = tokenize(line, tokens, 3);
  if (count < 0) {
    return fail_line("malformed token separators", consume);
  }
  const std::string_view verb = tokens[0];
  if (verb == "PING") {
    if (count != 1) {
      return fail_line("PING takes no arguments", consume);
    }
    out = wire_command{command_kind::ping, 0, 1.0};
  } else if (verb == "STATS") {
    if (count != 1) {
      return fail_line("STATS takes no arguments", consume);
    }
    out = wire_command{command_kind::stats, 0, 1.0};
  } else if (verb == "ROUTE") {
    std::uint64_t id = 0;
    if (count != 2 || !parse_u64(tokens[1], id)) {
      return fail_line("ROUTE needs one decimal id", consume);
    }
    out = wire_command{command_kind::route, id, 1.0};
  } else if (verb == "JOIN") {
    std::uint64_t id = 0;
    double weight = 1.0;
    if (count < 2 || count > 3 || !parse_u64(tokens[1], id) ||
        (count == 3 && !parse_weight(tokens[2], weight))) {
      return fail_line("JOIN needs a decimal id and optional weight > 0",
                       consume);
    }
    out = wire_command{command_kind::join, id, weight};
  } else if (verb == "LEAVE") {
    std::uint64_t id = 0;
    if (count != 2 || !parse_u64(tokens[1], id)) {
      return fail_line("LEAVE needs one decimal id", consume);
    }
    out = wire_command{command_kind::leave, id, 1.0};
  } else {
    return fail_line("unknown command", consume);
  }
  offset_ += consume;
  return parse_result::command;
}

// --- reply encoding ----------------------------------------------------

void encode_ok(std::string& out) { out.append("+OK\r\n"); }

void encode_pong(std::string& out) { out.append("+PONG\r\n"); }

void encode_route_reply(std::string& out, std::uint64_t server) {
  char digits[24];
  const int written =
      std::snprintf(digits, sizeof digits, ":%llu\r\n",
                    static_cast<unsigned long long>(server));
  out.append(digits, static_cast<std::size_t>(written));
}

void encode_error(std::string& out, std::string_view message) {
  out.append("-ERR ");
  out.append(message);
  out.append("\r\n");
}

void encode_bulk(std::string& out, std::string_view payload) {
  char header[24];
  const int written =
      std::snprintf(header, sizeof header, "$%zu\r\n", payload.size());
  out.append(header, static_cast<std::size_t>(written));
  out.append(payload);
  out.append("\r\n");
}

// --- reply parsing -----------------------------------------------------

reply_parser::reply_parser(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void reply_parser::feed(std::string_view bytes) {
  if (failed_) {
    return;
  }
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes);
}

parse_result reply_parser::fail(std::string_view message) {
  failed_ = true;
  error_.assign(message);
  return parse_result::error;
}

parse_result reply_parser::next(wire_reply& out) {
  if (failed_) {
    return parse_result::error;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(offset_);
  if (pending.empty()) {
    return parse_result::need_more;
  }
  const std::size_t newline = pending.find('\n');
  if (newline == std::string_view::npos) {
    if (pending.size() >= max_frame_bytes_) {
      return fail("reply line exceeds frame maximum");
    }
    return parse_result::need_more;
  }
  if (newline == 0 || pending[newline - 1] != '\r') {
    return fail("reply line not CRLF-terminated");
  }
  const std::string_view line = pending.substr(0, newline - 1);
  const std::size_t line_consume = newline + 1;
  switch (pending[0]) {
    case '+':
      out.type = wire_reply::kind::status;
      out.text.assign(line.substr(1));
      out.value = 0;
      offset_ += line_consume;
      return parse_result::command;
    case '-':
      out.type = wire_reply::kind::error;
      out.text.assign(line.substr(1));
      out.value = 0;
      offset_ += line_consume;
      return parse_result::command;
    case ':': {
      std::uint64_t value = 0;
      if (!parse_u64(line.substr(1), value)) {
        return fail("malformed integer reply");
      }
      out.type = wire_reply::kind::integer;
      out.value = value;
      out.text.clear();
      offset_ += line_consume;
      return parse_result::command;
    }
    case '$': {
      std::uint64_t length = 0;
      if (!parse_u64(line.substr(1), length) ||
          length > max_frame_bytes_) {
        return fail("malformed bulk header");
      }
      // Whole frame: header line + payload + CRLF.
      const std::size_t frame = line_consume + length + 2;
      if (pending.size() < frame) {
        return parse_result::need_more;
      }
      if (pending[line_consume + length] != '\r' ||
          pending[line_consume + length + 1] != '\n') {
        return fail("bulk payload not CRLF-terminated");
      }
      out.type = wire_reply::kind::bulk;
      out.value = length;
      out.text.assign(pending.substr(line_consume, length));
      offset_ += frame;
      return parse_result::command;
    }
    default:
      return fail("unknown reply type tag");
  }
}

}  // namespace hdhash::net
