/// \file io_backend.hpp
/// \brief Reactor backend selection with a runtime io_uring probe —
/// the probe-then-fallback seam for a future io_uring event loop.
///
/// The server's reactor is epoll today.  io_uring is the known next
/// step for the ingest path (submission batching amortizes the syscall
/// per wakeup the same way lookup batching amortizes the decode), but
/// whether a host *has* a usable io_uring is strictly a runtime
/// question: the syscall may be absent (old kernel), compiled out, or
/// blocked by seccomp — all on the same binary.  Following the
/// probe-then-fallback idiom of cachegrand's `io_uring_support.c`, the
/// probe actually issues `io_uring_setup(2)` and classifies the result,
/// so when the io_uring reactor lands it is enabled by flipping
/// `select_io_backend()` — every caller already records and reports the
/// probe outcome (server banner, bench JSON) on hosts where it will
/// light up.
///
/// `HDHASH_NET_BACKEND` (env) pins the choice: `epoll` forces the
/// portable reactor, `auto`/unset takes the best *implemented* backend
/// (epoll for now), and `uring` fails loudly while the io_uring reactor
/// is a stub — requesting an unimplemented backend must never silently
/// degrade (the HDHASH_FORCE_KERNEL convention).
#pragma once

#include <cstdint>
#include <string_view>

namespace hdhash::net {

enum class io_backend : std::uint8_t { epoll, uring };

/// Canonical name ("epoll", "io_uring").
std::string_view to_string(io_backend backend) noexcept;

/// Outcome of the runtime capability probe.
struct io_backend_probe {
  /// epoll_create1 is available (compile-time on this build).
  bool epoll_supported = false;
  /// io_uring_setup(2) exists and is not blocked: the kernel answered
  /// the probe with anything but "no such syscall"/"not permitted".
  bool uring_supported = false;
  /// errno the io_uring probe observed (0 when it succeeded outright);
  /// distinguishes "old kernel" (ENOSYS) from "seccomp jail" (EPERM).
  int uring_errno = 0;
};

/// Probes the running kernel once per process (cached; the probe makes
/// at most one syscall and never creates a usable ring).
const io_backend_probe& probe_io_backends() noexcept;

/// The backend the server will run, honouring HDHASH_NET_BACKEND.
/// Throws hdhash::precondition_error for unknown values and for
/// `uring` while that reactor is unimplemented.
io_backend select_io_backend();

}  // namespace hdhash::net
