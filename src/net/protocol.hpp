/// \file protocol.hpp
/// \brief The hdhash wire protocol: a compact, RESP-flavoured command
/// set for driving the load balancer over TCP, with incremental
/// parsers for both directions.
///
/// Requests are single CRLF-terminated lines of space-separated tokens
/// (inline commands in Redis terms — trivially pipelinable, printable,
/// debuggable with netcat):
///
/// ```
/// command  = "PING"                        ; liveness
///          | "ROUTE" SP id                 ; map request id -> server
///          | "JOIN"  SP id [SP weight]     ; add server (weight > 0)
///          | "LEAVE" SP id                 ; remove server
///          | "STATS"                       ; server counters
/// id       = 1*20DIGIT                     ; decimal uint64
/// weight   = positive decimal double ("2", "1.5")
/// line     = command CRLF                  ; bare LF also accepted
/// ```
///
/// Replies reuse RESP's first-byte type tags, so any RESP-aware tooling
/// can read them:
///
/// ```
/// "+OK\r\n" / "+PONG\r\n"     simple status     (JOIN, LEAVE, PING)
/// ":<server-id>\r\n"          integer           (ROUTE answer)
/// "-ERR <message>\r\n"        error             (any command)
/// "$<len>\r\n<payload>\r\n"   bulk string       (STATS)
/// ```
///
/// Both parsers are incremental and allocation-frugal: bytes are fed in
/// whatever fragments the socket delivered, partial frames simply
/// return `need_more`, and a following feed() resumes mid-line — the
/// property the truncated-read protocol tests pin down.  Malformed
/// *commands* (unknown verb, bad integer, wrong arity) surface as
/// recoverable `error` results: the offending line is consumed and
/// parsing continues, mirroring how RESP servers answer `-ERR` and keep
/// the connection.  Framing violations (a line exceeding
/// `max_line_bytes` — flood or binary garbage) are *fatal*: the parser
/// latches `failed()` and the owner must close the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hdhash::net {

/// Upper bound on one command line, terminator included.  Generous for
/// the grammar above (max legitimate line ≈ 50 bytes) yet small enough
/// that an unterminated flood is rejected within one receive buffer.
inline constexpr std::size_t kMaxLineBytes = 512;

enum class command_kind : std::uint8_t { ping, route, join, leave, stats };

/// One parsed request-side command.
struct wire_command {
  command_kind kind = command_kind::ping;
  std::uint64_t id = 0;  ///< request id (ROUTE) or server id (JOIN/LEAVE)
  double weight = 1.0;   ///< JOIN weight (1.0 when omitted)
};

/// Outcome of one parser pull.
enum class parse_result : std::uint8_t {
  need_more,  ///< no complete frame buffered — feed more bytes
  command,    ///< one command (or reply) produced
  error,      ///< malformed frame — see error_message() / failed()
};

/// Incremental request parser (server side).  Feed bytes, pull
/// commands; see the file comment for the error taxonomy.
class wire_parser {
 public:
  explicit wire_parser(std::size_t max_line_bytes = kMaxLineBytes);

  /// Appends raw socket bytes to the parse buffer.
  void feed(std::string_view bytes);

  /// Pulls the next complete command.  After a recoverable `error` the
  /// bad line has been consumed and next() may be called again; after a
  /// fatal error (failed() == true) next() keeps returning `error`.
  parse_result next(wire_command& out);

  /// Human-readable reason for the last `error` result.
  const std::string& error_message() const noexcept { return error_; }

  /// Latched fatal framing violation: the connection should be closed
  /// after flushing an error reply.
  bool failed() const noexcept { return failed_; }

  /// Bytes currently buffered and not yet consumed (tests).
  std::size_t buffered() const noexcept { return buffer_.size() - offset_; }

 private:
  parse_result fail_line(std::string_view message, std::size_t consume);

  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t offset_ = 0;
  std::string error_;
  bool failed_ = false;
};

// --- reply encoding (server side) -------------------------------------

void encode_ok(std::string& out);
void encode_pong(std::string& out);
void encode_route_reply(std::string& out, std::uint64_t server);
void encode_error(std::string& out, std::string_view message);
void encode_bulk(std::string& out, std::string_view payload);

// --- reply parsing (client side: load generator, tests) ---------------

/// One parsed reply frame.
struct wire_reply {
  enum class kind : std::uint8_t { status, error, integer, bulk };
  kind type = kind::status;
  std::uint64_t value = 0;  ///< integer replies
  std::string text;         ///< status line / error message / bulk payload
};

/// Incremental reply parser.  Any malformed frame is fatal here — a
/// client that cannot trust its reply stream has nothing to resync on.
class reply_parser {
 public:
  explicit reply_parser(std::size_t max_frame_bytes = 64 * 1024);

  void feed(std::string_view bytes);
  parse_result next(wire_reply& out);
  const std::string& error_message() const noexcept { return error_; }
  bool failed() const noexcept { return failed_; }

 private:
  parse_result fail(std::string_view message);

  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t offset_ = 0;
  std::string error_;
  bool failed_ = false;
};

}  // namespace hdhash::net
