/// \file load_gen.hpp
/// \brief Multi-connection loopback load generator for the TCP
/// front-end: one blocking-socket thread per connection, windowed
/// pipelining, per-request latency capture.
///
/// The id stream of every connection is a pure function of
/// (seed, connection index) — `load_gen_ids()` exposes it so the e2e
/// test can replay the exact same requests through the in-process
/// emulator and demand bit-identical routing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "table/dynamic_table.hpp"

namespace hdhash::net {

struct load_gen_config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent connections, one thread each.
  std::size_t connections = 8;
  std::size_t requests_per_connection = 25000;
  /// Max ROUTE commands in flight per connection before the sender
  /// waits for replies (the pipelining window).
  std::size_t pipeline_depth = 128;
  /// Request ids are drawn uniformly from [0, key_universe).
  std::uint64_t key_universe = 200000;
  std::uint64_t seed = 42;
  /// Keep every routed server id per connection (the determinism test
  /// needs them; benches leave this off to avoid the memory churn).
  bool record_answers = false;
};

struct load_gen_report {
  std::size_t requests = 0;  ///< replies received (all connections)
  std::size_t errors = 0;    ///< -ERR replies received
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  /// Reply latency percentiles in microseconds, measured per request
  /// from send-buffer append to reply parse (RTT under pipelining).
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  /// Requests routed per server — the delivered load histogram.
  std::map<server_id, std::uint64_t> server_load;
  /// Per-connection routed answers, reply order (record_answers only).
  std::vector<std::vector<server_id>> answers;
};

/// The deterministic id stream connection `connection` will send.
std::vector<request_id> load_gen_ids(const load_gen_config& config,
                                     std::size_t connection);

/// Runs the full load; throws std::runtime_error if any connection
/// fails to connect, dies mid-run, or receives an unparseable reply.
load_gen_report run_load_gen(const load_gen_config& config);

}  // namespace hdhash::net
