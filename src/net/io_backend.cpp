#include "net/io_backend.hpp"

#include <cstdlib>
#include <string>

#include "util/require.hpp"

#if defined(__linux__)
#include <cerrno>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hdhash::net {

std::string_view to_string(io_backend backend) noexcept {
  switch (backend) {
    case io_backend::epoll:
      return "epoll";
    case io_backend::uring:
      return "io_uring";
  }
  return "epoll";
}

namespace {

io_backend_probe run_probe() noexcept {
  io_backend_probe probe;
#if defined(__linux__)
  probe.epoll_supported = true;
#if defined(__NR_io_uring_setup)
  // Zero entries with a null params pointer never creates a ring: a
  // kernel that *has* the syscall rejects the arguments (EINVAL/EFAULT)
  // before allocating anything, while a kernel or sandbox without it
  // answers ENOSYS/EPERM.  That error split is the whole probe — the
  // cachegrand io_uring_support idiom without needing liburing.
  errno = 0;
  const long rc = ::syscall(__NR_io_uring_setup, 0u, nullptr);
  if (rc >= 0) {
    // Cannot happen with these arguments, but a changed kernel that
    // accepts them would hand back a real ring fd — close it.
    ::close(static_cast<int>(rc));
    probe.uring_supported = true;
  } else {
    probe.uring_errno = errno;
    probe.uring_supported =
        errno != ENOSYS && errno != EPERM && errno != ENOTSUP;
  }
#endif
#endif
  return probe;
}

}  // namespace

const io_backend_probe& probe_io_backends() noexcept {
  static const io_backend_probe probe = run_probe();
  return probe;
}

io_backend select_io_backend() {
  const char* env = std::getenv("HDHASH_NET_BACKEND");
  const std::string choice = env == nullptr ? "auto" : env;
  if (choice.empty() || choice == "auto" || choice == "epoll") {
    return io_backend::epoll;
  }
  if (choice == "uring" || choice == "io_uring") {
    const io_backend_probe& probe = probe_io_backends();
    HDHASH_REQUIRE(false,
                   probe.uring_supported
                       ? "the io_uring reactor is not implemented yet "
                         "(kernel probe says supported) — use epoll"
                       : "io_uring is unavailable on this host and its "
                         "reactor is not implemented yet — use epoll");
  }
  HDHASH_REQUIRE(false, "HDHASH_NET_BACKEND must be one of auto|epoll|uring");
  return io_backend::epoll;  // unreachable
}

}  // namespace hdhash::net
