/// \file socket.hpp
/// \brief Minimal RAII + setup helpers over BSD sockets, shared by the
/// server's reactor, the load generator and the e2e tests.
///
/// Deliberately thin: these wrap exactly the setup dance every user of
/// the net layer repeats (socket/bind/listen with SO_REUSEADDR,
/// non-blocking mode, TCP_NODELAY, ephemeral-port readback) and nothing
/// else — all actual io stays with the callers.  On platforms without
/// BSD sockets the helpers return invalid fds with an explanatory
/// error; `net::sockets_supported()` reports the capability up front.
#pragma once

#include <cstdint>
#include <string>

namespace hdhash::net {

/// Move-only owner of a file descriptor (closed on destruction).
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) noexcept : fd_(fd) {}
  ~unique_fd() { reset(); }

  unique_fd(unique_fd&& other) noexcept : fd_(other.release()) {}
  unique_fd& operator=(unique_fd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the held fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Whether this build has BSD sockets at all (POSIX platforms).
bool sockets_supported() noexcept;

/// Creates a listening TCP socket bound to `address:port`
/// (SO_REUSEADDR, non-blocking).  `port` 0 binds an ephemeral port;
/// `bound_port` (when non-null) receives the actual port either way.
/// Returns an invalid fd and fills `error` on failure.
unique_fd tcp_listen(const std::string& address, std::uint16_t port,
                     int backlog, std::uint16_t* bound_port,
                     std::string* error);

/// Blocking TCP connect to `address:port` (the client side: load
/// generator, tests).  Returns an invalid fd and fills `error` on
/// failure.
unique_fd tcp_connect(const std::string& address, std::uint16_t port,
                      std::string* error);

/// O_NONBLOCK on/off.  Returns false on failure.
bool set_nonblocking(int fd, bool enabled) noexcept;

/// TCP_NODELAY — the front-end writes coalesced reply batches, so
/// Nagle only adds tail latency.  Returns false on failure.
bool set_nodelay(int fd) noexcept;

}  // namespace hdhash::net
