/// \file injector.hpp
/// \brief Deterministic bit-flip injection over a fault surface.
///
/// Models the memory-error processes motivating the paper:
///  * SEU  — single event upsets: independent uniformly placed bit flips;
///  * MCU  — multi-cell upsets: one event flips a *burst* of adjacent bits
///           (Ibe et al. 2010 report 4- and 8-bit bursts at 22 nm; the
///           paper quotes a 10-bit MCU for its headline result).
///
/// All flips are XORs, so undoing an injection is re-applying the same
/// flips.  The injector records what it flipped to make restore exact.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/memory_region.hpp"
#include "util/rng.hpp"

namespace hdhash {

/// Location of one injected flip: bit `bit` of region `region`.
struct flip_record {
  std::size_t region;
  std::size_t bit;

  friend bool operator==(const flip_record&, const flip_record&) = default;
};

/// Stateful, seeded injector.
class bit_flip_injector {
 public:
  explicit bit_flip_injector(std::uint64_t seed);

  /// Flips `count` distinct uniformly chosen bits across the surface
  /// (SEU model).  Returns the applied flips for later undo.
  /// \pre the surface has at least `count` bits.
  std::vector<flip_record> inject_random(fault_surface& surface,
                                         std::size_t count);

  /// Flips one burst of `length` adjacent bits starting at a uniformly
  /// chosen offset (MCU model).  The burst is contained in one region
  /// (clamped at the region end, matching a physical word/row burst).
  /// \pre the surface is non-empty; length > 0.
  std::vector<flip_record> inject_burst(fault_surface& surface,
                                        std::size_t length);

  /// Re-applies `flips` (XOR is involutive, so this undoes them).
  /// \pre the surface layout is unchanged since injection.
  static void undo(fault_surface& surface,
                   std::span<const flip_record> flips);

  /// Applies explicit flips (used by undo and by tests).
  static void apply(fault_surface& surface,
                    std::span<const flip_record> flips);

 private:
  xoshiro256 rng_;
};

/// RAII guard: injects on construction, restores on destruction.  Keeps
/// experiment loops exception-safe and makes "measure then restore" the
/// default idiom.
class scoped_injection {
 public:
  /// SEU-style injection of `count` random flips.
  scoped_injection(bit_flip_injector& injector, fault_surface& surface,
                   std::size_t count);
  ~scoped_injection();

  scoped_injection(const scoped_injection&) = delete;
  scoped_injection& operator=(const scoped_injection&) = delete;

  const std::vector<flip_record>& flips() const noexcept { return flips_; }

 private:
  fault_surface& surface_;
  std::vector<flip_record> flips_;
};

}  // namespace hdhash
