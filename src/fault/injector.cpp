#include "fault/injector.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/require.hpp"

namespace hdhash {

std::size_t fault_surface::fault_bits() {
  std::size_t total = 0;
  for (const memory_region& region : fault_regions()) {
    total += region.bytes.size() * 8;
  }
  return total;
}

bit_flip_injector::bit_flip_injector(std::uint64_t seed) : rng_(seed) {}

namespace {

/// Maps a flat bit offset over the whole surface to (region, bit).
flip_record locate(const std::vector<memory_region>& regions,
                   std::size_t flat_bit) {
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const std::size_t bits = regions[r].bytes.size() * 8;
    if (flat_bit < bits) {
      return flip_record{r, flat_bit};
    }
    flat_bit -= bits;
  }
  HDHASH_ASSERT(false && "flat bit offset out of surface");
  return flip_record{0, 0};
}

}  // namespace

std::vector<flip_record> bit_flip_injector::inject_random(
    fault_surface& surface, std::size_t count) {
  auto regions = surface.fault_regions();
  std::size_t total_bits = 0;
  for (const memory_region& region : regions) {
    total_bits += region.bytes.size() * 8;
  }
  HDHASH_REQUIRE(count <= total_bits,
                 "more flips requested than bits in the fault surface");
  std::vector<flip_record> flips;
  flips.reserve(count);
  for (const std::size_t flat : sample_distinct(rng_, total_bits, count)) {
    flips.push_back(locate(regions, flat));
  }
  apply(surface, flips);
  return flips;
}

std::vector<flip_record> bit_flip_injector::inject_burst(
    fault_surface& surface, std::size_t length) {
  HDHASH_REQUIRE(length > 0, "burst length must be positive");
  auto regions = surface.fault_regions();
  std::size_t total_bits = 0;
  for (const memory_region& region : regions) {
    total_bits += region.bytes.size() * 8;
  }
  HDHASH_REQUIRE(total_bits > 0, "empty fault surface");
  const flip_record start =
      locate(regions, static_cast<std::size_t>(
                          uniform_below(rng_, total_bits)));
  const std::size_t region_bits = regions[start.region].bytes.size() * 8;
  std::vector<flip_record> flips;
  flips.reserve(length);
  for (std::size_t i = 0; i < length && start.bit + i < region_bits; ++i) {
    flips.push_back(flip_record{start.region, start.bit + i});
  }
  apply(surface, flips);
  return flips;
}

void bit_flip_injector::apply(fault_surface& surface,
                              std::span<const flip_record> flips) {
  auto regions = surface.fault_regions();
  for (const flip_record& flip : flips) {
    HDHASH_REQUIRE(flip.region < regions.size(), "stale flip record: region");
    HDHASH_REQUIRE(flip.bit < regions[flip.region].bytes.size() * 8,
                   "stale flip record: bit offset");
    flip_bit_in_bytes(regions[flip.region].bytes, flip.bit);
  }
}

void bit_flip_injector::undo(fault_surface& surface,
                             std::span<const flip_record> flips) {
  apply(surface, flips);
}

scoped_injection::scoped_injection(bit_flip_injector& injector,
                                   fault_surface& surface, std::size_t count)
    : surface_(surface), flips_(injector.inject_random(surface, count)) {}

scoped_injection::~scoped_injection() {
  bit_flip_injector::undo(surface_, flips_);
}

}  // namespace hdhash
