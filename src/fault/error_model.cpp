#include "fault/error_model.hpp"

#include "util/require.hpp"

namespace hdhash {

std::string error_model::describe() const {
  std::string text = kind == upset_kind::seu ? "seu" : "mcu";
  text += " x" + std::to_string(events);
  if (kind == upset_kind::mcu) {
    text += " (burst " + std::to_string(burst_length) + ")";
  }
  return text;
}

std::vector<flip_record> apply_error_model(const error_model& model,
                                           bit_flip_injector& injector,
                                           fault_surface& surface) {
  std::vector<flip_record> all;
  if (model.kind == upset_kind::seu) {
    if (model.events > 0) {
      all = injector.inject_random(surface, model.events);
    }
    return all;
  }
  for (std::size_t event = 0; event < model.events; ++event) {
    const auto flips = injector.inject_burst(surface, model.burst_length);
    all.insert(all.end(), flips.begin(), flips.end());
  }
  return all;
}

std::vector<error_model> seu_sweep(std::size_t max_flips) {
  std::vector<error_model> sweep;
  sweep.reserve(max_flips + 1);
  for (std::size_t flips = 0; flips <= max_flips; ++flips) {
    sweep.push_back(error_model{upset_kind::seu, flips, 1});
  }
  return sweep;
}

std::vector<error_model> mcu_mix_events(std::size_t events) {
  // 22 nm burst mix (Ibe et al.): ~10% 4-bit, ~1% 8-bit, rest single-bit.
  std::vector<error_model> models;
  models.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    std::size_t burst = 1;
    if (i % 100 == 99) {
      burst = 8;
    } else if (i % 10 == 9) {
      burst = 4;
    }
    models.push_back(error_model{upset_kind::mcu, 1, burst});
  }
  return models;
}

}  // namespace hdhash
