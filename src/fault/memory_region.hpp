/// \file memory_region.hpp
/// \brief The fault surface abstraction.
///
/// The paper's robustness experiments flip "bits in memory" of a running
/// hash table.  Different algorithms keep different state resident — the
/// sorted ring for consistent hashing, the server identifiers for
/// rendezvous, the server hypervectors for HD hashing — so every
/// `dynamic_table` describes its live state as a list of labelled byte
/// regions.  The injector then corrupts those bytes without knowing
/// anything about the algorithm, which keeps the comparison between
/// algorithms honest: the *same* error process hits each one's actual
/// working memory.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace hdhash {

/// One contiguous span of live algorithm state.
struct memory_region {
  std::span<std::byte> bytes;  ///< Mutable view; never owning.
  std::string_view label;      ///< Stable description, e.g. "ring".
};

/// Implemented by every component whose memory can be corrupted.
class fault_surface {
 public:
  virtual ~fault_surface() = default;

  /// Current live regions.  Views are invalidated by any mutation of the
  /// component (join/leave); callers must re-fetch after mutating.
  virtual std::vector<memory_region> fault_regions() = 0;

  /// Total fault-surface size in bits (sum over regions).
  std::size_t fault_bits();
};

}  // namespace hdhash
