/// \file error_model.hpp
/// \brief Declarative description of a memory-error scenario.
///
/// Experiments describe *what* errors occur (how many upsets, single-bit
/// or burst) separately from *where* they land (the injector decides,
/// seeded).  The numbers referenced in the paper: 4-bit bursts occur ~10%
/// and 8-bit bursts ~1% of the time at 22 nm (Ibe et al. 2010); the
/// headline robustness result uses a 10-bit MCU against 512 servers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"

namespace hdhash {

/// Kind of upset event.
enum class upset_kind {
  seu,  ///< independent single-bit flips
  mcu,  ///< one burst of adjacent bit flips
};

/// One error scenario: `events` upsets of the given kind; for MCU each
/// event flips `burst_length` adjacent bits.
struct error_model {
  upset_kind kind = upset_kind::seu;
  std::size_t events = 0;        ///< number of upset events
  std::size_t burst_length = 1;  ///< bits per MCU event (ignored for SEU)

  /// Total bits flipped by this scenario (upper bound for MCU, which may
  /// clamp at a region boundary).
  std::size_t total_bits() const noexcept {
    return kind == upset_kind::seu ? events : events * burst_length;
  }

  /// Human-readable description, e.g. "mcu x1 (burst 10)".
  std::string describe() const;
};

/// Applies the scenario to `surface` via `injector`; returns the flips.
std::vector<flip_record> apply_error_model(const error_model& model,
                                           bit_flip_injector& injector,
                                           fault_surface& surface);

/// The paper's Figure 5 sweep: 0..max_flips single-bit errors.
std::vector<error_model> seu_sweep(std::size_t max_flips);

/// Realistic 22 nm MCU mix: for a given number of events, 89% 1-bit,
/// 10% 4-bit, 1% 8-bit bursts (deterministically interleaved).
std::vector<error_model> mcu_mix_events(std::size_t events);

}  // namespace hdhash
