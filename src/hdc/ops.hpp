/// \file ops.hpp
/// \brief The HDC operator set: binding, bundling, permutation and bit
/// flipping (the primitive of Algorithm 1's transformation hypervectors).
#pragma once

#include <span>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdhash::hdc {

/// Binding — componentwise XOR (alias of operator^, named per HDC usage).
hypervector bind(const hypervector& a, const hypervector& b);

/// Bundling — bitwise majority vote of the inputs.  For binary HDC the
/// bundle of a set is the vector maximally similar to all members.  Ties
/// (possible when the input count is even) are broken by `tie_breaker`
/// bits drawn from the caller's generator, following common practice.
/// \pre inputs non-empty, equal dimensions.
hypervector bundle(std::span<const hypervector> inputs, xoshiro256& rng);

/// Bundling restricted to an odd number of inputs (no ties, fully
/// deterministic).  \pre inputs non-empty with odd size, equal dimensions.
hypervector bundle_odd(std::span<const hypervector> inputs);

/// Permutation — circular bit rotation by `amount` positions (towards
/// higher indices).  Permutation decorrelates a vector from itself:
/// rho(x) is quasi-orthogonal to x for random x, while being exactly
/// invertible: permute(permute(x, k), dim - k) == x.
hypervector permute(const hypervector& input, std::size_t amount);

/// Complement — inverts every bit.
hypervector invert(const hypervector& input);

/// Flips exactly `count` *distinct* uniformly chosen bits.  This is the
/// "Flip d/m random bits of t" primitive from Algorithm 1.
/// \pre count <= input.dim().
hypervector flip_random_bits(const hypervector& input, std::size_t count,
                             xoshiro256& rng);

/// Transformation hypervector: a weight-`count` vector with `count`
/// distinct random set bits (Algorithm 1 lines 4–5 build `t` this way:
/// start from the zero vector and flip d/m random bits).
hypervector random_flip_mask(std::size_t dim, std::size_t count,
                             xoshiro256& rng);

}  // namespace hdhash::hdc
