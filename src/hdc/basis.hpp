/// \file basis.hpp
/// \brief Basis-hypervector sets: random and level (Section 4 of the
/// paper).  The circular sets — the paper's novel contribution — build on
/// these and live in `core/circular.hpp`.
///
/// Basis sets encode atomic pieces of information.  Their defining
/// property is the *similarity profile* between members:
///  * random  — all pairs quasi-orthogonal (categorical data);
///  * level   — similarity decays with index distance (scalar data);
///  * circular— similarity decays with circular distance (periodic data).
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdhash::hdc {

/// How the per-step transformation bits of level/circular constructions
/// are sampled.
enum class flip_policy {
  /// Every step flips bits never touched by a previous step of the same
  /// construction.  Produces the exact piecewise-linear similarity profile
  /// of the paper's Figure 2 (antipodal/terminal vectors quasi-orthogonal).
  /// Default.
  fresh_bits,
  /// Every step flips an independently sampled set of bits, exactly as the
  /// literal pseudo-code of Algorithm 1 reads.  Steps can collide, so the
  /// profile saturates (antipodal cosine ≈ 0.37 rather than ≈ 0).  Kept
  /// for fidelity and ablated in bench/ablation_flip_policy.
  independent,
};

/// `count` i.i.d. uniformly random hypervectors of dimension `dim`.
/// Any two members differ in ≈ dim/2 bits (quasi-orthogonal).
/// \pre count > 0, dim > 0.
std::vector<hypervector> random_set(std::size_t count, std::size_t dim,
                                    xoshiro256& rng);

/// `count` level-correlated hypervectors: member 0 is random; similarity
/// decays monotonically with index distance; the last member is
/// quasi-orthogonal to the first (fresh_bits) or saturates (independent).
///
/// With fresh_bits each of the count−1 steps flips
/// floor(dim/2 / (count−1)) untouched bits; with independent each step
/// flips floor(dim/count) independently sampled bits (the paper's d/m).
/// \pre count >= 2, dim >= 2 * (count - 1) for fresh_bits.
std::vector<hypervector> level_set(std::size_t count, std::size_t dim,
                                   xoshiro256& rng,
                                   flip_policy policy = flip_policy::fresh_bits);

}  // namespace hdhash::hdc
