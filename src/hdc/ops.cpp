#include "hdc/ops.hpp"

#include "util/require.hpp"

namespace hdhash::hdc {

hypervector bind(const hypervector& a, const hypervector& b) { return a ^ b; }

namespace {

hypervector bundle_with_ties(std::span<const hypervector> inputs,
                             xoshiro256* tie_rng) {
  HDHASH_REQUIRE(!inputs.empty(), "bundle of an empty set is undefined");
  const std::size_t dim = inputs.front().dim();
  for (const auto& hv : inputs) {
    HDHASH_REQUIRE(hv.dim() == dim, "dimension mismatch in bundle");
  }
  // Majority vote per bit.  With thousands of bits a per-bit counter array
  // is the clear, O(n·d) approach; this is not on any hot path.
  std::vector<std::uint32_t> ones(dim, 0);
  for (const auto& hv : inputs) {
    for (std::size_t i = 0; i < dim; ++i) {
      ones[i] += hv.test(i) ? 1U : 0U;
    }
  }
  hypervector result(dim);
  const std::size_t n = inputs.size();
  for (std::size_t i = 0; i < dim; ++i) {
    const std::uint32_t zero_votes = static_cast<std::uint32_t>(n) - ones[i];
    if (ones[i] > zero_votes) {
      result.set(i, true);
    } else if (ones[i] == zero_votes) {
      HDHASH_ASSERT(tie_rng != nullptr);
      result.set(i, ((*tie_rng)() & 1U) != 0);
    }
  }
  return result;
}

}  // namespace

hypervector bundle(std::span<const hypervector> inputs, xoshiro256& rng) {
  return bundle_with_ties(inputs, &rng);
}

hypervector bundle_odd(std::span<const hypervector> inputs) {
  HDHASH_REQUIRE(inputs.size() % 2 == 1,
                 "bundle_odd requires an odd number of inputs");
  return bundle_with_ties(inputs, nullptr);
}

hypervector permute(const hypervector& input, std::size_t amount) {
  const std::size_t dim = input.dim();
  const std::size_t shift = amount % dim;
  if (shift == 0) {
    return input;
  }
  hypervector result(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (input.test(i)) {
      result.set((i + shift) % dim, true);
    }
  }
  return result;
}

hypervector invert(const hypervector& input) {
  hypervector result = input;
  for (auto& word : result.words_mut()) {
    word = ~word;
  }
  result.canonicalize_tail();
  return result;
}

hypervector random_flip_mask(std::size_t dim, std::size_t count,
                             xoshiro256& rng) {
  HDHASH_REQUIRE(count <= dim, "cannot flip more bits than the dimension");
  hypervector mask(dim);
  for (const std::size_t index : sample_distinct(rng, dim, count)) {
    mask.set(index, true);
  }
  return mask;
}

hypervector flip_random_bits(const hypervector& input, std::size_t count,
                             xoshiro256& rng) {
  return input ^ random_flip_mask(input.dim(), count, rng);
}

}  // namespace hdhash::hdc
