#include "hdc/item_memory.hpp"

#include <limits>

#include "util/require.hpp"

namespace hdhash::hdc {

item_memory::item_memory(std::size_t dim, metric m,
                         std::shared_ptr<mem::hugepage_arena> arena)
    : dim_(dim), metric_(m), arena_(std::move(arena)) {
  HDHASH_REQUIRE(dim > 0, "item memory dimension must be positive");
}

std::size_t item_memory::find_index(std::uint64_t key) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) {
      return i;
    }
  }
  return entries_.size();
}

void item_memory::insert(std::uint64_t key, hypervector hv) {
  HDHASH_REQUIRE(hv.dim() == dim_, "dimension mismatch on insert");
  HDHASH_REQUIRE(find_index(key) == entries_.size(), "key already present");
  // Rows live on this memory's arena regardless of where the caller
  // built the vector (no-op when backings already match).
  hv.rehome(arena_);
  entries_.push_back(entry{key, std::make_shared<hypervector>(std::move(hv))});
}

void item_memory::erase(std::uint64_t key) {
  const std::size_t index = find_index(key);
  HDHASH_REQUIRE(index != entries_.size(), "key not present");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

bool item_memory::contains(std::uint64_t key) const noexcept {
  return find_index(key) != entries_.size();
}

const hypervector& item_memory::at(std::uint64_t key) const {
  const std::size_t index = find_index(key);
  HDHASH_REQUIRE(index != entries_.size(), "key not present");
  return *entries_[index].hv;
}

std::optional<query_result> item_memory::query(const hypervector& probe) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  HDHASH_REQUIRE(probe.dim() == dim_, "dimension mismatch on query");
  query_result best;
  best.best_score = -std::numeric_limits<double>::infinity();
  best.runner_up = -std::numeric_limits<double>::infinity();
  for (const entry& e : entries_) {
    const double s = score(metric_, *e.hv, probe);
    const bool wins =
        s > best.best_score || (s == best.best_score && e.key < best.key);
    if (wins) {
      best.runner_up = best.best_score;
      best.best_score = s;
      best.key = e.key;
    } else if (s > best.runner_up) {
      best.runner_up = s;
    }
  }
  return best;
}

std::vector<std::uint64_t> item_memory::keys() const {
  std::vector<std::uint64_t> result;
  result.reserve(entries_.size());
  for (const entry& e : entries_) {
    result.push_back(e.key);
  }
  return result;
}

std::vector<std::span<std::uint64_t>> item_memory::storage() {
  std::vector<std::span<std::uint64_t>> regions;
  regions.reserve(entries_.size());
  for (entry& e : entries_) {
    // Copy-on-write break: a row also held by a clone or snapshot must
    // be un-shared before anyone can write through the view, or fault
    // injection on this table would corrupt the published copy too.
    if (e.hv.use_count() > 1) {
      auto fresh = std::make_shared<hypervector>(*e.hv);
      // The un-shared copy belongs to the writer: it moves into this
      // instance's arena even when the shared original lives elsewhere.
      fresh->rehome(arena_);
      e.hv = std::move(fresh);
    }
    regions.push_back(e.hv->words_mut());
  }
  return regions;
}

std::size_t item_memory::shared_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const entry& e : entries_) {
    if (e.hv.use_count() > 1) {
      bytes += e.hv->word_count() * sizeof(std::uint64_t);
    }
  }
  return bytes;
}

}  // namespace hdhash::hdc
