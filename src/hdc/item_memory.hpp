/// \file item_memory.hpp
/// \brief Associative item memory — the HDC "inference" structure.
///
/// Stores (key, hypervector) pairs and answers nearest-neighbour queries
/// under a similarity metric (Eq. 2 of the paper).  This models the
/// combinational associative memory of HDC accelerators (Schmuck et al.
/// 2019), which evaluates all stored rows in parallel; here the rows are
/// scanned with word-packed popcounts.
///
/// The stored hypervectors are the natural *fault surface* of an HDC
/// system — in hardware they sit in (potentially faulty) SRAM — so the
/// class exposes its raw storage for the fault injector.
///
/// Rows are held behind shared pointers with copy-on-write semantics:
/// copying an item_memory (table clone, epoch snapshot) shares every
/// row instead of duplicating size() × dim bits, and the only mutating
/// entry point into row *contents* — storage(), the fault surface —
/// un-shares a row before handing out a writable view.  A published
/// snapshot therefore can never be corrupted through its source table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"
#include "hdc/similarity.hpp"

namespace hdhash::hdc {

/// Result of an associative query.
struct query_result {
  std::uint64_t key = 0;     ///< Key of the most similar stored vector.
  double best_score = 0.0;   ///< Similarity of the winner.
  double runner_up = 0.0;    ///< Similarity of the second-best entry.

  /// Noise margin: how much similarity the winner can lose before the
  /// assignment changes.  For inverse-Hamming this is in bits; a burst of
  /// fewer than margin/2 flips can never change the argmax.
  double margin() const noexcept { return best_score - runner_up; }
};

/// Associative memory over keyed hypervectors.
class item_memory {
 public:
  /// \param dim    dimensionality of all stored vectors.
  /// \param m      similarity metric used by query().
  /// \param arena  arena the stored rows live on (nullptr = heap).
  ///               Inserted rows are rehomed onto it, and COW
  ///               un-shared copies land on it — the writer's arena —
  ///               so hot rows stay contiguous whatever arena (or
  ///               heap) the caller built them on.
  explicit item_memory(std::size_t dim,
                       metric m = metric::inverse_hamming,
                       std::shared_ptr<mem::hugepage_arena> arena = nullptr);

  /// Arena backing the stored rows (nullptr = heap).
  const std::shared_ptr<mem::hugepage_arena>& arena() const noexcept {
    return arena_;
  }

  /// Inserts a vector under `key`.
  /// \pre hv.dim() == dim(); key not already present.
  void insert(std::uint64_t key, hypervector hv);

  /// Removes the entry with `key`.  \pre key present.
  void erase(std::uint64_t key);

  /// True when `key` is stored.
  bool contains(std::uint64_t key) const noexcept;

  /// Returns the stored vector for `key`.  \pre key present.
  const hypervector& at(std::uint64_t key) const;

  /// Nearest stored entry to `probe` (ties broken toward the smallest
  /// key, deterministically).  Returns nullopt when empty.
  std::optional<query_result> query(const hypervector& probe) const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t dim() const noexcept { return dim_; }
  metric similarity_metric() const noexcept { return metric_; }

  /// Keys in storage order (deterministic given the insertion sequence).
  std::vector<std::uint64_t> keys() const;

  /// Visits every (key, hypervector) entry in storage order.  Used by
  /// callers that implement custom decoding rules over the raw rows
  /// (e.g. hd_table's lattice decoder).
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const entry& e : entries_) {
      fn(e.key, *e.hv);
    }
  }

  /// Mutable views of each stored hypervector's backing words, for fault
  /// injection.  Rows shared with other item_memory copies (clones,
  /// snapshots) are un-shared first (copy-on-write), so writes through
  /// the views never reach a published snapshot.  Invalidated by
  /// insert/erase and by the next storage() call.
  std::vector<std::span<std::uint64_t>> storage();

  /// Bytes of row storage shared with at least one other item_memory
  /// copy (a clone or snapshot also holds the row).  Subtracting this
  /// from the logical row footprint gives the bytes this instance
  /// uniquely keeps resident — what epoch snapshots report as their
  /// marginal cost.
  std::size_t shared_bytes() const noexcept;

 private:
  struct entry {
    std::uint64_t key;
    // Shared, copy-on-write: multiple item_memory copies may point at
    // one row; storage() un-shares before mutation.
    std::shared_ptr<hypervector> hv;
  };

  std::size_t find_index(std::uint64_t key) const noexcept;  // size() if absent

  std::size_t dim_;
  metric metric_;
  std::shared_ptr<mem::hugepage_arena> arena_;
  std::vector<entry> entries_;
};

}  // namespace hdhash::hdc
