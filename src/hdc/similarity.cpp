#include "hdc/similarity.hpp"

#include "simd/hamming_kernel.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {

std::size_t hamming_distance(const hypervector& a, const hypervector& b) {
  HDHASH_REQUIRE(a.dim() == b.dim(), "dimension mismatch in similarity");
  const auto wa = a.words();
  const auto wb = b.words();
  // Single-pair XOR+popcount through the dispatched SIMD kernel; both
  // operands keep the canonical-tail invariant, so whole-word distance
  // equals bit-level distance.
  return static_cast<std::size_t>(
      simd::active_kernel().distance(wa.data(), wb.data(), wa.size()));
}

std::size_t inverse_hamming(const hypervector& a, const hypervector& b) {
  return a.dim() - hamming_distance(a, b);
}

double normalized_hamming(const hypervector& a, const hypervector& b) {
  return static_cast<double>(hamming_distance(a, b)) /
         static_cast<double>(a.dim());
}

double cosine(const hypervector& a, const hypervector& b) {
  return 1.0 - 2.0 * normalized_hamming(a, b);
}

double score(metric m, const hypervector& a, const hypervector& b) {
  switch (m) {
    case metric::inverse_hamming:
      return static_cast<double>(inverse_hamming(a, b));
    case metric::cosine:
      return cosine(a, b);
  }
  HDHASH_REQUIRE(false, "unknown metric");
  return 0.0;  // Unreachable.
}

}  // namespace hdhash::hdc
