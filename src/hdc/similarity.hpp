/// \file similarity.hpp
/// \brief Similarity metrics δ between hypervectors (Eq. 2 of the paper).
///
/// For dense binary hypervectors the metrics are all monotone functions of
/// the Hamming distance, so Eq. 2's argmax gives identical assignments for
/// any of them; they differ only in scale.  `cosine` here is the cosine
/// similarity of the bipolar (±1) view of a binary vector, the convention
/// used by the paper's Figure 2: cos(a, b) = 1 − 2·hamming(a, b)/d.
#pragma once

#include <cstddef>

#include "hdc/hypervector.hpp"

namespace hdhash::hdc {

/// Number of differing bits.  \pre equal dimensions.
std::size_t hamming_distance(const hypervector& a, const hypervector& b);

/// Inverse Hamming similarity d − hamming ∈ [0, d]; the integer metric the
/// paper names for Eq. 2 and what HDC accelerators' adder trees compute.
std::size_t inverse_hamming(const hypervector& a, const hypervector& b);

/// Normalized Hamming distance ∈ [0, 1].
double normalized_hamming(const hypervector& a, const hypervector& b);

/// Cosine similarity of the bipolar view, ∈ [−1, 1].
double cosine(const hypervector& a, const hypervector& b);

/// Metric selector used by configurable components (ablation A-metric).
enum class metric {
  inverse_hamming,  ///< integer, accelerator-native (default)
  cosine,           ///< bipolar cosine; same argmax, different scale
};

/// Evaluates the selected metric as a double score (higher = more similar).
double score(metric m, const hypervector& a, const hypervector& b);

}  // namespace hdhash::hdc
