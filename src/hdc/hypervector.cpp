#include "hdc/hypervector.hpp"

#include "util/bits.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {

hypervector::hypervector(std::size_t dim,
                         std::shared_ptr<mem::hugepage_arena> arena)
    : dim_(dim), words_(words_for_bits(dim), std::move(arena)) {
  HDHASH_REQUIRE(dim > 0, "hypervector dimension must be positive");
}

void hypervector::canonicalize_tail() noexcept {
  words_.back() &= tail_mask(dim_);
}

bool hypervector::test(std::size_t index) const {
  HDHASH_REQUIRE(index < dim_, "bit index out of range");
  return test_bit(words_, index);
}

void hypervector::set(std::size_t index, bool value) {
  HDHASH_REQUIRE(index < dim_, "bit index out of range");
  set_bit(words_, index, value);
}

void hypervector::flip(std::size_t index) {
  HDHASH_REQUIRE(index < dim_, "bit index out of range");
  flip_bit(words_, index);
}

std::size_t hypervector::popcount() const noexcept {
  return hdhash::popcount(words_);
}

hypervector& hypervector::operator^=(const hypervector& other) {
  HDHASH_REQUIRE(other.dim_ == dim_, "dimension mismatch in binding");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return *this;
}

hypervector operator^(const hypervector& a, const hypervector& b) {
  hypervector result = a;
  result ^= b;
  return result;
}

hypervector hypervector::random(std::size_t dim, xoshiro256& rng) {
  hypervector hv(dim);
  for (auto& word : hv.words_) {
    word = rng();
  }
  hv.canonicalize_tail();
  return hv;
}

hypervector hypervector::zeros(std::size_t dim) { return hypervector(dim); }

hypervector hypervector::ones(std::size_t dim) {
  hypervector hv(dim);
  for (auto& word : hv.words_) {
    word = ~std::uint64_t{0};
  }
  hv.canonicalize_tail();
  return hv;
}

}  // namespace hdhash::hdc
