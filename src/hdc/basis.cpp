#include "hdc/basis.hpp"

#include "hdc/ops.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {

std::vector<hypervector> random_set(std::size_t count, std::size_t dim,
                                    xoshiro256& rng) {
  HDHASH_REQUIRE(count > 0, "basis set must be non-empty");
  std::vector<hypervector> set;
  set.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    set.push_back(hypervector::random(dim, rng));
  }
  return set;
}

std::vector<hypervector> level_set(std::size_t count, std::size_t dim,
                                   xoshiro256& rng, flip_policy policy) {
  HDHASH_REQUIRE(count >= 2, "a level set needs at least two members");
  const std::size_t steps = count - 1;

  std::vector<hypervector> set;
  set.reserve(count);
  set.push_back(hypervector::random(dim, rng));

  if (policy == flip_policy::independent) {
    // Literal construction from the paper's Section 4: flip d/m random
    // bits at each interval, sampled independently per step.
    const std::size_t per_step = std::max<std::size_t>(1, dim / count);
    for (std::size_t s = 0; s < steps; ++s) {
      set.push_back(flip_random_bits(set.back(), per_step, rng));
    }
    return set;
  }

  // fresh_bits: distribute dim/2 distinct positions over the steps so the
  // similarity profile decays linearly from identical to quasi-orthogonal.
  HDHASH_REQUIRE(dim / 2 >= steps,
                 "dimension too small for this many distinct levels");
  const std::vector<std::size_t> positions =
      sample_distinct(rng, dim, dim / 2);
  std::size_t next_position = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    // Chunk sizes differ by at most one so the decay stays linear.
    const std::size_t chunk_end = (s + 1) * positions.size() / steps;
    hypervector next = set.back();
    while (next_position < chunk_end) {
      next.flip(positions[next_position]);
      ++next_position;
    }
    set.push_back(std::move(next));
  }
  HDHASH_ASSERT(next_position == positions.size());
  return set;
}

}  // namespace hdhash::hdc
