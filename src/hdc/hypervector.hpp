/// \file hypervector.hpp
/// \brief Dense binary hypervector — the atomic data type of
/// Hyperdimensional Computing (Kanerva 2009).
///
/// HDC computes with very wide random words (the paper uses d = 10,000
/// bits) instead of 8–64-bit machine words.  We store a hypervector as `d`
/// bits packed into 64-bit words.  The unused high bits of the tail word
/// are kept at zero (the *canonical-tail invariant*), so whole-word XOR and
/// popcount implement binding and Hamming distance with no per-bit
/// branching — the scalar analogue of the wide adder trees in HDC
/// accelerators (Schmuck et al. 2019).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "mem/word_buffer.hpp"
#include "util/rng.hpp"

namespace hdhash::hdc {

/// A d-dimensional dense binary hypervector.
///
/// Value type: copyable, movable, equality-comparable.  All mutating
/// operations preserve the canonical-tail invariant.
class hypervector {
 public:
  /// Creates the zero hypervector of the given dimensionality, with
  /// its words on `arena` (nullptr = default heap).
  /// \pre dim > 0.
  explicit hypervector(std::size_t dim,
                       std::shared_ptr<mem::hugepage_arena> arena = nullptr);

  /// Moves the word storage onto `arena` (nullptr = heap); contents
  /// unchanged.  item_memory rehomes rows on insert and on COW
  /// un-share so hot rows land in the owning table's arena.
  void rehome(std::shared_ptr<mem::hugepage_arena> arena) {
    words_.rehome(std::move(arena));
  }

  /// Arena the words live on (nullptr = heap).
  const std::shared_ptr<mem::hugepage_arena>& arena() const noexcept {
    return words_.arena();
  }

  /// Number of bits.
  std::size_t dim() const noexcept { return dim_; }

  /// Number of backing 64-bit words.
  std::size_t word_count() const noexcept { return words_.size(); }

  /// Read-only view of the packed words (tail canonical).
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Mutable view of the packed words.  Callers that write through this
  /// view (the fault injector does) may break the canonical-tail
  /// invariant; call canonicalize_tail() afterwards if `dim % 64 != 0`.
  std::span<std::uint64_t> words_mut() noexcept { return words_; }

  /// Re-zeroes the unused high bits of the tail word.
  void canonicalize_tail() noexcept;

  /// Tests bit `index`.  \pre index < dim().
  bool test(std::size_t index) const;

  /// Sets bit `index` to `value`.  \pre index < dim().
  void set(std::size_t index, bool value);

  /// Inverts bit `index`.  \pre index < dim().
  void flip(std::size_t index);

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// XOR-accumulates `other` into this vector (in-place binding).
  /// \pre other.dim() == dim().
  hypervector& operator^=(const hypervector& other);

  friend bool operator==(const hypervector&, const hypervector&) = default;

  /// Uniformly random hypervector: every bit i.i.d. Bernoulli(1/2).  This
  /// is `random_hypervector(d)` from the paper's Algorithm 1.
  static hypervector random(std::size_t dim, xoshiro256& rng);

  /// All-zeros / all-ones constructors, handy in tests.
  static hypervector zeros(std::size_t dim);
  static hypervector ones(std::size_t dim);

 private:
  std::size_t dim_;
  mem::word_buffer words_;
};

/// Binding (XOR, the paper's ⊕): componentwise exclusive-or.  Binding is
/// its own inverse: (a ⊕ t) ⊕ t == a — the property Algorithm 1's backward
/// transformations rely on.  \pre equal dimensions.
hypervector operator^(const hypervector& a, const hypervector& b);

}  // namespace hdhash::hdc
