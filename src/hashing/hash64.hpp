/// \file hash64.hpp
/// \brief The 64-bit hash-function interface used by every hashing
/// algorithm in hdhash.
///
/// The paper (Section 2) denotes the underlying hash function `h(·)` but
/// does not fix a concrete choice; all dynamic-table algorithms in this
/// library therefore take a `hash64` by reference (dependency injection)
/// and the choice is ablated in `bench/ablation_hash`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hdhash {

/// Abstract seeded 64-bit hash over byte strings.
///
/// Implementations must be stateless and thread-compatible: `operator()`
/// is const and two calls with identical (bytes, seed) return identical
/// results.
class hash64 {
 public:
  virtual ~hash64() = default;

  /// Hashes an arbitrary byte string with the given seed.
  virtual std::uint64_t operator()(std::span<const std::byte> bytes,
                                   std::uint64_t seed) const = 0;

  /// Short stable identifier, e.g. "xxhash64".
  virtual std::string_view name() const noexcept = 0;

  /// Convenience: hashes a single 64-bit value (little-endian bytes).
  std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed = 0) const;

  /// Convenience: hashes a pair of 64-bit values (16 little-endian bytes).
  /// Rendezvous hashing uses this for its `h(server, request)`.
  std::uint64_t hash_pair(std::uint64_t a, std::uint64_t b,
                          std::uint64_t seed = 0) const;

  /// Convenience: hashes a string view.
  std::uint64_t hash_string(std::string_view text, std::uint64_t seed = 0) const;
};

}  // namespace hdhash
