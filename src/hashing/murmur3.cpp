#include "hashing/murmur3.hpp"

#include <cstring>

namespace hdhash {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

std::uint64_t load_u64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // hdhash targets little-endian platforms (asserted in tests).
}

}  // namespace

std::array<std::uint64_t, 2> murmur3_x64::hash128(
    std::span<const std::byte> bytes, std::uint64_t seed) {
  constexpr std::uint64_t c1 = 0x87c37b91114253d5ULL;
  constexpr std::uint64_t c2 = 0x4cf5ad432745937fULL;

  const std::size_t len = bytes.size();
  const std::size_t nblocks = len / 16;
  std::uint64_t h1 = static_cast<std::uint32_t>(seed);
  std::uint64_t h2 = static_cast<std::uint32_t>(seed);

  const std::byte* data = bytes.data();
  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load_u64(data + i * 16);
    std::uint64_t k2 = load_u64(data + i * 16 + 8);
    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;
    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const std::byte* tail = data + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<std::uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<std::uint64_t>(tail[8]);
      k2 *= c2;
      k2 = rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<std::uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint64_t>(tail[0]);
      k1 *= c1;
      k1 = rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;

  // Reference MurmurHash3 only accepts a 32-bit seed.  hdhash seeds are
  // 64-bit, so the high half (when present) is folded in post hoc; with a
  // 32-bit seed the digest is byte-compatible with the reference.
  const std::uint64_t high_seed = seed >> 32;
  if (high_seed != 0) {
    h1 = fmix64(h1 ^ high_seed);
    h2 = fmix64(h2 ^ rotl64(high_seed, 17));
  }
  return {h1, h2};
}

std::uint64_t murmur3_x64::operator()(std::span<const std::byte> bytes,
                                      std::uint64_t seed) const {
  return hash128(bytes, seed)[0];
}

}  // namespace hdhash
