#include "hashing/splitmix_hash.hpp"

#include <cstring>

namespace hdhash {

std::uint64_t splitmix_hash::mix(std::uint64_t value) noexcept {
  std::uint64_t z = value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t splitmix_hash::operator()(std::span<const std::byte> bytes,
                                        std::uint64_t seed) const {
  std::uint64_t h = mix(seed ^ (0x6a09e667f3bcc909ULL + bytes.size()));
  std::size_t offset = 0;
  while (offset + 8 <= bytes.size()) {
    std::uint64_t word;
    std::memcpy(&word, bytes.data() + offset, 8);
    h = mix(h ^ mix(word));
    offset += 8;
  }
  if (offset < bytes.size()) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes.data() + offset, bytes.size() - offset);
    h = mix(h ^ mix(word));
  }
  return h;
}

}  // namespace hdhash
