#include "hashing/siphash.hpp"

#include <cstring>

#include "hashing/splitmix_hash.hpp"

namespace hdhash {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

struct sip_state {
  std::uint64_t v0, v1, v2, v3;

  void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24::sip24(std::span<const std::byte> bytes,
                               std::uint64_t k0, std::uint64_t k1) {
  sip_state s{
      k0 ^ 0x736f6d6570736575ULL,
      k1 ^ 0x646f72616e646f6dULL,
      k0 ^ 0x6c7967656e657261ULL,
      k1 ^ 0x7465646279746573ULL,
  };

  const std::size_t len = bytes.size();
  const std::byte* p = bytes.data();
  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    std::uint64_t m;
    std::memcpy(&m, p + i * 8, 8);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  const std::byte* tail = p + full_blocks * 8;
  for (std::size_t i = 0; i < (len & 7); ++i) {
    last |= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[i]))
            << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24::operator()(std::span<const std::byte> bytes,
                                    std::uint64_t seed) const {
  const std::uint64_t k0 = splitmix_hash::mix(seed);
  const std::uint64_t k1 = splitmix_hash::mix(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  return sip24(bytes, k0, k1);
}

}  // namespace hdhash
