#include "hashing/registry.hpp"

#include <array>
#include <cstring>

#include "hashing/fnv.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/siphash.hpp"
#include "hashing/splitmix_hash.hpp"
#include "hashing/xxhash64.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

struct registry {
  fnv1a64 fnv;
  splitmix_hash splitmix;
  murmur3_x64 murmur;
  xxhash64 xxh;
  siphash24 sip;

  std::array<const hash64*, 5> all() const {
    return {&fnv, &splitmix, &murmur, &xxh, &sip};
  }
};

const registry& instance() {
  static const registry r;
  return r;
}

}  // namespace

const hash64& hash_by_name(std::string_view name) {
  for (const hash64* h : instance().all()) {
    if (h->name() == name) {
      return *h;
    }
  }
  HDHASH_REQUIRE(false, "unknown hash function name: " + std::string(name));
  // Unreachable; HDHASH_REQUIRE(false, ...) always throws.
  throw precondition_error("unreachable");
}

const hash64& default_hash() noexcept { return instance().xxh; }

std::vector<std::string_view> registered_hash_names() {
  std::vector<std::string_view> names;
  for (const hash64* h : instance().all()) {
    names.push_back(h->name());
  }
  return names;
}

// --- hash64 convenience methods (defined here to keep hash64.hpp light) ---

std::uint64_t hash64::hash_u64(std::uint64_t value, std::uint64_t seed) const {
  std::array<std::byte, 8> buffer;
  std::memcpy(buffer.data(), &value, 8);
  return (*this)(buffer, seed);
}

std::uint64_t hash64::hash_pair(std::uint64_t a, std::uint64_t b,
                                std::uint64_t seed) const {
  std::array<std::byte, 16> buffer;
  std::memcpy(buffer.data(), &a, 8);
  std::memcpy(buffer.data() + 8, &b, 8);
  return (*this)(buffer, seed);
}

std::uint64_t hash64::hash_string(std::string_view text,
                                  std::uint64_t seed) const {
  return (*this)(std::as_bytes(std::span(text.data(), text.size())), seed);
}

}  // namespace hdhash
