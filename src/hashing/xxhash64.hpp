/// \file xxhash64.hpp
/// \brief xxHash64 (Yann Collet's XXH64 algorithm) reimplemented from the
/// published specification.  This is hdhash's default `h(·)`: excellent
/// avalanche and distribution at near-memcpy speed.
#pragma once

#include "hashing/hash64.hpp"

namespace hdhash {

class xxhash64 final : public hash64 {
 public:
  std::uint64_t operator()(std::span<const std::byte> bytes,
                           std::uint64_t seed) const override;
  std::string_view name() const noexcept override { return "xxhash64"; }
};

}  // namespace hdhash
