#include "hashing/fnv.hpp"

namespace hdhash {

std::uint64_t fnv1a64::operator()(std::span<const std::byte> bytes,
                                  std::uint64_t seed) const {
  std::uint64_t h = offset_basis ^ seed;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(b));
    h *= prime;
  }
  return h;
}

}  // namespace hdhash
