/// \file fnv.hpp
/// \brief FNV-1a 64-bit hash (Fowler–Noll–Vo, variant 1a).
///
/// Small and byte-serial; weak avalanche for short keys but a useful
/// worst-case baseline for the hash-function ablation.  The seed is folded
/// into the offset basis, which preserves the unseeded FNV-1a reference
/// values when seed == 0.
#pragma once

#include "hashing/hash64.hpp"

namespace hdhash {

class fnv1a64 final : public hash64 {
 public:
  std::uint64_t operator()(std::span<const std::byte> bytes,
                           std::uint64_t seed) const override;
  std::string_view name() const noexcept override { return "fnv1a64"; }

  static constexpr std::uint64_t offset_basis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t prime = 0x00000100000001b3ULL;
};

}  // namespace hdhash
