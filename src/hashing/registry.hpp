/// \file registry.hpp
/// \brief Lookup of hash-function implementations by stable name.
///
/// The registry owns one immutable instance of each built-in hash; tables,
/// benches and examples borrow them by const reference.  This keeps the
/// algorithm objects trivially copyable (they store a non-owning pointer).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "hashing/hash64.hpp"

namespace hdhash {

/// Returns the process-wide singleton hash named `name`
/// ("fnv1a64", "splitmix64", "murmur3_x64_128", "xxhash64", "siphash24").
/// \throws precondition_error for unknown names.
const hash64& hash_by_name(std::string_view name);

/// Returns hdhash's default hash function (xxhash64).
const hash64& default_hash() noexcept;

/// Names of all registered hash functions (ablation sweeps iterate this).
std::vector<std::string_view> registered_hash_names();

}  // namespace hdhash
