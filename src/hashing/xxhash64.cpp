#include "hashing/xxhash64.hpp"

#include <cstring>

namespace hdhash {
namespace {

constexpr std::uint64_t kPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kPrime5 = 2870177450012600261ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t round_step(std::uint64_t acc,
                                   std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

constexpr std::uint64_t merge_round(std::uint64_t acc,
                                    std::uint64_t val) noexcept {
  val = round_step(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

std::uint64_t load_u64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

std::uint64_t xxhash64::operator()(std::span<const std::byte> bytes,
                                   std::uint64_t seed) const {
  const std::byte* p = bytes.data();
  const std::byte* const end = p + bytes.size();
  std::uint64_t h;

  if (bytes.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = round_step(v1, load_u64(p));
      v2 = round_step(v2, load_u64(p + 8));
      v3 = round_step(v3, load_u64(p + 16));
      v4 = round_step(v4, load_u64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(bytes.size());

  while (p + 8 <= end) {
    h ^= round_step(0, load_u64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(load_u32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace hdhash
