/// \file murmur3.hpp
/// \brief MurmurHash3 x64-128 (Austin Appleby, public domain algorithm),
/// reimplemented from the reference specification; hdhash returns the low
/// 64 bits of the 128-bit digest.
#pragma once

#include <array>

#include "hashing/hash64.hpp"

namespace hdhash {

class murmur3_x64 final : public hash64 {
 public:
  std::uint64_t operator()(std::span<const std::byte> bytes,
                           std::uint64_t seed) const override;
  std::string_view name() const noexcept override { return "murmur3_x64_128"; }

  /// Full 128-bit digest as {low, high}.  MurmurHash3's seed parameter is
  /// 32 bits in the reference implementation; we pass the low 32 bits of
  /// `seed` to stay byte-compatible with it and fold the high 32 bits into
  /// the finalization only when they are non-zero.
  static std::array<std::uint64_t, 2> hash128(std::span<const std::byte> bytes,
                                              std::uint64_t seed);
};

}  // namespace hdhash
