/// \file siphash.hpp
/// \brief SipHash-2-4 (Aumasson & Bernstein), reimplemented from the
/// reference specification.
///
/// SipHash is a keyed PRF; it is the slowest hash in hdhash but the only
/// one with a cryptographic design, making it the reference point for
/// "how much hash quality does a dynamic hash table actually need" in the
/// ablation study.  The 64-bit hdhash seed is expanded into the 128-bit
/// SipHash key with the SplitMix64 mixer; seed 0 with an all-zero second
/// key half keeps the construction deterministic.
#pragma once

#include "hashing/hash64.hpp"

namespace hdhash {

class siphash24 final : public hash64 {
 public:
  std::uint64_t operator()(std::span<const std::byte> bytes,
                           std::uint64_t seed) const override;
  std::string_view name() const noexcept override { return "siphash24"; }

  /// Raw SipHash-2-4 with an explicit 128-bit key (k0, k1); exposed so the
  /// reference test vectors from the SipHash paper can be checked directly.
  static std::uint64_t sip24(std::span<const std::byte> bytes,
                             std::uint64_t k0, std::uint64_t k1);
};

}  // namespace hdhash
