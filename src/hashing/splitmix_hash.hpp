/// \file splitmix_hash.hpp
/// \brief SplitMix64-finalizer based hash.
///
/// Treats the input as a sequence of 64-bit words (zero-padded tail), mixes
/// each word through the SplitMix64 finalizer and combines.  Extremely fast
/// for the fixed-width integer keys that dominate this workload (server and
/// request identifiers); statistically strong for that case.
#pragma once

#include "hashing/hash64.hpp"

namespace hdhash {

class splitmix_hash final : public hash64 {
 public:
  std::uint64_t operator()(std::span<const std::byte> bytes,
                           std::uint64_t seed) const override;
  std::string_view name() const noexcept override { return "splitmix64"; }

  /// The raw finalizer on a single word; exposed for reuse (e.g. the HDC
  /// encoder's slot hash) and direct testing.
  static std::uint64_t mix(std::uint64_t value) noexcept;
};

}  // namespace hdhash
