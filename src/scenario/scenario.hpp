/// \file scenario.hpp
/// \brief Composable scenario DSL over the event generator: an ordered
/// list of phases, each pairing an arrival, churn and weight process
/// (scenario/process.hpp), compiled into the plain `event` stream the
/// emulator, the sharded emulator and every experiment driver already
/// consume unchanged.
///
/// Time is modelled in abstract *ticks* (one scheduling quantum — a
/// second, a minute; the unit never appears in the events, only in the
/// side tables).  Compilation walks the phases tick by tick: each tick
/// first runs the phase's churn process, then its weight process, then
/// emits the tick's arrivals — so a tick's requests always observe the
/// membership state published earlier in that tick, exactly the
/// stream-order contract the emulators preserve.  Fractional arrival
/// rates accumulate with error diffusion, so a phase's request count
/// matches its rate integral to within one request.
///
/// Everything is deterministic from scenario_config::seed: the same
/// config compiles to the bit-identical event stream, markers and
/// spans on every call (the property the scenario test suite pins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "emu/event.hpp"
#include "emu/generator.hpp"
#include "scenario/process.hpp"

namespace hdhash {

/// One scenario phase: `ticks` ticks of the given arrival + churn +
/// weight processes.
struct scenario_phase {
  std::string name;          ///< label carried into spans and reports
  std::size_t ticks = 0;     ///< phase length (> 0)
  arrival_process arrival;   ///< requests per tick
  churn_process churn;       ///< membership events
  weight_process weight;     ///< capacity-weight evolution
};

/// Declarative scenario description: the pool/keyspace parameters the
/// workload_config already speaks, plus the ordered phase list.
struct scenario_config {
  std::string name;                  ///< scenario label for reports
  std::size_t initial_servers = 64;  ///< join burst before phase 0
  double initial_weight = 1.0;       ///< weight of every initial server
  /// Correlated-failure group width: join-burst position i belongs to
  /// rack i / rack_size, and later joins keep numbering racks off the
  /// same counter (see churn_process::rack_failure).
  std::size_t rack_size = 8;
  std::size_t key_universe = 1'000'000;  ///< distinct request identifiers
  request_distribution distribution = request_distribution::uniform;
  double zipf_skew = 0.99;           ///< used when distribution == zipf
  std::uint64_t seed = 42;           ///< determinism root
  std::vector<scenario_phase> phases;
};

/// Event-index and tick extent of one compiled phase, plus its event
/// census — phase boundaries are exact, by construction.
struct phase_span {
  std::string name;             ///< scenario_phase::name
  std::size_t first_event = 0;  ///< events[first_event] is the phase's first
  std::size_t end_event = 0;    ///< one past the phase's last event
  std::size_t first_tick = 0;   ///< global tick the phase starts on
  std::size_t end_tick = 0;     ///< one past the phase's last tick
  std::size_t requests = 0;     ///< request events in the span
  std::size_t joins = 0;        ///< join events in the span
  std::size_t leaves = 0;       ///< leave events in the span
};

/// A notable compiled episode (rack failure, autoscale trigger, decay
/// step, …), anchored to its tick and first emitted event.  Markers
/// with `disruptive` set are where the matrix driver starts its
/// recovery-time clock.
struct scenario_marker {
  std::string label;            ///< e.g. "rack-failure", "autoscale"
  std::size_t tick = 0;         ///< global tick of the episode
  std::size_t event_index = 0;  ///< index of the episode's first event
  bool disruptive = false;      ///< anchors recovery-time measurement
};

/// A compiled scenario: the event stream plus the side tables that let
/// drivers report per-phase and per-episode metrics without re-deriving
/// the schedule.
struct compiled_scenario {
  std::string name;                        ///< scenario_config::name
  std::vector<event> events;               ///< feed to any emulator
  /// Global tick each event was emitted on (parallel to `events`).
  std::vector<std::uint32_t> event_ticks;
  std::vector<phase_span> phases;          ///< exact per-phase extents
  std::vector<scenario_marker> markers;    ///< notable episodes
  /// Ids of the initial join burst, in join order (events[0 ..
  /// initial_servers.size()) are their joins, all on tick 0).
  std::vector<std::uint64_t> initial_servers;
  std::size_t total_ticks = 0;             ///< sum of phase lengths
  /// Peak concurrent pool size over the run — size tables to this.
  std::size_t max_pool_size = 0;
  /// Peak sum of rounded-up member weights — size slot-replicating
  /// tables (hd) to this.
  std::size_t max_pool_weight = 0;
  std::size_t requests = 0;                ///< total request events
  std::size_t joins = 0;                   ///< total join events
  std::size_t leaves = 0;                  ///< total leave events
};

/// Compiles a scenario to its event stream.  Deterministic: identical
/// config (and `weighted`) → bit-identical result.
///
/// `weighted` = false clamps every join's weight to 1.0 without
/// changing anything else — same event kinds, ids, ticks and order —
/// so a weight-blind algorithm (modular, jump, …) runs the *same*
/// playbook as a weight-capable one and the matrix stays comparable
/// cell to cell.
/// \param config    the scenario; phases must be non-empty and valid
///                  (positive ticks, finite non-negative rates, …).
/// \param weighted  compile join weights (true) or clamp them to 1.
/// \throws precondition_error on an invalid configuration.
compiled_scenario compile_scenario(const scenario_config& config,
                                   bool weighted = true);

}  // namespace hdhash
