/// \file process.hpp
/// \brief The three composable processes a scenario phase is built
/// from: an *arrival* process (requests per tick), a *churn* process
/// (membership events per tick) and a *weight* process (capacity decay
/// of grey servers).
///
/// Each process is a small declarative parameter block — plain data, so
/// phases compose by aggregation and compile deterministically (see
/// scenario.hpp).  The shapes cover what production fleets actually
/// see and the paper's single-shape generator does not: diurnal load
/// swings, flash crowds, correlated rack failures, rolling upgrades,
/// load-triggered autoscaling and slow/grey servers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hdhash {

/// Deterministic requests-per-tick rate shape of one phase.  All
/// shapes are evaluated by rate_at(); the compiler accumulates the
/// (fractional) rate with error diffusion, so the number of requests a
/// phase emits tracks the rate integral to within one request.
struct arrival_process {
  /// Which rate shape rate_at() evaluates.
  enum class shape_kind : std::uint8_t {
    constant,     ///< flat `base_rate` requests per tick
    diurnal,      ///< sine around `base_rate` (day/night swing)
    flash_crowd,  ///< `base_rate`, times `spike_factor` inside the spike
    ramp,         ///< linear `base_rate` → `end_rate` over the phase
  };

  shape_kind shape = shape_kind::constant;
  /// Requests per tick: the flat rate (constant), the mean (diurnal),
  /// the off-spike rate (flash_crowd) or the first tick's rate (ramp).
  double base_rate = 32.0;
  /// Diurnal peak deviation as a fraction of base_rate, in [0, 1]
  /// (0.6 swings between 0.4x and 1.6x the mean).
  double amplitude = 0.5;
  /// Diurnal ticks per full day/night cycle; 0 = one cycle per phase.
  std::size_t period = 0;
  /// Flash-crowd rate multiplier while the spike is live (>= 1).
  double spike_factor = 8.0;
  /// Flash-crowd first spiked tick (phase-relative).
  std::size_t spike_start = 0;
  /// Flash-crowd spike width in ticks; 0 = spike to the phase end.
  std::size_t spike_ticks = 0;
  /// Ramp rate at the last tick of the phase.
  double end_rate = 0.0;

  /// Requests-per-tick rate at phase-relative `tick` of a phase
  /// `phase_ticks` long.  Pure: same arguments, same rate.
  /// \param tick         phase-relative tick in [0, phase_ticks).
  /// \param phase_ticks  length of the enclosing phase, > 0.
  double rate_at(std::size_t tick, std::size_t phase_ticks) const;

  /// Flat `rate` requests per tick.
  static arrival_process constant(double rate);
  /// Sine around `mean` with peak deviation `amplitude`·mean, one full
  /// cycle every `period` ticks (0 = one cycle per phase).
  static arrival_process diurnal(double mean, double amplitude,
                                 std::size_t period = 0);
  /// `base` requests per tick, times `factor` for the `ticks` ticks
  /// starting at `start` (0 ticks = spike to the phase end).
  static arrival_process flash_crowd(double base, double factor,
                                     std::size_t start, std::size_t ticks);
  /// Linear ramp `from` → `to` across the phase.
  static arrival_process ramp(double from, double to);
};

/// Membership-event shape of one phase.  Bernoulli churn reproduces
/// the generator's alternating join/leave process; the other shapes
/// are the production failure playbooks: a whole rack leaving at once,
/// a rolling upgrade's leave+join waves, and load-triggered autoscale
/// joins.
struct churn_process {
  /// Which membership process the compiler runs for the phase.
  enum class shape_kind : std::uint8_t {
    none,             ///< membership is static for the phase
    bernoulli,        ///< per-tick coin flip, alternating join/leave
    rack_failure,     ///< one correlated group leaves at `failure_tick`
    rolling_upgrade,  ///< periodic leave+join replacement waves
    autoscale,        ///< joins triggered by per-server arrival load
  };

  shape_kind shape = shape_kind::none;
  /// Bernoulli per-tick probability of one churn event.
  double rate = 0.0;
  /// Rack failure: phase-relative tick the rack dies.
  std::size_t failure_tick = 0;
  /// Rack failure: index of the failing rack (see
  /// scenario_config::rack_size; rack r holds join-burst positions
  /// [r*rack_size, (r+1)*rack_size)).
  std::size_t rack = 0;
  /// Rack failure: ticks after the failure until an equal count of
  /// replacement servers joins; 0 = capacity is never restored.
  std::size_t recovery_delay = 0;
  /// Rolling upgrade: ticks between replacement waves (> 0).
  std::size_t wave_interval = 0;
  /// Rolling upgrade: servers replaced (leave+join) per wave.
  std::size_t wave_size = 1;
  /// Autoscale: requests/tick/server threshold that triggers a scale-up.
  double scale_up_load = 0.0;
  /// Autoscale: servers joined per trigger.
  std::size_t scale_step = 1;
  /// Autoscale: minimum ticks between consecutive triggers.
  std::size_t cooldown = 0;

  /// Static membership.
  static churn_process none();
  /// Generator-style alternating join/leave churn at per-tick
  /// probability `rate`.
  static churn_process bernoulli(double rate);
  /// The `rack`-th join-burst group leaves at `failure_tick`; an equal
  /// count of fresh servers joins `recovery_delay` ticks later (0 =
  /// never).
  static churn_process rack_failure(std::size_t failure_tick,
                                    std::size_t rack,
                                    std::size_t recovery_delay);
  /// Every `wave_interval` ticks, the `wave_size` longest-serving
  /// original servers are replaced (leave + fresh join) until the
  /// whole starting fleet has been upgraded.
  static churn_process rolling_upgrade(std::size_t wave_interval,
                                       std::size_t wave_size = 1);
  /// Joins `scale_step` servers whenever the tick's arrival rate per
  /// pool member exceeds `scale_up_load`, at most once per `cooldown`
  /// ticks.
  static churn_process autoscale(double scale_up_load,
                                 std::size_t scale_step,
                                 std::size_t cooldown);
};

/// Capacity-weight shape of one phase.  grey_decay models slow/grey
/// servers: a fixed victim set halves (decay_factor) its weight every
/// decay_interval ticks until the floor, each step compiled as a
/// leave + rejoin at the decayed weight so the event stream stays the
/// plain join/leave/request vocabulary every consumer already speaks.
struct weight_process {
  /// Which weight process the compiler runs for the phase.
  enum class shape_kind : std::uint8_t {
    constant,    ///< weights hold for the phase
    grey_decay,  ///< a victim set's weight decays geometrically
  };

  shape_kind shape = shape_kind::constant;
  /// Grey decay: how many of the initial join burst's servers go grey
  /// (victims are burst positions [0, victims), skipping any that
  /// already left).
  std::size_t victims = 0;
  /// Grey decay: ticks between decay steps (> 0).
  std::size_t decay_interval = 0;
  /// Grey decay: weight multiplier per step, in (0, 1).
  double decay_factor = 0.5;
  /// Grey decay: decay stops once a victim's weight reaches this.
  double weight_floor = 1.0;

  /// Weights hold for the phase.
  static weight_process constant();
  /// The first `victims` join-burst servers decay: weight times
  /// `factor` every `interval` ticks, stopping at `floor`.
  static weight_process grey_decay(std::size_t victims, std::size_t interval,
                                   double factor, double floor);
};

}  // namespace hdhash
