#include "scenario/process.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace hdhash {

double arrival_process::rate_at(std::size_t tick,
                                std::size_t phase_ticks) const {
  HDHASH_REQUIRE(phase_ticks > 0, "phase must span at least one tick");
  HDHASH_REQUIRE(tick < phase_ticks, "tick outside the phase");
  switch (shape) {
    case shape_kind::constant:
      return base_rate;
    case shape_kind::diurnal: {
      const std::size_t cycle = period == 0 ? phase_ticks : period;
      const double angle = 2.0 * std::numbers::pi *
                           static_cast<double>(tick) /
                           static_cast<double>(cycle);
      return base_rate * (1.0 + amplitude * std::sin(angle));
    }
    case shape_kind::flash_crowd: {
      const std::size_t end =
          spike_ticks == 0 ? phase_ticks : spike_start + spike_ticks;
      const bool live = tick >= spike_start && tick < end;
      return base_rate * (live ? spike_factor : 1.0);
    }
    case shape_kind::ramp: {
      if (phase_ticks == 1) {
        return base_rate;
      }
      const double t = static_cast<double>(tick) /
                       static_cast<double>(phase_ticks - 1);
      return base_rate + (end_rate - base_rate) * t;
    }
  }
  return base_rate;  // unreachable; keeps -Wreturn-type quiet
}

arrival_process arrival_process::constant(double rate) {
  arrival_process p;
  p.shape = shape_kind::constant;
  p.base_rate = rate;
  return p;
}

arrival_process arrival_process::diurnal(double mean, double amplitude,
                                         std::size_t period) {
  arrival_process p;
  p.shape = shape_kind::diurnal;
  p.base_rate = mean;
  p.amplitude = amplitude;
  p.period = period;
  return p;
}

arrival_process arrival_process::flash_crowd(double base, double factor,
                                             std::size_t start,
                                             std::size_t ticks) {
  arrival_process p;
  p.shape = shape_kind::flash_crowd;
  p.base_rate = base;
  p.spike_factor = factor;
  p.spike_start = start;
  p.spike_ticks = ticks;
  return p;
}

arrival_process arrival_process::ramp(double from, double to) {
  arrival_process p;
  p.shape = shape_kind::ramp;
  p.base_rate = from;
  p.end_rate = to;
  return p;
}

churn_process churn_process::none() { return churn_process{}; }

churn_process churn_process::bernoulli(double rate) {
  churn_process p;
  p.shape = shape_kind::bernoulli;
  p.rate = rate;
  return p;
}

churn_process churn_process::rack_failure(std::size_t failure_tick,
                                          std::size_t rack,
                                          std::size_t recovery_delay) {
  churn_process p;
  p.shape = shape_kind::rack_failure;
  p.failure_tick = failure_tick;
  p.rack = rack;
  p.recovery_delay = recovery_delay;
  return p;
}

churn_process churn_process::rolling_upgrade(std::size_t wave_interval,
                                             std::size_t wave_size) {
  churn_process p;
  p.shape = shape_kind::rolling_upgrade;
  p.wave_interval = wave_interval;
  p.wave_size = wave_size;
  return p;
}

churn_process churn_process::autoscale(double scale_up_load,
                                       std::size_t scale_step,
                                       std::size_t cooldown) {
  churn_process p;
  p.shape = shape_kind::autoscale;
  p.scale_up_load = scale_up_load;
  p.scale_step = scale_step;
  p.cooldown = cooldown;
  return p;
}

weight_process weight_process::constant() { return weight_process{}; }

weight_process weight_process::grey_decay(std::size_t victims,
                                          std::size_t interval, double factor,
                                          double floor) {
  weight_process p;
  p.shape = shape_kind::grey_decay;
  p.victims = victims;
  p.decay_interval = interval;
  p.decay_factor = factor;
  p.weight_floor = floor;
  return p;
}

}  // namespace hdhash
