#include "scenario/playbooks.hpp"

#include <algorithm>
#include <string>

#include "util/require.hpp"

namespace hdhash {

namespace {

scenario_config base_config(std::string name, const scenario_tuning& tuning) {
  scenario_config config;
  config.name = std::move(name);
  config.initial_servers = tuning.servers;
  config.rack_size = tuning.rack_size;
  config.seed = tuning.seed;
  return config;
}

scenario_phase make_phase(std::string name, std::size_t ticks,
                          arrival_process arrival,
                          churn_process churn = churn_process::none(),
                          weight_process weight = weight_process::constant()) {
  scenario_phase phase;
  phase.name = std::move(name);
  phase.ticks = ticks;
  phase.arrival = arrival;
  phase.churn = churn;
  phase.weight = weight;
  return phase;
}

}  // namespace

std::vector<std::string_view> scenario_names() {
  return {"steady",       "diurnal",         "flash-crowd",
          "rack-failure", "rolling-upgrade", "grey-server"};
}

bool is_scenario_name(std::string_view name) {
  const auto names = scenario_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

scenario_config make_scenario(std::string_view name,
                              const scenario_tuning& tuning) {
  HDHASH_REQUIRE(tuning.phase_ticks >= 16,
                 "scenario tuning needs at least 16 ticks per phase");
  HDHASH_REQUIRE(tuning.rack_size >= 1, "rack size must be positive");
  HDHASH_REQUIRE(tuning.servers >= 2 * tuning.rack_size,
                 "scenario tuning needs at least two racks of servers");
  const std::size_t ticks = tuning.phase_ticks;
  const double rate = tuning.base_rate;

  if (name == "steady") {
    // Control row: flat arrivals, static membership.  Load-balance χ²
    // here is each algorithm's intrinsic uniformity.
    scenario_config config = base_config("steady", tuning);
    config.phases.push_back(
        make_phase("steady", ticks, arrival_process::constant(rate)));
    return config;
  }
  if (name == "diurnal") {
    // Two full day/night sine cycles (±60% around the mean) with light
    // generator-style churn running throughout.
    scenario_config config = base_config("diurnal", tuning);
    config.phases.push_back(make_phase(
        "day-night", 2 * ticks, arrival_process::diurnal(rate, 0.6, ticks),
        churn_process::bernoulli(0.02)));
    return config;
  }
  if (name == "flash-crowd") {
    // Warm-up ramp, then a 6x spike of zipf-skewed traffic (flash
    // crowds are hot-key events) with autoscale joining capacity when
    // per-server load doubles, then a cooldown at the base rate.
    scenario_config config = base_config("flash-crowd", tuning);
    config.distribution = request_distribution::zipf;
    config.zipf_skew = 0.99;
    const double trigger =
        2.0 * rate / static_cast<double>(tuning.servers);
    const std::size_t step = std::max<std::size_t>(1, tuning.servers / 8);
    config.phases.push_back(make_phase(
        "warmup", ticks / 2, arrival_process::ramp(rate / 2.0, rate)));
    config.phases.push_back(make_phase(
        "spike", ticks,
        arrival_process::flash_crowd(rate, 6.0, ticks / 8, ticks / 2),
        churn_process::autoscale(trigger, step, ticks / 16)));
    config.phases.push_back(
        make_phase("cooldown", ticks / 2, arrival_process::constant(rate)));
    return config;
  }
  if (name == "rack-failure") {
    // Rack 1 dies a quarter into the failure phase; an equal count of
    // replacement servers joins a quarter-phase later.
    scenario_config config = base_config("rack-failure", tuning);
    config.phases.push_back(
        make_phase("steady", ticks / 2, arrival_process::constant(rate)));
    config.phases.push_back(make_phase(
        "failure", ticks, arrival_process::constant(rate),
        churn_process::rack_failure(ticks / 4, 1, ticks / 4)));
    config.phases.push_back(
        make_phase("aftermath", ticks / 2, arrival_process::constant(rate)));
    return config;
  }
  if (name == "rolling-upgrade") {
    // Replace the whole starting fleet in 16 waves across the upgrade
    // phase, each wave a leave + fresh join per replaced server.
    scenario_config config = base_config("rolling-upgrade", tuning);
    const std::size_t wave_size =
        std::max<std::size_t>(1, tuning.servers / 16);
    const std::size_t waves =
        (tuning.servers + wave_size - 1) / wave_size;
    const std::size_t interval = std::max<std::size_t>(1, ticks / (waves + 1));
    config.phases.push_back(
        make_phase("steady", ticks / 2, arrival_process::constant(rate)));
    config.phases.push_back(make_phase(
        "upgrade", ticks, arrival_process::constant(rate),
        churn_process::rolling_upgrade(interval, wave_size)));
    return config;
  }
  if (name == "grey-server") {
    // One rack's worth of servers goes grey: weight 4 decays 4→2→1
    // across the degrading phase (each step a leave + rejoin at the
    // lower weight).  Weight-capable algorithms track the decay;
    // weight-blind ones run the identical stream clamped to weight 1.
    scenario_config config = base_config("grey-server", tuning);
    config.initial_weight = 4.0;
    config.phases.push_back(
        make_phase("healthy", ticks / 2, arrival_process::constant(rate)));
    config.phases.push_back(make_phase(
        "degrading", ticks, arrival_process::constant(rate),
        churn_process::none(),
        weight_process::grey_decay(tuning.rack_size, ticks / 4, 0.5, 1.0)));
    return config;
  }

  std::string message = "unknown scenario \"";
  message += name;
  message += "\"; valid playbooks:";
  for (const std::string_view known : scenario_names()) {
    message += ' ';
    message += known;
  }
  HDHASH_REQUIRE(false, message.c_str());
  return {};  // unreachable
}

}  // namespace hdhash
