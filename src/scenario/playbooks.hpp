/// \file playbooks.hpp
/// \brief Named production playbooks — the scenario matrix's rows.
///
/// Six reproducible scenarios built from the process DSL, each
/// capturing one production traffic shape the single-shape generator
/// cannot express:
///
///  * `steady`          — flat arrivals, static membership (control row)
///  * `diurnal`         — two day/night sine cycles with light Bernoulli
///                        churn
///  * `flash-crowd`     — warm-up ramp, then a 6x zipf-skewed spike with
///                        load-triggered autoscale joins, then cooldown
///  * `rack-failure`    — a correlated 8-server rack dies mid-phase and
///                        replacement capacity joins after a delay
///  * `rolling-upgrade` — the whole fleet is replaced in periodic
///                        leave+join waves
///  * `grey-server`     — a victim set's capacity weight decays 4→2→1
///                        (each step a leave + rejoin at the lower
///                        weight)
///
/// All playbooks derive their sizes from one scenario_tuning block, so
/// tests shrink every scenario the same way the benches keep the full
/// size — and the tick schedules stay proportionally identical.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace hdhash {

/// Size knobs shared by every named playbook.  Playbooks derive all
/// their schedule parameters (failure ticks, wave intervals, decay
/// steps) from these, so scaling them scales the whole scenario
/// proportionally.
struct scenario_tuning {
  /// Nominal ticks per phase (>= 16, so derived schedule fractions
  /// like `phase_ticks / 8` stay non-degenerate).
  std::size_t phase_ticks = 240;
  /// Nominal requests per tick off-peak.
  double base_rate = 120.0;
  /// Initial pool size (>= 2 * rack_size, so a rack can fail without
  /// emptying the pool).
  std::size_t servers = 64;
  /// Correlated-failure group width.
  std::size_t rack_size = 8;
  /// Determinism root forwarded to scenario_config::seed.
  std::uint64_t seed = 42;
};

/// The named playbooks, in matrix row order.
std::vector<std::string_view> scenario_names();

/// True when `name` is a known playbook.
bool is_scenario_name(std::string_view name);

/// Builds the named playbook's scenario at the given tuning.
/// \throws precondition_error listing every valid name for unknown
/// ones, and on a degenerate tuning (see scenario_tuning).
scenario_config make_scenario(std::string_view name,
                              const scenario_tuning& tuning = {});

}  // namespace hdhash
