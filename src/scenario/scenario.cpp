#include "scenario/scenario.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "hashing/splitmix_hash.hpp"
#include "stats/zipf.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace hdhash {

namespace {

void validate_phase(const scenario_phase& phase,
                    const scenario_config& config) {
  HDHASH_REQUIRE(phase.ticks > 0, "scenario phase must span at least one tick");
  const arrival_process& a = phase.arrival;
  HDHASH_REQUIRE(std::isfinite(a.base_rate) && a.base_rate >= 0.0,
                 "arrival rate must be finite and non-negative");
  switch (a.shape) {
    case arrival_process::shape_kind::constant:
      break;
    case arrival_process::shape_kind::diurnal:
      HDHASH_REQUIRE(std::isfinite(a.amplitude) && a.amplitude >= 0.0 &&
                         a.amplitude <= 1.0,
                     "diurnal amplitude must be in [0, 1]");
      break;
    case arrival_process::shape_kind::flash_crowd:
      HDHASH_REQUIRE(std::isfinite(a.spike_factor) && a.spike_factor >= 1.0,
                     "flash-crowd spike factor must be >= 1");
      HDHASH_REQUIRE(a.spike_start < phase.ticks,
                     "flash-crowd spike must start inside the phase");
      break;
    case arrival_process::shape_kind::ramp:
      HDHASH_REQUIRE(std::isfinite(a.end_rate) && a.end_rate >= 0.0,
                     "ramp end rate must be finite and non-negative");
      break;
  }
  const churn_process& c = phase.churn;
  switch (c.shape) {
    case churn_process::shape_kind::none:
      break;
    case churn_process::shape_kind::bernoulli:
      HDHASH_REQUIRE(std::isfinite(c.rate) && c.rate >= 0.0 && c.rate <= 1.0,
                     "bernoulli churn rate must be a probability in [0, 1]");
      break;
    case churn_process::shape_kind::rack_failure:
      HDHASH_REQUIRE(c.failure_tick < phase.ticks,
                     "rack failure must happen inside the phase");
      HDHASH_REQUIRE(c.rack * config.rack_size < config.initial_servers,
                     "failing rack must exist in the initial join burst");
      break;
    case churn_process::shape_kind::rolling_upgrade:
      HDHASH_REQUIRE(c.wave_interval > 0,
                     "rolling-upgrade wave interval must be positive");
      HDHASH_REQUIRE(c.wave_size >= 1,
                     "rolling-upgrade wave size must be positive");
      break;
    case churn_process::shape_kind::autoscale:
      HDHASH_REQUIRE(std::isfinite(c.scale_up_load) && c.scale_up_load > 0.0,
                     "autoscale trigger load must be finite and positive");
      HDHASH_REQUIRE(c.scale_step >= 1, "autoscale step must be positive");
      break;
  }
  const weight_process& w = phase.weight;
  if (w.shape == weight_process::shape_kind::grey_decay) {
    HDHASH_REQUIRE(w.victims >= 1 && w.victims <= config.initial_servers,
                   "grey-decay victims must name initial join-burst servers");
    HDHASH_REQUIRE(w.decay_interval > 0,
                   "grey-decay interval must be positive");
    HDHASH_REQUIRE(std::isfinite(w.decay_factor) && w.decay_factor > 0.0 &&
                       w.decay_factor < 1.0,
                   "grey-decay factor must be in (0, 1)");
    HDHASH_REQUIRE(std::isfinite(w.weight_floor) && w.weight_floor > 0.0,
                   "grey-decay weight floor must be finite and positive");
  }
}

void validate(const scenario_config& config) {
  HDHASH_REQUIRE(!config.phases.empty(), "scenario needs at least one phase");
  HDHASH_REQUIRE(config.initial_servers >= 1,
                 "scenario needs a non-empty initial pool");
  HDHASH_REQUIRE(config.rack_size >= 1, "rack size must be positive");
  HDHASH_REQUIRE(config.key_universe > 0, "key universe must be non-empty");
  HDHASH_REQUIRE(std::isfinite(config.initial_weight) &&
                     config.initial_weight > 0.0,
                 "initial weight must be finite and positive");
  if (config.distribution == request_distribution::zipf) {
    HDHASH_REQUIRE(std::isfinite(config.zipf_skew) && config.zipf_skew >= 0.0,
                   "zipf skew must be a finite non-negative exponent");
  }
  std::size_t total_ticks = 0;
  for (const scenario_phase& phase : config.phases) {
    validate_phase(phase, config);
    total_ticks += phase.ticks;
  }
  HDHASH_REQUIRE(
      total_ticks <= std::numeric_limits<std::uint32_t>::max(),
      "scenario tick count exceeds the per-event tick representation");
}

/// One pool member as the compiler tracks it.  `weight` is the
/// *logical* weight — the unweighted compile clamps only at event
/// emission, so the control flow (and hence the event kinds, ids and
/// ticks) is bit-identical whichever way a scenario is compiled.
struct member {
  std::uint64_t id = 0;
  double weight = 1.0;
  std::size_t rack = 0;
};

}  // namespace

compiled_scenario compile_scenario(const scenario_config& config,
                                   bool weighted) {
  validate(config);

  compiled_scenario out;
  out.name = config.name;
  xoshiro256 rng(config.seed);
  std::vector<zipf_sampler> sampler;  // 0 or 1 elements (no default ctor)
  if (config.distribution == request_distribution::zipf) {
    sampler.emplace_back(config.key_universe, config.zipf_skew);
  }

  std::vector<member> pool;        // current membership, in join order
  std::size_t next_server = 0;     // generator::server_id_at counter
  std::size_t pool_weight = 0;     // sum of ceil(weight) over the pool
  bool next_churn_is_join = true;  // bernoulli alternation (generator's)

  const auto fresh_member = [&](double weight) {
    member m{generator::server_id_at(config.seed, next_server), weight,
             next_server / config.rack_size};
    ++next_server;
    return m;
  };
  const auto slots = [&](const member& m) {
    return static_cast<std::size_t>(std::ceil(weighted ? m.weight : 1.0));
  };
  const auto emit_join = [&](member m, std::size_t tick) {
    out.events.push_back(
        event{event_kind::join, m.id, weighted ? m.weight : 1.0});
    out.event_ticks.push_back(static_cast<std::uint32_t>(tick));
    ++out.joins;
    pool_weight += slots(m);
    pool.push_back(std::move(m));
    out.max_pool_size = std::max(out.max_pool_size, pool.size());
    out.max_pool_weight = std::max(out.max_pool_weight, pool_weight);
  };
  const auto emit_leave = [&](std::size_t index, std::size_t tick) {
    out.events.push_back(event{event_kind::leave, pool[index].id, 1.0});
    out.event_ticks.push_back(static_cast<std::uint32_t>(tick));
    ++out.leaves;
    pool_weight -= slots(pool[index]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(index));
  };
  const auto index_of = [&](std::uint64_t id) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].id == id) {
        return i;
      }
    }
    return pool.size();
  };
  const auto mark = [&](std::string label, std::size_t tick, bool disruptive) {
    out.markers.push_back(scenario_marker{std::move(label), tick,
                                          out.events.size(), disruptive});
  };

  // Initial join burst: tick 0, before (and visible to) phase 0.
  out.initial_servers.reserve(config.initial_servers);
  for (std::size_t i = 0; i < config.initial_servers; ++i) {
    member m = fresh_member(config.initial_weight);
    out.initial_servers.push_back(m.id);
    emit_join(std::move(m), 0);
  }

  std::size_t global_tick = 0;
  for (const scenario_phase& phase : config.phases) {
    phase_span span;
    span.name = phase.name;
    span.first_event = out.events.size();
    span.first_tick = global_tick;
    const std::size_t requests_before = out.requests;
    const std::size_t joins_before = out.joins;
    const std::size_t leaves_before = out.leaves;

    // Per-phase process state.
    const churn_process& churn = phase.churn;
    const weight_process& wproc = phase.weight;
    double arrival_acc = 0.0;  // error-diffusion remainder
    std::size_t rack_losses = 0;
    std::vector<std::uint64_t> upgrade_queue;  // rolling: fleet at entry
    std::size_t upgrade_cursor = 0;
    bool first_wave = true;
    std::size_t last_scale_tick = 0;
    bool scaled_yet = false;
    bool first_decay = true;
    if (churn.shape == churn_process::shape_kind::rolling_upgrade) {
      upgrade_queue.reserve(pool.size());
      for (const member& m : pool) {
        upgrade_queue.push_back(m.id);
      }
    }

    for (std::size_t t = 0; t < phase.ticks; ++t, ++global_tick) {
      const double rate = phase.arrival.rate_at(t, phase.ticks);

      // 1. Churn process: this tick's membership events come first, so
      // the tick's requests observe them (stream order is the contract).
      switch (churn.shape) {
        case churn_process::shape_kind::none:
          break;
        case churn_process::shape_kind::bernoulli:
          if (churn.rate > 0.0 && uniform_unit(rng) < churn.rate) {
            if (next_churn_is_join || pool.empty()) {
              emit_join(fresh_member(1.0), global_tick);
            } else {
              const std::size_t victim = static_cast<std::size_t>(
                  uniform_below(rng, pool.size()));
              emit_leave(victim, global_tick);
            }
            next_churn_is_join = !next_churn_is_join;
          }
          break;
        case churn_process::shape_kind::rack_failure:
          if (t == churn.failure_tick) {
            mark("rack-failure", global_tick, /*disruptive=*/true);
            for (std::size_t i = pool.size(); i-- > 0;) {
              if (pool[i].rack == churn.rack) {
                emit_leave(i, global_tick);
                ++rack_losses;
              }
            }
            HDHASH_REQUIRE(rack_losses > 0,
                           "failing rack had no live members");
            HDHASH_REQUIRE(!pool.empty(),
                           "rack failure may not empty the pool");
          } else if (churn.recovery_delay > 0 &&
                     t == churn.failure_tick + churn.recovery_delay) {
            mark("capacity-restored", global_tick, /*disruptive=*/false);
            for (std::size_t i = 0; i < rack_losses; ++i) {
              emit_join(fresh_member(1.0), global_tick);
            }
          }
          break;
        case churn_process::shape_kind::rolling_upgrade:
          if (t > 0 && t % churn.wave_interval == 0 &&
              upgrade_cursor < upgrade_queue.size()) {
            mark("upgrade-wave", global_tick, /*disruptive=*/first_wave);
            first_wave = false;
            std::size_t replaced = 0;
            while (replaced < churn.wave_size &&
                   upgrade_cursor < upgrade_queue.size()) {
              const std::size_t index =
                  index_of(upgrade_queue[upgrade_cursor++]);
              if (index == pool.size()) {
                continue;  // already left through another process
              }
              const double weight = pool[index].weight;
              emit_leave(index, global_tick);
              emit_join(fresh_member(weight), global_tick);
              ++replaced;
            }
          }
          break;
        case churn_process::shape_kind::autoscale:
          if (!pool.empty() &&
              rate / static_cast<double>(pool.size()) > churn.scale_up_load &&
              (!scaled_yet || t - last_scale_tick >= churn.cooldown)) {
            mark("autoscale", global_tick, /*disruptive=*/!scaled_yet);
            scaled_yet = true;
            last_scale_tick = t;
            for (std::size_t i = 0; i < churn.scale_step; ++i) {
              emit_join(fresh_member(1.0), global_tick);
            }
          }
          break;
      }

      // 2. Weight process: grey servers decay as leave + rejoin at the
      // reduced weight, keeping the stream in the plain event vocabulary.
      if (wproc.shape == weight_process::shape_kind::grey_decay && t > 0 &&
          t % wproc.decay_interval == 0) {
        bool marked = false;
        for (std::size_t v = 0; v < wproc.victims; ++v) {
          const std::size_t index = index_of(out.initial_servers[v]);
          if (index == pool.size() ||
              pool[index].weight <= wproc.weight_floor) {
            continue;  // victim left, or already at the floor
          }
          if (!marked) {
            mark("grey-decay", global_tick, /*disruptive=*/first_decay);
            first_decay = false;
            marked = true;
          }
          member grey = pool[index];
          grey.weight = std::max(wproc.weight_floor,
                                 grey.weight * wproc.decay_factor);
          emit_leave(index, global_tick);
          emit_join(std::move(grey), global_tick);
        }
      }

      // 3. Arrivals: diffuse the fractional rate so the phase's request
      // count tracks the rate integral to within one request.
      arrival_acc += rate;
      const double whole = std::floor(arrival_acc);
      arrival_acc -= whole;
      for (std::size_t i = 0; i < static_cast<std::size_t>(whole); ++i) {
        std::uint64_t key;
        if (config.distribution == request_distribution::uniform) {
          key = uniform_below(rng, config.key_universe);
        } else {
          key = sampler.front().sample(rng);
        }
        // Same id derivation as the generator: requests carry opaque
        // mixed identifiers, not the integers 0..universe.
        out.events.push_back(event{event_kind::request,
                                   splitmix_hash::mix(key + 0xfeed)});
        out.event_ticks.push_back(static_cast<std::uint32_t>(global_tick));
        ++out.requests;
      }
    }

    span.end_event = out.events.size();
    span.end_tick = global_tick;
    span.requests = out.requests - requests_before;
    span.joins = out.joins - joins_before;
    span.leaves = out.leaves - leaves_before;
    out.phases.push_back(std::move(span));
  }
  out.total_ticks = global_tick;
  return out;
}

}  // namespace hdhash
