/// \file cpu_topology.hpp
/// \brief CPU/NUMA topology discovery for the topology-aware runtime.
///
/// Parses the Linux sysfs tree (`/sys/devices/system/cpu` +
/// `/sys/devices/system/node`) into a package → NUMA node → physical
/// core → SMT sibling hierarchy, intersected with the calling process's
/// allowed cpuset (`sched_getaffinity` — a cgroup/taskset-restricted
/// runner sees only what it may actually run on).  The sysfs root is
/// injectable so tests can point discovery at canned fixture trees, and
/// when no sysfs is available at all (non-Linux, masked /sys) discovery
/// degrades to a flat synthetic topology derived from
/// `std::thread::hardware_concurrency()` — every query keeps working,
/// placement just has nothing better than round-robin to go on.
///
/// This is the ground truth layer under `placement_plan` (shard sizing,
/// policy → CPU assignment) and `worker_pool` (pinned workers); nothing
/// here ever pins or allocates per-thread state itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hdhash::runtime {

/// One logical CPU (a hardware thread) as the scheduler numbers them.
struct logical_cpu {
  unsigned id = 0;           ///< kernel CPU number (cpuN)
  unsigned package = 0;      ///< physical socket (physical_package_id)
  unsigned core = 0;         ///< physical core within the package (core_id)
  unsigned node = 0;         ///< NUMA node owning this CPU
  /// Rank among the SMT siblings of (package, core), by CPU id: 0 for
  /// the first hardware thread of the core, 1 for its hyper-twin, …
  unsigned smt_rank = 0;
  /// In the process's allowed cpuset (sched_getaffinity); placement
  /// never assigns workers outside it.
  bool allowed = true;
};

/// The discovered machine layout.  Immutable after discovery; cheap to
/// copy.  CPUs are sorted by id.
class cpu_topology {
 public:
  /// Discovers the real machine: sysfs at `/sys` + the live allowed
  /// cpuset.  Falls back to flat() when sysfs is unusable.
  static cpu_topology discover();

  /// Discovery against an alternate sysfs root (fixture trees in
  /// tests, `/host/sys` in containers).  `allowed` overrides the
  /// affinity-mask probe: the listed CPU ids are allowed, all others
  /// masked; std::nullopt probes sched_getaffinity as discover() does.
  /// Returns std::nullopt when `root` lacks a parseable cpu tree —
  /// callers fall back to flat() (discover() does this automatically).
  static std::optional<cpu_topology> from_sysfs(
      const std::string& root,
      std::optional<std::vector<unsigned>> allowed = std::nullopt);

  /// Synthetic flat fallback: `cpus` logical CPUs (0 → one is
  /// assumed), each its own physical core on one package/node, all
  /// allowed.  What non-Linux platforms get.
  static cpu_topology flat(unsigned cpus);

  /// Builds a topology from explicit CPU descriptions (smt_rank is
  /// recomputed; ids must be unique).  For tests and embedders with
  /// out-of-band topology knowledge.
  static cpu_topology from_cpus(std::vector<logical_cpu> cpus);

  const std::vector<logical_cpu>& cpus() const noexcept { return cpus_; }

  /// True when discovery read a real sysfs tree (false for flat()).
  bool from_sysfs_tree() const noexcept { return from_sysfs_; }

  std::size_t packages() const noexcept { return packages_; }
  std::size_t numa_nodes() const noexcept { return nodes_; }
  /// Distinct (package, core) pairs — hardware cores, counting SMT
  /// siblings once.
  std::size_t physical_cores() const noexcept { return physical_cores_; }
  std::size_t logical_cpus() const noexcept { return cpus_.size(); }
  /// Maximum SMT siblings observed on any physical core (1 = no SMT).
  std::size_t smt_per_core() const noexcept { return smt_per_core_; }

  /// CPU ids in the allowed cpuset, ascending.
  std::vector<unsigned> allowed_cpus() const;
  /// Distinct (package, core) pairs with at least one allowed CPU.
  std::size_t allowed_physical_cores() const;
  /// NUMA node of a CPU id; 0 when the id is unknown.
  unsigned node_of(unsigned cpu) const;

 private:
  std::vector<logical_cpu> cpus_;
  std::size_t packages_ = 0;
  std::size_t nodes_ = 0;
  std::size_t physical_cores_ = 0;
  std::size_t smt_per_core_ = 0;
  bool from_sysfs_ = false;

  void finalize();  // derive counts + smt ranks from cpus_
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into ascending CPU
/// ids.  Whitespace/newline tolerant; malformed ranges yield an empty
/// vector rather than a partial parse.
std::vector<unsigned> parse_cpu_list(const std::string& text);

/// The live allowed cpuset via sched_getaffinity; empty on platforms
/// without one (callers then treat every discovered CPU as allowed).
std::vector<unsigned> probe_allowed_cpus();

}  // namespace hdhash::runtime
