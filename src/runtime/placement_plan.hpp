/// \file placement_plan.hpp
/// \brief Policy → CPU assignment: sizes worker counts to the
/// discovered topology and maps each worker to the logical CPU it
/// should be pinned on.
///
/// A placement plan is a pure function of (topology, worker count,
/// policy) — no threads, no syscalls — so every policy's mapping is
/// unit-testable against canned fixture topologies.  `worker_pool`
/// consumes the plan and performs the actual pinning.
///
/// Policies (all of them only ever assign CPUs from the allowed
/// cpuset, and wrap around when workers outnumber allowed CPUs):
///
///  * `none`      — no pinning; workers stay wherever the OS scheduler
///                  puts them (the pre-runtime behaviour).
///  * `compact`   — fill one NUMA node before spilling to the next:
///                  node 0's cores (SMT siblings together), then node
///                  1's, …  Maximizes cache/memory locality between
///                  sibling workers; the default for the sharded
///                  pipeline, whose workers share epoch snapshots.
///  * `scatter`   — round-robin across NUMA nodes, physical cores
///                  before SMT siblings.  Maximizes aggregate memory
///                  bandwidth for independent workers.
///  * `smt-aware` — one worker per *physical core* first (thread 0 of
///                  every core, nodes in order); SMT siblings are used
///                  only once every physical core already has a
///                  worker.  Avoids two workers contending one core's
///                  execution ports until the machine is full.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "runtime/cpu_topology.hpp"

namespace hdhash::runtime {

enum class placement_policy : std::uint8_t {
  none,
  compact,
  scatter,
  smt_aware,
};

/// Canonical CLI/JSON name ("none", "compact", "scatter", "smt-aware").
std::string_view to_string(placement_policy policy) noexcept;

/// Parses a policy name; std::nullopt for unknown names (callers decide
/// whether to fail loudly or fall back).
std::optional<placement_policy> parse_placement_policy(std::string_view name);

/// One worker's assignment.  cpu/node are -1 for unpinned workers
/// (policy `none`, or a topology with nothing usable).
struct worker_placement {
  int cpu = -1;
  int node = -1;
};

struct placement_plan {
  placement_policy policy = placement_policy::none;
  std::vector<worker_placement> workers;
  /// Workers wrapped around the allowed cpuset (more workers than
  /// allowed CPUs): at least two workers share a CPU.
  bool oversubscribed = false;
};

/// Maps `workers` workers onto `topology` under `policy`.  Pure; never
/// fails: an empty/degenerate topology yields unpinned assignments.
placement_plan plan_placement(const cpu_topology& topology,
                              std::size_t workers, placement_policy policy);

/// `shards=auto` sizing: one worker per allowed physical core,
/// reserving one core for the producer thread when more than two are
/// available.  Never returns 0.
std::size_t auto_shard_count(const cpu_topology& topology);

/// `shards=auto` sizing with `reserved_cores` physical cores held back
/// for other pinned workers (io reactors, the producer thread): the
/// shard count is the allowed physical cores minus the reservation,
/// provided at least one core is left over beyond it; on machines too
/// small to honour the reservation the shards get every core (sharing
/// with the reserved workers beats idling).  Never returns 0.
/// `auto_shard_count(t)` ≡ `auto_shard_count(t, 1)`.
std::size_t auto_shard_count(const cpu_topology& topology,
                             std::size_t reserved_cores);

/// The io/shard split the net server uses for `--shards auto`:
/// `io_threads` reactor workers (capped to what the topology can
/// dedicate) plus `auto_shard_count(topology, io_threads)` shards.
struct io_shard_split {
  std::size_t io_threads = 1;
  std::size_t shards = 1;
};

/// Sizes the split.  `requested_io` of 0 means auto: one reactor per
/// four allowed physical cores, between 1 and 4.  io_threads never
/// exceeds the allowed physical cores (so shards always keep >= 1).
io_shard_split plan_io_shard_split(const cpu_topology& topology,
                                   std::size_t requested_io = 0);

/// Process-wide default policy: `compact` (pin where supported),
/// overridable with the HDHASH_PIN environment variable
/// (none|compact|scatter|smt-aware).  An unknown value fails loudly
/// (hdhash::precondition_error) rather than silently unpinning — the
/// HDHASH_FORCE_KERNEL convention.
placement_policy default_placement_policy();

}  // namespace hdhash::runtime
