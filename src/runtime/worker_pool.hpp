/// \file worker_pool.hpp
/// \brief Reusable pool of pinned worker threads — the execution
/// substrate the sharded emulator (and every future scaling layer)
/// runs on.
///
/// The pool spawns its workers once, pins each to the CPU its
/// placement plan assigned (pthread_setaffinity_np where available; a
/// graceful per-worker no-op elsewhere — the `pinned` flag in
/// worker_info reports what actually happened), and then executes
/// submitted jobs FIFO per worker.  Jobs addressed to different
/// workers run concurrently; jobs addressed to the same worker are
/// serialized on that worker's thread, which is what makes per-worker
/// state (shard stats, scratch buffers, recycled batch memory)
/// single-owner by construction — and, on NUMA machines, lets an init
/// job *first-touch* that state on the worker's own node before the
/// hot loop starts.
///
/// Error contract: a throwing job does not kill its worker — the
/// exception is captured, subsequent jobs still run (so channel-drain
/// protocols never deadlock), and the first captured exception is
/// rethrown from wait_idle().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/placement_plan.hpp"

namespace hdhash::runtime {

/// What one worker actually got, as opposed to what the plan asked.
struct worker_info {
  int cpu = -1;        ///< CPU the worker is pinned to; -1 unpinned
  int node = -1;       ///< NUMA node of that CPU; -1 unpinned
  bool pinned = false; ///< the affinity syscall was made and succeeded
};

/// Fixed-size pool of pinned threads with per-worker FIFO job queues.
class worker_pool {
 public:
  using job = std::function<void()>;

  /// Spawns `workers` threads placed by `plan_placement(topology,
  /// workers, policy)`.  The constructor returns only after every
  /// worker has started and applied (or skipped) its pinning, so
  /// info() is immediately consistent.  \pre workers >= 1.
  worker_pool(std::size_t workers, placement_policy policy,
              const cpu_topology& topology);

  /// Same, against the cached host topology (discover(), once per
  /// process).
  worker_pool(std::size_t workers, placement_policy policy);

  /// Drains every queue, then joins all workers.
  ~worker_pool();

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  std::size_t size() const noexcept;
  placement_policy policy() const noexcept { return plan_.policy; }
  const placement_plan& plan() const noexcept { return plan_; }
  /// Post-pinning outcome for one worker.  \pre worker < size().
  const worker_info& info(std::size_t worker) const;
  /// True when at least one worker is actually pinned.
  bool any_pinned() const noexcept;

  /// Enqueues a job on one worker's FIFO queue (non-blocking).
  /// \pre worker < size().
  void submit(std::size_t worker, job work);

  /// Blocks until every worker's queue is empty and its thread idle,
  /// then rethrows the first exception any job raised since the last
  /// wait_idle() (clearing it).
  void wait_idle();

  /// Whether this build can pin at all (compile-time capability; a
  /// true here can still degrade per-worker at runtime, e.g. when the
  /// assigned CPU left the allowed cpuset between plan and spawn).
  static bool pinning_supported() noexcept;

 private:
  struct worker_state;

  placement_plan plan_;
  std::vector<std::unique_ptr<worker_state>> workers_;
};

/// The host topology, discovered once per process and cached (sysfs
/// parse + affinity probe).  Every sharded_emulator shares this; tests
/// that need a different shape construct their own cpu_topology.
const cpu_topology& host_topology();

}  // namespace hdhash::runtime
