#include "runtime/worker_pool.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/require.hpp"

#if defined(HDHASH_HAVE_PTHREAD_AFFINITY)
#include <pthread.h>
#include <sched.h>
#endif

namespace hdhash::runtime {

namespace {

/// Pins the calling thread to one CPU.  Returns false when the build
/// has no affinity API or the syscall is refused (cgroup shrank the
/// cpuset after planning, exotic kernels): the worker then simply runs
/// unpinned — placement is an optimization, never a correctness
/// requirement.
bool pin_self(int cpu) {
#if defined(HDHASH_HAVE_PTHREAD_AFFINITY)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(cpu), &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

bool worker_pool::pinning_supported() noexcept {
#if defined(HDHASH_HAVE_PTHREAD_AFFINITY)
  return true;
#else
  return false;
#endif
}

const cpu_topology& host_topology() {
  static const cpu_topology topology = cpu_topology::discover();
  return topology;
}

struct worker_pool::worker_state {
  std::mutex mutex;
  std::condition_variable wake;   // queue became non-empty / stopping
  std::condition_variable drained;  // queue empty and worker idle
  std::deque<job> queue;
  bool busy = false;
  bool stop = false;
  bool started = false;  // pinning applied, info published
  std::exception_ptr error;
  worker_info info;
  std::thread thread;

  void run(const worker_placement& placement) {
    {
      std::unique_lock lock(mutex);
      if (placement.cpu >= 0 && pin_self(placement.cpu)) {
        info.cpu = placement.cpu;
        info.node = placement.node;
        info.pinned = true;
      }
      started = true;
      drained.notify_all();
    }
    for (;;) {
      job work;
      {
        std::unique_lock lock(mutex);
        busy = false;
        if (queue.empty()) {
          drained.notify_all();
        }
        wake.wait(lock, [this] { return !queue.empty() || stop; });
        if (queue.empty()) {
          return;  // stop with nothing left to drain
        }
        work = std::move(queue.front());
        queue.pop_front();
        busy = true;
      }
      try {
        work();
      } catch (...) {
        const std::lock_guard lock(mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  }
};

worker_pool::worker_pool(std::size_t workers, placement_policy policy,
                         const cpu_topology& topology)
    : plan_(plan_placement(topology, workers, policy)) {
  HDHASH_REQUIRE(workers >= 1, "worker pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<worker_state>());
  }
  // Spawn after all states exist (threads only touch their own slot).
  for (std::size_t w = 0; w < workers; ++w) {
    worker_state& state = *workers_[w];
    state.thread =
        std::thread([&state, placement = plan_.workers[w]] {
          state.run(placement);
        });
  }
  // Wait for every worker to publish its pinning outcome so info() is
  // consistent from the moment construction returns.
  for (const auto& state : workers_) {
    std::unique_lock lock(state->mutex);
    state->drained.wait(lock, [&] { return state->started; });
  }
}

worker_pool::worker_pool(std::size_t workers, placement_policy policy)
    : worker_pool(workers, policy, host_topology()) {}

worker_pool::~worker_pool() {
  for (const auto& state : workers_) {
    {
      const std::lock_guard lock(state->mutex);
      state->stop = true;
    }
    state->wake.notify_all();
  }
  for (const auto& state : workers_) {
    if (state->thread.joinable()) {
      state->thread.join();
    }
  }
}

std::size_t worker_pool::size() const noexcept { return workers_.size(); }

const worker_info& worker_pool::info(std::size_t worker) const {
  HDHASH_REQUIRE(worker < workers_.size(), "worker index out of range");
  return workers_[worker]->info;
}

bool worker_pool::any_pinned() const noexcept {
  for (const auto& state : workers_) {
    if (state->info.pinned) {
      return true;
    }
  }
  return false;
}

void worker_pool::submit(std::size_t worker, job work) {
  HDHASH_REQUIRE(worker < workers_.size(), "worker index out of range");
  HDHASH_REQUIRE(work != nullptr, "job must be callable");
  worker_state& state = *workers_[worker];
  {
    const std::lock_guard lock(state.mutex);
    HDHASH_REQUIRE(!state.stop, "worker pool is shutting down");
    state.queue.push_back(std::move(work));
  }
  state.wake.notify_one();
}

void worker_pool::wait_idle() {
  std::exception_ptr first_error;
  for (const auto& state : workers_) {
    std::unique_lock lock(state->mutex);
    state->drained.wait(
        lock, [&] { return state->queue.empty() && !state->busy; });
    // Clear *every* worker's error, keeping only the first to rethrow:
    // a stale second error must not spuriously fail the next
    // generation of jobs on this (persistent) pool.
    const std::exception_ptr error = std::exchange(state->error, nullptr);
    if (error && !first_error) {
      first_error = error;
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace hdhash::runtime
