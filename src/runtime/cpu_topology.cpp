#include "runtime/cpu_topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#if defined(__linux__)
#include <sched.h>
#endif

namespace hdhash::runtime {

namespace {

namespace fs = std::filesystem;

/// First line of a sysfs attribute file, or std::nullopt when the file
/// is missing/unreadable (sysfs trees are sparse: a fixture or an older
/// kernel may lack any given attribute).
std::optional<std::string> read_line(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::string line;
  std::getline(in, line);
  return line;
}

std::optional<unsigned> read_unsigned(const fs::path& path) {
  const auto line = read_line(path);
  if (!line) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(line->c_str(), &end, 10);
  if (end == line->c_str() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<unsigned>(value);
}

/// CPU ids under `cpu_dir`: the kernel's `online` list when present
/// (hot-unplugged CPUs have a cpuN directory but cannot run threads),
/// otherwise every cpuN subdirectory.
std::vector<unsigned> enumerate_cpus(const fs::path& cpu_dir) {
  if (const auto online = read_line(cpu_dir / "online")) {
    const auto ids = parse_cpu_list(*online);
    if (!ids.empty()) {
      return ids;
    }
  }
  std::vector<unsigned> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) {
      continue;
    }
    const std::string digits = name.substr(3);
    if (!std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      continue;  // cpufreq, cpuidle, ...
    }
    ids.push_back(static_cast<unsigned>(std::stoul(digits)));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// cpu id → NUMA node from `{root}/devices/system/node/node*/cpulist`.
/// Empty map when the node tree is absent (single-node machines often
/// ship it, but fixtures and exotic kernels may not) — callers then
/// default every CPU to node 0.
std::unordered_map<unsigned, unsigned> map_numa_nodes(const fs::path& node_dir) {
  std::unordered_map<unsigned, unsigned> node_of;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.compare(0, 4, "node") != 0) {
      continue;
    }
    const std::string digits = name.substr(4);
    if (!std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      continue;
    }
    const auto node = static_cast<unsigned>(std::stoul(digits));
    if (const auto cpulist = read_line(entry.path() / "cpulist")) {
      for (const unsigned cpu : parse_cpu_list(*cpulist)) {
        node_of[cpu] = node;
      }
    }
  }
  return node_of;
}

}  // namespace

std::vector<unsigned> parse_cpu_list(const std::string& text) {
  std::vector<unsigned> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    if (!std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return {};  // malformed: refuse a partial parse
    }
    unsigned long first = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      first = first * 10 + static_cast<unsigned long>(text[pos] - '0');
      ++pos;
    }
    unsigned long last = first;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return {};
      }
      last = 0;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        last = last * 10 + static_cast<unsigned long>(text[pos] - '0');
        ++pos;
      }
    }
    if (last < first) {
      return {};
    }
    for (unsigned long id = first; id <= last; ++id) {
      ids.push_back(static_cast<unsigned>(id));
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<unsigned> probe_allowed_cpus() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) {
    return {};
  }
  std::vector<unsigned> allowed;
  for (unsigned cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) {
      allowed.push_back(cpu);
    }
  }
  return allowed;
#else
  return {};
#endif
}

void cpu_topology::finalize() {
  std::sort(cpus_.begin(), cpus_.end(),
            [](const logical_cpu& a, const logical_cpu& b) {
              return a.id < b.id;
            });
  // SMT ranks: position among the siblings of the same physical core,
  // in CPU-id order (the kernel numbers the second hardware thread of
  // every core after all the first threads, so rank-by-id matches the
  // cpuN/topology/thread_siblings_list ordering).
  std::map<std::pair<unsigned, unsigned>, unsigned> seen;
  std::unordered_set<unsigned> packages;
  std::unordered_set<unsigned> nodes;
  smt_per_core_ = 0;
  for (logical_cpu& cpu : cpus_) {
    unsigned& rank = seen[{cpu.package, cpu.core}];
    cpu.smt_rank = rank++;
    smt_per_core_ = std::max<std::size_t>(smt_per_core_, rank);
    packages.insert(cpu.package);
    nodes.insert(cpu.node);
  }
  packages_ = packages.size();
  nodes_ = nodes.size();
  physical_cores_ = seen.size();
}

cpu_topology cpu_topology::flat(unsigned cpus) {
  cpu_topology topology;
  if (cpus == 0) {
    cpus = 1;
  }
  topology.cpus_.reserve(cpus);
  for (unsigned id = 0; id < cpus; ++id) {
    logical_cpu cpu;
    cpu.id = id;
    cpu.core = id;  // assume no SMT: the conservative placement input
    topology.cpus_.push_back(cpu);
  }
  topology.finalize();
  return topology;
}

cpu_topology cpu_topology::from_cpus(std::vector<logical_cpu> cpus) {
  cpu_topology topology;
  topology.cpus_ = std::move(cpus);
  if (topology.cpus_.empty()) {
    return flat(1);
  }
  topology.finalize();
  return topology;
}

std::optional<cpu_topology> cpu_topology::from_sysfs(
    const std::string& root, std::optional<std::vector<unsigned>> allowed) {
  const fs::path cpu_dir = fs::path(root) / "devices" / "system" / "cpu";
  std::error_code ec;
  if (!fs::is_directory(cpu_dir, ec)) {
    return std::nullopt;
  }
  const std::vector<unsigned> ids = enumerate_cpus(cpu_dir);
  if (ids.empty()) {
    return std::nullopt;
  }
  const auto node_of =
      map_numa_nodes(fs::path(root) / "devices" / "system" / "node");

  cpu_topology topology;
  topology.from_sysfs_ = true;
  topology.cpus_.reserve(ids.size());
  for (const unsigned id : ids) {
    const fs::path topo = cpu_dir / ("cpu" + std::to_string(id)) / "topology";
    logical_cpu cpu;
    cpu.id = id;
    cpu.package = read_unsigned(topo / "physical_package_id").value_or(0);
    // Missing core_id (no topology dir at all): treat each CPU as its
    // own core — degrades to flat placement instead of one mega-core.
    cpu.core = read_unsigned(topo / "core_id").value_or(id);
    const auto node = node_of.find(id);
    cpu.node = node != node_of.end() ? node->second : 0;
    topology.cpus_.push_back(cpu);
  }

  std::vector<unsigned> mask =
      allowed.has_value() ? std::move(*allowed) : probe_allowed_cpus();
  if (!mask.empty()) {
    const std::unordered_set<unsigned> in_mask(mask.begin(), mask.end());
    bool any_allowed = false;
    for (logical_cpu& cpu : topology.cpus_) {
      cpu.allowed = in_mask.count(cpu.id) != 0;
      any_allowed |= cpu.allowed;
    }
    if (!any_allowed) {
      // A mask disjoint from the visible CPUs (stale fixture, affinity
      // probe from another namespace): pinning anywhere would fail, so
      // treat everything as allowed rather than plan an empty set.
      for (logical_cpu& cpu : topology.cpus_) {
        cpu.allowed = true;
      }
    }
  }
  topology.finalize();
  return topology;
}

cpu_topology cpu_topology::discover() {
  if (auto topology = from_sysfs("/sys")) {
    return std::move(*topology);
  }
  cpu_topology topology = flat(std::thread::hardware_concurrency());
  const std::vector<unsigned> mask = probe_allowed_cpus();
  if (!mask.empty()) {
    const std::unordered_set<unsigned> in_mask(mask.begin(), mask.end());
    bool any_allowed = false;
    for (logical_cpu& cpu : topology.cpus_) {
      cpu.allowed = in_mask.count(cpu.id) != 0;
      any_allowed |= cpu.allowed;
    }
    if (!any_allowed) {
      for (logical_cpu& cpu : topology.cpus_) {
        cpu.allowed = true;
      }
    }
  }
  return topology;
}

std::vector<unsigned> cpu_topology::allowed_cpus() const {
  std::vector<unsigned> ids;
  for (const logical_cpu& cpu : cpus_) {
    if (cpu.allowed) {
      ids.push_back(cpu.id);
    }
  }
  return ids;
}

std::size_t cpu_topology::allowed_physical_cores() const {
  std::unordered_set<std::uint64_t> cores;
  for (const logical_cpu& cpu : cpus_) {
    if (cpu.allowed) {
      cores.insert((static_cast<std::uint64_t>(cpu.package) << 32) | cpu.core);
    }
  }
  return cores.size();
}

unsigned cpu_topology::node_of(unsigned cpu) const {
  const auto it = std::lower_bound(
      cpus_.begin(), cpus_.end(), cpu,
      [](const logical_cpu& c, unsigned id) { return c.id < id; });
  return it != cpus_.end() && it->id == cpu ? it->node : 0;
}

}  // namespace hdhash::runtime
