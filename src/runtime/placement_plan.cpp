#include "runtime/placement_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

#include "util/require.hpp"

namespace hdhash::runtime {

std::string_view to_string(placement_policy policy) noexcept {
  switch (policy) {
    case placement_policy::none:
      return "none";
    case placement_policy::compact:
      return "compact";
    case placement_policy::scatter:
      return "scatter";
    case placement_policy::smt_aware:
      return "smt-aware";
  }
  return "none";
}

std::optional<placement_policy> parse_placement_policy(std::string_view name) {
  if (name == "none") {
    return placement_policy::none;
  }
  if (name == "compact") {
    return placement_policy::compact;
  }
  if (name == "scatter") {
    return placement_policy::scatter;
  }
  if (name == "smt-aware" || name == "smt_aware") {
    return placement_policy::smt_aware;
  }
  return std::nullopt;
}

placement_policy default_placement_policy() {
  const char* env = std::getenv("HDHASH_PIN");
  if (env == nullptr || *env == '\0') {
    return placement_policy::compact;
  }
  const auto policy = parse_placement_policy(env);
  HDHASH_REQUIRE(policy.has_value(),
                 "HDHASH_PIN must be one of none|compact|scatter|smt-aware");
  return *policy;
}

namespace {

/// Allowed CPUs in the visit order of one policy.  Each comparison key
/// leads with the dimension the policy spreads over least eagerly:
/// compact keeps SMT siblings adjacent inside one node; smt-aware puts
/// every core's thread 0 before any thread 1; scatter interleaves
/// nodes round-robin on top of the smt-aware order.
std::vector<const logical_cpu*> policy_order(const cpu_topology& topology,
                                             placement_policy policy) {
  std::vector<const logical_cpu*> cpus;
  for (const logical_cpu& cpu : topology.cpus()) {
    if (cpu.allowed) {
      cpus.push_back(&cpu);
    }
  }
  const auto compact_key = [](const logical_cpu* c) {
    return std::make_tuple(c->node, c->package, c->core, c->smt_rank, c->id);
  };
  const auto smt_key = [](const logical_cpu* c) {
    return std::make_tuple(c->smt_rank, c->node, c->package, c->core, c->id);
  };
  switch (policy) {
    case placement_policy::none:
      return cpus;
    case placement_policy::compact:
      std::sort(cpus.begin(), cpus.end(),
                [&](const logical_cpu* a, const logical_cpu* b) {
                  return compact_key(a) < compact_key(b);
                });
      return cpus;
    case placement_policy::smt_aware:
      std::sort(cpus.begin(), cpus.end(),
                [&](const logical_cpu* a, const logical_cpu* b) {
                  return smt_key(a) < smt_key(b);
                });
      return cpus;
    case placement_policy::scatter: {
      // Physical cores first within each node, then interleave the
      // per-node queues round-robin so consecutive workers land on
      // different memory controllers.
      std::map<unsigned, std::vector<const logical_cpu*>> per_node;
      for (const logical_cpu* cpu : cpus) {
        per_node[cpu->node].push_back(cpu);
      }
      for (auto& [node, queue] : per_node) {
        std::sort(queue.begin(), queue.end(),
                  [&](const logical_cpu* a, const logical_cpu* b) {
                    return smt_key(a) < smt_key(b);
                  });
      }
      std::vector<const logical_cpu*> order;
      order.reserve(cpus.size());
      for (std::size_t round = 0; order.size() < cpus.size(); ++round) {
        for (const auto& [node, queue] : per_node) {
          if (round < queue.size()) {
            order.push_back(queue[round]);
          }
        }
      }
      return order;
    }
  }
  return cpus;
}

}  // namespace

placement_plan plan_placement(const cpu_topology& topology,
                              std::size_t workers, placement_policy policy) {
  placement_plan plan;
  plan.policy = policy;
  plan.workers.assign(workers, worker_placement{});
  if (policy == placement_policy::none) {
    return plan;
  }
  const std::vector<const logical_cpu*> order = policy_order(topology, policy);
  if (order.empty()) {
    return plan;  // nothing allowed: every worker stays unpinned
  }
  plan.oversubscribed = workers > order.size();
  for (std::size_t w = 0; w < workers; ++w) {
    const logical_cpu* cpu = order[w % order.size()];
    plan.workers[w].cpu = static_cast<int>(cpu->id);
    plan.workers[w].node = static_cast<int>(cpu->node);
  }
  return plan;
}

std::size_t auto_shard_count(const cpu_topology& topology) {
  return auto_shard_count(topology, 1);
}

std::size_t auto_shard_count(const cpu_topology& topology,
                             std::size_t reserved_cores) {
  const std::size_t cores = topology.allowed_physical_cores();
  if (cores > reserved_cores + 1) {
    return cores - reserved_cores;  // reserved workers get their own cores
  }
  // Too small to dedicate cores: every worker shares the full set.
  return std::max<std::size_t>(cores, 1);
}

io_shard_split plan_io_shard_split(const cpu_topology& topology,
                                   std::size_t requested_io) {
  const std::size_t cores =
      std::max<std::size_t>(topology.allowed_physical_cores(), 1);
  io_shard_split split;
  if (requested_io == 0) {
    split.io_threads = std::clamp<std::size_t>(cores / 4, 1, 4);
  } else {
    split.io_threads = std::min(requested_io, cores);
  }
  split.shards = auto_shard_count(topology, split.io_threads);
  return split;
}

}  // namespace hdhash::runtime
