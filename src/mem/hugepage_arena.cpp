#include "mem/hugepage_arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>

#include "runtime/worker_pool.hpp"
#include "util/require.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace hdhash::mem {

namespace {

constexpr std::size_t kSmallPage = std::size_t{4} << 10;
constexpr std::size_t kHugePage = std::size_t{2} << 20;

constexpr std::size_t round_up(std::size_t value, std::size_t quantum) {
  return (value + quantum - 1) / quantum * quantum;
}

/// Fallback order a request walks when mapping a chunk.
std::vector<mem_backing> try_order(mem_request request) {
  switch (request) {
    case mem_request::automatic:
      return {mem_backing::huge, mem_backing::thp, mem_backing::page};
    case mem_request::huge:
      return {mem_backing::huge};
    case mem_request::thp:
      return {mem_backing::thp};
    case mem_request::page:
      return {mem_backing::page};
  }
  return {mem_backing::page};
}

/// One loud note per process per degradation target: `auto` falling
/// past hugepages is transparent but never silent — benchmarks read
/// very differently on 4KB pages and the operator should know why.
void report_degradation(mem_backing landed) {
  static std::atomic<bool> reported_thp{false};
  static std::atomic<bool> reported_page{false};
  std::atomic<bool>& flag =
      landed == mem_backing::thp ? reported_thp : reported_page;
  if (flag.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr,
               "hdhash-mem: explicit 2MB hugepages unavailable "
               "(no MAP_HUGETLB pool?) — arenas fall back to %s "
               "(set HDHASH_MEM to pin a backing)\n",
               landed == mem_backing::thp
                   ? "THP-advised mappings"
                   : "plain 4KB pages (THP also unavailable)");
}

}  // namespace

hugepage_arena::hugepage_arena(arena_options options)
    : options_(std::move(options)),
      backend_(options_.backend.scripted() ? &options_.backend
                                           : &system_map_backend()) {
  HDHASH_REQUIRE(options_.stride_quantum >= 64 &&
                     (options_.stride_quantum &
                      (options_.stride_quantum - 1)) == 0,
                 "arena stride quantum must be a power of two >= 64");
  HDHASH_REQUIRE(options_.chunk_bytes >= options_.stride_quantum,
                 "arena chunk size must cover at least one stride");
  const std::lock_guard lock(mutex_);
  // Eager first chunk: resolves (and loudly reports) the backing at
  // construction instead of at an arbitrary later allocation.
  map_chunk_locked(options_.chunk_bytes);
  backing_ = chunks_.front().kind;
  if (options_.request == mem_request::automatic &&
      backing_ != mem_backing::huge) {
    report_degradation(backing_);
  }
}

hugepage_arena::~hugepage_arena() {
  for (const chunk& c : chunks_) {
    backend_->unmap(c.base, c.bytes);
  }
}

std::size_t hugepage_arena::stride_of(std::size_t bytes) const noexcept {
  return round_up(std::max<std::size_t>(bytes, 1), options_.stride_quantum);
}

void hugepage_arena::map_chunk_locked(std::size_t min_bytes) {
  const std::size_t base_bytes =
      round_up(std::max(min_bytes, options_.chunk_bytes), kSmallPage);
  for (const mem_backing kind : try_order(options_.request)) {
    // Hugepage mappings must be hugepage-granular; the kernel rejects
    // (or worse, rounds) anything else.
    const std::size_t bytes = kind == mem_backing::huge
                                  ? round_up(base_bytes, kHugePage)
                                  : base_bytes;
    void* base = backend_->map(bytes, kind);
    if (base != nullptr) {
      chunks_.push_back(chunk{base, bytes, 0, kind});
      return;
    }
  }
  HDHASH_REQUIRE(false,
                 std::string("arena cannot map memory with HDHASH_MEM=") +
                     std::string(to_string(options_.request)) +
                     " — the requested backing is unavailable on this "
                     "host (use auto for transparent fallback)");
}

void* hugepage_arena::allocate(std::size_t bytes) {
  HDHASH_REQUIRE(bytes > 0, "arena allocation must be non-empty");
  const std::size_t stride = stride_of(bytes);
  const std::lock_guard lock(mutex_);
  auto& free_list = free_lists_[stride];
  if (!free_list.empty()) {
    void* block = free_list.back();
    free_list.pop_back();
    --free_blocks_;
    ++recycled_;
    ++allocations_;
    live_bytes_ += stride;
    return block;
  }
  if (chunks_.empty() || chunks_.back().used + stride > chunks_.back().bytes) {
    map_chunk_locked(stride);
  }
  chunk& c = chunks_.back();
  void* block = static_cast<char*>(c.base) + c.used;
  c.used += stride;
  ++allocations_;
  live_bytes_ += stride;
  return block;
}

void hugepage_arena::deallocate(void* block, std::size_t bytes) noexcept {
  if (block == nullptr) {
    return;
  }
  const std::size_t stride = stride_of(bytes);
  const std::lock_guard lock(mutex_);
  live_bytes_ -= std::min(live_bytes_, stride);
  free_lists_[stride].push_back(block);
  ++free_blocks_;
}

arena_stats hugepage_arena::stats() const {
  const std::lock_guard lock(mutex_);
  arena_stats s;
  s.backing = backing_;
  s.numa_node = options_.numa_node;
  s.chunk_count = chunks_.size();
  s.live_bytes = live_bytes_;
  s.free_blocks = free_blocks_;
  s.allocations = allocations_;
  s.recycled = recycled_;
  for (const chunk& c : chunks_) {
    s.reserved_bytes += c.bytes;
    if (c.kind == mem_backing::huge) {
      s.hugepage_bytes += c.bytes;
      s.resident_pages += c.bytes / kHugePage;
    } else {
      s.resident_pages += c.bytes / kSmallPage;
    }
  }
  return s;
}

namespace {

struct node_registry {
  std::mutex mutex;
  std::unordered_map<int, std::shared_ptr<hugepage_arena>> arenas;
  int first_created = -1;
};

node_registry& registry() {
  // Leaked on purpose: rows and snapshots may outlive static
  // destruction order; each holds a shared_ptr to its arena, and the
  // registry's own references must never be destroyed underneath a
  // late deallocate().
  static node_registry* instance = new node_registry();
  return *instance;
}

}  // namespace

std::shared_ptr<hugepage_arena> node_arena(int node) {
  const std::size_t nodes =
      std::max<std::size_t>(1, runtime::host_topology().numa_nodes());
  const int clamped = node < 0 ? 0
                               : std::min<int>(node,
                                               static_cast<int>(nodes) - 1);
  node_registry& reg = registry();
  const std::lock_guard lock(reg.mutex);
  auto it = reg.arenas.find(clamped);
  if (it == reg.arenas.end()) {
    arena_options options;
    options.request = select_mem_request();
    options.numa_node = clamped;
    it = reg.arenas.emplace(clamped,
                            std::make_shared<hugepage_arena>(options))
             .first;
    if (reg.first_created < 0) {
      reg.first_created = clamped;
    }
  }
  return it->second;
}

std::shared_ptr<hugepage_arena> local_arena() {
  int node = 0;
#if defined(__linux__)
  const int cpu = ::sched_getcpu();
  if (cpu >= 0) {
    node = static_cast<int>(
        runtime::host_topology().node_of(static_cast<unsigned>(cpu)));
  }
#endif
  return node_arena(node);
}

arena_registry_stats registry_stats() {
  node_registry& reg = registry();
  const std::lock_guard lock(reg.mutex);
  arena_registry_stats total;
  total.arenas = reg.arenas.size();
  for (const auto& [node, arena] : reg.arenas) {
    const arena_stats s = arena->stats();
    if (node == reg.first_created) {
      total.backing = s.backing;
    }
    total.reserved_bytes += s.reserved_bytes;
    total.live_bytes += s.live_bytes;
    total.hugepage_bytes += s.hugepage_bytes;
    total.resident_pages += s.resident_pages;
    total.recycled += s.recycled;
  }
  return total;
}

}  // namespace hdhash::mem
