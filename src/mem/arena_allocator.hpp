/// \file arena_allocator.hpp
/// \brief std-allocator adapter over a hugepage_arena, for containers
/// whose backing store should live on arena pages.
///
/// `std::vector<T, arena_allocator<T>>` puts the vector's buffer on the
/// owning arena's chunks: the hd_table slot cache ("snapshot pages")
/// uses this so each epoch's cache rebuild recycles the previous
/// epoch's block through the arena free list, and snapshot_publisher
/// uses allocate_shared with it so epoch objects (control block +
/// table_snapshot inline) are carved from the arena too.
///
/// A null arena means the default heap — the allocator degrades to
/// operator new/delete, so `heap` baselines need no separate container
/// type.  The allocator holds a shared_ptr: any container (or
/// shared_ptr control block) allocated from it keeps the arena alive.
#pragma once

#include <cstddef>
#include <memory>
#include <new>

#include "mem/hugepage_arena.hpp"

namespace hdhash::mem {

template <typename T>
class arena_allocator {
 public:
  using value_type = T;
  // Copying a container must not silently move its contents onto a
  // different arena; equality below makes element-wise copies explicit.
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;

  arena_allocator() noexcept = default;
  explicit arena_allocator(std::shared_ptr<hugepage_arena> arena) noexcept
      : arena_(std::move(arena)) {}

  template <typename U>
  arena_allocator(const arena_allocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(bytes));
    }
    return static_cast<T*>(arena_->allocate(bytes));
  }

  void deallocate(T* ptr, std::size_t count) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(ptr);
      return;
    }
    arena_->deallocate(ptr, count * sizeof(T));
  }

  const std::shared_ptr<hugepage_arena>& arena() const noexcept {
    return arena_;
  }

 private:
  std::shared_ptr<hugepage_arena> arena_;
};

/// Allocators are interchangeable only when they draw from the same
/// arena (both-null = both-heap counts).
template <typename T, typename U>
bool operator==(const arena_allocator<T>& lhs,
                const arena_allocator<U>& rhs) noexcept {
  return lhs.arena() == rhs.arena();
}

template <typename T, typename U>
bool operator!=(const arena_allocator<T>& lhs,
                const arena_allocator<U>& rhs) noexcept {
  return !(lhs == rhs);
}

}  // namespace hdhash::mem
