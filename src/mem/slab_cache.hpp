/// \file slab_cache.hpp
/// \brief Fixed-size-class object cache: per-thread magazines over a
/// global depot (cachegrand ffma-style), for recycled epoch snapshots,
/// batch buffers, and ring segments.
///
/// A slab_cache<T> recycles whole T objects (typically batch structs
/// whose vectors keep their heap capacity) instead of letting them
/// round-trip through the general allocator every epoch:
///
///  * each thread keeps a small **magazine** — a lock-free-for-the-
///    owner stash sized `magazine_capacity` — so steady-state
///    take/recycle pairs on one thread touch no lock at all;
///  * magazines drain into / refill from a mutex-guarded **depot**
///    shared by all threads, which is what lets an object recycled on a
///    worker thread be taken by the producer thread;
///  * `magazine_capacity = 0` bypasses magazines entirely: every
///    take/recycle goes straight to the depot in LIFO order.  This is
///    the buffer_pool configuration — its cross-thread recycle→take
///    round-trip (mesh workers recycle, producers take) needs objects
///    visible process-wide immediately, and LIFO keeps the warmest
///    buffer (caches still hot, pages resident) first out.
///
/// The depot state is a shared_ptr owned jointly by the cache and every
/// live magazine, so a thread exiting after the cache is destroyed
/// flushes into a still-alive depot rather than freed memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hdhash::mem {

/// Construction parameters for slab_cache.
struct slab_options {
  /// Objects a thread's magazine holds before flushing half to the
  /// depot.  0 = no magazines: pure shared LIFO depot (buffer_pool
  /// semantics).
  std::size_t magazine_capacity = 8;
};

/// Counters for one slab_cache (see slab_cache::stats()).
struct slab_stats {
  std::uint64_t takes = 0;          ///< take() calls that found an object
  std::uint64_t misses = 0;         ///< take() calls that found nothing
  std::uint64_t puts = 0;           ///< recycle() calls
  std::uint64_t magazine_hits = 0;  ///< takes served by the caller's magazine
  std::uint64_t depot_hits = 0;     ///< takes served by the shared depot
  std::size_t depot_size = 0;       ///< objects parked in the depot now
};

template <typename T>
class slab_cache {
 public:
  explicit slab_cache(slab_options options = {})
      : depot_(std::make_shared<depot>()), options_(options) {
    static std::atomic<std::uint64_t> next_id{1};
    id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  }

  slab_cache(const slab_cache&) = delete;
  slab_cache& operator=(const slab_cache&) = delete;

  /// Parks `object` for reuse — into the calling thread's magazine, or
  /// straight into the depot when magazines are disabled.  A full
  /// magazine flushes its older half to the depot first.
  void recycle(T&& object) {
    depot_->puts.fetch_add(1, std::memory_order_relaxed);
    if (options_.magazine_capacity == 0) {
      const std::lock_guard lock(depot_->mutex);
      depot_->objects.push_back(std::move(object));
      return;
    }
    magazine& mag = local_magazine();
    if (mag.objects.size() >= options_.magazine_capacity) {
      flush_half(mag);
    }
    mag.objects.push_back(std::move(object));
  }

  /// Pops a recycled object into `out`; false when neither the
  /// caller's magazine nor the depot has one (callers then construct
  /// fresh).
  bool take(T& out) {
    if (options_.magazine_capacity != 0) {
      magazine& mag = local_magazine();
      if (!mag.objects.empty()) {
        out = std::move(mag.objects.back());
        mag.objects.pop_back();
        depot_->takes.fetch_add(1, std::memory_order_relaxed);
        depot_->magazine_hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    const std::lock_guard lock(depot_->mutex);
    if (depot_->objects.empty()) {
      depot_->misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    out = std::move(depot_->objects.back());
    depot_->objects.pop_back();
    depot_->takes.fetch_add(1, std::memory_order_relaxed);
    depot_->depot_hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Objects parked process-wide: depot plus the calling thread's own
  /// magazine (other threads' magazines are invisible by design).
  std::size_t size() const {
    std::size_t total = 0;
    if (options_.magazine_capacity != 0) {
      total += local_magazine().objects.size();
    }
    const std::lock_guard lock(depot_->mutex);
    return total + depot_->objects.size();
  }

  slab_stats stats() const {
    slab_stats s;
    s.takes = depot_->takes.load(std::memory_order_relaxed);
    s.misses = depot_->misses.load(std::memory_order_relaxed);
    s.puts = depot_->puts.load(std::memory_order_relaxed);
    s.magazine_hits = depot_->magazine_hits.load(std::memory_order_relaxed);
    s.depot_hits = depot_->depot_hits.load(std::memory_order_relaxed);
    const std::lock_guard lock(depot_->mutex);
    s.depot_size = depot_->objects.size();
    return s;
  }

  const slab_options& options() const noexcept { return options_; }

 private:
  struct depot {
    mutable std::mutex mutex;
    std::vector<T> objects;
    std::atomic<std::uint64_t> takes{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> magazine_hits{0};
    std::atomic<std::uint64_t> depot_hits{0};
  };

  // A magazine pins its depot: when the owning thread exits after the
  // cache is gone, the flush in ~magazine still has a live target.
  struct magazine {
    std::shared_ptr<depot> home;
    std::vector<T> objects;

    ~magazine() {
      if (home == nullptr || objects.empty()) {
        return;
      }
      const std::lock_guard lock(home->mutex);
      for (T& object : objects) {
        home->objects.push_back(std::move(object));
      }
    }
  };

  magazine& local_magazine() const {
    // Keyed by cache id, not address: ids are never reused, so a new
    // cache landing at a destroyed cache's address cannot inherit its
    // stale magazine.
    thread_local std::unordered_map<std::uint64_t, magazine> magazines;
    magazine& mag = magazines[id_];
    if (mag.home == nullptr) {
      mag.home = depot_;
    }
    return mag;
  }

  void flush_half(magazine& mag) {
    const std::size_t flush = (mag.objects.size() + 1) / 2;
    {
      const std::lock_guard lock(depot_->mutex);
      // The magazine's *older* half (front of the vector) moves out, so
      // the thread keeps its most recently recycled — warmest — objects.
      for (std::size_t i = 0; i < flush; ++i) {
        depot_->objects.push_back(std::move(mag.objects[i]));
      }
    }
    mag.objects.erase(mag.objects.begin(),
                      mag.objects.begin() + static_cast<std::ptrdiff_t>(flush));
  }

  std::shared_ptr<depot> depot_;
  slab_options options_;
  std::uint64_t id_ = 0;
};

}  // namespace hdhash::mem
