/// \file arena_options.hpp
/// \brief Memory-backing selection for the hugepage arenas — the
/// `HDHASH_MEM=auto|huge|thp|page` / `--mem` surface.
///
/// At d = 10,000 one batch lookup streams ~78KB of item-memory rows;
/// with 4KB pages that is a TLB entry every three rows.  The arena
/// layer (hugepage_arena.hpp) backs the hot hypervector state with 2MB
/// pages when it can, but *which* backing a host supports is strictly a
/// runtime question: explicit hugepages need a reserved pool
/// (`vm.nr_hugepages`), transparent hugepages can be disabled system-
/// wide, and containers routinely mask both.  Following the
/// `io_backend` convention, the request is an env/flag choice that
/// degrades transparently in `auto` mode and fails loudly for explicit
/// unsupported choices — asking for `huge` on a hugepage-less host must
/// never silently hand back 4KB mappings.
///
/// The mapping syscalls themselves sit behind an injectable
/// `map_backend` (the `cpu_topology` sysfs-root pattern), so tests
/// script the huge→THP→page degradation order without needing a kernel
/// that actually has a hugepage pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

namespace hdhash::mem {

/// What actually backs an arena's mappings.
enum class mem_backing : std::uint8_t {
  huge,  ///< explicit 2MB hugepages (mmap MAP_HUGETLB)
  thp,   ///< THP-advised 4KB mappings (madvise MADV_HUGEPAGE)
  page,  ///< plain 4KB mappings
  heap,  ///< no arena — rows on the default allocator (the baseline)
};

/// What the user asked for (`HDHASH_MEM` / `--mem`).
enum class mem_request : std::uint8_t {
  automatic,  ///< best available: huge, then thp, then page
  huge,       ///< explicit hugepages or fail loudly
  thp,        ///< THP-advised or fail loudly
  page,       ///< plain 4KB mappings (the fallback lane CI forces)
};

/// Canonical name ("huge", "thp", "page", "heap").
std::string_view to_string(mem_backing backing) noexcept;

/// Canonical name ("auto", "huge", "thp", "page").
std::string_view to_string(mem_request request) noexcept;

/// Parses a request name; std::nullopt for unknown names (callers
/// decide whether to fail loudly or collect the error).
std::optional<mem_request> parse_mem_request(std::string_view name);

/// The backing request arenas are created under: the `--mem` override
/// when one was installed, else `HDHASH_MEM`, else `auto`.  Throws
/// hdhash::precondition_error for unknown env values — a typo must
/// never silently degrade to auto (the HDHASH_FORCE_KERNEL convention).
mem_request select_mem_request();

/// Installs the `--mem` flag's choice, which wins over the environment
/// for arenas created afterwards (already-created arenas keep the
/// backing they landed on — drivers parse flags before building
/// tables).
void set_mem_request_override(mem_request request);

/// Removes the `--mem` override (tests).
void clear_mem_request_override() noexcept;

/// Injectable chunk-mapping backend.  `map` returns the mapped base
/// (zero-filled, page-aligned) or nullptr when the kind is unavailable;
/// `unmap` releases a mapping made by the same backend.  Default-
/// constructed (empty) functions mean the real syscall backend.
struct map_backend {
  /// Maps `bytes` with the given backing kind, or nullptr on failure.
  std::function<void*(std::size_t bytes, mem_backing kind)> map;
  /// Releases a mapping previously returned by `map`.
  std::function<void(void* base, std::size_t bytes)> unmap;

  /// True when both hooks are present (a scripted fixture backend).
  bool scripted() const noexcept {
    return static_cast<bool>(map) && static_cast<bool>(unmap);
  }
};

/// The real mmap/madvise backend (huge = MAP_HUGETLB, thp = plain
/// mapping + MADV_HUGEPAGE, page = plain mapping).
const map_backend& system_map_backend();

/// Construction parameters for hugepage_arena.
struct arena_options {
  /// Backing to request; `automatic` degrades huge → thp → page with a
  /// one-time loud note, the explicit kinds fail loudly when
  /// unavailable.
  mem_request request = mem_request::automatic;
  /// Mapping granularity; rounded up per chunk to the backing's page
  /// size.  2MB = one explicit hugepage per chunk.
  std::size_t chunk_bytes = std::size_t{2} << 20;
  /// Row stride quantum: every allocation is rounded up to a multiple
  /// of this and aligned to it.  Must be a power of two >= 64 (the
  /// cache line), so rows never share a line and SIMD loads stay
  /// aligned.
  std::size_t stride_quantum = 64;
  /// NUMA node this arena is placed for (bookkeeping reported in
  /// stats; first-touch by the allocating thread does the actual
  /// placement).  -1 = unpinned/unknown.
  int numa_node = -1;
  /// Mapping hooks; empty = system_map_backend().
  map_backend backend = {};
};

}  // namespace hdhash::mem
