#include "mem/arena_options.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/require.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace hdhash::mem {

std::string_view to_string(mem_backing backing) noexcept {
  switch (backing) {
    case mem_backing::huge:
      return "huge";
    case mem_backing::thp:
      return "thp";
    case mem_backing::page:
      return "page";
    case mem_backing::heap:
      return "heap";
  }
  return "heap";
}

std::string_view to_string(mem_request request) noexcept {
  switch (request) {
    case mem_request::automatic:
      return "auto";
    case mem_request::huge:
      return "huge";
    case mem_request::thp:
      return "thp";
    case mem_request::page:
      return "page";
  }
  return "auto";
}

std::optional<mem_request> parse_mem_request(std::string_view name) {
  if (name.empty() || name == "auto") {
    return mem_request::automatic;
  }
  if (name == "huge") {
    return mem_request::huge;
  }
  if (name == "thp") {
    return mem_request::thp;
  }
  if (name == "page") {
    return mem_request::page;
  }
  return std::nullopt;
}

namespace {

// The --mem override: one past-the-end sentinel value means "not set".
// A plain atomic int keeps select_mem_request() callable from any
// thread without a lock.
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

}  // namespace

void set_mem_request_override(mem_request request) {
  g_override.store(static_cast<int>(request), std::memory_order_relaxed);
}

void clear_mem_request_override() noexcept {
  g_override.store(kNoOverride, std::memory_order_relaxed);
}

mem_request select_mem_request() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced != kNoOverride) {
    return static_cast<mem_request>(forced);
  }
  const char* env = std::getenv("HDHASH_MEM");
  const std::string choice = env == nullptr ? "auto" : env;
  const std::optional<mem_request> parsed = parse_mem_request(choice);
  HDHASH_REQUIRE(parsed.has_value(),
                 "HDHASH_MEM must be one of auto|huge|thp|page");
  return *parsed;
}

namespace {

void* system_map(std::size_t bytes, mem_backing kind) {
#if defined(__linux__)
  int flags = MAP_PRIVATE | MAP_ANONYMOUS;
  if (kind == mem_backing::huge) {
    flags |= MAP_HUGETLB;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, flags, -1, 0);
  if (base == MAP_FAILED) {
    return nullptr;
  }
  if (kind == mem_backing::thp) {
    // THP is advisory: the advice failing (THP compiled out or set to
    // `never`) means this kind is unavailable, not "silently take 4KB
    // pages" — the auto chain handles the degradation visibly.
    if (::madvise(base, bytes, MADV_HUGEPAGE) != 0) {
      ::munmap(base, bytes);
      return nullptr;
    }
  }
  return base;
#else
  // Non-Linux hosts have neither MAP_HUGETLB nor MADV_HUGEPAGE; only
  // plain pages are mappable, via the portable aligned allocator
  // (chunk sizes are always multiples of the 4KB small page).
  if (kind != mem_backing::page) {
    return nullptr;
  }
  void* base = std::aligned_alloc(4096, bytes);
  if (base != nullptr) {
    std::memset(base, 0, bytes);
  }
  return base;
#endif
}

void system_unmap(void* base, std::size_t bytes) {
#if defined(__linux__)
  ::munmap(base, bytes);
#else
  (void)bytes;
  std::free(base);
#endif
}

}  // namespace

const map_backend& system_map_backend() {
  static const map_backend backend{&system_map, &system_unmap};
  return backend;
}

}  // namespace hdhash::mem
