/// \file hugepage_arena.hpp
/// \brief Hugepage-backed bump/region allocator with per-size-class
/// free lists — the row store of the memory layer.
///
/// The arena maps memory in large chunks (2MB by default: one explicit
/// hugepage) through the selected backing (see arena_options.hpp) and
/// hands out cache-line-aligned blocks by bumping a cursor.  Freed
/// blocks are not returned to the kernel; they park on a per-size-class
/// free list and the next allocation of the same stride reuses them —
/// the fast-fixed-allocator design cachegrand's `ffma` uses for its row
/// storage, which keeps epoch churn (snapshot slot caches, recycled
/// rows) from growing the mapping set without a general-purpose
/// allocator on the hot path.
///
/// Why this shape fits hypervector state:
///  * rows are fixed-stride (d = 10,000 → 1,256 bytes, rounded to the
///    1,280-byte stride class), so a free list per stride class is an
///    exact fit — no fragmentation, O(1) free/reuse;
///  * one 2MB chunk holds ~1,600 rows contiguously: a full item-memory
///    sweep touches one TLB entry instead of ~320;
///  * blocks keep a shared_ptr to their arena (via word_buffer /
///    arena_allocator), so an arena outlives every row, snapshot page
///    and epoch object carved from it, whatever thread drops last.
///
/// Allocation is mutex-guarded: rows are carved on membership changes
/// and COW un-shares, snapshot pages once per epoch — never inside the
/// per-request lookup path — so a lock per allocation is noise while
/// keeping multi-threaded TSan runs clean.
///
/// Process-wide placement: `node_arena(node)` keeps one arena per
/// discovered NUMA node (the placement plan's node reporting gives
/// workers their node), and `local_arena()` resolves the calling
/// thread's current node — the writer-local default used for item
/// memory rows, so first-touch lands pages on the producer's node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/arena_options.hpp"

namespace hdhash::mem {

/// Introspection snapshot of one arena (see hugepage_arena::stats()).
struct arena_stats {
  /// Backing the first chunk landed on — what stats()/STATS report.
  mem_backing backing = mem_backing::page;
  /// NUMA node the arena is placed for (-1 = unpinned).
  int numa_node = -1;
  std::size_t chunk_count = 0;     ///< mapped chunks
  std::size_t reserved_bytes = 0;  ///< bytes mapped from the kernel
  std::size_t live_bytes = 0;      ///< bytes in blocks currently handed out
  std::size_t free_blocks = 0;     ///< blocks parked on the free lists
  /// Of reserved_bytes, bytes on explicit-hugepage (MAP_HUGETLB)
  /// chunks.  THP-advised chunks are not counted: the kernel may or
  /// may not have promoted them.
  std::size_t hugepage_bytes = 0;
  /// Pages backing the mapping set: 2MB pages for huge chunks, 4KB
  /// pages otherwise — the TLB-reach number.
  std::size_t resident_pages = 0;
  std::uint64_t allocations = 0;  ///< allocate() calls served
  std::uint64_t recycled = 0;     ///< of allocations, served from a free list
};

/// Chunked bump allocator with per-stride-class free lists.
/// Thread-safe; blocks are stable for the arena's lifetime.
class hugepage_arena {
 public:
  /// Maps the first chunk eagerly, so an explicit unsupported request
  /// (`huge` without a hugepage pool, `thp` with THP disabled) fails
  /// loudly at construction (hdhash::precondition_error), and `auto`
  /// reports its degradation once, up front.
  explicit hugepage_arena(arena_options options = {});
  ~hugepage_arena();

  hugepage_arena(const hugepage_arena&) = delete;
  hugepage_arena& operator=(const hugepage_arena&) = delete;

  /// A `stride_of(bytes)`-sized block aligned to the stride quantum;
  /// contents unspecified (recycled blocks keep stale bytes).
  /// \pre bytes > 0.
  void* allocate(std::size_t bytes);

  /// Parks the block on its stride class's free list for reuse.  The
  /// mapping is never returned to the kernel.
  /// \param block  a pointer previously returned by allocate().
  /// \param bytes  the byte count passed to that allocate() call.
  void deallocate(void* block, std::size_t bytes) noexcept;

  /// The stride class serving `bytes`: rounded up to the stride
  /// quantum (cache-line) multiple.
  std::size_t stride_of(std::size_t bytes) const noexcept;

  /// Backing the arena landed on (after any auto degradation).
  mem_backing backing() const noexcept { return backing_; }

  /// NUMA node this arena is placed for (-1 = unpinned).
  int numa_node() const noexcept { return options_.numa_node; }

  const arena_options& options() const noexcept { return options_; }

  arena_stats stats() const;

 private:
  struct chunk {
    void* base = nullptr;
    std::size_t bytes = 0;
    std::size_t used = 0;
    mem_backing kind = mem_backing::page;
  };

  // Maps a chunk of at least min_bytes, walking the request's fallback
  // order; throws when nothing in the order maps.  mutex_ held.
  void map_chunk_locked(std::size_t min_bytes);

  arena_options options_;
  const map_backend* backend_;  // &options_.backend or the system backend
  mem_backing backing_ = mem_backing::page;

  mutable std::mutex mutex_;
  std::vector<chunk> chunks_;
  std::unordered_map<std::size_t, std::vector<void*>> free_lists_;
  std::size_t live_bytes_ = 0;
  std::size_t free_blocks_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t recycled_ = 0;
};

/// Process-wide arena for NUMA node `node` (clamped into the
/// discovered node range), created on first use with the request
/// select_mem_request() resolves then.  One arena per node for the
/// process's lifetime — the unit the planned per-node snapshot mirrors
/// copy between.
std::shared_ptr<hugepage_arena> node_arena(int node);

/// Arena of the calling thread's current NUMA node (sched_getcpu
/// against the host topology) — the writer-local default for item
/// memory rows and snapshot pages.
std::shared_ptr<hugepage_arena> local_arena();

/// Aggregate over every node arena created so far (the net STATS
/// surface).  `backing` is the first created arena's backing;
/// `arenas` is 0 when nothing allocated from the layer yet.
struct arena_registry_stats {
  std::size_t arenas = 0;
  mem_backing backing = mem_backing::heap;
  std::size_t reserved_bytes = 0;
  std::size_t live_bytes = 0;
  std::size_t hugepage_bytes = 0;
  std::size_t resident_pages = 0;
  std::uint64_t recycled = 0;
};

/// Snapshot of the node-arena registry; never creates an arena.
arena_registry_stats registry_stats();

}  // namespace hdhash::mem
