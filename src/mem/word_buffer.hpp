/// \file word_buffer.hpp
/// \brief Fixed-length uint64 word storage for hypervectors — arena-
/// carved when an arena is attached, heap-backed otherwise.
///
/// This is the storage type behind hdc::hypervector.  It looks enough
/// like `std::vector<std::uint64_t>` for the bit kernels (data(),
/// size(), operator[], back(), iteration) but its length is fixed at
/// construction — hypervector dimensions never change — which lets the
/// arena path be a single stride-class block with no growth logic.
///
/// Backing rules:
///  * null arena → `new std::uint64_t[n]()` (the heap baseline);
///  * arena → one arena block, zero-filled on construction (recycled
///    blocks keep the previous row's stale bits);
///  * copies land on the same backing as the source — a COW un-share
///    then calls rehome() to move the fresh row into the writer's
///    arena;
///  * equality is content-only: a heap row and an arena row with the
///    same bits are equal, so snapshot bit-identity checks hold across
///    backings.
///
/// The buffer keeps a shared_ptr to its arena, so rows can outlive the
/// table that created them (snapshots hand rows to readers) without the
/// arena unmapping under them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

#include "mem/hugepage_arena.hpp"

namespace hdhash::mem {

class word_buffer {
 public:
  word_buffer() noexcept = default;

  /// `words` zero-filled words on `arena` (nullptr = heap).
  explicit word_buffer(std::size_t words,
                       std::shared_ptr<hugepage_arena> arena = nullptr)
      : words_(words), arena_(std::move(arena)) {
    if (words_ == 0) {
      return;
    }
    if (arena_ == nullptr) {
      data_ = new std::uint64_t[words_]();
    } else {
      data_ = static_cast<std::uint64_t*>(
          arena_->allocate(words_ * sizeof(std::uint64_t)));
      std::memset(data_, 0, words_ * sizeof(std::uint64_t));
    }
  }

  word_buffer(const word_buffer& other)
      : word_buffer(other.words_, other.arena_) {
    if (words_ != 0) {
      std::memcpy(data_, other.data_, words_ * sizeof(std::uint64_t));
    }
  }

  word_buffer(word_buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        words_(std::exchange(other.words_, 0)),
        arena_(std::move(other.arena_)) {}

  word_buffer& operator=(const word_buffer& other) {
    if (this != &other) {
      word_buffer copy(other);
      swap(copy);
    }
    return *this;
  }

  word_buffer& operator=(word_buffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      words_ = std::exchange(other.words_, 0);
      arena_ = std::move(other.arena_);
    }
    return *this;
  }

  ~word_buffer() { release(); }

  /// Moves the contents onto `arena` (nullptr = heap).  No-op when the
  /// buffer already lives there; otherwise allocates on the target,
  /// copies, and frees the old block.
  void rehome(std::shared_ptr<hugepage_arena> arena) {
    if (arena_ == arena || words_ == 0) {
      arena_ = std::move(arena);
      return;
    }
    word_buffer moved(words_, std::move(arena));
    std::memcpy(moved.data_, data_, words_ * sizeof(std::uint64_t));
    *this = std::move(moved);
  }

  std::uint64_t* data() noexcept { return data_; }
  const std::uint64_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return words_; }
  bool empty() const noexcept { return words_ == 0; }

  std::uint64_t& operator[](std::size_t i) noexcept { return data_[i]; }
  const std::uint64_t& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  std::uint64_t& back() noexcept { return data_[words_ - 1]; }
  const std::uint64_t& back() const noexcept { return data_[words_ - 1]; }

  std::uint64_t* begin() noexcept { return data_; }
  std::uint64_t* end() noexcept { return data_ + words_; }
  const std::uint64_t* begin() const noexcept { return data_; }
  const std::uint64_t* end() const noexcept { return data_ + words_; }

  const std::shared_ptr<hugepage_arena>& arena() const noexcept {
    return arena_;
  }

  void swap(word_buffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(words_, other.words_);
    std::swap(arena_, other.arena_);
  }

  /// Content equality regardless of backing.
  friend bool operator==(const word_buffer& lhs, const word_buffer& rhs) {
    if (lhs.words_ != rhs.words_) {
      return false;
    }
    return lhs.words_ == 0 ||
           std::memcmp(lhs.data_, rhs.data_,
                       lhs.words_ * sizeof(std::uint64_t)) == 0;
  }

 private:
  void release() noexcept {
    if (data_ == nullptr) {
      return;
    }
    if (arena_ == nullptr) {
      delete[] data_;
    } else {
      arena_->deallocate(data_, words_ * sizeof(std::uint64_t));
    }
    data_ = nullptr;
  }

  std::uint64_t* data_ = nullptr;
  std::size_t words_ = 0;
  std::shared_ptr<hugepage_arena> arena_;
};

}  // namespace hdhash::mem
