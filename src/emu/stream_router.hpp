/// \file stream_router.hpp
/// \brief Streaming shard router: the sharded emulator's epoch-published
/// snapshot pipeline, re-cut as a long-running service.
///
/// `sharded_emulator::run()` consumes one finite event stream and
/// returns.  A socket front-end needs the same machinery — partition
/// requests by hash(id) % shards, hand per-shard batches through
/// bounded channels to pinned decode workers, resolve each batch
/// against the epoch snapshot it arrived under — but as a *resident*
/// engine: start once, accept route batches from any number of io
/// threads, deliver each batch's answers through a completion callback,
/// and stop by draining.  This class is that engine; `net::net_server`
/// is its first client.
///
/// Ingest runs on the shared mesh API (emu/ingest.hpp): the router
/// owns a (sessions + 1) × shards `ingest_mesh` of bounded shard
/// channels — lock-free SPSC rings by default.  Each registered
/// *session* (`open_session(i)`, one per io thread) owns a private
/// mesh row, so an io loop pushes its slices into single-producer
/// rings with no lock anywhere on the hot path; the extra row backs
/// the legacy `submit()` entry point, serialized internally so any
/// number of casual callers can share it.
///
/// Concurrency contract:
///  * join()/leave()/submit() are thread-safe; a session's submit() is
///    bound to one thread at a time (it is that row's SPSC producer).
///  * Batches submitted through one session (or through submit() from
///    one thread) complete their shard-local slices in submission
///    order (channels are FIFO per lane), so per-connection reply
///    ordering reduces to a FIFO of tickets on the submitter.
///    Ordering across different sessions is not defined — exactly as
///    ordering across submitter threads never was.
///  * `on_complete` runs on whichever shard worker finishes the
///    batch's last slice — it must be cheap and non-blocking (post a
///    wakeup, never write sockets or take long-held locks).
///  * After stop(), submit() fails loudly (hdhash::channel_closed or
///    precondition_error) — quiesce submitters first, the way
///    net_server joins its io loops before stopping the router.
///
/// Determinism: a batch's requests all resolve against the snapshot of
/// the membership epoch current at submit() time, and every membership
/// event is applied before any later-submitted batch acquires its
/// snapshot.  A single submitter that flushes its open batch before
/// each join/leave therefore reproduces exactly the plain emulator's
/// "every request sees the table state it arrived under" semantics —
/// the bit-identity the net e2e test asserts over a real socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "emu/channel.hpp"
#include "emu/ingest.hpp"
#include "emu/snapshot.hpp"
#include "runtime/worker_pool.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class stream_router {
 public:
  struct config {
    /// Decode workers (>= 1); worker pool slots
    /// [first_worker, first_worker + shards) are occupied for the
    /// router's whole start()..stop() span.
    std::size_t shards = 1;
    /// Dedicated producer sessions (>= 0): io threads that each own a
    /// private single-producer mesh row via open_session().  The
    /// shared legacy submit() row exists regardless.
    std::size_t sessions = 0;
    /// Bounded per-lane channel depth: how many batches may queue on
    /// one (producer, shard) lane before submit() blocks
    /// (backpressure to the io layer).
    std::size_t channel_depth = 4;
    /// Shard-channel implementation of the mesh (ring | mutex);
    /// default per HDHASH_CHANNEL, else the lock-free ring.
    channel_kind channel = default_channel_kind();
    /// Salt of the request partition hash (the sharded emulator's
    /// default, so both pipelines split streams identically).
    std::uint64_t partition_seed = 0x5A4D'ED01;
  };

  /// One submitted routing ticket: `requests` in arrival order,
  /// `answers[i]` the server for `requests[i]` once `done` turns true.
  /// The router holds the shared_ptr until the last shard slice
  /// completes, so a ticket outlives any connection that dies mid-batch.
  struct route_batch {
    std::vector<request_id> requests;
    std::vector<server_id> answers;
    /// Invoked exactly once, by the shard worker that completes the
    /// last slice, after `done` is set.  Cleared afterwards (any
    /// captured owner references are released then).
    std::function<void()> on_complete;
    /// All slices decoded; answers[] fully written (release/acquire
    /// paired with the completing worker's store).
    std::atomic<bool> done{false};
    /// A shard slice faulted (empty-pool lookup, table precondition):
    /// answers are not trustworthy; the submitter should report an
    /// error instead of routing replies.
    std::atomic<bool> failed{false};

   private:
    friend class stream_router;
    std::atomic<std::size_t> pending_slices{0};
  };

  /// A producer-side handle over one private mesh row.  Obtained from
  /// open_session(); cheap to copy, but only one thread may drive a
  /// given session at a time (it is the row's SPSC producer).  The
  /// router must outlive every session.
  class session {
   public:
    session() = default;

    /// Same semantics as stream_router::submit(), minus the internal
    /// serialization: partitions the ticket, stamps the current epoch
    /// snapshot, pushes one slice per covered shard into this
    /// session's own lock-free lanes.
    void submit(std::shared_ptr<route_batch> batch) {
      router_->submit_to_row(row_, std::move(batch));
    }

   private:
    friend class stream_router;
    session(stream_router* router, std::size_t row)
        : router_(router), row_(row) {}

    stream_router* router_ = nullptr;
    std::size_t row_ = 0;
  };

  /// Takes ownership of the (single, producer-owned) table and runs
  /// decode loops on `pool` workers [first_worker, first_worker +
  /// config.shards).  start() must be called before the first submit().
  /// \pre table != nullptr; the worker range is within the pool.
  stream_router(std::unique_ptr<dynamic_table> table,
                runtime::worker_pool& pool, std::size_t first_worker,
                config cfg);
  /// Same, with a default-constructed config (gcc rejects `= {}` as a
  /// default argument while the nested aggregate is incomplete).
  stream_router(std::unique_ptr<dynamic_table> table,
                runtime::worker_pool& pool, std::size_t first_worker)
      : stream_router(std::move(table), pool, first_worker, config{}) {}

  /// Stops (drains) if still running.
  ~stream_router();

  stream_router(const stream_router&) = delete;
  stream_router& operator=(const stream_router&) = delete;

  /// Launches one decode loop per shard on the configured pool workers.
  /// Idempotent once running.
  void start();

  /// Closes every mesh lane and waits until all decode loops have
  /// drained and exited — every batch submitted before stop() completes
  /// (its on_complete fires) before stop() returns.  After stop(),
  /// submit() fails loudly.  Idempotent.
  void stop();

  /// Applies a join to the producer table and opens a new membership
  /// epoch.  Thread-safe; table preconditions (duplicate id, capacity)
  /// propagate as hdhash::precondition_error with the table unchanged.
  void join(server_id server, double weight = 1.0);

  /// Applies a leave (thread-safe; unknown ids throw, table unchanged).
  void leave(server_id server);

  /// Partitions the ticket's requests by shard, stamps the current
  /// epoch snapshot, and pushes one slice per covered shard (blocking
  /// when a lane is full — backpressure).  Empty tickets complete
  /// inline on the calling thread.  This shared entry point is
  /// serialized internally (any number of callers); io-rate producers
  /// should hold a private open_session() handle instead.
  /// \pre started and not stopped; batch != nullptr.
  void submit(std::shared_ptr<route_batch> batch);

  /// Hands out the private producer row `index`.  Valid for the
  /// router's lifetime; one driving thread at a time per session.
  /// \pre index < config.sessions.
  session open_session(std::size_t index);

  /// Shard a request id is routed to (pure).
  std::size_t shard_of(request_id request) const;

  std::size_t shards() const noexcept { return config_.shards; }
  /// Servers currently in the pool (joins − leaves); the io layer
  /// rejects ROUTE with an empty pool before paying for a submit.
  std::size_t members() const noexcept {
    return members_.load(std::memory_order_relaxed);
  }
  /// Membership epochs opened so far.
  std::uint64_t epoch() const noexcept {
    return epoch_count_.load(std::memory_order_relaxed);
  }
  /// Requests accepted through submit() so far.
  std::uint64_t requests_routed() const noexcept {
    return requests_routed_.load(std::memory_order_relaxed);
  }
  /// Batches accepted through submit() so far.
  std::uint64_t batches_routed() const noexcept {
    return batches_routed_.load(std::memory_order_relaxed);
  }
  /// Epoch snapshots actually published (≤ epoch() + 1).
  std::size_t published_epochs() const;
  /// Resident table bytes (producer table + live snapshot bookkeeping).
  std::size_t table_memory_bytes() const;

 private:
  struct shard_slice;
  struct shard_scratch;

  void submit_to_row(std::size_t row, std::shared_ptr<route_batch> batch);

  config config_;
  runtime::worker_pool& pool_;
  std::size_t first_worker_;
  std::unique_ptr<snapshot_publisher> publisher_;
  std::unique_ptr<ingest_mesh<shard_slice>> mesh_;
  std::vector<std::unique_ptr<shard_scratch>> scratch_;

  // Producer mutex: guards the publisher (join/leave/current) so a
  // snapshot is always consistent with the membership order observed
  // by submitters.
  mutable std::mutex producer_mutex_;
  // Serializes the shared legacy row (row index config_.sessions):
  // its lanes are single-producer, so concurrent legacy submitters
  // take turns.  Sessions never touch this lock.
  std::mutex legacy_row_mutex_;
  std::atomic<std::size_t> members_{0};
  std::atomic<std::uint64_t> epoch_count_{0};
  std::atomic<std::uint64_t> requests_routed_{0};
  std::atomic<std::uint64_t> batches_routed_{0};
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace hdhash
