/// \file stream_router.hpp
/// \brief Streaming shard router: the sharded emulator's epoch-published
/// snapshot pipeline, re-cut as a long-running service.
///
/// `sharded_emulator::run()` consumes one finite event stream and
/// returns.  A socket front-end needs the same machinery — partition
/// requests by hash(id) % shards, hand per-shard batches through
/// bounded channels to pinned decode workers, resolve each batch
/// against the epoch snapshot it arrived under — but as a *resident*
/// engine: start once, accept route batches from any number of io
/// threads, deliver each batch's answers through a completion callback,
/// and stop by draining.  This class is that engine; `net::net_server`
/// is its first client.
///
/// Concurrency contract:
///  * join()/leave()/submit() are thread-safe (serialized on an
///    internal producer mutex around the snapshot publisher; channel
///    pushes are safe unlocked — batch_channel takes any number of
///    pushers).
///  * Batches submitted from one thread complete their shard-local
///    slices in submission order (channels are FIFO), so per-connection
///    reply ordering reduces to a FIFO of tickets on the submitter.
///  * `on_complete` runs on whichever shard worker finishes the
///    batch's last slice — it must be cheap and non-blocking (post a
///    wakeup, never write sockets or take long-held locks).
///
/// Determinism: a batch's requests all resolve against the snapshot of
/// the membership epoch current at submit() time, and every membership
/// event is applied before any later-submitted batch acquires its
/// snapshot.  A single submitter that flushes its open batch before
/// each join/leave therefore reproduces exactly the plain emulator's
/// "every request sees the table state it arrived under" semantics —
/// the bit-identity the net e2e test asserts over a real socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "emu/snapshot.hpp"
#include "runtime/worker_pool.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

class stream_router {
 public:
  struct config {
    /// Decode workers (>= 1); worker pool slots
    /// [first_worker, first_worker + shards) are occupied for the
    /// router's whole start()..stop() span.
    std::size_t shards = 1;
    /// Bounded per-shard channel depth: how many batches may queue on
    /// one shard before submit() blocks (backpressure to the io layer).
    std::size_t channel_depth = 4;
    /// Salt of the request partition hash (the sharded emulator's
    /// default, so both pipelines split streams identically).
    std::uint64_t partition_seed = 0x5A4D'ED01;
  };

  /// One submitted routing ticket: `requests` in arrival order,
  /// `answers[i]` the server for `requests[i]` once `done` turns true.
  /// The router holds the shared_ptr until the last shard slice
  /// completes, so a ticket outlives any connection that dies mid-batch.
  struct route_batch {
    std::vector<request_id> requests;
    std::vector<server_id> answers;
    /// Invoked exactly once, by the shard worker that completes the
    /// last slice, after `done` is set.  Cleared afterwards (any
    /// captured owner references are released then).
    std::function<void()> on_complete;
    /// All slices decoded; answers[] fully written (release/acquire
    /// paired with the completing worker's store).
    std::atomic<bool> done{false};
    /// A shard slice faulted (empty-pool lookup, table precondition):
    /// answers are not trustworthy; the submitter should report an
    /// error instead of routing replies.
    std::atomic<bool> failed{false};

   private:
    friend class stream_router;
    std::atomic<std::size_t> pending_slices{0};
  };

  /// Takes ownership of the (single, producer-owned) table and runs
  /// decode loops on `pool` workers [first_worker, first_worker +
  /// config.shards).  start() must be called before the first submit().
  /// \pre table != nullptr; the worker range is within the pool.
  stream_router(std::unique_ptr<dynamic_table> table,
                runtime::worker_pool& pool, std::size_t first_worker,
                config cfg);
  /// Same, with a default-constructed config (gcc rejects `= {}` as a
  /// default argument while the nested aggregate is incomplete).
  stream_router(std::unique_ptr<dynamic_table> table,
                runtime::worker_pool& pool, std::size_t first_worker)
      : stream_router(std::move(table), pool, first_worker, config{}) {}

  /// Stops (drains) if still running.
  ~stream_router();

  stream_router(const stream_router&) = delete;
  stream_router& operator=(const stream_router&) = delete;

  /// Launches one decode loop per shard on the configured pool workers.
  /// Idempotent once running.
  void start();

  /// Closes every shard channel and waits until all decode loops have
  /// drained and exited — every batch submitted before stop() completes
  /// (its on_complete fires) before stop() returns.  After stop(),
  /// submit() is a precondition error.  Idempotent.
  void stop();

  /// Applies a join to the producer table and opens a new membership
  /// epoch.  Thread-safe; table preconditions (duplicate id, capacity)
  /// propagate as hdhash::precondition_error with the table unchanged.
  void join(server_id server, double weight = 1.0);

  /// Applies a leave (thread-safe; unknown ids throw, table unchanged).
  void leave(server_id server);

  /// Partitions the ticket's requests by shard, stamps the current
  /// epoch snapshot, and pushes one slice per covered shard (blocking
  /// when a shard's channel is full — backpressure).  Empty tickets
  /// complete inline on the calling thread.
  /// \pre started and not stopped; batch != nullptr.
  void submit(std::shared_ptr<route_batch> batch);

  /// Shard a request id is routed to (pure).
  std::size_t shard_of(request_id request) const;

  std::size_t shards() const noexcept { return config_.shards; }
  /// Servers currently in the pool (joins − leaves); the io layer
  /// rejects ROUTE with an empty pool before paying for a submit.
  std::size_t members() const noexcept {
    return members_.load(std::memory_order_relaxed);
  }
  /// Membership epochs opened so far.
  std::uint64_t epoch() const noexcept {
    return epoch_count_.load(std::memory_order_relaxed);
  }
  /// Requests accepted through submit() so far.
  std::uint64_t requests_routed() const noexcept {
    return requests_routed_.load(std::memory_order_relaxed);
  }
  /// Batches accepted through submit() so far.
  std::uint64_t batches_routed() const noexcept {
    return batches_routed_.load(std::memory_order_relaxed);
  }
  /// Epoch snapshots actually published (≤ epoch() + 1).
  std::size_t published_epochs() const;
  /// Resident table bytes (producer table + live snapshot bookkeeping).
  std::size_t table_memory_bytes() const;

 private:
  struct shard_lane;

  config config_;
  runtime::worker_pool& pool_;
  std::size_t first_worker_;
  std::unique_ptr<snapshot_publisher> publisher_;
  std::vector<std::unique_ptr<shard_lane>> lanes_;

  // Producer mutex: guards the publisher (join/leave/current) so a
  // snapshot is always consistent with the membership order observed
  // by submitters.
  mutable std::mutex producer_mutex_;
  std::atomic<std::size_t> members_{0};
  std::atomic<std::uint64_t> epoch_count_{0};
  std::atomic<std::uint64_t> requests_routed_{0};
  std::atomic<std::uint64_t> batches_routed_{0};
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace hdhash
