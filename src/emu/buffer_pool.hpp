/// \file buffer_pool.hpp
/// \brief Standalone batch-buffer recycle pool — the memory round-trip
/// half of what `batch_channel` used to bundle with hand-off.
///
/// The consumer returns each drained batch's memory with `recycle()`,
/// and the producer refills recycled buffers (`take()`) instead of
/// allocating fresh ones.  Because the consumer *allocated and wrote*
/// those buffers first (the worker pool's first-touch init job), their
/// pages live on the consumer's own NUMA node — the producer streams
/// into remote memory once, the worker decodes out of local memory
/// every batch.
///
/// Extracted from the channel on purpose: hand-off (SPSC ring or mutex
/// channel, emu/channel.hpp) and recycling are separate concerns with
/// different threading shapes — a mesh has M producers pushing into N×M
/// rings but only N per-shard pools, shared by every producer feeding
/// that shard.  The pool is therefore MPMC-safe (a plain mutex-guarded
/// stack; it is never on the per-item hot path — one lock per *batch*,
/// amortized over `batch_capacity` requests).
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace hdhash {

/// Mutex-guarded LIFO stack of recycled batch buffers.  LIFO on
/// purpose: the most recently drained buffer is the one whose pages are
/// still warm in the consumer's cache hierarchy.
template <typename Batch>
class buffer_pool {
 public:
  /// Consumer → producer: returns a drained batch's buffers for reuse.
  void recycle(Batch&& batch) {
    const std::lock_guard lock(mutex_);
    recycled_.push_back(std::move(batch));
  }

  /// Producer: takes a recycled buffer if one is available.
  bool take(Batch& out) {
    const std::lock_guard lock(mutex_);
    if (recycled_.empty()) {
      return false;
    }
    out = std::move(recycled_.back());
    recycled_.pop_back();
    return true;
  }

  /// Buffers currently parked in the pool (approximate while threads
  /// are recycling).
  std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return recycled_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Batch> recycled_;
};

}  // namespace hdhash
