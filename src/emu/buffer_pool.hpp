/// \file buffer_pool.hpp
/// \brief Standalone batch-buffer recycle pool — the memory round-trip
/// half of what `batch_channel` used to bundle with hand-off.
///
/// The consumer returns each drained batch's memory with `recycle()`,
/// and the producer refills recycled buffers (`take()`) instead of
/// allocating fresh ones.  Because the consumer *allocated and wrote*
/// those buffers first (the worker pool's first-touch init job), their
/// pages live on the consumer's own NUMA node — the producer streams
/// into remote memory once, the worker decodes out of local memory
/// every batch.
///
/// Extracted from the channel on purpose: hand-off (SPSC ring or mutex
/// channel, emu/channel.hpp) and recycling are separate concerns with
/// different threading shapes — a mesh has M producers pushing into N×M
/// rings but only N per-shard pools, shared by every producer feeding
/// that shard.
///
/// Since the memory layer landed this is a thin adapter over
/// mem::slab_cache with per-thread magazines *disabled*: the pool's
/// whole point is the cross-thread recycle→take round-trip (the worker
/// recycles, a different thread — the producer — takes), so buffers
/// must be visible process-wide the moment they are recycled, in LIFO
/// order (the most recently drained buffer is the one whose pages are
/// still warm in the consumer's cache hierarchy).  The depot is
/// mutex-guarded but never on the per-item hot path — one lock per
/// *batch*, amortized over `batch_capacity` requests.
#pragma once

#include <cstddef>
#include <utility>

#include "mem/slab_cache.hpp"

namespace hdhash {

/// Shared LIFO pool of recycled batch buffers (a magazine-less
/// mem::slab_cache).
template <typename Batch>
class buffer_pool {
 public:
  /// Consumer → producer: returns a drained batch's buffers for reuse.
  void recycle(Batch&& batch) { cache_.recycle(std::move(batch)); }

  /// Producer: takes a recycled buffer if one is available.
  bool take(Batch& out) { return cache_.take(out); }

  /// Buffers currently parked in the pool (approximate while threads
  /// are recycling).
  std::size_t size() const { return cache_.size(); }

  /// Recycle-traffic counters of the underlying cache.
  mem::slab_stats stats() const { return cache_.stats(); }

 private:
  // magazine_capacity = 0: pure shared depot — see the file comment.
  mem::slab_cache<Batch> cache_{mem::slab_options{.magazine_capacity = 0}};
};

}  // namespace hdhash
