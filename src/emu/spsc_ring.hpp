/// \file spsc_ring.hpp
/// \brief Lock-free bounded single-producer/single-consumer ring — the
/// hot-path implementation of the shard-channel concept
/// (emu/channel.hpp), and the fabric of the M×N ingest mesh
/// (emu/ingest.hpp).
///
/// Design (the classic bounded SPSC queue, cf. cachegrand's
/// `ring_bounded_queue_spsc` and Rigtorp's SPSC ring):
///
///  * **power-of-two capacity** — cursors are free-running
///    std::size_t counters; `index & mask` replaces the modulo, and
///    the full/empty tests (`tail - head > mask`, `head == tail`) stay
///    correct across wraparound because unsigned subtraction is
///    modular.
///  * **cache-line padding** — the producer cursor, the consumer
///    cursor, and each side's *cached copy* of the peer cursor live on
///    their own destructive-interference-sized lines, so a push never
///    writes the line a pop is spinning on (no false sharing between
///    the two hot threads).
///  * **acquire/release publication** — the producer writes the slot,
///    then publishes with `tail.store(release)`; the consumer observes
///    the slot only after `tail.load(acquire)`, which is the entire
///    synchronization story: no locks, no CAS, no fences beyond the
///    pair.
///  * **batched cursor refresh (cached cursors)** — the expensive
///    cross-core load of the peer's cursor happens only when the local
///    cached copy says the ring *looks* full (producer) or empty
///    (consumer).  In steady streaming each side re-reads the peer
///    cursor once per `capacity` operations instead of once per
///    operation, which is where the ring's throughput over the mutex
///    channel comes from (see bench_channel / BENCH_channel.json).
///
/// Close semantics: `close()` is an atomic flag any thread may set.  A
/// `try_push` that already read a free slot may complete concurrently
/// with `close()` — the contract (shared with the mutex channel) is
/// that producers stop pushing before or upon observing the close, and
/// every blocking `push()` parked on a full ring wakes and throws
/// `channel_closed`.  `pop()` keeps draining queued items after close
/// and returns false only once the ring is empty — nothing pushed
/// before close is ever lost.
///
/// Strictly single-producer/single-consumer: one thread pushes, one
/// thread pops.  The ingest mesh gives every producer its own ring per
/// shard precisely so this holds by construction; for multi-producer
/// hand-off use `mutex_channel` (or one ring per producer).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "emu/channel.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace detail {

/// Rounds up to the next power of two (minimum 1).
constexpr std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Destructive-interference stride for the cursor padding.  A fixed 64
/// rather than std::hardware_destructive_interference_size: the value
/// is identical on every target this builds for, and the constant
/// avoids GCC's -Winterference-size ABI-stability warning in a public
/// header.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace detail

/// Bounded lock-free SPSC ring channel.  Capacity is rounded up to a
/// power of two; the default of 4 gives the producer two batches of
/// slack beyond the classic double buffer.
template <typename T>
class spsc_ring {
 public:
  /// \pre capacity >= 1 (rounded up to the next power of two).
  explicit spsc_ring(std::size_t capacity = 4)
      : mask_(detail::round_up_pow2(capacity) - 1), slots_(mask_ + 1) {
    HDHASH_REQUIRE(capacity >= 1, "channel capacity must be positive");
  }

  /// Non-blocking push; `item` is moved from only on `ok`.  Producer
  /// thread only.
  push_status try_push(T& item) {
    if (closed_.load(std::memory_order_acquire)) {
      return push_status::closed;
    }
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      // Looks full through the cached cursor: pay the cross-core load
      // once, then run off the refreshed copy for up to `capacity`
      // more pushes (the batched-cursor-refresh optimization).
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return push_status::full;
      }
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return push_status::ok;
  }

  /// Blocks (spin → yield → park) while the ring is full; throws
  /// channel_closed once the ring is closed — a waiter parked on a
  /// full ring wakes and throws rather than deadlocking.
  void push(T&& item) {
    T local = std::move(item);
    detail::channel_backoff backoff;
    for (;;) {
      switch (try_push(local)) {
        case push_status::ok:
          return;
        case push_status::closed:
          throw channel_closed();
        case push_status::full:
          backoff.pause();
          break;
      }
    }
  }

  /// Non-blocking pop.  `closed` means closed *and* drained.  Consumer
  /// thread only.
  pop_status try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        // Order matters: re-check emptiness *after* observing the
        // closed flag, or a close between the two loads could drop a
        // final item.
        if (!closed_.load(std::memory_order_acquire)) {
          return pop_status::empty;
        }
        tail_cache_ = tail_.load(std::memory_order_acquire);
        if (head == tail_cache_) {
          return pop_status::closed;
        }
      }
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return pop_status::ok;
  }

  /// Blocks for the next item; returns false once the ring is closed
  /// and drained.
  bool pop(T& out) {
    detail::channel_backoff backoff;
    for (;;) {
      switch (try_pop(out)) {
        case pop_status::ok:
          return true;
        case pop_status::closed:
          return false;
        case pop_status::empty:
          backoff.pause();
          break;
      }
    }
  }

  /// Atomic close; safe from any thread.  Parked pushers wake and
  /// throw; the consumer drains what was already published, then pop()
  /// returns false forever.
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Usable slot count (the rounded-up power of two).
  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  /// Producer cursor: next slot to write.  Written by the producer
  /// (release), read by the consumer (acquire).
  alignas(detail::kCacheLine) std::atomic<std::size_t> tail_{0};
  /// Consumer cursor: next slot to read.  Written by the consumer
  /// (release), read by the producer (acquire).
  alignas(detail::kCacheLine) std::atomic<std::size_t> head_{0};
  /// Producer-owned cached copy of head_ (refreshed only when the ring
  /// looks full) — keeps the hot push path free of cross-core loads.
  alignas(detail::kCacheLine) std::size_t head_cache_ = 0;
  /// Consumer-owned cached copy of tail_ (refreshed only when the ring
  /// looks empty).
  alignas(detail::kCacheLine) std::size_t tail_cache_ = 0;
  alignas(detail::kCacheLine) std::atomic<bool> closed_{false};
};

}  // namespace hdhash
