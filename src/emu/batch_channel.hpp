/// \file batch_channel.hpp
/// \brief Bounded producer/worker hand-off channel shared by the batch
/// pipelines: the sharded emulator's double-buffered run() loops and
/// the network front-end's streaming shard router.
///
/// The channel is a small bounded MPSC queue (any number of pushers,
/// one popping worker) built on a mutex + condvars — the simplest
/// structure that gives the two properties every pipeline here relies
/// on:
///
///  * backpressure — push() blocks once `depth` batches are queued, so
///    a producer that outruns its worker stalls instead of ballooning
///    memory (for the socket front-end this propagates all the way back
///    to the TCP receive window);
///  * FIFO per channel — batches pop in push order, which is what keeps
///    per-connection (and per-stream) reply ordering trivial.
///
/// Alongside the hand-off queue runs a recycle stack: the worker
/// returns each drained batch's memory, and the producer refills
/// recycled buffers instead of allocating fresh ones.  Because the
/// worker *allocated and wrote* those buffers first (the pool's
/// first-touch init job), their pages live on the worker's own NUMA
/// node — the producer streams into remote memory once, the worker
/// decodes out of local memory every batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hdhash {

/// Bounded hand-off queue between producer(s) and one worker.  The
/// default depth 2 is the classic double buffer: the worker decodes
/// batch i while the producer fills batch i+1; the producer only blocks
/// when the worker is more than one full batch behind.
template <typename Batch>
class batch_channel {
 public:
  explicit batch_channel(std::size_t depth = 2) : depth_(depth) {}

  void push(Batch&& batch) {
    std::unique_lock lock(mutex_);
    can_push_.wait(lock, [this] { return queue_.size() < depth_; });
    queue_.push_back(std::move(batch));
    can_pop_.notify_one();
  }

  /// Blocks for the next batch; returns false once the channel is
  /// closed and drained.
  bool pop(Batch& out) {
    std::unique_lock lock(mutex_);
    can_pop_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return false;
    }
    out = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }

  /// After close(), push() is forbidden and pop() drains the remaining
  /// batches, then returns false forever.
  void close() {
    const std::lock_guard lock(mutex_);
    closed_ = true;
    can_pop_.notify_all();
  }

  /// Worker → producer: returns a drained batch's buffers for reuse.
  void recycle(Batch&& batch) {
    const std::lock_guard lock(recycle_mutex_);
    recycled_.push_back(std::move(batch));
  }

  /// Producer: takes a recycled buffer if one is available.
  bool take_recycled(Batch& out) {
    const std::lock_guard lock(recycle_mutex_);
    if (recycled_.empty()) {
      return false;
    }
    out = std::move(recycled_.back());
    recycled_.pop_back();
    return true;
  }

 private:
  std::size_t depth_;
  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Batch> queue_;
  bool closed_ = false;
  // Separate lock: recycling must never contend the hand-off path.
  std::mutex recycle_mutex_;
  std::vector<Batch> recycled_;
};

}  // namespace hdhash
