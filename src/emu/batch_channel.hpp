/// \file batch_channel.hpp
/// \brief DEPRECATED compatibility shim over the unified channel API.
///
/// `batch_channel` used to be a standalone mutex+condvar queue with a
/// bolted-on recycle stack.  Both concerns now live in dedicated,
/// individually tested APIs:
///
///  * hand-off   → the shard-channel concept (emu/channel.hpp):
///                 `mutex_channel` here, or the lock-free `spsc_ring`
///                 (emu/spsc_ring.hpp) on hot pipelines;
///  * recycling  → `buffer_pool` (emu/buffer_pool.hpp).
///
/// This shim keeps the old surface (`push`/`pop`/`close`/`recycle`/
/// `take_recycled`) for out-of-tree callers by composing the two.  One
/// behavior change rides along on purpose: the old `push()` into a
/// full channel after `close()` blocked forever (`can_push_` was never
/// woken on close); it now wakes and throws `channel_closed`, the
/// loud-failure contract of the channel concept.  New code should use
/// `shard_channel`/`ingest_session` (emu/ingest.hpp) directly.
#pragma once

#include <cstddef>
#include <utility>

#include "emu/buffer_pool.hpp"
#include "emu/channel.hpp"

namespace hdhash {

/// \deprecated Use `mutex_channel`/`spsc_ring` + `buffer_pool` (or the
/// `ingest_session` layer) instead.
template <typename Batch>
class [[deprecated(
    "use mutex_channel/spsc_ring + buffer_pool (emu/channel.hpp, "
    "emu/buffer_pool.hpp)")]] batch_channel {
 public:
  explicit batch_channel(std::size_t depth = 2) : channel_(depth) {}

  /// Blocks while full; throws channel_closed once closed (the old
  /// version deadlocked here — see the file comment).
  void push(Batch&& batch) { channel_.push(std::move(batch)); }

  /// Blocks for the next batch; returns false once the channel is
  /// closed and drained.
  bool pop(Batch& out) { return channel_.pop(out); }

  void close() { channel_.close(); }

  /// Worker → producer: returns a drained batch's buffers for reuse.
  void recycle(Batch&& batch) { pool_.recycle(std::move(batch)); }

  /// Producer: takes a recycled buffer if one is available.
  bool take_recycled(Batch& out) { return pool_.take(out); }

 private:
  mutex_channel<Batch> channel_;
  buffer_pool<Batch> pool_;
};

}  // namespace hdhash
