/// \file channel.hpp
/// \brief The shard-channel concept: the unified bounded hand-off
/// surface every ingest pipeline (sharded emulator, stream router, net
/// front-end) builds on, with two interchangeable implementations.
///
/// A *shard channel* is a bounded SPSC hand-off between exactly one
/// producer thread and exactly one consumer thread.  The contract,
/// shared by both implementations and asserted by the channel
/// conformance suite (tests/emu_channel_test.cpp):
///
///  * **bounded + backpressure** — `push()` blocks once `capacity`
///    items are queued, so a producer that outruns its consumer stalls
///    instead of ballooning memory (for the socket front-end this
///    propagates all the way back to the TCP receive window);
///  * **FIFO per channel** — items pop in push order, which is what
///    keeps per-connection (and per-stream) reply ordering trivial;
///  * **loud close** — after `close()`, `push()` throws
///    `channel_closed` (including a push already *blocked* on a full
///    channel when close arrives — it wakes and throws instead of
///    deadlocking), and `pop()` drains the remaining items, then
///    returns false forever;
///  * **non-blocking probes** — `try_push`/`try_pop` return a status
///    (`ok`/`full|empty`/`closed`) and never block or throw.
///
/// Implementations:
///
///  * `spsc_ring` (emu/spsc_ring.hpp) — lock-free cache-line-padded
///    bounded ring (acquire/release atomics, power-of-two capacity,
///    cached-cursor publication).  The default for every hot pipeline.
///  * `mutex_channel` (this header) — mutex + condvar deque.  The
///    portable reference implementation and the conformance baseline;
///    also tolerates multiple pushers (the rings do not).
///
/// `shard_channel` wraps either behind one type, selected at run time
/// by `channel_kind` — pipelines pick per configuration (`--channel
/// ring|mutex`, HDHASH_CHANNEL), and the torture suite runs every test
/// against both.
///
/// Buffer recycling is deliberately *not* part of the channel concept
/// anymore: the producer/consumer memory round-trip lives in the
/// standalone `buffer_pool` (emu/buffer_pool.hpp), so hand-off and
/// recycling are separate, individually testable APIs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "util/require.hpp"

namespace hdhash {

/// Thrown by push() when the channel is (or becomes, while the push is
/// blocked on a full queue) closed: pushing into a closed channel is a
/// pipeline-protocol violation and must fail loudly, never block or
/// silently drop.
class channel_closed : public precondition_error {
 public:
  channel_closed() : precondition_error("push into a closed channel") {}
};

/// Non-blocking push outcome.
enum class push_status : std::uint8_t {
  ok,      ///< the item was moved into the channel
  full,    ///< no slot free; the item is untouched — retry later
  closed,  ///< the channel is closed; the item is untouched
};

/// Non-blocking pop outcome.
enum class pop_status : std::uint8_t {
  ok,      ///< an item was moved out
  empty,   ///< nothing queued right now (channel still open)
  closed,  ///< closed *and* drained — no item will ever arrive again
};

/// Which shard-channel implementation a pipeline hands batches through.
enum class channel_kind : std::uint8_t {
  ring,   ///< lock-free bounded SPSC ring (emu/spsc_ring.hpp)
  mutex,  ///< mutex + condvar deque (the portable reference)
};

/// Canonical CLI/JSON name ("ring", "mutex").
std::string_view to_string(channel_kind kind) noexcept;

/// Parses a channel-kind name; std::nullopt for unknown names (callers
/// decide whether to fail loudly or fall back).
std::optional<channel_kind> parse_channel_kind(std::string_view name);

/// Process-wide default: `ring`, overridable with the HDHASH_CHANNEL
/// environment variable (ring|mutex).  An unknown value fails loudly
/// (hdhash::precondition_error) rather than silently switching
/// implementations — the HDHASH_FORCE_KERNEL / HDHASH_PIN convention.
channel_kind default_channel_kind();

namespace detail {

/// Producer/consumer wait loop for the lock-free paths: spin briefly
/// (the common case — the peer is one batch away), then yield, then
/// park in short sleeps.  Progress resets the ladder.
class channel_backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      return;  // busy-spin: the peer is usually mid-batch
    }
    if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 16;
  int spins_ = 0;
};

}  // namespace detail

/// Mutex + condvar shard channel: the portable reference implementation
/// of the channel concept (and the conformance baseline the lock-free
/// ring is tested against).  Unlike the ring it tolerates any number of
/// pushers; the popping side is still single-consumer.
template <typename T>
class mutex_channel {
 public:
  /// \pre capacity >= 1.
  explicit mutex_channel(std::size_t capacity = 2) : capacity_(capacity) {
    HDHASH_REQUIRE(capacity_ >= 1, "channel capacity must be positive");
  }

  /// Blocks while the channel is full; throws channel_closed if the
  /// channel is closed — including when close() arrives while this
  /// push is already waiting on a full queue (the waiter wakes and
  /// throws instead of deadlocking; regression-tested).
  void push(T&& item) {
    std::unique_lock lock(mutex_);
    can_push_.wait(lock,
                   [this] { return queue_.size() < capacity_ || closed_; });
    if (closed_) {
      throw channel_closed();
    }
    queue_.push_back(std::move(item));
    can_pop_.notify_one();
  }

  /// Non-blocking push; `item` is moved from only on `ok`.
  push_status try_push(T& item) {
    const std::lock_guard lock(mutex_);
    if (closed_) {
      return push_status::closed;
    }
    if (queue_.size() >= capacity_) {
      return push_status::full;
    }
    queue_.push_back(std::move(item));
    can_pop_.notify_one();
    return push_status::ok;
  }

  /// Blocks for the next item; returns false once the channel is
  /// closed and drained.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    can_pop_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return false;
    }
    out = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }

  /// Non-blocking pop.  `closed` means closed *and* drained.
  pop_status try_pop(T& out) {
    const std::lock_guard lock(mutex_);
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      can_push_.notify_one();
      return pop_status::ok;
    }
    return closed_ ? pop_status::closed : pop_status::empty;
  }

  /// After close(), push() throws and pop() drains the remaining items,
  /// then returns false forever.  Wakes *both* sides: a consumer
  /// waiting on an empty queue and a producer blocked on a full one
  /// (the latter was the PR-7 deadlock — can_push_ never woke on
  /// close, so a push into a full channel after close() hung forever).
  void close() {
    const std::lock_guard lock(mutex_);
    closed_ = true;
    can_pop_.notify_all();
    can_push_.notify_all();
  }

  bool closed() const {
    const std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace hdhash
