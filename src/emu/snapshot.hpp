/// \file snapshot.hpp
/// \brief Epoch-published table snapshots — the shared-state backbone of
/// the sharded emulator's snapshot membership mode.
///
/// The replicated pipeline (PR 2) broadcast every join/leave to N shard
/// workers, each owning a full table replica: O(shards) work per
/// membership event and an N-fold copy of the pool's routing state.
/// This module inverts that: one *producer-owned mutable table* absorbs
/// membership events, and each membership **epoch** — the span of the
/// stream between two membership events — is published once as an
/// immutable, reference-counted table_snapshot.  Shard workers resolve
/// every request against the snapshot of the epoch the request arrived
/// under, so
///  * churn costs O(1) applications per event regardless of shard count,
///  * table memory is ~one replica plus copy-on-write bookkeeping
///    (hd shares the circle basis and item-memory rows; see
///    dynamic_table::snapshot()), and
///  * the merged load histogram stays bit-identical to a single-table
///    reference run, because every request still sees exactly the
///    membership state that preceded it in the stream.
///
/// The design follows the epoch-publication pattern of high-throughput
/// servers (e.g. cachegrand's read-mostly shared state): writers never
/// mutate what readers hold; they publish a fresh version and let the
/// old epoch drain.  Reclamation falls out of shared_ptr reference
/// counts — the last worker batch holding an epoch frees it.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/hugepage_arena.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// One published membership epoch: an immutable table plus its epoch
/// number.  Safe to share across any number of reader threads — the
/// underlying table is frozen (see dynamic_table::snapshot()), and for
/// hd-family tables it carries the fully resolved slot cache, the
/// PR-2-style memoization now shared by *all* shards for the epoch's
/// whole lifetime instead of rebuilt per sub-batch.
class table_snapshot {
 public:
  /// \param epoch  monotonically increasing membership-epoch number.
  /// \param table  frozen immutable table (from dynamic_table::snapshot()).
  /// \pre table != nullptr.
  table_snapshot(std::uint64_t epoch,
                 std::shared_ptr<const dynamic_table> table);

  /// Membership epoch this snapshot publishes (0 = before any event).
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// The immutable table; concurrent lookup()/lookup_batch() calls are
  /// safe.  Valid for the snapshot's lifetime.
  const dynamic_table& table() const noexcept { return *table_; }

  /// Bytes this snapshot keeps resident *beyond* state shared with the
  /// producer table and sibling epochs (copy-on-write bookkeeping:
  /// member maps, resolved slot cache — not hypervectors).
  std::size_t marginal_bytes() const;

 private:
  std::uint64_t epoch_;
  std::shared_ptr<const dynamic_table> table_;
};

/// Producer-side owner of the single mutable table.  Applies membership
/// events, bumps the epoch, and lazily publishes one immutable
/// table_snapshot per *observed* epoch: consecutive membership events
/// with no request in between collapse into a single publication.
///
/// Not thread-safe by design — exactly one producer thread applies
/// events and publishes; consumers only ever touch the returned
/// shared_ptr<const table_snapshot>.
class snapshot_publisher {
 public:
  /// Takes ownership of the mutable table (with its current membership).
  /// \param arena  arena the published epoch objects (table_snapshot +
  ///               shared_ptr control block, allocated together) are
  ///               carved from; epochs drain back to its free lists and
  ///               the next publication recycles them.  nullptr = heap.
  /// \pre table != nullptr.
  explicit snapshot_publisher(
      std::unique_ptr<dynamic_table> table,
      std::shared_ptr<mem::hugepage_arena> arena = nullptr);

  /// Applies a join to the mutable table and opens a new epoch.
  /// Previously published snapshots are unaffected.
  void join(server_id server, double weight = 1.0);

  /// Applies a leave to the mutable table and opens a new epoch.
  /// Previously published snapshots are unaffected.
  void leave(server_id server);

  /// Snapshot of the current epoch, publishing it first if the last
  /// membership event has not been published yet.  Stable: repeated
  /// calls within one epoch return the same snapshot object.
  /// \post result->epoch() == epoch().
  std::shared_ptr<const table_snapshot> current();

  /// Membership epochs opened so far (= join/leave events applied).
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Epochs actually published (≤ epoch() + 1; the gap is epochs no
  /// request ever observed).
  std::size_t published_epochs() const noexcept { return published_; }

  /// The producer-owned mutable table (end-of-run inspection).
  const dynamic_table& table() const noexcept { return *table_; }
  dynamic_table& table() noexcept { return *table_; }

  /// Total resident table bytes: the mutable table plus the marginal
  /// (non-shared) footprint of the currently published snapshot — the
  /// number the sharded report compares against N full replicas.
  std::size_t memory_bytes() const;

  /// Bytes this publisher keeps resident *beyond* rows shared with
  /// another holder: (memory - shared) of the mutable table plus the
  /// current snapshot's marginal bookkeeping.  This is what a shadow
  /// replica whose rows are COW-shared with the primary actually adds —
  /// memory_bytes() would count every shared row once per publisher.
  std::size_t marginal_bytes() const;

 private:
  std::unique_ptr<dynamic_table> table_;
  std::shared_ptr<mem::hugepage_arena> arena_;
  std::shared_ptr<const table_snapshot> current_;
  std::uint64_t epoch_ = 0;
  std::size_t published_ = 0;
};

}  // namespace hdhash
