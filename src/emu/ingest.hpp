/// \file ingest.hpp
/// \brief The unified ingest API: an M-producer × N-shard mesh of shard
/// channels, with one producer-side handle (`ingest_session`) and one
/// consumer-side handle (`shard_consumer`).
///
/// Every batch pipeline in the repo — `sharded_emulator::run()`, the
/// resident `stream_router`, and `net_server`'s io loops — used to hand
/// batches over through its own ad-hoc channel arrangement.  They now
/// all build on this one surface:
///
/// ```
///   producer 0 ──► session 0 ──► ring(0,0) ring(0,1) … ring(0,N-1)
///   producer 1 ──► session 1 ──► ring(1,0) ring(1,1) … ring(1,N-1)
///      …                                │        │
///   producer M-1 ─► session M-1 ─► ring(M-1,0)   │
///                                       ▼        ▼
///                       shard 0: consumer scans column 0
///                       shard 1: consumer scans column 1   …
/// ```
///
/// Each (producer, shard) pair owns a dedicated bounded channel, so
/// with the lock-free `spsc_ring` implementation the
/// single-producer/single-consumer discipline holds *by construction*:
/// session p is the only pusher of row p, and shard s's consumer (one
/// worker-pool thread) is the only popper of column s.  No lock, no
/// CAS, no shared cursor anywhere on the hot path.
///
/// Ordering: FIFO per channel — batches from one session reach a shard
/// in push order.  Batches from *different* sessions are unordered
/// relative to each other (the consumer scans its column round-robin);
/// pipelines that need cross-producer ordering sequence it out of band,
/// the way the sharded emulator pre-sequences membership epochs through
/// the snapshot publisher before the producers fan out.
///
/// Shutdown: each session closes its own row when its stream is done
/// (`session.close()`, exception-safe — a dying producer must still
/// close, or its consumers spin forever); a consumer's `pop()` returns
/// false once *every* lane in its column is closed and drained.
/// `mesh.close()` force-closes everything (stop paths).
///
/// Buffer recycling is the separate `buffer_pool` API
/// (emu/buffer_pool.hpp): pipelines keep one pool per *shard*, shared
/// by every session feeding that shard, so buffers first-touched on a
/// shard worker's NUMA node keep circulating back to it.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "emu/channel.hpp"
#include "emu/spsc_ring.hpp"
#include "util/require.hpp"

namespace hdhash {

/// One bounded hand-off channel with the implementation chosen at run
/// time (`channel_kind`): the lock-free `spsc_ring` on hot pipelines,
/// the `mutex_channel` reference elsewhere (and under `--channel mutex`
/// / HDHASH_CHANNEL=mutex for A/B runs — bench_channel measures the
/// gap).  Same concept contract either way; the conformance suite runs
/// every test against both kinds through this wrapper.
template <typename T>
class shard_channel {
 public:
  explicit shard_channel(channel_kind kind, std::size_t capacity) {
    if (kind == channel_kind::ring) {
      ring_ = std::make_unique<spsc_ring<T>>(capacity);
    } else {
      mutex_ = std::make_unique<mutex_channel<T>>(capacity);
    }
  }

  channel_kind kind() const noexcept {
    return ring_ ? channel_kind::ring : channel_kind::mutex;
  }

  push_status try_push(T& item) {
    return ring_ ? ring_->try_push(item) : mutex_->try_push(item);
  }
  void push(T&& item) {
    ring_ ? ring_->push(std::move(item)) : mutex_->push(std::move(item));
  }
  pop_status try_pop(T& out) {
    return ring_ ? ring_->try_pop(out) : mutex_->try_pop(out);
  }
  bool pop(T& out) { return ring_ ? ring_->pop(out) : mutex_->pop(out); }
  void close() { ring_ ? ring_->close() : mutex_->close(); }
  bool closed() const { return ring_ ? ring_->closed() : mutex_->closed(); }
  std::size_t capacity() const {
    return ring_ ? ring_->capacity() : mutex_->capacity();
  }

 private:
  // Exactly one is set (the atomics make the implementations immovable,
  // so the wrapper holds them behind pointers and stays movable).
  std::unique_ptr<spsc_ring<T>> ring_;
  std::unique_ptr<mutex_channel<T>> mutex_;
};

template <typename T>
class ingest_session;
template <typename T>
class shard_consumer;

/// The M×N channel fabric.  Construct once per pipeline run; hand each
/// producer thread its `session(p)` and each shard worker its
/// `consumer(s)`.  The mesh must outlive every handle.
template <typename T>
class ingest_mesh {
 public:
  /// \pre producers >= 1, shards >= 1, capacity >= 1.
  ingest_mesh(std::size_t producers, std::size_t shards, std::size_t capacity,
              channel_kind kind) {
    HDHASH_REQUIRE(producers >= 1, "need at least one producer");
    HDHASH_REQUIRE(shards >= 1, "need at least one shard");
    producers_ = producers;
    shards_ = shards;
    lanes_.reserve(producers * shards);
    for (std::size_t i = 0; i < producers * shards; ++i) {
      lanes_.emplace_back(kind, capacity);
    }
  }

  std::size_t producers() const noexcept { return producers_; }
  std::size_t shards() const noexcept { return shards_; }
  channel_kind kind() const noexcept { return lanes_.front().kind(); }

  /// The (producer, shard) channel.  SPSC discipline: only producer
  /// `producer`'s thread pushes, only shard `shard`'s thread pops.
  shard_channel<T>& lane(std::size_t producer, std::size_t shard) {
    HDHASH_REQUIRE(producer < producers_ && shard < shards_,
                   "mesh lane out of range");
    return lanes_[producer * shards_ + shard];
  }

  /// Producer-side handle for one mesh row (see ingest_session).
  ingest_session<T> session(std::size_t producer);
  /// Consumer-side handle for one mesh column (see shard_consumer).
  shard_consumer<T> consumer(std::size_t shard);

  /// Force-closes every lane (stop paths; safe from any thread).
  void close() {
    for (auto& lane : lanes_) {
      lane.close();
    }
  }

 private:
  std::size_t producers_ = 0;
  std::size_t shards_ = 0;
  std::vector<shard_channel<T>> lanes_;  // producer-major
};

/// One producer's ingest surface: push batches at shards, then close
/// the row when the stream ends.  Exactly one thread may use a given
/// session (that thread is the SPSC producer of the whole row).  Cheap
/// to copy within that constraint (it is a view over the mesh).
template <typename T>
class ingest_session {
 public:
  ingest_session() = default;

  std::size_t shards() const noexcept { return mesh_->shards(); }

  /// Blocking push with backpressure; throws channel_closed if the
  /// lane was closed underneath the producer (stop path).
  void push(std::size_t shard, T&& item) {
    mesh_->lane(producer_, shard).push(std::move(item));
  }

  /// Non-blocking push; `item` is moved from only on `ok`.
  push_status try_push(std::size_t shard, T& item) {
    return mesh_->lane(producer_, shard).try_push(item);
  }

  /// Ends this producer's stream: closes every lane in the row, waking
  /// the shard consumers.  Call on every exit path — a producer that
  /// dies without closing leaves its consumers waiting forever.
  void close() {
    for (std::size_t s = 0; s < mesh_->shards(); ++s) {
      mesh_->lane(producer_, s).close();
    }
  }

 private:
  friend class ingest_mesh<T>;
  ingest_session(ingest_mesh<T>* mesh, std::size_t producer)
      : mesh_(mesh), producer_(producer) {}

  ingest_mesh<T>* mesh_ = nullptr;
  std::size_t producer_ = 0;
};

/// One shard's ingest surface: pops batches from all M producer lanes
/// of its mesh column, round-robin for fairness.  Exactly one thread
/// may use a given consumer (that thread is the SPSC consumer of the
/// whole column).
template <typename T>
class shard_consumer {
 public:
  shard_consumer() = default;

  /// Non-blocking pop: one fair scan over the column.  `closed` only
  /// when *every* lane is closed and drained.
  pop_status try_pop(T& out) {
    const std::size_t producers = mesh_->producers();
    std::size_t closed = 0;
    for (std::size_t i = 0; i < producers; ++i) {
      const std::size_t p = (cursor_ + i) % producers;
      switch (mesh_->lane(p, shard_).try_pop(out)) {
        case pop_status::ok:
          // Resume the next scan at the following lane so one chatty
          // producer cannot starve the rest of the column.
          cursor_ = (p + 1) % producers;
          return pop_status::ok;
        case pop_status::closed:
          ++closed;
          break;
        case pop_status::empty:
          break;
      }
    }
    return closed == producers ? pop_status::closed : pop_status::empty;
  }

  /// Blocking pop; returns false once the whole column is closed and
  /// drained — the decode loop's termination condition.
  bool pop(T& out) {
    detail::channel_backoff backoff;
    for (;;) {
      switch (try_pop(out)) {
        case pop_status::ok:
          return true;
        case pop_status::closed:
          return false;
        case pop_status::empty:
          backoff.pause();
          break;
      }
    }
  }

 private:
  friend class ingest_mesh<T>;
  shard_consumer(ingest_mesh<T>* mesh, std::size_t shard)
      : mesh_(mesh), shard_(shard) {}

  ingest_mesh<T>* mesh_ = nullptr;
  std::size_t shard_ = 0;
  std::size_t cursor_ = 0;
};

template <typename T>
ingest_session<T> ingest_mesh<T>::session(std::size_t producer) {
  HDHASH_REQUIRE(producer < producers_, "mesh producer out of range");
  return ingest_session<T>(this, producer);
}

template <typename T>
shard_consumer<T> ingest_mesh<T>::consumer(std::size_t shard) {
  HDHASH_REQUIRE(shard < shards_, "mesh shard out of range");
  return shard_consumer<T>(this, shard);
}

}  // namespace hdhash
