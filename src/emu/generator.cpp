#include "emu/generator.hpp"

#include <cmath>

#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

generator::generator(workload_config config) : config_(config) {
  HDHASH_REQUIRE(config_.key_universe > 0, "key universe must be non-empty");
  // std::isfinite first: a NaN churn rate would sail through a bare
  // range comparison written the other way around, and an infinite
  // zipf skew would overflow the sampler's CDF accumulation.
  HDHASH_REQUIRE(std::isfinite(config_.churn_rate) &&
                     config_.churn_rate >= 0.0 && config_.churn_rate <= 1.0,
                 "churn rate must be a probability in [0, 1]");
  if (config_.distribution == request_distribution::zipf) {
    HDHASH_REQUIRE(std::isfinite(config_.zipf_skew) && config_.zipf_skew >= 0.0,
                   "zipf skew must be a finite non-negative exponent");
  }
}

std::uint64_t generator::server_id_at(std::uint64_t seed, std::size_t index) {
  // Server ids model unique endpoint identifiers; a mixed counter keeps
  // them unique, deterministic and uncorrelated with request keys.
  return splitmix_hash::mix(seed ^ (0x5e7fe7 + index * 0x9e3779b97f4a7c15ULL));
}

std::vector<std::uint64_t> generator::initial_server_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(config_.initial_servers);
  for (std::size_t i = 0; i < config_.initial_servers; ++i) {
    ids.push_back(server_id_at(config_.seed, i));
  }
  return ids;
}

std::vector<event> generator::generate() const {
  xoshiro256 rng(config_.seed);
  std::vector<event> events;
  events.reserve(config_.initial_servers + config_.request_count);

  std::vector<std::uint64_t> pool = initial_server_ids();
  for (const std::uint64_t id : pool) {
    events.push_back(event{event_kind::join, id});
  }

  // Optional Zipf sampler built once (CDF precomputation is O(universe)).
  std::vector<zipf_sampler> sampler;  // 0 or 1 elements (no default ctor)
  if (config_.distribution == request_distribution::zipf) {
    sampler.emplace_back(config_.key_universe, config_.zipf_skew);
  }

  std::size_t next_server_index = config_.initial_servers;
  bool next_churn_is_join = true;
  for (std::size_t i = 0; i < config_.request_count; ++i) {
    if (config_.churn_rate > 0.0 &&
        uniform_unit(rng) < config_.churn_rate) {
      if (next_churn_is_join || pool.empty()) {
        const std::uint64_t id =
            server_id_at(config_.seed, next_server_index++);
        pool.push_back(id);
        events.push_back(event{event_kind::join, id});
      } else {
        const std::size_t victim = static_cast<std::size_t>(
            uniform_below(rng, pool.size()));
        events.push_back(event{event_kind::leave, pool[victim]});
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      next_churn_is_join = !next_churn_is_join;
    }

    std::uint64_t key;
    if (config_.distribution == request_distribution::uniform) {
      key = uniform_below(rng, config_.key_universe);
    } else {
      key = sampler.front().sample(rng);
    }
    // Requests carry opaque identifiers in practice (URLs, user ids); mix
    // the key rank so the id space is not the integers 0..universe.
    events.push_back(
        event{event_kind::request, splitmix_hash::mix(key + 0xfeed)});
  }
  return events;
}

}  // namespace hdhash
