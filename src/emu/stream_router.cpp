#include "emu/stream_router.hpp"

#include <utility>

#include "hashing/splitmix_hash.hpp"
#include "mem/hugepage_arena.hpp"
#include "util/require.hpp"

namespace hdhash {

/// One shard's slice of a submitted ticket: the indices (positions in
/// the owner's request vector) this shard resolves, against `snap`.
struct stream_router::shard_slice {
  std::shared_ptr<const table_snapshot> snap;
  std::shared_ptr<stream_router::route_batch> owner;
  std::vector<std::uint32_t> indices;
};

/// Decode-loop scratch, single-owner by the worker-pool FIFO contract.
struct stream_router::shard_scratch {
  std::vector<request_id> ids;
  std::vector<server_id> answers;
};

stream_router::stream_router(std::unique_ptr<dynamic_table> table,
                             runtime::worker_pool& pool,
                             std::size_t first_worker, config cfg)
    : config_(cfg), pool_(pool), first_worker_(first_worker) {
  HDHASH_REQUIRE(table != nullptr, "stream router needs a table");
  HDHASH_REQUIRE(config_.shards >= 1, "need at least one shard");
  HDHASH_REQUIRE(config_.channel_depth >= 1,
                 "shard channel depth must be positive");
  HDHASH_REQUIRE(first_worker_ + config_.shards <= pool_.size(),
                 "shard worker range exceeds the pool");
  publisher_ = std::make_unique<snapshot_publisher>(std::move(table),
                                                    mem::local_arena());
  // One private row per registered session plus the shared legacy row
  // (row index config_.sessions, serialized by legacy_row_mutex_).
  mesh_ = std::make_unique<ingest_mesh<shard_slice>>(
      config_.sessions + 1, config_.shards, config_.channel_depth,
      config_.channel);
  scratch_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    scratch_.push_back(std::make_unique<shard_scratch>());
  }
}

stream_router::~stream_router() { stop(); }

void stream_router::start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shard_scratch* scratch = scratch_[s].get();
    ingest_mesh<shard_slice>* mesh = mesh_.get();
    pool_.submit(first_worker_ + s, [mesh, scratch, s] {
      shard_consumer<shard_slice> consumer = mesh->consumer(s);
      shard_slice slice;
      while (consumer.pop(slice)) {
        route_batch& owner = *slice.owner;
        try {
          const dynamic_table& table = slice.snap->table();
          scratch->ids.clear();
          for (const std::uint32_t index : slice.indices) {
            scratch->ids.push_back(owner.requests[index]);
          }
          scratch->answers.resize(scratch->ids.size());
          table.lookup_batch(scratch->ids, scratch->answers);
          for (std::size_t i = 0; i < slice.indices.size(); ++i) {
            owner.answers[slice.indices[i]] = scratch->answers[i];
          }
        } catch (...) {
          // A faulted slice (empty pool raced a leave, a table
          // precondition) must never wedge the pipeline: mark the
          // ticket failed and still count the slice down, so the
          // submitter gets its completion and can reply with an error.
          owner.failed.store(true, std::memory_order_relaxed);
        }
        // Drop the slice's references before completing: once
        // on_complete fires the ticket owner may free everything, and
        // the snapshot must not be kept alive by a worker's scratch.
        std::shared_ptr<route_batch> ticket = std::move(slice.owner);
        slice.snap.reset();
        slice.indices.clear();
        if (ticket->pending_slices.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          ticket->done.store(true, std::memory_order_release);
          std::function<void()> complete = std::move(ticket->on_complete);
          ticket->on_complete = nullptr;
          if (complete) {
            complete();
          }
        }
      }
    });
  }
}

void stream_router::stop() {
  if (!started_ || stopped_.exchange(true)) {
    return;
  }
  mesh_->close();
  // The decode jobs exit once every lane of their column drains; every
  // ticket submitted before stop() completes during this wait.
  // wait_idle() also covers any *other* jobs on the shared pool (the
  // net server stops its io loops first for exactly this reason) and
  // rethrows the first job exception.
  pool_.wait_idle();
}

void stream_router::join(server_id server, double weight) {
  {
    const std::lock_guard lock(producer_mutex_);
    publisher_->join(server, weight);  // throws with the table unchanged
  }
  members_.fetch_add(1, std::memory_order_relaxed);
  epoch_count_.fetch_add(1, std::memory_order_relaxed);
}

void stream_router::leave(server_id server) {
  {
    const std::lock_guard lock(producer_mutex_);
    publisher_->leave(server);
  }
  members_.fetch_sub(1, std::memory_order_relaxed);
  epoch_count_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t stream_router::shard_of(request_id request) const {
  return static_cast<std::size_t>(
      splitmix_hash::mix(request ^ config_.partition_seed) % config_.shards);
}

void stream_router::submit(std::shared_ptr<route_batch> batch) {
  // The legacy row's lanes are single-producer like every other row;
  // serializing the callers here (mutex hand-off orders their pushes)
  // keeps them safe and FIFO.  A caller blocked on a full lane blocks
  // its peers too — io-rate producers hold a private session instead.
  const std::lock_guard lock(legacy_row_mutex_);
  submit_to_row(config_.sessions, std::move(batch));
}

stream_router::session stream_router::open_session(std::size_t index) {
  HDHASH_REQUIRE(index < config_.sessions,
                 "session index out of range — size config.sessions first");
  return session(this, index);
}

void stream_router::submit_to_row(std::size_t row,
                                  std::shared_ptr<route_batch> batch) {
  HDHASH_REQUIRE(batch != nullptr, "cannot submit a null batch");
  HDHASH_REQUIRE(started_ && !stopped_.load(std::memory_order_relaxed),
                 "stream router is not running");
  const std::size_t count = batch->requests.size();
  if (count == 0) {
    batch->done.store(true, std::memory_order_release);
    std::function<void()> complete = std::move(batch->on_complete);
    batch->on_complete = nullptr;
    if (complete) {
      complete();
    }
    return;
  }
  batch->answers.assign(count, 0);

  // Partition the arrival-order requests into per-shard index lists.
  std::vector<std::vector<std::uint32_t>> slices(config_.shards);
  for (std::size_t i = 0; i < count; ++i) {
    slices[shard_of(batch->requests[i])].push_back(
        static_cast<std::uint32_t>(i));
  }
  std::size_t covered = 0;
  for (const auto& indices : slices) {
    covered += indices.empty() ? 0 : 1;
  }
  // The slice count must be in place before any worker can reach zero.
  batch->pending_slices.store(covered, std::memory_order_relaxed);

  // Snapshot under the producer mutex: the batch observes exactly the
  // membership state current at submission, never a half-applied event.
  std::shared_ptr<const table_snapshot> snap;
  {
    const std::lock_guard lock(producer_mutex_);
    snap = publisher_->current();
  }
  requests_routed_.fetch_add(count, std::memory_order_relaxed);
  batches_routed_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    if (slices[s].empty()) {
      continue;
    }
    shard_slice slice;
    slice.snap = snap;
    slice.owner = batch;
    slice.indices = std::move(slices[s]);
    // Blocking push = backpressure; throws channel_closed if stop()
    // raced this submit (the loud post-close contract).
    mesh_->lane(row, s).push(std::move(slice));
  }
}

std::size_t stream_router::published_epochs() const {
  const std::lock_guard lock(producer_mutex_);
  return publisher_->published_epochs();
}

std::size_t stream_router::table_memory_bytes() const {
  const std::lock_guard lock(producer_mutex_);
  return publisher_->memory_bytes();
}

}  // namespace hdhash
