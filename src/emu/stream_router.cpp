#include "emu/stream_router.hpp"

#include <utility>

#include "emu/batch_channel.hpp"
#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace {

/// One shard's slice of a submitted ticket: the indices (positions in
/// the owner's request vector) this shard resolves, against `snap`.
struct shard_slice {
  std::shared_ptr<const table_snapshot> snap;
  std::shared_ptr<stream_router::route_batch> owner;
  std::vector<std::uint32_t> indices;
};

}  // namespace

struct stream_router::shard_lane {
  explicit shard_lane(std::size_t depth) : channel(depth) {}
  batch_channel<shard_slice> channel;
  // Decode-loop scratch, single-owner by the worker-pool FIFO contract.
  std::vector<request_id> ids;
  std::vector<server_id> answers;
};

stream_router::stream_router(std::unique_ptr<dynamic_table> table,
                             runtime::worker_pool& pool,
                             std::size_t first_worker, config cfg)
    : config_(cfg), pool_(pool), first_worker_(first_worker) {
  HDHASH_REQUIRE(table != nullptr, "stream router needs a table");
  HDHASH_REQUIRE(config_.shards >= 1, "need at least one shard");
  HDHASH_REQUIRE(config_.channel_depth >= 1,
                 "shard channel depth must be positive");
  HDHASH_REQUIRE(first_worker_ + config_.shards <= pool_.size(),
                 "shard worker range exceeds the pool");
  publisher_ = std::make_unique<snapshot_publisher>(std::move(table));
  lanes_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    lanes_.push_back(std::make_unique<shard_lane>(config_.channel_depth));
  }
}

stream_router::~stream_router() { stop(); }

void stream_router::start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shard_lane* lane = lanes_[s].get();
    pool_.submit(first_worker_ + s, [lane] {
      shard_slice slice;
      while (lane->channel.pop(slice)) {
        route_batch& owner = *slice.owner;
        try {
          const dynamic_table& table = slice.snap->table();
          lane->ids.clear();
          for (const std::uint32_t index : slice.indices) {
            lane->ids.push_back(owner.requests[index]);
          }
          lane->answers.resize(lane->ids.size());
          table.lookup_batch(lane->ids, lane->answers);
          for (std::size_t i = 0; i < slice.indices.size(); ++i) {
            owner.answers[slice.indices[i]] = lane->answers[i];
          }
        } catch (...) {
          // A faulted slice (empty pool raced a leave, a table
          // precondition) must never wedge the pipeline: mark the
          // ticket failed and still count the slice down, so the
          // submitter gets its completion and can reply with an error.
          owner.failed.store(true, std::memory_order_relaxed);
        }
        // Drop the slice's references before completing: once
        // on_complete fires the ticket owner may free everything, and
        // the snapshot must not be kept alive by a worker's scratch.
        std::shared_ptr<route_batch> ticket = std::move(slice.owner);
        slice.snap.reset();
        slice.indices.clear();
        if (ticket->pending_slices.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          ticket->done.store(true, std::memory_order_release);
          std::function<void()> complete = std::move(ticket->on_complete);
          ticket->on_complete = nullptr;
          if (complete) {
            complete();
          }
        }
      }
    });
  }
}

void stream_router::stop() {
  if (!started_ || stopped_.exchange(true)) {
    return;
  }
  for (auto& lane : lanes_) {
    lane->channel.close();
  }
  // The decode jobs exit once their channels drain; every ticket
  // submitted before stop() completes during this wait.  wait_idle()
  // also covers any *other* jobs on the shared pool (the net server
  // stops its io loops first for exactly this reason) and rethrows the
  // first job exception.
  pool_.wait_idle();
}

void stream_router::join(server_id server, double weight) {
  {
    const std::lock_guard lock(producer_mutex_);
    publisher_->join(server, weight);  // throws with the table unchanged
  }
  members_.fetch_add(1, std::memory_order_relaxed);
  epoch_count_.fetch_add(1, std::memory_order_relaxed);
}

void stream_router::leave(server_id server) {
  {
    const std::lock_guard lock(producer_mutex_);
    publisher_->leave(server);
  }
  members_.fetch_sub(1, std::memory_order_relaxed);
  epoch_count_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t stream_router::shard_of(request_id request) const {
  return static_cast<std::size_t>(
      splitmix_hash::mix(request ^ config_.partition_seed) % config_.shards);
}

void stream_router::submit(std::shared_ptr<route_batch> batch) {
  HDHASH_REQUIRE(batch != nullptr, "cannot submit a null batch");
  HDHASH_REQUIRE(started_ && !stopped_.load(std::memory_order_relaxed),
                 "stream router is not running");
  const std::size_t count = batch->requests.size();
  if (count == 0) {
    batch->done.store(true, std::memory_order_release);
    std::function<void()> complete = std::move(batch->on_complete);
    batch->on_complete = nullptr;
    if (complete) {
      complete();
    }
    return;
  }
  batch->answers.assign(count, 0);

  // Partition the arrival-order requests into per-shard index lists.
  std::vector<std::vector<std::uint32_t>> slices(config_.shards);
  for (std::size_t i = 0; i < count; ++i) {
    slices[shard_of(batch->requests[i])].push_back(
        static_cast<std::uint32_t>(i));
  }
  std::size_t covered = 0;
  for (const auto& indices : slices) {
    covered += indices.empty() ? 0 : 1;
  }
  // The slice count must be in place before any worker can reach zero.
  batch->pending_slices.store(covered, std::memory_order_relaxed);

  // Snapshot under the producer mutex: the batch observes exactly the
  // membership state current at submission, never a half-applied event.
  std::shared_ptr<const table_snapshot> snap;
  {
    const std::lock_guard lock(producer_mutex_);
    snap = publisher_->current();
  }
  requests_routed_.fetch_add(count, std::memory_order_relaxed);
  batches_routed_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    if (slices[s].empty()) {
      continue;
    }
    shard_slice slice;
    slice.snap = snap;
    slice.owner = batch;
    slice.indices = std::move(slices[s]);
    lanes_[s]->channel.push(std::move(slice));
  }
}

std::size_t stream_router::published_epochs() const {
  const std::lock_guard lock(producer_mutex_);
  return publisher_->published_epochs();
}

std::size_t stream_router::table_memory_bytes() const {
  const std::lock_guard lock(producer_mutex_);
  return publisher_->memory_bytes();
}

}  // namespace hdhash
