/// \file emulator.hpp
/// \brief The emulation framework tying generator → buffer → hash-table
/// module together (paper Section 5.1), with optional shadow-oracle
/// mismatch accounting and batch wall-time measurement.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "emu/event.hpp"
#include "emu/event_buffer.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// Aggregate statistics of one emulator run.
struct run_stats {
  std::size_t requests = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  /// Request sub-batches fed through lookup_batch (a drained buffer
  /// contributes one per membership-delimited request segment).
  std::size_t batches = 0;
  /// Requests whose answer differed from the pristine shadow table
  /// (only counted when the shadow oracle is enabled).
  std::size_t mismatches = 0;
  /// Requests answered with an identifier not in the pool at all (a
  /// corrupted id escaping the table) — a subset of mismatches.
  std::size_t invalid_assignments = 0;
  /// Wall time spent inside request lookups, measured per drained batch.
  double total_request_ns = 0.0;
  /// Requests per (possibly corrupted) returned server id.
  std::unordered_map<server_id, std::uint64_t> load;

  double avg_request_ns() const {
    return requests == 0 ? 0.0
                         : total_request_ns / static_cast<double>(requests);
  }
  double mismatch_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(mismatches) / static_cast<double>(requests);
  }

  /// Accumulates another run's statistics into this one (counters and
  /// request wall time add up; load histograms merge per server).
  run_stats& merge(const run_stats& other);
};

/// Merges per-shard (or per-run) statistics into one aggregate report —
/// the reduction the sharded emulator applies to its workers' results.
run_stats merge(std::span<const run_stats> parts);

/// How request time is accumulated into run_stats::total_request_ns.
enum class timing_mode : std::uint8_t {
  off,         ///< no measurement
  wall,        ///< steady_clock per sub-batch (single-threaded runs)
  /// Per-thread CPU time per sub-batch: on an oversubscribed machine a
  /// worker's wall clock includes preemption by its sibling shards, so
  /// shard service time is metered on the thread's own CPU clock
  /// (POSIX CLOCK_THREAD_CPUTIME_ID; on platforms without one this
  /// degrades to wall time, and per-shard service rates then include
  /// preemption again).
  thread_cpu,
};

/// Current reading of the configured request clock, as integer
/// nanoseconds (subtracting in the integer domain keeps sub-batch
/// deltas exact even when the clock's epoch offset is large).  Shared
/// by the plain and sharded emulators' per-sub-batch metering.
std::int64_t timing_now_ns(timing_mode timing);

/// Applies one drained event batch to `table` (and `shadow`, when
/// non-null) in arrival order: membership events segment the batch, and
/// each request sub-batch is answered through lookup_batch against the
/// exact table state it observed.  A request that arrived before a
/// join/leave is therefore never resolved against the post-churn table
/// (and vice versa), so mismatch/disruption accounting is faithful to
/// the stream order regardless of how events were buffered.  Request
/// time is measured per sub-batch under `timing`; stats.batches counts
/// the lookup_batch calls made.
void apply_event_batch(dynamic_table& table, dynamic_table* shadow,
                       std::span<const event> batch, run_stats& stats,
                       timing_mode timing);

/// Feeds an event stream through a bounded buffer into a dynamic table.
///
/// Mirrors the paper's emulator: events are staged into the buffer until
/// it fills (batch of `buffer_capacity`), then the hash-table module
/// drains it; request wall time is measured per drained batch so the
/// clock overhead amortizes the way the paper's GPU batching did.
class emulator {
 public:
  /// \param table            the table under test (borrowed).
  /// \param buffer_capacity  batch size; the paper used 256.
  explicit emulator(dynamic_table& table, std::size_t buffer_capacity = 256);

  /// Clones the table's *current* state as a pristine oracle.  After this,
  /// join/leave events are applied to both copies, and each request is
  /// answered by both — differences count as mismatches.  Call after
  /// populating and corrupting the table under test?  No: clone first,
  /// then corrupt the original (the clone must stay pristine).
  void enable_shadow();

  /// Enables/disables batch wall-time measurement (on by default).
  void set_timing(bool enabled) noexcept { timing_ = enabled; }

  /// Runs the event stream to completion and returns the statistics.
  run_stats run(std::span<const event> events);

  dynamic_table& table() noexcept { return table_; }
  const dynamic_table* shadow() const noexcept { return shadow_.get(); }

 private:
  void drain(run_stats& stats);

  dynamic_table& table_;
  std::unique_ptr<dynamic_table> shadow_;
  event_buffer buffer_;
  std::vector<event> drain_scratch_;  // reused across drains
  bool timing_ = true;
};

}  // namespace hdhash
