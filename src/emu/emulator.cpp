#include "emu/emulator.hpp"

#include <chrono>
#include <vector>

#include "util/require.hpp"

namespace hdhash {

emulator::emulator(dynamic_table& table, std::size_t buffer_capacity)
    : table_(table), buffer_(buffer_capacity) {}

void emulator::enable_shadow() { shadow_ = table_.clone(); }

void emulator::drain(run_stats& stats) {
  using clock = std::chrono::steady_clock;

  // Split the batch: membership events are applied unmeasured (the paper
  // measures request handling), requests are timed as one batch.
  std::vector<std::uint64_t> batch_requests;
  while (const auto e = buffer_.pop()) {
    switch (e->kind) {
      case event_kind::join:
        table_.join(e->id);
        if (shadow_) {
          shadow_->join(e->id);
        }
        ++stats.joins;
        break;
      case event_kind::leave:
        table_.leave(e->id);
        if (shadow_) {
          shadow_->leave(e->id);
        }
        ++stats.leaves;
        break;
      case event_kind::request:
        batch_requests.push_back(e->id);
        break;
    }
  }
  if (batch_requests.empty()) {
    return;
  }

  // The hash-table module answers the whole drained batch through the
  // v2 batch interface — the paper's GPU batching, and the shape under
  // which HD hashing amortizes probe encoding.
  std::vector<server_id> answers(batch_requests.size());
  if (timing_) {
    const auto start = clock::now();
    table_.lookup_batch(batch_requests, answers);
    const auto stop = clock::now();
    stats.total_request_ns +=
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count());
  } else {
    table_.lookup_batch(batch_requests, answers);
  }
  ++stats.batches;

  std::vector<server_id> truth;
  if (shadow_) {
    truth.resize(batch_requests.size());
    shadow_->lookup_batch(batch_requests, truth);
  }
  for (std::size_t i = 0; i < batch_requests.size(); ++i) {
    ++stats.requests;
    ++stats.load[answers[i]];
    if (shadow_) {
      if (answers[i] != truth[i]) {
        ++stats.mismatches;
        if (!shadow_->contains(answers[i])) {
          ++stats.invalid_assignments;
        }
      }
    }
  }
}

run_stats emulator::run(std::span<const event> events) {
  run_stats stats;
  for (const event& e : events) {
    if (!buffer_.push(e)) {
      drain(stats);
      const bool pushed = buffer_.push(e);
      HDHASH_ASSERT(pushed);
      (void)pushed;
    }
  }
  drain(stats);
  return stats;
}

}  // namespace hdhash
