#include "emu/emulator.hpp"

#include <chrono>
#include <cstdint>
#include <ctime>
#include <vector>

#include "util/require.hpp"

namespace hdhash {

run_stats& run_stats::merge(const run_stats& other) {
  requests += other.requests;
  joins += other.joins;
  leaves += other.leaves;
  batches += other.batches;
  mismatches += other.mismatches;
  invalid_assignments += other.invalid_assignments;
  total_request_ns += other.total_request_ns;
  for (const auto& [server, count] : other.load) {
    load[server] += count;
  }
  return *this;
}

run_stats merge(std::span<const run_stats> parts) {
  run_stats merged;
  for (const run_stats& part : parts) {
    merged.merge(part);
  }
  return merged;
}

std::int64_t timing_now_ns(timing_mode timing) {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  if (timing == timing_mode::thread_cpu) {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
           static_cast<std::int64_t>(ts.tv_nsec);
  }
#endif
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Answers one request sub-batch against the current table state and
/// accounts load/mismatches; `answers`/`truth` are reused across calls.
void answer_sub_batch(dynamic_table& table, dynamic_table* shadow,
                      std::span<const request_id> requests, run_stats& stats,
                      timing_mode timing, std::vector<server_id>& answers,
                      std::vector<server_id>& truth) {
  if (requests.empty()) {
    return;
  }
  answers.resize(requests.size());
  if (timing != timing_mode::off) {
    const std::int64_t start = timing_now_ns(timing);
    table.lookup_batch(requests, answers);
    stats.total_request_ns +=
        static_cast<double>(timing_now_ns(timing) - start);
  } else {
    table.lookup_batch(requests, answers);
  }
  ++stats.batches;

  if (shadow != nullptr) {
    truth.resize(requests.size());
    shadow->lookup_batch(requests, truth);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ++stats.requests;
    ++stats.load[answers[i]];
    if (shadow != nullptr && answers[i] != truth[i]) {
      ++stats.mismatches;
      if (!shadow->contains(answers[i])) {
        ++stats.invalid_assignments;
      }
    }
  }
}

}  // namespace

void apply_event_batch(dynamic_table& table, dynamic_table* shadow,
                       std::span<const event> batch, run_stats& stats,
                       timing_mode timing) {
  // Membership events segment the batch: buffered requests are answered
  // against the table state they actually observed, never a later one.
  std::vector<request_id> pending;
  std::vector<server_id> answers;
  std::vector<server_id> truth;
  pending.reserve(batch.size());
  for (const event& e : batch) {
    if (e.kind == event_kind::request) {
      pending.push_back(e.id);
      continue;
    }
    answer_sub_batch(table, shadow, pending, stats, timing, answers, truth);
    pending.clear();
    switch (e.kind) {
      case event_kind::join:
        table.join(e.id, e.weight);
        if (shadow != nullptr) {
          shadow->join(e.id, e.weight);
        }
        ++stats.joins;
        break;
      case event_kind::leave:
        table.leave(e.id);
        if (shadow != nullptr) {
          shadow->leave(e.id);
        }
        ++stats.leaves;
        break;
      case event_kind::request:
        break;  // handled above
    }
  }
  answer_sub_batch(table, shadow, pending, stats, timing, answers, truth);
}

emulator::emulator(dynamic_table& table, std::size_t buffer_capacity)
    : table_(table), buffer_(buffer_capacity) {}

void emulator::enable_shadow() { shadow_ = table_.clone(); }

void emulator::drain(run_stats& stats) {
  drain_scratch_.clear();
  drain_scratch_.reserve(buffer_.size());
  while (const auto e = buffer_.pop()) {
    drain_scratch_.push_back(*e);
  }
  apply_event_batch(table_, shadow_.get(), drain_scratch_, stats,
                    timing_ ? timing_mode::wall : timing_mode::off);
}

run_stats emulator::run(std::span<const event> events) {
  run_stats stats;
  for (const event& e : events) {
    if (!buffer_.push(e)) {
      drain(stats);
      const bool pushed = buffer_.push(e);
      HDHASH_ASSERT(pushed);
      (void)pushed;
    }
  }
  drain(stats);
  return stats;
}

}  // namespace hdhash
