/// \file generator.hpp
/// \brief The emulator's generator module: "emulates the requests from
/// the outside world being sent to the hash table" (paper Section 5.1).
///
/// Produces a deterministic event stream: an initial burst of `join`
/// events, then `request_count` requests drawn from a key universe
/// (uniform, as in the paper's experiments, or Zipf for skewed traffic),
/// optionally interleaved with join/leave churn.
#pragma once

#include <cstdint>
#include <vector>

#include "emu/event.hpp"
#include "stats/zipf.hpp"
#include "util/rng.hpp"

namespace hdhash {

/// Request-id popularity distribution.
enum class request_distribution {
  uniform,  ///< every key in the universe equally likely (paper setup)
  zipf,     ///< heavy-tailed popularity with configurable skew
};

/// Declarative workload description.
struct workload_config {
  std::size_t initial_servers = 16;   ///< join burst before any request
  std::size_t request_count = 10'000; ///< paper: 10,000 requests per run
  std::size_t key_universe = 1'000'000;  ///< distinct request identifiers
  request_distribution distribution = request_distribution::uniform;
  double zipf_skew = 0.99;            ///< used when distribution == zipf
  /// Probability that any given request slot is preceded by a churn event
  /// (alternating join of a fresh server / leave of a random member).
  double churn_rate = 0.0;
  std::uint64_t seed = 42;            ///< determinism root
};

/// Generates the event stream for a workload.
class generator {
 public:
  explicit generator(workload_config config);

  /// Produces the full event stream.  Repeated calls return identical
  /// streams (the generator re-seeds internally per call).
  std::vector<event> generate() const;

  /// The server ids of the initial join burst, in join order; experiment
  /// drivers use these to build the per-server load histogram.
  std::vector<std::uint64_t> initial_server_ids() const;

  const workload_config& config() const noexcept { return config_; }

  /// Deterministic server id for join-burst position `index` under the
  /// given seed (the same derivation generate() uses).
  static std::uint64_t server_id_at(std::uint64_t seed, std::size_t index);

 private:
  workload_config config_;
};

}  // namespace hdhash
