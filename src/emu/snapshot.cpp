#include "emu/snapshot.hpp"

#include "mem/arena_allocator.hpp"
#include "util/require.hpp"

namespace hdhash {

table_snapshot::table_snapshot(std::uint64_t epoch,
                               std::shared_ptr<const dynamic_table> table)
    : epoch_(epoch), table_(std::move(table)) {
  HDHASH_REQUIRE(table_ != nullptr, "snapshot needs a table");
}

std::size_t table_snapshot::marginal_bytes() const {
  const table_stats stats = table_->stats();
  return stats.memory_bytes - stats.shared_bytes;
}

snapshot_publisher::snapshot_publisher(
    std::unique_ptr<dynamic_table> table,
    std::shared_ptr<mem::hugepage_arena> arena)
    : table_(std::move(table)), arena_(std::move(arena)) {
  HDHASH_REQUIRE(table_ != nullptr, "publisher needs a table");
}

void snapshot_publisher::join(server_id server, double weight) {
  table_->join(server, weight);
  ++epoch_;
  // Lazy publication: drop the stale snapshot now, build the new one
  // only when a request actually observes this epoch — consecutive
  // membership events then collapse into one publication.
  current_.reset();
}

void snapshot_publisher::leave(server_id server) {
  table_->leave(server);
  ++epoch_;
  current_.reset();
}

std::shared_ptr<const table_snapshot> snapshot_publisher::current() {
  if (current_ == nullptr) {
    // allocate_shared puts the epoch object and its control block in
    // one arena stride; a drained epoch's block parks on the arena free
    // list and the next publication here reuses it.
    current_ = std::allocate_shared<table_snapshot>(
        mem::arena_allocator<table_snapshot>(arena_), epoch_,
        table_->snapshot());
    ++published_;
  }
  return current_;
}

std::size_t snapshot_publisher::memory_bytes() const {
  std::size_t bytes = table_->stats().memory_bytes;
  if (current_ != nullptr) {
    bytes += current_->marginal_bytes();
  }
  return bytes;
}

std::size_t snapshot_publisher::marginal_bytes() const {
  const table_stats stats = table_->stats();
  std::size_t bytes = stats.memory_bytes - stats.shared_bytes;
  if (current_ != nullptr) {
    bytes += current_->marginal_bytes();
  }
  return bytes;
}

}  // namespace hdhash
