#include "emu/snapshot.hpp"

#include "util/require.hpp"

namespace hdhash {

table_snapshot::table_snapshot(std::uint64_t epoch,
                               std::shared_ptr<const dynamic_table> table)
    : epoch_(epoch), table_(std::move(table)) {
  HDHASH_REQUIRE(table_ != nullptr, "snapshot needs a table");
}

std::size_t table_snapshot::marginal_bytes() const {
  const table_stats stats = table_->stats();
  return stats.memory_bytes - stats.shared_bytes;
}

snapshot_publisher::snapshot_publisher(std::unique_ptr<dynamic_table> table)
    : table_(std::move(table)) {
  HDHASH_REQUIRE(table_ != nullptr, "publisher needs a table");
}

void snapshot_publisher::join(server_id server, double weight) {
  table_->join(server, weight);
  ++epoch_;
  // Lazy publication: drop the stale snapshot now, build the new one
  // only when a request actually observes this epoch — consecutive
  // membership events then collapse into one publication.
  current_.reset();
}

void snapshot_publisher::leave(server_id server) {
  table_->leave(server);
  ++epoch_;
  current_.reset();
}

std::shared_ptr<const table_snapshot> snapshot_publisher::current() {
  if (current_ == nullptr) {
    current_ = std::make_shared<const table_snapshot>(epoch_,
                                                      table_->snapshot());
    ++published_;
  }
  return current_;
}

std::size_t snapshot_publisher::memory_bytes() const {
  std::size_t bytes = table_->stats().memory_bytes;
  if (current_ != nullptr) {
    bytes += current_->marginal_bytes();
  }
  return bytes;
}

}  // namespace hdhash
