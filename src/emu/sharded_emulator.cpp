#include "emu/sharded_emulator.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "emu/buffer_pool.hpp"
#include "emu/ingest.hpp"
#include "hashing/splitmix_hash.hpp"
#include "mem/hugepage_arena.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace {

// The producer/worker hand-off runs on the M×N ingest mesh
// (emu/ingest.hpp): one bounded shard channel per (producer, shard)
// pair — lock-free SPSC rings by default — plus one buffer_pool per
// shard for the first-touch recycle round-trip.  The payload is the
// mode's batch type: a plain event vector (replicated) or an
// epoch-segmented request batch (snapshot).

/// One epoch's slice of a snapshot-mode batch: requests that arrived
/// under `snap` and must be resolved against exactly that table state.
/// With shadow oracles enabled, `shadow_snap` is the same epoch of the
/// pristine shadow publisher (null otherwise).
struct epoch_segment {
  std::shared_ptr<const table_snapshot> snap;
  std::shared_ptr<const table_snapshot> shadow_snap;
  std::vector<request_id> requests;
};

/// Snapshot-mode batch: up to buffer_capacity requests, segmented at
/// the membership epochs they arrived under.  Without churn this is a
/// single full-width segment — the undivided slot-dedup window the
/// replicated pipeline loses to broadcast membership events.
///
/// Segments are reused in place across recycles (only segments[0..used)
/// are live): reset() drops the snapshot references but keeps every
/// request vector's capacity, so a recycled batch refills without
/// reallocating — and without losing the first-touch placement of its
/// pages.
struct epoch_batch {
  std::vector<epoch_segment> segments;
  std::size_t used = 0;

  epoch_segment& append() {
    if (used == segments.size()) {
      segments.emplace_back();
    }
    return segments[used++];
  }
  epoch_segment* current() {
    return used == 0 ? nullptr : &segments[used - 1];
  }
  bool empty() const { return used == 0; }

  /// Releases epoch snapshots (so retired epochs free promptly) and
  /// clears requests, keeping all capacity for the next fill.
  void reset() {
    for (std::size_t i = 0; i < used; ++i) {
      segments[i].snap.reset();
      segments[i].shadow_snap.reset();
      segments[i].requests.clear();
    }
    used = 0;
  }
};

/// Resolves one epoch segment against its snapshot and accounts the
/// per-shard statistics; with a shadow snapshot present, each answer is
/// checked against the pristine oracle's for mismatch accounting.
/// `answers`/`truth` are reused across calls.
void answer_segment(const epoch_segment& segment, run_stats& stats,
                    timing_mode timing, std::vector<server_id>& answers,
                    std::vector<server_id>& truth) {
  if (segment.requests.empty()) {
    return;
  }
  const dynamic_table& table = segment.snap->table();
  answers.resize(segment.requests.size());
  if (timing != timing_mode::off) {
    const std::int64_t start = timing_now_ns(timing);
    table.lookup_batch(segment.requests, answers);
    stats.total_request_ns +=
        static_cast<double>(timing_now_ns(timing) - start);
  } else {
    table.lookup_batch(segment.requests, answers);
  }
  ++stats.batches;
  const dynamic_table* shadow =
      segment.shadow_snap ? &segment.shadow_snap->table() : nullptr;
  if (shadow != nullptr) {
    truth.resize(segment.requests.size());
    shadow->lookup_batch(segment.requests, truth);
  }
  for (std::size_t i = 0; i < segment.requests.size(); ++i) {
    ++stats.requests;
    ++stats.load[answers[i]];
    if (shadow != nullptr && answers[i] != truth[i]) {
      ++stats.mismatches;
      if (!shadow->contains(answers[i])) {
        ++stats.invalid_assignments;
      }
    }
  }
}

/// Runs one mesh pipeline generation on the pinned worker pool: a
/// first-touch pass (each shard worker allocates its buffer_pool's
/// recycled batches on its own thread, hence its own NUMA node), then
/// the decode loops on workers [0, shards), then the producers — on
/// the calling thread when `producers` == 1 (the historical shape), or
/// as pool jobs on workers [shards, shards + producers) otherwise —
/// then shutdown.  `make_recycled(shard)` builds one pre-touched empty
/// batch (and may touch other per-shard scratch); `decode(shard,
/// batch)` is the per-batch worker body; drained batches are reset via
/// `reset(batch)` and recycled; `produce(p, session, pools)` feeds
/// producer p's mesh row.  Each producer's session is closed on every
/// exit path (a producer that dies without closing would leave its
/// consumers waiting forever); worker exceptions are captured and
/// rethrown on the calling thread after shutdown (a faulted worker
/// keeps draining so producers never deadlock on a full channel).
template <typename Batch, typename MakeRecycled, typename Reset,
          typename Decode, typename Produce>
void run_mesh(runtime::worker_pool& pool, std::size_t shards,
              std::size_t producers, channel_kind kind, std::size_t depth,
              MakeRecycled&& make_recycled, Reset&& reset, Decode&& decode,
              Produce&& produce) {
  ingest_mesh<Batch> mesh(producers, shards, depth, kind);
  std::vector<buffer_pool<Batch>> pools(shards);
  std::vector<std::exception_ptr> errors(shards);

  // First-touch generation: enough buffers per shard that every
  // producer can hold one pending batch plus the channel-depth slack
  // before anyone falls back to a fresh (producer-touched) allocation.
  const std::size_t warm = producers + 2;
  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit(s, [s, warm, &pools, &make_recycled] {
      for (std::size_t i = 0; i < warm; ++i) {
        pools[s].recycle(make_recycled(s));
      }
    });
  }
  pool.wait_idle();

  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit(s, [s, &mesh, &pools, &errors, &decode, &reset] {
      shard_consumer<Batch> consumer = mesh.consumer(s);
      try {
        Batch batch;
        while (consumer.pop(batch)) {
          try {
            decode(s, batch);
          } catch (...) {
            if (!errors[s]) {
              errors[s] = std::current_exception();
            }
            // Keep looping so no producer ever blocks on a full
            // channel after a decode fault.
          }
          reset(batch);
          pools[s].recycle(std::move(batch));
          batch = Batch{};
        }
      } catch (...) {
        // reset/recycle themselves faulted (allocation failure): the
        // drain guarantee still has to hold, so swallow and keep
        // popping until every lane closes.
        if (!errors[s]) {
          errors[s] = std::current_exception();
        }
        Batch discard;
        while (consumer.pop(discard)) {
        }
      }
    });
  }

  auto run_producer = [&](std::size_t p) {
    ingest_session<Batch> session = mesh.session(p);
    try {
      produce(p, session, pools);
    } catch (...) {
      session.close();
      throw;
    }
    session.close();
  };

  if (producers == 1) {
    try {
      run_producer(0);
    } catch (...) {
      mesh.close();
      pool.wait_idle();
      throw;
    }
  } else {
    for (std::size_t p = 0; p < producers; ++p) {
      pool.submit(shards + p, [p, &run_producer] { run_producer(p); });
    }
  }
  // Producers all close their rows (even when faulting), so the decode
  // loops drain and exit; wait_idle rethrows the first producer-job
  // exception.
  pool.wait_idle();
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

/// Producer-side refill: reuse a worker-touched recycled buffer when
/// one is back, else allocate fresh (start-up, or the workers are
/// still holding the whole warm set).
template <typename Batch, typename MakeFresh>
Batch next_buffer(buffer_pool<Batch>& pool, MakeFresh&& make_fresh) {
  Batch batch;
  if (!pool.take(batch)) {
    batch = make_fresh();
  }
  return batch;
}

}  // namespace

double sharded_report::aggregate_requests_per_second() const {
  double rate = 0.0;
  for (const run_stats& shard : per_shard) {
    if (shard.total_request_ns > 0.0) {
      rate += static_cast<double>(shard.requests) * 1e9 /
              shard.total_request_ns;
    }
  }
  return rate;
}

double sharded_report::wall_requests_per_second() const {
  return wall_seconds > 0.0
             ? static_cast<double>(merged.requests) / wall_seconds
             : 0.0;
}

sharded_emulator::sharded_emulator(table_factory factory,
                                   sharded_config config)
    : config_(config) {
  HDHASH_REQUIRE(config_.shards >= 1, "need at least one shard");
  HDHASH_REQUIRE(config_.producers >= 1, "need at least one producer");
  HDHASH_REQUIRE(config_.buffer_capacity >= 1,
                 "shard buffer capacity must be positive");
  HDHASH_REQUIRE(config_.channel_depth >= 1,
                 "channel depth must be positive");
  HDHASH_REQUIRE(factory != nullptr, "table factory must be callable");
  HDHASH_REQUIRE(
      config_.producers == 1 ||
          config_.membership == membership_mode::snapshot,
      "multi-producer ingest needs epoch-sequenced membership — "
      "replicated mode broadcasts in stream order and keeps one producer");
  // Shard decoders occupy pool workers [0, shards); with a fanned-out
  // producer side, the mesh producers take [shards, shards+producers),
  // placed by the same policy (so producers land on real CPUs after
  // the decode workers, not on top of them).
  const std::size_t pool_size =
      config_.shards + (config_.producers > 1 ? config_.producers : 0);
  pool_ = std::make_unique<runtime::worker_pool>(pool_size,
                                                 config_.placement);
  if (config_.membership == membership_mode::snapshot) {
    auto table = factory(0);
    HDHASH_REQUIRE(table != nullptr, "table factory returned null");
    publisher_ = std::make_unique<snapshot_publisher>(std::move(table),
                                                      mem::local_arena());
    return;
  }
  tables_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard) {
    auto table = factory(shard);
    HDHASH_REQUIRE(table != nullptr, "table factory returned null");
    tables_.push_back(std::move(table));
  }
}

std::size_t sharded_emulator::shard_of(request_id request) const {
  return static_cast<std::size_t>(
      splitmix_hash::mix(request ^ config_.partition_seed) % config_.shards);
}

dynamic_table& sharded_emulator::table(std::size_t shard) {
  HDHASH_REQUIRE(shard < config_.shards, "shard index out of range");
  if (config_.membership == membership_mode::snapshot) {
    return publisher_->table();
  }
  return *tables_[shard];
}

sharded_report sharded_emulator::run(std::span<const event> events) {
  sharded_report report = config_.membership == membership_mode::snapshot
                              ? run_snapshot(events)
                              : run_replicated(events);
  report.placement = pool_->policy();
  report.channel = config_.channel;
  report.workers.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    report.workers.push_back(pool_->info(s));
  }
  if (config_.producers > 1) {
    report.producer_workers.reserve(config_.producers);
    for (std::size_t p = 0; p < config_.producers; ++p) {
      report.producer_workers.push_back(pool_->info(config_.shards + p));
    }
  }
  return report;
}

sharded_report sharded_emulator::run_replicated(std::span<const event> events) {
  using clock = std::chrono::steady_clock;
  const std::size_t shards = tables_.size();

  sharded_report report;
  report.per_shard.resize(shards);

  std::vector<std::unique_ptr<dynamic_table>> shadows(shards);
  if (config_.shadow) {
    for (std::size_t s = 0; s < shards; ++s) {
      shadows[s] = tables_[s]->clone();
    }
  }
  // Fault injection happens after the pristine clones, before any event.
  if (config_.corrupt) {
    for (std::size_t s = 0; s < shards; ++s) {
      config_.corrupt(*tables_[s], s);
    }
  }

  const auto start = clock::now();
  std::size_t logical_joins = 0;
  std::size_t logical_leaves = 0;
  const timing_mode timing =
      config_.timing ? timing_mode::thread_cpu : timing_mode::off;
  const std::size_t capacity = config_.buffer_capacity;
  run_mesh<std::vector<event>>(
      *pool_, shards, /*producers=*/1, config_.channel, config_.channel_depth,
      [capacity](std::size_t) {
        // resize-then-clear: writes every slot (first-touch on the
        // worker's node) and keeps the capacity for refills.
        std::vector<event> batch(capacity);
        batch.clear();
        return batch;
      },
      [](std::vector<event>& batch) { batch.clear(); },
      [&](std::size_t s, const std::vector<event>& batch) {
        // Shard service time is metered on the worker's own CPU clock
        // so preemption by sibling shards (oversubscribed machines)
        // does not count against this shard's decode rate.
        apply_event_batch(*tables_[s], shadows[s].get(), batch,
                          report.per_shard[s], timing);
      },
      [&](std::size_t, auto& session, auto& pools) {
        // Producer: partition requests, broadcast membership, hand over
        // each shard's batch as soon as it fills (the double-buffered
        // overlap).
        const auto fresh = [capacity] {
          std::vector<event> batch;
          batch.reserve(capacity);
          return batch;
        };
        std::vector<std::vector<event>> pending(shards);
        for (std::size_t s = 0; s < shards; ++s) {
          pending[s] = next_buffer(pools[s], fresh);
        }
        auto submit = [&](std::size_t s) {
          session.push(s, std::move(pending[s]));
          pending[s] = next_buffer(pools[s], fresh);
        };
        for (const event& e : events) {
          if (e.kind == event_kind::request) {
            const std::size_t s = shard_of(e.id);
            pending[s].push_back(e);
            if (pending[s].size() >= capacity) {
              submit(s);
            }
            continue;
          }
          (e.kind == event_kind::join ? logical_joins : logical_leaves) += 1;
          for (std::size_t s = 0; s < shards; ++s) {
            pending[s].push_back(e);
            if (pending[s].size() >= capacity) {
              submit(s);
            }
          }
        }
        for (std::size_t s = 0; s < shards; ++s) {
          if (!pending[s].empty()) {
            submit(s);
          }
        }
      });
  const auto stop = clock::now();

  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  report.merged = merge(report.per_shard);
  // Broadcast membership events are applied once per shard; report them
  // once each so the merged stats compare field-for-field with a
  // single-table reference run.
  report.merged.joins = logical_joins;
  report.merged.leaves = logical_leaves;
  for (const auto& table : tables_) {
    report.table_memory_bytes += table->stats().memory_bytes;
  }
  return report;
}

sharded_report sharded_emulator::run_snapshot(std::span<const event> events) {
  using clock = std::chrono::steady_clock;
  const std::size_t shards = config_.shards;
  const std::size_t producers = config_.producers;

  sharded_report report;
  report.per_shard.resize(shards);

  // Per-worker answer scratch, first-touched by its owner inside the
  // pipeline's init generation (the lookup_batch output is the hottest
  // repeatedly written buffer each worker owns).
  std::vector<std::vector<server_id>> answers(shards);
  std::vector<std::vector<server_id>> truth(shards);

  // Shadow oracle: a second publisher wrapping a pristine clone, taken
  // before the corrupt hook runs.  The clone copies on write, so later
  // corruption of the producer table (and the snapshots published from
  // it) never reaches the shadow's epochs.
  std::unique_ptr<snapshot_publisher> shadow_publisher;
  if (config_.shadow) {
    shadow_publisher = std::make_unique<snapshot_publisher>(
        publisher_->table().clone(), mem::local_arena());
  }
  if (config_.corrupt) {
    config_.corrupt(publisher_->table(), 0);
  }

  const auto start = clock::now();

  // Sequential epoch pre-scan — the multi-producer sequencing step.
  // Membership applies to the publisher in stream order on this
  // thread; requests flatten into one stream-ordered vector, grouped
  // into contiguous *runs* that share an epoch snapshot.  current() is
  // acquired once per run, so the published-epoch set is exactly the
  // historical per-request acquisition's (within one epoch current()
  // returns the same snapshot).  After the scan, any request order is
  // safe: every request is permanently bound to the epoch it arrived
  // under, and the load histogram is order-insensitive — which is what
  // lets M producers split the stream by index range without touching
  // the determinism guarantee.
  struct epoch_run {
    std::shared_ptr<const table_snapshot> snap;
    std::shared_ptr<const table_snapshot> shadow_snap;  // shadow mode only
    std::size_t begin = 0;  ///< request-index range [begin, end)
    std::size_t end = 0;
  };
  std::vector<request_id> requests;
  requests.reserve(events.size());
  std::vector<epoch_run> runs;
  std::size_t logical_joins = 0;
  std::size_t logical_leaves = 0;
  bool epoch_dirty = true;
  for (const event& e : events) {
    if (e.kind != event_kind::request) {
      if (e.kind == event_kind::join) {
        publisher_->join(e.id, e.weight);
        if (shadow_publisher) {
          shadow_publisher->join(e.id, e.weight);
        }
        ++logical_joins;
      } else {
        publisher_->leave(e.id);
        if (shadow_publisher) {
          shadow_publisher->leave(e.id);
        }
        ++logical_leaves;
      }
      epoch_dirty = true;
      continue;
    }
    if (epoch_dirty) {
      auto snap = publisher_->current();
      if (runs.empty() || runs.back().snap != snap) {
        // The shadow publisher sees the same membership sequence, so
        // its epochs advance in lockstep with the primary's.
        runs.push_back({std::move(snap),
                        shadow_publisher ? shadow_publisher->current()
                                         : nullptr,
                        requests.size(), requests.size()});
      }
      epoch_dirty = false;
    }
    requests.push_back(e.id);
    runs.back().end = requests.size();
  }
  const std::size_t total = requests.size();

  const timing_mode timing =
      config_.timing ? timing_mode::thread_cpu : timing_mode::off;
  const std::size_t capacity = config_.buffer_capacity;
  run_mesh<epoch_batch>(
      *pool_, shards, producers, config_.channel, config_.channel_depth,
      [capacity, &answers, &truth](std::size_t s) {
        // One pre-touched segment per recycled batch; under churn a
        // batch grows more segments on demand (reused in place after
        // the first recycle round-trip).  The worker's answer scratch
        // rides the same init generation (idempotent across the warm
        // calls) so the hottest repeatedly written buffer is local too.
        epoch_batch batch;
        batch.segments.emplace_back();
        batch.segments.back().requests.resize(capacity);
        batch.segments.back().requests.clear();
        answers[s].resize(capacity);
        answers[s].clear();
        truth[s].resize(capacity);
        truth[s].clear();
        return batch;
      },
      [](epoch_batch& batch) { batch.reset(); },
      [&](std::size_t s, const epoch_batch& batch) {
        for (std::size_t i = 0; i < batch.used; ++i) {
          answer_segment(batch.segments[i], report.per_shard[s], timing,
                         answers[s], truth[s]);
        }
      },
      [&](std::size_t p, auto& session, auto& pools) {
        // Producer p encodes the contiguous request range
        // [p*total/M, (p+1)*total/M), walking the epoch runs that
        // overlap it; each request joins its shard's pending batch in
        // the segment of its pre-bound epoch.  Churn never truncates a
        // batch — only subdivides it.
        const std::size_t begin = total * p / producers;
        const std::size_t end = total * (p + 1) / producers;
        if (begin == end) {
          return;
        }
        std::size_t r = 0;
        while (runs[r].end <= begin) {
          ++r;
        }
        const auto fresh = [] { return epoch_batch{}; };
        std::vector<epoch_batch> pending(shards);
        std::vector<std::size_t> pending_requests(shards, 0);
        for (std::size_t s = 0; s < shards; ++s) {
          pending[s] = next_buffer(pools[s], fresh);
        }
        auto submit = [&](std::size_t s) {
          session.push(s, std::move(pending[s]));
          pending[s] = next_buffer(pools[s], fresh);
          pending_requests[s] = 0;
        };
        for (std::size_t i = begin; i < end; ++i) {
          while (runs[r].end <= i) {
            ++r;
          }
          const std::size_t s = shard_of(requests[i]);
          epoch_batch& batch = pending[s];
          epoch_segment* segment = batch.current();
          if (segment == nullptr || segment->snap != runs[r].snap) {
            segment = &batch.append();
            segment->snap = runs[r].snap;
            segment->shadow_snap = runs[r].shadow_snap;
          }
          segment->requests.push_back(requests[i]);
          if (++pending_requests[s] >= capacity) {
            submit(s);
          }
        }
        for (std::size_t s = 0; s < shards; ++s) {
          if (!pending[s].empty()) {
            submit(s);
          }
        }
      });
  // The producers' run references die with run_mesh's scopes; drop the
  // pre-scan's own snapshot references before measuring memory so
  // retired epochs free exactly as they did with per-request
  // acquisition.
  runs.clear();
  const auto stop = clock::now();

  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  report.merged = merge(report.per_shard);
  // Membership is applied once, by the pre-scan; report it in the
  // merged stats so they compare field-for-field with a single-table
  // reference run.
  report.merged.joins = logical_joins;
  report.merged.leaves = logical_leaves;
  report.table_memory_bytes = publisher_->memory_bytes();
  if (shadow_publisher) {
    // The shadow's rows are COW-shared with the primary until the
    // corrupt hook un-shares them; memory_bytes() would count every
    // still-shared row once per publisher.  The shadow contributes only
    // its marginal (un-shared) residency — shared rows are reported
    // once, by the primary.
    report.table_memory_bytes += shadow_publisher->marginal_bytes();
  }
  report.snapshots_published = publisher_->published_epochs();
  return report;
}

}  // namespace hdhash
