#include "emu/sharded_emulator.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"

namespace hdhash {

namespace {

/// Bounded hand-off queue between the producer and one shard worker.
/// Depth 2 is the double buffer: the worker decodes batch i while the
/// producer fills batch i+1; the producer only blocks when the worker
/// is more than one full batch behind.
class batch_channel {
 public:
  void push(std::vector<event>&& batch) {
    std::unique_lock lock(mutex_);
    can_push_.wait(lock, [this] { return queue_.size() < kDepth; });
    queue_.push_back(std::move(batch));
    can_pop_.notify_one();
  }

  /// Blocks for the next batch; returns false once the channel is
  /// closed and drained.
  bool pop(std::vector<event>& out) {
    std::unique_lock lock(mutex_);
    can_pop_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return false;
    }
    out = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }

  void close() {
    const std::lock_guard lock(mutex_);
    closed_ = true;
    can_pop_.notify_all();
  }

 private:
  static constexpr std::size_t kDepth = 2;
  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::vector<event>> queue_;
  bool closed_ = false;
};

}  // namespace

double sharded_report::aggregate_requests_per_second() const {
  double rate = 0.0;
  for (const run_stats& shard : per_shard) {
    if (shard.total_request_ns > 0.0) {
      rate += static_cast<double>(shard.requests) * 1e9 /
              shard.total_request_ns;
    }
  }
  return rate;
}

double sharded_report::wall_requests_per_second() const {
  return wall_seconds > 0.0
             ? static_cast<double>(merged.requests) / wall_seconds
             : 0.0;
}

sharded_emulator::sharded_emulator(table_factory factory,
                                   sharded_config config)
    : config_(config) {
  HDHASH_REQUIRE(config_.shards >= 1, "need at least one shard");
  HDHASH_REQUIRE(config_.buffer_capacity >= 1,
                 "shard buffer capacity must be positive");
  HDHASH_REQUIRE(factory != nullptr, "table factory must be callable");
  tables_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard) {
    auto table = factory(shard);
    HDHASH_REQUIRE(table != nullptr, "table factory returned null");
    tables_.push_back(std::move(table));
  }
}

std::size_t sharded_emulator::shard_of(request_id request) const {
  return static_cast<std::size_t>(
      splitmix_hash::mix(request ^ config_.partition_seed) % tables_.size());
}

sharded_report sharded_emulator::run(std::span<const event> events) {
  using clock = std::chrono::steady_clock;
  const std::size_t shards = tables_.size();

  sharded_report report;
  report.per_shard.resize(shards);

  std::vector<batch_channel> channels(shards);
  std::vector<std::unique_ptr<dynamic_table>> shadows(shards);
  if (config_.shadow) {
    for (std::size_t s = 0; s < shards; ++s) {
      shadows[s] = tables_[s]->clone();
    }
  }

  const auto start = clock::now();
  std::vector<std::exception_ptr> errors(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  // Joins every spawned worker after closing its feed; both the spawn
  // loop and the producer run under this guard because destroying a
  // joinable std::thread terminates the process.
  auto shut_down = [&] {
    for (batch_channel& channel : channels) {
      channel.close();
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  };
  std::size_t logical_joins = 0;
  std::size_t logical_leaves = 0;
  try {
    for (std::size_t s = 0; s < shards; ++s) {
      workers.emplace_back([this, s, &channels, &shadows, &report, &errors] {
        try {
          std::vector<event> batch;
          while (channels[s].pop(batch)) {
            // Shard service time is metered on the worker's own CPU
            // clock so preemption by sibling shards (oversubscribed
            // machines) does not count against this shard's decode rate.
            apply_event_batch(*tables_[s], shadows[s].get(), batch,
                              report.per_shard[s],
                              config_.timing ? timing_mode::thread_cpu
                                             : timing_mode::off);
          }
        } catch (...) {
          errors[s] = std::current_exception();
          // Keep draining so the producer never deadlocks on a full
          // channel after a worker fault.
          std::vector<event> discard;
          while (channels[s].pop(discard)) {
          }
        }
      });
    }

    // Producer: partition requests, broadcast membership, hand over
    // each shard's batch as soon as it fills (the double-buffered
    // overlap).
    std::vector<std::vector<event>> pending(shards);
    for (auto& p : pending) {
      p.reserve(config_.buffer_capacity);
    }
    auto submit = [&](std::size_t s) {
      channels[s].push(std::move(pending[s]));
      pending[s] = {};
      pending[s].reserve(config_.buffer_capacity);
    };
    for (const event& e : events) {
      if (e.kind == event_kind::request) {
        const std::size_t s = shard_of(e.id);
        pending[s].push_back(e);
        if (pending[s].size() >= config_.buffer_capacity) {
          submit(s);
        }
        continue;
      }
      (e.kind == event_kind::join ? logical_joins : logical_leaves) += 1;
      for (std::size_t s = 0; s < shards; ++s) {
        pending[s].push_back(e);
        if (pending[s].size() >= config_.buffer_capacity) {
          submit(s);
        }
      }
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (!pending[s].empty()) {
        submit(s);
      }
    }
  } catch (...) {
    shut_down();
    throw;
  }
  shut_down();
  const auto stop = clock::now();
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }

  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  report.merged = merge(report.per_shard);
  // Broadcast membership events are applied once per shard; report them
  // once each so the merged stats compare field-for-field with a
  // single-table reference run.
  report.merged.joins = logical_joins;
  report.merged.leaves = logical_leaves;
  return report;
}

}  // namespace hdhash
