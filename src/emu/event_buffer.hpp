/// \file event_buffer.hpp
/// \brief Bounded FIFO between the generator and the hash-table module.
///
/// The paper's hash-table module "reads incoming requests from a buffer";
/// the default capacity of 256 is the batch size the paper used to
/// amortize GPU transfer overhead, and here it delimits the batches whose
/// wall time the efficiency experiment measures.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "emu/event.hpp"

namespace hdhash {

/// Fixed-capacity single-threaded ring buffer of events.
class event_buffer {
 public:
  /// \pre capacity > 0.
  explicit event_buffer(std::size_t capacity);

  /// Enqueues an event; returns false when the buffer is full.
  bool push(const event& e);

  /// Dequeues the oldest event, or nullopt when empty.
  std::optional<event> pop();

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return storage_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == storage_.size(); }

 private:
  std::vector<event> storage_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace hdhash
