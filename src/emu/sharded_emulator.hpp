/// \file sharded_emulator.hpp
/// \brief Sharded, double-buffered emulation pipeline — the multi-core
/// analogue of the paper's GPU batching (Section 5.1), scaled toward the
/// ROADMAP's "millions of users" target.
///
/// The generated event stream is partitioned across N shards by
/// hash(request_id) % N; each shard worker decodes its requests on a
/// dedicated thread of a pinned runtime::worker_pool (placement policy
/// per sharded_config::placement — compact by default, so workers sit
/// on distinct CPUs in NUMA-node order and first-touch their channel
/// buffers and scratch on their own node), fed through an M-producer ×
/// N-shard ingest mesh (emu/ingest.hpp) of bounded shard channels —
/// lock-free SPSC rings by default (emu/spsc_ring.hpp), the mutex
/// reference under sharded_config::channel.  While a worker decodes
/// batch i, its producers are already filling batch i+1 — the software
/// analogue of overlapping GPU transfer with compute (double
/// buffering); with `producers` > 1 the encode/partition side itself
/// fans out across M pinned producer threads (snapshot mode only), so
/// ingest scales with cores instead of flat-lining at one producer's
/// rate.  Membership state reaches the workers in one of two modes
/// (membership_mode):
///
///  * snapshot (default) — the producer owns the single mutable table
///    behind a snapshot_publisher (emu/snapshot.hpp); join/leave apply
///    once, each membership epoch publishes one immutable copy-on-write
///    snapshot, and workers resolve every request against the snapshot
///    of the epoch it arrived under.  Churn is O(1) per event and table
///    memory is ~one replica regardless of shard count.
///  * replicated — the PR-2 pipeline: join/leave broadcast to every
///    shard, each worker owning a full table replica.  Kept as the
///    comparison baseline and the shadow-oracle conformance reference.
///
/// Shadow oracles (sharded_config::shadow) work in both modes: each
/// request is answered twice, once by the (possibly fault-injected)
/// table under test and once by a pristine clone taken before the
/// sharded_config::corrupt hook ran, and disagreements count as
/// mismatches.  In snapshot mode the oracle is a *second*
/// snapshot_publisher wrapping the clone: the pre-scan applies every
/// membership event to both publishers in lockstep, so each epoch run
/// carries a (corrupted snapshot, pristine shadow snapshot) pair and
/// workers account mismatches against exactly the epoch a request
/// arrived under — same counters, none of replicated mode's O(shards)
/// membership cost.
///
/// Determinism: requests are routed to exactly one shard and observe
/// exactly the membership state that preceded them in the stream (per
/// replica in replicated mode, per epoch snapshot in snapshot mode), so
/// the merged load histogram is bit-identical to a single-shard (or
/// plain emulator) reference run over the same events — the property
/// the ctest suite asserts and BENCH_sharded_emulator.json records.
/// Multi-producer runs keep the guarantee because membership is
/// *sequenced before the fan-out*: a sequential pre-scan on the calling
/// thread applies every join/leave to the snapshot publisher in stream
/// order and tags each contiguous request run with its epoch snapshot;
/// the producers then split the request stream by global index range
/// and each request still resolves against exactly the epoch it
/// arrived under, in whatever order the mesh delivers it (the load
/// histogram is order-insensitive).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "emu/channel.hpp"
#include "emu/emulator.hpp"
#include "emu/event.hpp"
#include "emu/snapshot.hpp"
#include "runtime/worker_pool.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// How membership state is shared with the shard workers.
enum class membership_mode : std::uint8_t {
  /// One immutable epoch-published snapshot shared by all shards
  /// (copy-on-write against the producer's single mutable table).
  snapshot,
  /// One full table replica per shard, join/leave broadcast to all.
  replicated,
};

/// Configuration of the sharded pipeline.
struct sharded_config {
  /// Worker shards (>= 1); each runs one thread (and, in replicated
  /// mode, owns one table replica).
  std::size_t shards = 4;
  /// Producer threads feeding the mesh (>= 1).  1 (default) produces
  /// on the calling thread, exactly the historical pipeline; M > 1
  /// adds M pinned producer workers to the pool (placed after the
  /// shard workers by the same placement policy), each owning one
  /// channel per shard and encoding a contiguous slice of the request
  /// stream.  Snapshot mode only: replicated membership needs
  /// stream-order broadcast, which a fan-out producer cannot preserve.
  std::size_t producers = 1;
  /// Events buffered per shard before a batch is handed to its worker
  /// (the paper's batch size of 256 per shard).
  std::size_t buffer_capacity = 256;
  /// Shard-channel implementation of the ingest mesh (emu/channel.hpp):
  /// lock-free SPSC rings by default, overridable per run here or
  /// process-wide with HDHASH_CHANNEL=ring|mutex.  Never changes
  /// results — only how batches are handed over.
  channel_kind channel = default_channel_kind();
  /// Bounded per-lane channel depth: batches in flight per
  /// (producer, shard) pair before push blocks (backpressure).  2 is
  /// the classic double buffer (rings round up to a power of two).
  std::size_t channel_depth = 2;
  /// How membership reaches the workers (see membership_mode).
  membership_mode membership = membership_mode::snapshot;
  /// Measure per-sub-batch request time on each worker's own CPU clock
  /// (timing_mode::thread_cpu), so the per-shard service rate is not
  /// polluted by preemption when shards outnumber cores.
  bool timing = true;
  /// Answer every request against a pristine shadow oracle as well and
  /// count disagreements (run_stats::mismatches).  In snapshot mode the
  /// oracle is one epoch-published clone of the producer table shared
  /// by all shards; in replicated mode each shard replays against its
  /// own pristine clone.  Both modes count bit-identically.
  bool shadow = false;
  /// Fault-injection hook, called once per *mutable* table after the
  /// shadow oracles (if any) are cloned and before any event applies:
  /// with the producer-owned table (shard 0) in snapshot mode, with
  /// each shard replica in replicated mode.  The shadows stay pristine
  /// — copy-on-write un-shares corrupted state on first write — so the
  /// mismatch counters measure exactly the injected corruption.  For
  /// mode-conformant counts the hook must corrupt identically whatever
  /// the shard index (seed the injector off the table, not the shard).
  std::function<void(dynamic_table& table, std::size_t shard)> corrupt;
  /// How shard workers are placed on the host topology (runtime layer,
  /// src/runtime/).  Default: `compact` — pin where the platform
  /// supports it, one worker per allowed CPU in NUMA-node order —
  /// overridable process-wide with HDHASH_PIN; workers degrade to
  /// unpinned (policy `none` behaviour) wherever the affinity call is
  /// unavailable or refused.  Placement never changes assignments:
  /// the merged histogram is bit-identical under every policy.
  runtime::placement_policy placement = runtime::default_placement_policy();
  /// Salt of the request partition hash.
  std::uint64_t partition_seed = 0x5A4D'ED01;
};

/// Result of one sharded run.
struct sharded_report {
  /// Statistics merged across shards.  joins/leaves count *logical*
  /// membership events (each stream event once, however it was
  /// delivered — broadcast or epoch publication), so the merged report
  /// is comparable field-for-field with a single-table run.
  run_stats merged;
  /// Raw per-shard statistics.  In replicated mode joins/leaves count
  /// per-shard applications of the broadcast events; in snapshot mode
  /// they are zero (membership is applied once, by the producer).
  std::vector<run_stats> per_shard;
  /// End-to-end pipeline wall time (produce + decode, overlapped).
  double wall_seconds = 0.0;
  /// Resident table bytes at end of run: the sum over all replicas in
  /// replicated mode; the producer table plus the live snapshot's
  /// non-shared bookkeeping in snapshot mode (~independent of the
  /// shard count).
  std::size_t table_memory_bytes = 0;
  /// Snapshots actually published (snapshot mode; 0 otherwise).  At
  /// most one per membership epoch that a request observed.
  std::size_t snapshots_published = 0;
  /// Placement policy the worker pool ran under.
  runtime::placement_policy placement = runtime::placement_policy::none;
  /// Post-pinning outcome per shard worker (cpu/node are -1 and pinned
  /// false wherever affinity was skipped or refused).
  std::vector<runtime::worker_info> workers;
  /// Post-pinning outcome per mesh producer worker.  Empty when the
  /// run produced on the calling thread (producers == 1).
  std::vector<runtime::worker_info> producer_workers;
  /// Shard-channel implementation the mesh ran on.
  channel_kind channel = channel_kind::ring;

  /// Aggregate service rate: the sum of each shard's requests divided
  /// by the time that shard spent inside lookup_batch on its own
  /// thread.  This is the pipeline's capacity — what N independent
  /// shard workers sustain with a core each; on a machine with >= N
  /// cores the wall rate converges to it.
  double aggregate_requests_per_second() const;
  /// Delivered wall-clock rate: merged requests / wall_seconds —
  /// bounded by the physical core count, unlike the aggregate rate.
  double wall_requests_per_second() const;
};

/// Runs an event stream through N shard workers with double-buffered
/// batch hand-off — against epoch-published snapshots of one table
/// (snapshot mode) or one single-owner replica per shard (replicated
/// mode).
class sharded_emulator {
 public:
  /// Builds a table instance.  In replicated mode it is called once per
  /// shard (with the shard index); in snapshot mode once, with shard 0,
  /// for the producer-owned table.  Every call must use identical
  /// parameters (the determinism guarantee needs all instances to map
  /// requests identically).
  using table_factory =
      std::function<std::unique_ptr<dynamic_table>(std::size_t shard)>;

  sharded_emulator(table_factory factory, sharded_config config = {});

  /// Runs the event stream to completion across all shards and merges
  /// the per-shard statistics.  Worker exceptions are rethrown here.
  /// One emulator instance runs one workload: the tables keep their
  /// end-of-run state (inspect via table()), so replaying a stream
  /// whose join burst repeats ids would fault on the second run —
  /// construct a fresh emulator per workload instead.
  sharded_report run(std::span<const event> events);

  /// Shard a request id is routed to.
  std::size_t shard_of(request_id request) const;

  const sharded_config& config() const noexcept { return config_; }
  std::size_t shards() const noexcept { return config_.shards; }
  std::size_t producers() const noexcept { return config_.producers; }
  /// The shard's table replica (replicated mode) or the producer's
  /// single mutable table (snapshot mode, same object for every shard).
  /// Valid for the emulator's lifetime.  \pre shard < shards().
  dynamic_table& table(std::size_t shard);

  /// The pinned worker pool the pipeline runs on: workers [0, shards)
  /// are the shard decoders, and — when producers > 1 — workers
  /// [shards, shards + producers) are the mesh producers, all placed
  /// by config().placement.  Exposed so callers can report delivered
  /// placement (bench drivers record cpu/node per shard).
  const runtime::worker_pool& pool() const noexcept { return *pool_; }

 private:
  sharded_report run_replicated(std::span<const event> events);
  sharded_report run_snapshot(std::span<const event> events);

  sharded_config config_;
  std::vector<std::unique_ptr<dynamic_table>> tables_;  // replicated mode
  std::unique_ptr<snapshot_publisher> publisher_;       // snapshot mode
  std::unique_ptr<runtime::worker_pool> pool_;          // one worker/shard
};

}  // namespace hdhash
