/// \file sharded_emulator.hpp
/// \brief Sharded, double-buffered emulation pipeline — the multi-core
/// analogue of the paper's GPU batching (Section 5.1), scaled toward the
/// ROADMAP's "millions of users" target.
///
/// The generated event stream is partitioned across N shards by
/// hash(request_id) % N; membership (join/leave) events are broadcast to
/// every shard, so each shard's table replicates the full server pool
/// and answers exactly the assignments the single-table reference would.
/// Each shard runs its own dynamic_table on a dedicated worker thread,
/// fed through a depth-2 batch channel: while the worker decodes batch
/// i, the producer is already filling batch i+1 — the software analogue
/// of overlapping GPU transfer with compute (double buffering).
///
/// Determinism: requests are routed to exactly one shard and every
/// shard applies membership events in stream order, so the merged load
/// histogram is bit-identical to a single-shard (or plain emulator)
/// reference run over the same events — the property the ctest suite
/// asserts and BENCH_sharded_emulator.json records.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "emu/emulator.hpp"
#include "emu/event.hpp"
#include "table/dynamic_table.hpp"

namespace hdhash {

/// Configuration of the sharded pipeline.
struct sharded_config {
  /// Worker shards (>= 1); each owns one table replica and one thread.
  std::size_t shards = 4;
  /// Events buffered per shard before a batch is handed to its worker
  /// (the paper's batch size of 256 per shard).
  std::size_t buffer_capacity = 256;
  /// Measure per-sub-batch request time on each worker's own CPU clock
  /// (timing_mode::thread_cpu), so the per-shard service rate is not
  /// polluted by preemption when shards outnumber cores.
  bool timing = true;
  /// Give every shard a pristine shadow clone for mismatch accounting.
  bool shadow = false;
  /// Salt of the request partition hash.
  std::uint64_t partition_seed = 0x5A4D'ED01;
};

/// Result of one sharded run.
struct sharded_report {
  /// Statistics merged across shards.  joins/leaves count *logical*
  /// membership events (each broadcast event once), so the merged
  /// report is comparable field-for-field with a single-table run.
  run_stats merged;
  /// Raw per-shard statistics; here joins/leaves count per-shard
  /// applications of the broadcast events.
  std::vector<run_stats> per_shard;
  /// End-to-end pipeline wall time (produce + decode, overlapped).
  double wall_seconds = 0.0;

  /// Aggregate service rate: the sum of each shard's requests divided
  /// by the time that shard spent inside lookup_batch on its own
  /// thread.  This is the pipeline's capacity — what N independent
  /// shard workers sustain with a core each; on a machine with >= N
  /// cores the wall rate converges to it.
  double aggregate_requests_per_second() const;
  /// Delivered wall-clock rate: merged requests / wall_seconds —
  /// bounded by the physical core count, unlike the aggregate rate.
  double wall_requests_per_second() const;
};

/// Runs an event stream through N single-owner table replicas, one
/// worker thread each, with double-buffered batch hand-off.
class sharded_emulator {
 public:
  /// Builds the table replica for one shard.  Called once per shard at
  /// construction, on the caller's thread; every shard must be built
  /// with identical parameters (the determinism guarantee needs all
  /// replicas to map requests identically).
  using table_factory =
      std::function<std::unique_ptr<dynamic_table>(std::size_t shard)>;

  sharded_emulator(table_factory factory, sharded_config config = {});

  /// Runs the event stream to completion across all shards and merges
  /// the per-shard statistics.  Worker exceptions are rethrown here.
  /// One emulator instance runs one workload: the table replicas keep
  /// their end-of-run state (inspect via table()), so replaying a
  /// stream whose join burst repeats ids would fault on the second
  /// run — construct a fresh emulator per workload instead.
  sharded_report run(std::span<const event> events);

  /// Shard a request id is routed to.
  std::size_t shard_of(request_id request) const;

  const sharded_config& config() const noexcept { return config_; }
  std::size_t shards() const noexcept { return tables_.size(); }
  /// The shard's table replica (valid for the emulator's lifetime).
  dynamic_table& table(std::size_t shard) { return *tables_[shard]; }

 private:
  sharded_config config_;
  std::vector<std::unique_ptr<dynamic_table>> tables_;
};

}  // namespace hdhash
