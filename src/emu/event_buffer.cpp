#include "emu/event_buffer.hpp"

#include "util/require.hpp"

namespace hdhash {

event_buffer::event_buffer(std::size_t capacity) : storage_(capacity) {
  HDHASH_REQUIRE(capacity > 0, "buffer capacity must be positive");
}

bool event_buffer::push(const event& e) {
  if (full()) {
    return false;
  }
  storage_[(head_ + size_) % storage_.size()] = e;
  ++size_;
  return true;
}

std::optional<event> event_buffer::pop() {
  if (empty()) {
    return std::nullopt;
  }
  const event e = storage_[head_];
  head_ = (head_ + 1) % storage_.size();
  --size_;
  return e;
}

}  // namespace hdhash
