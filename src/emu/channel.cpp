#include "emu/channel.hpp"

#include <cstdlib>
#include <string>

#include "util/require.hpp"

namespace hdhash {

std::string_view to_string(channel_kind kind) noexcept {
  switch (kind) {
    case channel_kind::ring:
      return "ring";
    case channel_kind::mutex:
      return "mutex";
  }
  return "unknown";
}

std::optional<channel_kind> parse_channel_kind(std::string_view name) {
  if (name == "ring") {
    return channel_kind::ring;
  }
  if (name == "mutex") {
    return channel_kind::mutex;
  }
  return std::nullopt;
}

channel_kind default_channel_kind() {
  const char* env = std::getenv("HDHASH_CHANNEL");
  if (env == nullptr || *env == '\0') {
    return channel_kind::ring;
  }
  const auto kind = parse_channel_kind(env);
  // Same convention as HDHASH_FORCE_KERNEL / HDHASH_PIN: a typo'd
  // override must fail loudly, not silently run the wrong hand-off
  // implementation under a benchmark.
  HDHASH_REQUIRE(kind.has_value(),
                 std::string("unknown HDHASH_CHANNEL value \"") + env +
                     "\" (expected ring|mutex)");
  return *kind;
}

}  // namespace hdhash
