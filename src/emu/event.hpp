/// \file event.hpp
/// \brief Events flowing from the generator to the hash-table module.
///
/// The paper's emulator (Section 5.1): "Servers are added and removed
/// using two special case requests, a join and leave request,
/// respectively, with a unique identifier of the server."
#pragma once

#include <cstdint>

namespace hdhash {

enum class event_kind : std::uint8_t {
  request,  ///< map this request id to a server
  join,     ///< add server with this id to the pool
  leave,    ///< remove server with this id from the pool
};

/// One generator event; `id` is a request id or a server id depending on
/// `kind`.  Join events additionally carry the server's relative
/// capacity `weight` (1.0 for homogeneous pools — the generator always
/// emits 1.0; the scenario layer's grey-server playbooks emit decayed
/// weights).  The field is meaningless for request/leave events and
/// stays at its default there.
struct event {
  event_kind kind = event_kind::request;
  std::uint64_t id = 0;
  double weight = 1.0;

  friend bool operator==(const event&, const event&) = default;
};

}  // namespace hdhash
