#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(HistogramTest, StartsEmpty) {
  histogram h(4);
  EXPECT_EQ(h.bins(), 4u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_count(), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.count(i), 0u);
  }
}

TEST(HistogramTest, ZeroBinsThrows) {
  EXPECT_THROW(histogram(0), precondition_error);
}

TEST(HistogramTest, AddAccumulates) {
  histogram h(3);
  h.add(0);
  h.add(1, 5);
  h.add(1);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 6u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.max_count(), 6u);
}

TEST(HistogramTest, OutOfRangeThrows) {
  histogram h(2);
  EXPECT_THROW(h.add(2), precondition_error);
  EXPECT_THROW(h.count(5), precondition_error);
}

TEST(HistogramTest, PeakToMeanBalanced) {
  histogram h(4);
  for (std::size_t i = 0; i < 4; ++i) {
    h.add(i, 25);
  }
  EXPECT_DOUBLE_EQ(h.peak_to_mean(), 1.0);
}

TEST(HistogramTest, PeakToMeanSkewed) {
  histogram h(2);
  h.add(0, 30);
  h.add(1, 10);
  // mean = 20, peak = 30.
  EXPECT_DOUBLE_EQ(h.peak_to_mean(), 1.5);
}

TEST(HistogramTest, PeakToMeanEmptyThrows) {
  histogram h(2);
  EXPECT_THROW(h.peak_to_mean(), precondition_error);
}

TEST(HistogramTest, ResetClears) {
  histogram h(2);
  h.add(0, 3);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(0), 0u);
}

TEST(HistogramTest, CountsSpanMatchesState) {
  histogram h(3);
  h.add(2, 9);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2], 9u);
}

}  // namespace
}  // namespace hdhash
