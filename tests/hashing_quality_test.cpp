/// Statistical quality checks shared by all registered hash functions:
/// determinism, distribution uniformity and (for the mixing hashes)
/// avalanche behaviour.  These are the properties the dynamic-table
/// algorithms actually rely on.
#include <bit>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "stats/chi_squared.hpp"

namespace hdhash {
namespace {

class HashQualityTest : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(AllHashes, HashQualityTest,
                         ::testing::Values("fnv1a64", "splitmix64",
                                           "murmur3_x64_128", "xxhash64",
                                           "siphash24"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(HashQualityTest, Deterministic) {
  const hash64& h = hash_by_name(GetParam());
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(h.hash_u64(key, 9), h.hash_u64(key, 9));
  }
}

TEST_P(HashQualityTest, SequentialKeysSpreadUniformly) {
  const hash64& h = hash_by_name(GetParam());
  constexpr std::size_t kBuckets = 128;
  constexpr std::size_t kKeys = 64 * kBuckets;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[static_cast<std::size_t>(h.hash_u64(key) % kBuckets)];
  }
  const auto result = chi_squared_uniform(counts);
  // p-value far from zero: accepts uniform with wide tolerance but
  // rejects e.g. identity or byte-swap "hashes" decisively.
  EXPECT_GT(result.p_value, 1e-6) << "chi2 = " << result.statistic;
}

TEST_P(HashQualityTest, ModBiasAcrossOddBucketCounts) {
  const hash64& h = hash_by_name(GetParam());
  for (const std::size_t buckets : {3u, 7u, 13u}) {
    std::vector<std::uint64_t> counts(buckets, 0);
    for (std::uint64_t key = 0; key < 5000; ++key) {
      ++counts[static_cast<std::size_t>(h.hash_u64(key, 1) % buckets)];
    }
    EXPECT_GT(chi_squared_uniform(counts).p_value, 1e-6);
  }
}

TEST_P(HashQualityTest, PairHashIndependentOfConcatenationCollisions) {
  const hash64& h = hash_by_name(GetParam());
  // (a, b) and (a', b') with a||b == a'||b' as raw 16-byte strings can't
  // be distinguished byte-wise; instead check that distinct pairs map to
  // distinct values for a sample (collision probability ~ 2^-64).
  std::set<std::uint64_t> outputs;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      outputs.insert(h.hash_pair(a, b));
    }
  }
  EXPECT_EQ(outputs.size(), 64u * 16u);
}

/// Avalanche: flipping any single input bit flips close to half the
/// output bits.  FNV-1a is excluded — its weak diffusion for trailing
/// bytes is a documented limitation (and the reason it loses the
/// hash-quality ablation), not a bug in our implementation.
class AvalancheTest : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(MixingHashes, AvalancheTest,
                         ::testing::Values("splitmix64", "murmur3_x64_128",
                                           "xxhash64", "siphash24"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AvalancheTest, SingleBitFlipDiffusesToHalfTheOutput) {
  const hash64& h = hash_by_name(GetParam());
  double total_flips = 0.0;
  int samples = 0;
  for (std::uint64_t key = 1; key <= 32; ++key) {
    const std::uint64_t base = h.hash_u64(key * 0x9e3779b97f4a7c15ULL);
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t other =
          h.hash_u64((key * 0x9e3779b97f4a7c15ULL) ^ (1ULL << bit));
      total_flips += std::popcount(base ^ other);
      ++samples;
    }
  }
  const double mean_flips = total_flips / samples;
  EXPECT_GT(mean_flips, 28.0);
  EXPECT_LT(mean_flips, 36.0);
}

}  // namespace
}  // namespace hdhash
