#include "stats/gamma.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(LogGammaTest, IntegerFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3'628'800.0), 1e-9);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Γ(1/2) = √π, Γ(3/2) = √π/2.
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(log_gamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGammaTest, ReflectionRegionBelowHalf) {
  // Γ(0.25) ≈ 3.62561 (known constant).
  EXPECT_NEAR(std::exp(log_gamma(0.25)), 3.6256099082219083, 1e-8);
}

TEST(LogGammaTest, LargeArgumentsStirlingRange) {
  // ln Γ(1001) = ln(1000!) ≈ 5912.128178 (Stirling cross-check).
  EXPECT_NEAR(log_gamma(1001.0), 5912.128178488163, 1e-6);
}

TEST(LogGammaTest, NonPositiveThrows) {
  EXPECT_THROW(log_gamma(0.0), precondition_error);
  EXPECT_THROW(log_gamma(-1.0), precondition_error);
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
}

TEST(RegularizedGammaTest, ComplementarityHolds) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (const double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, ErfSpecialCase) {
  // P(1/2, x) = erf(√x).
  for (const double x : {0.25, 1.0, 2.25}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(RegularizedGammaTest, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    const double p = regularized_gamma_p(4.0, x);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

TEST(RegularizedGammaTest, InvalidArgumentsThrow) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), precondition_error);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), precondition_error);
  EXPECT_THROW(regularized_gamma_q(-2.0, 1.0), precondition_error);
}

}  // namespace
}  // namespace hdhash
