#include <array>
#include <cstring>
#include <set>
#include <string_view>

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "hashing/fnv.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/registry.hpp"
#include "hashing/siphash.hpp"
#include "hashing/splitmix_hash.hpp"
#include "hashing/xxhash64.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

std::span<const std::byte> as_bytes(std::string_view text) {
  return std::as_bytes(std::span(text.data(), text.size()));
}

// ---------------------------------------------------------------- FNV-1a

TEST(Fnv1aTest, MatchesPublishedVectors) {
  const fnv1a64 h;
  // Reference values from the FNV specification (landon curt noll).
  EXPECT_EQ(h(as_bytes(""), 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(h(as_bytes("a"), 0), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(h(as_bytes("foobar"), 0), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, SeedChangesOutput) {
  const fnv1a64 h;
  EXPECT_NE(h(as_bytes("key"), 0), h(as_bytes("key"), 1));
}

// ------------------------------------------------------------- SplitMix64

TEST(SplitmixHashTest, MixMatchesSplitmixStream) {
  // mix(v) equals splitmix64_next with state v (the function adds the
  // golden-gamma increment then finalizes).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix_hash::mix(0), splitmix64_next(state));
}

TEST(SplitmixHashTest, LengthSensitive) {
  const splitmix_hash h;
  // Same 8-byte prefix, one extra zero byte: must differ (length is mixed).
  std::array<std::byte, 9> buffer{};
  EXPECT_NE(h(std::span(buffer.data(), 8), 0), h(std::span(buffer.data(), 9), 0));
}

TEST(SplitmixHashTest, TailBytesMatter) {
  const splitmix_hash h;
  std::array<std::byte, 3> a{std::byte{1}, std::byte{2}, std::byte{3}};
  std::array<std::byte, 3> b{std::byte{1}, std::byte{2}, std::byte{4}};
  EXPECT_NE(h(a, 0), h(b, 0));
}

// -------------------------------------------------------------- MurmurHash3

TEST(Murmur3Test, EmptyInputSeedZeroIsZero) {
  // Well-known property of the reference implementation.
  const auto digest = murmur3_x64::hash128({}, 0);
  EXPECT_EQ(digest[0], 0u);
  EXPECT_EQ(digest[1], 0u);
}

TEST(Murmur3Test, SeedZeroVsNonZeroDiffer) {
  const murmur3_x64 h;
  EXPECT_NE(h(as_bytes("hello"), 0), h(as_bytes("hello"), 1));
}

TEST(Murmur3Test, AllTailLengthsDistinct) {
  // Exercises every branch of the 15-way tail switch.
  const murmur3_x64 h;
  std::array<std::byte, 48> buffer{};
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::byte>(i * 7 + 1);
  }
  std::set<std::uint64_t> outputs;
  for (std::size_t len = 0; len <= buffer.size(); ++len) {
    outputs.insert(h(std::span(buffer.data(), len), 0));
  }
  EXPECT_EQ(outputs.size(), buffer.size() + 1);
}

TEST(Murmur3Test, HighSeedBitsAreNotIgnored) {
  const murmur3_x64 h;
  EXPECT_NE(h(as_bytes("x"), 1ULL << 40), h(as_bytes("x"), 0));
}

// ---------------------------------------------------------------- xxHash64

TEST(Xxhash64Test, MatchesPublishedEmptyVector) {
  const xxhash64 h;
  // XXH64("", seed=0) from the xxHash specification.
  EXPECT_EQ(h({}, 0), 0xEF46DB3751D8E999ULL);
}

TEST(Xxhash64Test, AllLengthBranchesDistinct) {
  // < 4, < 8, < 32 and >= 32 byte paths all execute.
  const xxhash64 h;
  std::array<std::byte, 80> buffer{};
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::byte>(i + 3);
  }
  std::set<std::uint64_t> outputs;
  for (const std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u,
                                63u, 64u, 79u, 80u}) {
    outputs.insert(h(std::span(buffer.data(), len), 0));
  }
  EXPECT_EQ(outputs.size(), 14u);
}

TEST(Xxhash64Test, SeedSensitivity) {
  const xxhash64 h;
  std::array<std::byte, 40> buffer{};
  EXPECT_NE(h(buffer, 0), h(buffer, 1));
  EXPECT_NE(h(buffer, 0), h(buffer, ~std::uint64_t{0}));
}

// ---------------------------------------------------------------- SipHash

TEST(SiphashTest, MatchesReferenceVectors) {
  // First entries of the official SipHash-2-4 test vector table:
  // key = 00 01 02 ... 0f, input = first n bytes of 00 01 02 ...
  constexpr std::uint64_t k0 = 0x0706050403020100ULL;
  constexpr std::uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
  std::array<std::byte, 8> input{};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(siphash24::sip24(std::span(input.data(), 0u), k0, k1),
            0x726fdb47dd0e0e31ULL);
  EXPECT_EQ(siphash24::sip24(std::span(input.data(), 1u), k0, k1),
            0x74f839c593dc67fdULL);
  EXPECT_EQ(siphash24::sip24(std::span(input.data(), 8u), k0, k1),
            0x93f5f5799a932462ULL);
}

TEST(SiphashTest, HasherInterfaceIsDeterministic) {
  const siphash24 h;
  EXPECT_EQ(h(as_bytes("abc"), 5), h(as_bytes("abc"), 5));
  EXPECT_NE(h(as_bytes("abc"), 5), h(as_bytes("abc"), 6));
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, FindsAllBuiltins) {
  for (const auto name : registered_hash_names()) {
    EXPECT_EQ(hash_by_name(name).name(), name);
  }
  EXPECT_EQ(registered_hash_names().size(), 5u);
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(hash_by_name("md5"), precondition_error);
}

TEST(RegistryTest, DefaultIsXxhash) {
  EXPECT_EQ(default_hash().name(), "xxhash64");
}

TEST(RegistryTest, SingletonsAreStable) {
  EXPECT_EQ(&hash_by_name("fnv1a64"), &hash_by_name("fnv1a64"));
}

// ------------------------------------------------------- hash64 conveniences

TEST(Hash64ConvenienceTest, HashU64MatchesByteHash) {
  const hash64& h = default_hash();
  const std::uint64_t value = 0x1122334455667788ULL;
  std::array<std::byte, 8> bytes;
  std::memcpy(bytes.data(), &value, 8);
  EXPECT_EQ(h.hash_u64(value, 3), h(bytes, 3));
}

TEST(Hash64ConvenienceTest, HashPairOrderMatters) {
  const hash64& h = default_hash();
  EXPECT_NE(h.hash_pair(1, 2), h.hash_pair(2, 1));
}

TEST(Hash64ConvenienceTest, HashStringMatchesBytes) {
  const hash64& h = default_hash();
  EXPECT_EQ(h.hash_string("hello"), h(as_bytes("hello"), 0));
}

}  // namespace
}  // namespace hdhash
