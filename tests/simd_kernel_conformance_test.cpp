/// Conformance suite for the SIMD Hamming kernels (src/simd/).
///
/// Every compiled-in kernel must be *bit-identical* to an independent
/// bit-by-bit reference — distances and, through the hd_table, winners.
/// The dimensions deliberately include partial tail words (the classic
/// SIMD popcount bug: a 256/512-bit lane overread or an unmasked tail),
/// and run under the ASan CI lane so an out-of-bounds tail load fails
/// loudly rather than silently reading slack bytes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/hd_table.hpp"
#include "hashing/registry.hpp"
#include "hdc/hypervector.hpp"
#include "simd/hamming_kernel.hpp"
#include "util/rng.hpp"

namespace hdhash {
namespace {

/// Bit-by-bit reference distance: shares no code with any kernel.
std::uint64_t reference_distance(const hdc::hypervector& a,
                                 const hdc::hypervector& b) {
  std::uint64_t distance = 0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    distance += a.test(i) != b.test(i);
  }
  return distance;
}

/// Dimensions chosen to hit every tail shape: single word, partial
/// word, whole 256-bit lanes, exactly one Harley–Seal block (4096 =
/// 64 words), partial lanes past a block, and the paper's d = 10,000
/// (157 words — one word beyond a 512-bit boundary).
constexpr std::array<std::size_t, 9> kDims = {64,   65,   127,  192, 1000,
                                              4093, 4096, 8192, 10000};

class KernelConformanceTest
    : public ::testing::TestWithParam<const simd::hamming_kernel*> {
 protected:
  void SetUp() override {
    if (!GetParam()->supported()) {
      GTEST_SKIP() << "CPU cannot execute kernel '" << GetParam()->name
                   << "'";
    }
  }
  void TearDown() override { simd::reset_active_kernel(); }
};

TEST_P(KernelConformanceTest, DistanceMatchesReferenceOnRandomPairs) {
  const simd::hamming_kernel& kernel = *GetParam();
  xoshiro256 rng(0xC0DE);
  for (const std::size_t dim : kDims) {
    for (int pair = 0; pair < 4; ++pair) {
      const auto a = hdc::hypervector::random(dim, rng);
      const auto b = hdc::hypervector::random(dim, rng);
      EXPECT_EQ(kernel.distance(a.words().data(), b.words().data(),
                                a.word_count()),
                reference_distance(a, b))
          << kernel.name << " dim=" << dim;
    }
  }
}

TEST_P(KernelConformanceTest, DistanceOnDegenerateRows) {
  const simd::hamming_kernel& kernel = *GetParam();
  for (const std::size_t dim : kDims) {
    const auto zeros = hdc::hypervector::zeros(dim);
    const auto ones = hdc::hypervector::ones(dim);
    const std::size_t words = zeros.word_count();
    // all-zeros vs all-ones: every one of the dim bits differs — and
    // not one bit more, which is exactly what an unmasked tail word
    // would add.
    EXPECT_EQ(kernel.distance(zeros.words().data(), ones.words().data(),
                              words),
              dim)
        << kernel.name << " dim=" << dim;
    EXPECT_EQ(kernel.distance(zeros.words().data(), zeros.words().data(),
                              words),
              0u);
    EXPECT_EQ(kernel.distance(ones.words().data(), ones.words().data(),
                              words),
              0u);
  }
}

TEST_P(KernelConformanceTest, TileDistanceMatchesPerProbeDistance) {
  const simd::hamming_kernel& kernel = *GetParam();
  xoshiro256 rng(0x7E57);
  for (const std::size_t dim : {std::size_t{65}, std::size_t{1000},
                                std::size_t{4096}, std::size_t{10000}}) {
    const auto row = hdc::hypervector::random(dim, rng);
    std::vector<hdc::hypervector> probe_store;
    probe_store.reserve(simd::kMaxTile);
    std::array<const std::uint64_t*, simd::kMaxTile> probes{};
    for (std::size_t t = 0; t < simd::kMaxTile; ++t) {
      probe_store.push_back(hdc::hypervector::random(dim, rng));
      probes[t] = probe_store.back().words().data();
    }
    // Every tile width, including the partial tiles of a batch tail.
    for (std::size_t tile = 1; tile <= simd::kMaxTile; ++tile) {
      std::array<std::uint64_t, simd::kMaxTile> dist{};
      kernel.tile_distance(row.words().data(), probes.data(), tile,
                           row.word_count(), dist.data());
      for (std::size_t t = 0; t < tile; ++t) {
        EXPECT_EQ(dist[t], reference_distance(row, probe_store[t]))
            << kernel.name << " dim=" << dim << " tile=" << tile
            << " t=" << t;
      }
    }
  }
}

TEST_P(KernelConformanceTest, LookupBatchWinnersMatchScalarKernel) {
  // End-to-end: the same table answers the same batch under the scalar
  // kernel and under the kernel on test; assignments must be identical
  // (dimension 10,000 exercises the partial 157th word on every row).
  hd_table_config config;
  config.dimension = 10'000;
  config.capacity = 256;
  hd_table table(default_hash(), config);
  for (server_id s = 1; s <= 48; ++s) {
    table.join(s);
  }
  std::vector<request_id> requests(300);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i] = (i + 1) * 0x9e3779b97f4a7c15ULL;
  }
  std::vector<server_id> expected(requests.size());
  ASSERT_TRUE(simd::set_active_kernel("scalar"));
  table.lookup_batch(requests, expected);

  std::vector<server_id> actual(requests.size());
  ASSERT_TRUE(simd::set_active_kernel(GetParam()->name));
  table.lookup_batch(requests, actual);
  EXPECT_EQ(actual, expected) << "kernel " << GetParam()->name;

  // The batch path must also agree with element-wise lookup under the
  // same kernel.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(table.lookup(requests[i]), expected[i]);
  }
}

std::string kernel_param_name(
    const ::testing::TestParamInfo<const simd::hamming_kernel*>& info) {
  return std::string(info.param->name);
}

INSTANTIATE_TEST_SUITE_P(
    AllCompiledKernels, KernelConformanceTest,
    ::testing::ValuesIn(simd::compiled_kernels().begin(),
                        simd::compiled_kernels().end()),
    kernel_param_name);

TEST(KernelDispatchTest, RegistryIsConsistent) {
  // Scalar is always compiled in, always supported, and every
  // compiled-in kernel is findable by its own name.
  const simd::hamming_kernel* scalar = simd::find_kernel("scalar");
  ASSERT_NE(scalar, nullptr);
  EXPECT_TRUE(scalar->supported());
  for (const simd::hamming_kernel* k : simd::compiled_kernels()) {
    EXPECT_EQ(simd::find_kernel(k->name), k);
  }
  EXPECT_EQ(simd::find_kernel("no-such-kernel"), nullptr);
  EXPECT_FALSE(simd::set_active_kernel("no-such-kernel"));
}

TEST(KernelDispatchTest, ActiveKernelIsSupportedAndOverridable) {
  simd::reset_active_kernel();
  const simd::hamming_kernel& chosen = simd::active_kernel();
  EXPECT_TRUE(chosen.supported());
  ASSERT_TRUE(simd::set_active_kernel("scalar"));
  EXPECT_EQ(simd::active_kernel().name, "scalar");
  simd::reset_active_kernel();
}

}  // namespace
}  // namespace hdhash
