#include "util/table_printer.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(TablePrinterTest, EmptyColumnsThrows) {
  EXPECT_THROW(table_printer({}), precondition_error);
}

TEST(TablePrinterTest, RowArityMismatchThrows) {
  table_printer table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), precondition_error);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), precondition_error);
}

TEST(TablePrinterTest, PrintsHeaderSeparatorAndRows) {
  table_printer table({"servers", "latency"});
  table.add_row({"2", "10"});
  table.add_row({"2048", "900"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("servers"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("2048"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, RightAlignsCells) {
  table_printer table({"col"});
  table.add_row({"x"});
  table.add_row({"wide"});
  std::ostringstream os;
  table.print(os);
  // "x" must be padded to width 4 ("wide").
  EXPECT_NE(os.str().find("   x"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundTrips) {
  table_printer table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(FormatDurationTest, PicksAdaptiveUnit) {
  EXPECT_EQ(format_duration_ns(12.0), "12.00 ns");
  EXPECT_EQ(format_duration_ns(1'500.0), "1.50 us");
  EXPECT_EQ(format_duration_ns(2'500'000.0), "2.50 ms");
  EXPECT_EQ(format_duration_ns(3'000'000'000.0), "3.00 s");
}

TEST(FormatPercentTest, ScalesFraction) {
  EXPECT_EQ(format_percent(0.123, 1), "12.3%");
  EXPECT_EQ(format_percent(0.0, 0), "0%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace hdhash
