#include "core/hierarchical.hpp"

#include <set>

#include <gtest/gtest.h>

#include "emu/generator.hpp"
#include "fault/injector.hpp"
#include "hashing/registry.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

hierarchical_config small_config() {
  hierarchical_config config;
  config.groups = 4;
  config.shard.dimension = 2048;
  config.shard.capacity = 64;
  config.router.dimension = 2048;
  config.router.capacity = 16;
  return config;
}

TEST(HierarchicalTest, RequiresAtLeastTwoGroups) {
  hierarchical_config config = small_config();
  config.groups = 1;
  EXPECT_THROW(hierarchical_hd_table(default_hash(), config),
               precondition_error);
}

TEST(HierarchicalTest, BasicMembership) {
  hierarchical_hd_table table(default_hash(), small_config());
  EXPECT_THROW(table.lookup(1), precondition_error);
  table.join(100);
  table.join(200);
  EXPECT_TRUE(table.contains(100));
  EXPECT_FALSE(table.contains(300));
  EXPECT_EQ(table.server_count(), 2u);
  EXPECT_THROW(table.join(100), precondition_error);
  table.leave(100);
  EXPECT_THROW(table.leave(100), precondition_error);
  EXPECT_EQ(table.server_count(), 1u);
}

TEST(HierarchicalTest, LookupReturnsAPoolMember) {
  hierarchical_hd_table table(default_hash(), small_config());
  std::set<server_id> pool;
  for (server_id s = 1; s <= 40; ++s) {
    table.join(s * 173);
    pool.insert(s * 173);
  }
  for (request_id r = 0; r < 2000; ++r) {
    EXPECT_TRUE(pool.count(table.lookup(r)));
  }
}

TEST(HierarchicalTest, LookupLandsInTheRoutedShard) {
  hierarchical_hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 40; ++s) {
    table.join(s * 173);
  }
  for (request_id r = 0; r < 500; ++r) {
    const server_id answer = table.lookup(r);
    // The answering server's shard must contain it by construction.
    EXPECT_TRUE(table.contains(answer));
    EXPECT_LT(table.shard_of(answer), table.groups());
  }
}

TEST(HierarchicalTest, EmptyShardsReceiveNoTraffic) {
  // Join servers that all land in one shard; the router must still send
  // every request to a live server.
  hierarchical_hd_table table(default_hash(), small_config());
  std::vector<server_id> one_shard;
  for (server_id candidate = 1; one_shard.size() < 5; ++candidate) {
    if (table.shard_of(candidate) == 2) {
      one_shard.push_back(candidate);
    }
  }
  for (const server_id s : one_shard) {
    table.join(s);
  }
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_TRUE(table.contains(table.lookup(r)));
  }
}

TEST(HierarchicalTest, JoinOnlyPerturbsOneShard) {
  hierarchical_hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 60; ++s) {
    table.join(s * 311);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 4000; ++r) {
    before.push_back(table.lookup(r));
  }
  // A newcomer whose circle slot collides with an incumbent of smaller
  // id is legitimately starved (tie-break), so probe a few candidates:
  // the invariants must hold for each, and at least one takes load.
  std::size_t total_moved = 0;
  for (const server_id newcomer : {777'777u, 888'888u, 999'999u}) {
    table.join(newcomer);
    const std::size_t shard = table.shard_of(newcomer);
    std::size_t moved = 0;
    for (request_id r = 0; r < 4000; ++r) {
      const server_id now = table.lookup(r);
      if (now != before[r]) {
        // Every remapped request moves to the newcomer, and the request
        // was previously served by the same shard (no cross-shard churn).
        EXPECT_EQ(now, newcomer);
        EXPECT_EQ(table.shard_of(before[r]), shard);
        ++moved;
      }
    }
    EXPECT_LT(moved, 1000u);
    total_moved += moved;
    table.leave(newcomer);
  }
  EXPECT_GT(total_moved, 0u);
}

TEST(HierarchicalTest, CloneAnswersIdentically) {
  hierarchical_hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 25; ++s) {
    table.join(s * 37);
  }
  const auto copy = table.clone();
  for (request_id r = 0; r < 800; ++r) {
    EXPECT_EQ(copy->lookup(r), table.lookup(r));
  }
  EXPECT_EQ(copy->name(), "hd-hierarchical");
}

TEST(HierarchicalTest, FaultSurfaceSpansRouterAndShards) {
  hierarchical_hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 12; ++s) {
    table.join(s * 97);
  }
  // 12 shard rows + one router row per non-empty shard.
  std::size_t live_shards = 0;
  std::set<std::size_t> seen;
  for (server_id s = 1; s <= 12; ++s) {
    if (seen.insert(table.shard_of(s * 97)).second) {
      ++live_shards;
    }
  }
  EXPECT_EQ(table.fault_regions().size(), 12u + live_shards);
}

TEST(HierarchicalTest, RobustToScatteredBitFlips) {
  // The hierarchy preserves HD hashing's robustness: shards keep large
  // lattice steps, and the router's rows are hypervectors too.
  hierarchical_config config = small_config();
  config.shard.dimension = 10'000;
  config.router.dimension = 10'000;
  hierarchical_hd_table table(default_hash(), config);
  for (server_id s = 1; s <= 48; ++s) {
    table.join(s * 211);
  }
  const auto oracle = table.clone();
  bit_flip_injector injector(5);
  for (int trial = 0; trial < 3; ++trial) {
    scoped_injection injection(injector, table, 10);
    for (request_id r = 0; r < 1000; ++r) {
      EXPECT_EQ(table.lookup(r), oracle->lookup(r));
    }
  }
}

}  // namespace
}  // namespace hdhash
