#include "hdc/similarity.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "hdc/ops.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {
namespace {

TEST(HammingTest, IdenticalVectorsAreZero) {
  xoshiro256 rng(1);
  const auto a = hypervector::random(777, rng);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(HammingTest, ComplementIsFullDistance) {
  xoshiro256 rng(2);
  const auto a = hypervector::random(777, rng);
  EXPECT_EQ(hamming_distance(a, invert(a)), 777u);
}

TEST(HammingTest, Symmetric) {
  xoshiro256 rng(3);
  const auto a = hypervector::random(512, rng);
  const auto b = hypervector::random(512, rng);
  EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
}

TEST(HammingTest, DimensionMismatchThrows) {
  hypervector a(8);
  hypervector b(9);
  EXPECT_THROW(hamming_distance(a, b), precondition_error);
}

TEST(HammingTest, TriangleInequalityOnRandomTriples) {
  xoshiro256 rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = hypervector::random(256, rng);
    const auto b = hypervector::random(256, rng);
    const auto c = hypervector::random(256, rng);
    EXPECT_LE(hamming_distance(a, c),
              hamming_distance(a, b) + hamming_distance(b, c));
  }
}

TEST(HammingTest, KnownSmallCase) {
  hypervector a(8);
  hypervector b(8);
  a.set(0, true);
  a.set(3, true);
  b.set(3, true);
  b.set(7, true);
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(InverseHammingTest, ComplementsDistance) {
  xoshiro256 rng(5);
  const auto a = hypervector::random(1000, rng);
  const auto b = hypervector::random(1000, rng);
  EXPECT_EQ(inverse_hamming(a, b) + hamming_distance(a, b), 1000u);
  EXPECT_EQ(inverse_hamming(a, a), 1000u);
}

TEST(NormalizedHammingTest, UnitRange) {
  xoshiro256 rng(6);
  const auto a = hypervector::random(100, rng);
  const auto b = hypervector::random(100, rng);
  const double h = normalized_hamming(a, b);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
  EXPECT_DOUBLE_EQ(normalized_hamming(a, a), 0.0);
  EXPECT_DOUBLE_EQ(normalized_hamming(a, invert(a)), 1.0);
}

TEST(CosineTest, BipolarIdentities) {
  xoshiro256 rng(7);
  const auto a = hypervector::random(2000, rng);
  EXPECT_DOUBLE_EQ(cosine(a, a), 1.0);
  EXPECT_DOUBLE_EQ(cosine(a, invert(a)), -1.0);
}

TEST(CosineTest, RandomPairsQuasiOrthogonal) {
  xoshiro256 rng(8);
  const auto a = hypervector::random(10'000, rng);
  const auto b = hypervector::random(10'000, rng);
  EXPECT_NEAR(cosine(a, b), 0.0, 0.1);
}

TEST(CosineTest, LinearInHamming) {
  xoshiro256 rng(9);
  const auto a = hypervector::random(1000, rng);
  const auto b = flip_random_bits(a, 250, rng);  // hamming = d/4
  EXPECT_DOUBLE_EQ(cosine(a, b), 0.5);
}

TEST(ScoreTest, MetricsAgreeOnArgmaxOrdering) {
  // Both metrics are monotone decreasing in Hamming distance, so their
  // pairwise order comparisons must agree.
  xoshiro256 rng(10);
  const auto probe = hypervector::random(4096, rng);
  const auto near = flip_random_bits(probe, 100, rng);
  const auto far = flip_random_bits(probe, 1000, rng);
  EXPECT_GT(score(metric::inverse_hamming, probe, near),
            score(metric::inverse_hamming, probe, far));
  EXPECT_GT(score(metric::cosine, probe, near),
            score(metric::cosine, probe, far));
}

TEST(ScoreTest, InverseHammingScoreValue) {
  xoshiro256 rng(11);
  const auto a = hypervector::random(640, rng);
  const auto b = flip_random_bits(a, 40, rng);
  EXPECT_DOUBLE_EQ(score(metric::inverse_hamming, a, b), 600.0);
  EXPECT_DOUBLE_EQ(score(metric::cosine, a, b), 1.0 - 2.0 * 40.0 / 640.0);
}

}  // namespace
}  // namespace hdhash::hdc
