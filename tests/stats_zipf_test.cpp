#include "stats/zipf.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const zipf_sampler z(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    total += z.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  const zipf_sampler z(50, 0.8);
  for (std::size_t k = 1; k < z.size(); ++k) {
    EXPECT_GE(z.pmf(k - 1), z.pmf(k) - 1e-15);
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  const zipf_sampler z(10, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ClassicZipfHeadMass) {
  // With s = 1 and n = 2: p(0) = (1)/(1 + 1/2) = 2/3.
  const zipf_sampler z(2, 1.0);
  EXPECT_NEAR(z.pmf(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(z.pmf(1), 1.0 / 3.0, 1e-12);
}

TEST(ZipfTest, SamplesWithinRange) {
  const zipf_sampler z(37, 1.2);
  xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(z.sample(rng), 37u);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesTrackPmf) {
  const zipf_sampler z(8, 1.0);
  xoshiro256 rng(6);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(8, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[z.sample(rng)];
  }
  for (std::size_t k = 0; k < 8; ++k) {
    const double expected = z.pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 10.0)
        << "rank " << k;
  }
}

TEST(ZipfTest, InvalidParametersThrow) {
  EXPECT_THROW(zipf_sampler(0, 1.0), precondition_error);
  EXPECT_THROW(zipf_sampler(10, -0.5), precondition_error);
}

TEST(ZipfTest, RankOutOfRangeThrows) {
  const zipf_sampler z(3, 1.0);
  EXPECT_THROW(z.pmf(3), precondition_error);
}

}  // namespace
}  // namespace hdhash
