/// Sharded, double-buffered emulator: determinism against the
/// single-table reference, merge() accounting, shadow mirroring and
/// degenerate configurations.  These tests exercise real worker threads
/// and are the primary TSan target (-DHDHASH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <vector>

#include "emu/emulator.hpp"
#include "emu/generator.hpp"
#include "emu/sharded_emulator.hpp"
#include "exp/factory.hpp"
#include "exp/sharded.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 128;
  return options;
}

workload_config churn_workload() {
  workload_config config;
  config.initial_servers = 12;
  config.request_count = 4000;
  config.churn_rate = 0.02;
  config.seed = 11;
  return config;
}

sharded_emulator::table_factory factory_for(std::string_view algorithm) {
  return [algorithm](std::size_t) {
    return make_table(algorithm, fast_options());
  };
}

TEST(ShardedEmulatorTest, MergedStatsEqualSingleTableReference) {
  const generator gen(churn_workload());
  const auto events = gen.generate();
  for (const auto algorithm : {"consistent", "hd-hierarchical"}) {
    auto reference_table = make_table(algorithm, fast_options());
    emulator reference(*reference_table, 256);
    const run_stats expected = reference.run(events);

    for (const auto membership : {membership_mode::snapshot,
                                  membership_mode::replicated}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{4}}) {
        sharded_config config;
        config.shards = shards;
        config.membership = membership;
        sharded_emulator emu(factory_for(algorithm), config);
        const sharded_report report = emu.run(events);
        const char* mode =
            membership == membership_mode::snapshot ? "snapshot" : "replicated";
        EXPECT_EQ(report.merged.requests, expected.requests)
            << algorithm << " " << mode << " shards=" << shards;
        EXPECT_EQ(report.merged.joins, expected.joins)
            << algorithm << " " << mode << " shards=" << shards;
        EXPECT_EQ(report.merged.leaves, expected.leaves)
            << algorithm << " " << mode << " shards=" << shards;
        // The headline determinism guarantee: the merged per-server load
        // histogram is bit-identical to the single-table run.
        EXPECT_EQ(report.merged.load, expected.load)
            << algorithm << " " << mode << " shards=" << shards;
      }
    }
  }
}

TEST(ShardedEmulatorTest, PlacementPoliciesNeverChangeAssignments) {
  // The acceptance bar of the runtime layer: placement decides *where*
  // workers execute, never *what* they answer — the merged histogram is
  // bit-identical to the single-table reference under every policy at
  // 1–8 shards (snapshot membership, churny stream).
  const generator gen(churn_workload());
  const auto events = gen.generate();
  auto reference_table = make_table("hd-hierarchical", fast_options());
  emulator reference(*reference_table, 256);
  const run_stats expected = reference.run(events);

  for (const auto policy :
       {runtime::placement_policy::none, runtime::placement_policy::compact,
        runtime::placement_policy::scatter,
        runtime::placement_policy::smt_aware}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      sharded_config config;
      config.shards = shards;
      config.placement = policy;
      sharded_emulator emu(factory_for("hd-hierarchical"), config);
      const sharded_report report = emu.run(events);
      EXPECT_EQ(report.merged.load, expected.load)
          << runtime::to_string(policy) << " shards=" << shards;
      EXPECT_EQ(report.placement, policy);
      ASSERT_EQ(report.workers.size(), shards);
      for (const runtime::worker_info& worker : report.workers) {
        if (policy == runtime::placement_policy::none) {
          // `none` never even attempts the affinity call.
          EXPECT_FALSE(worker.pinned);
        }
        if (worker.pinned) {
          EXPECT_GE(worker.cpu, 0);
          EXPECT_GE(worker.node, 0);
        } else {
          EXPECT_EQ(worker.cpu, -1);
        }
      }
    }
  }
}

TEST(ShardedEmulatorTest, EveryShardReplicatesTheFullPool) {
  const generator gen(churn_workload());
  const auto events = gen.generate();
  sharded_config config;
  config.shards = 3;
  config.membership = membership_mode::replicated;
  sharded_emulator emu(factory_for("consistent"), config);
  const sharded_report report = emu.run(events);
  ASSERT_EQ(report.per_shard.size(), 3u);
  std::size_t shard_requests = 0;
  for (std::size_t s = 0; s < emu.shards(); ++s) {
    // Broadcast membership: every replica applied every join/leave.
    EXPECT_EQ(report.per_shard[s].joins, report.merged.joins);
    EXPECT_EQ(report.per_shard[s].leaves, report.merged.leaves);
    EXPECT_EQ(emu.table(s).server_count(),
              report.merged.joins - report.merged.leaves);
    shard_requests += report.per_shard[s].requests;
  }
  // Partitioned requests: each answered in exactly one shard.
  EXPECT_EQ(shard_requests, report.merged.requests);
}

TEST(ShardedEmulatorTest, ShadowOraclesSeeNoMismatch) {
  // In both membership modes an uncorrupted run must agree with its
  // shadow on every answer (the deeper conformance suite — corrupted
  // tables, bit-identical counts across modes — lives in
  // scenario_oracle_test.cpp).
  const generator gen(churn_workload());
  const auto events = gen.generate();
  for (const auto membership : {membership_mode::snapshot,
                                membership_mode::replicated}) {
    sharded_config config;
    config.shards = 4;
    config.shadow = true;
    config.membership = membership;
    sharded_emulator emu(factory_for("hd-hierarchical"), config);
    const sharded_report report = emu.run(events);
    EXPECT_GT(report.merged.requests, 0u);
    EXPECT_EQ(report.merged.mismatches, 0u);
    EXPECT_EQ(report.merged.invalid_assignments, 0u);
  }
}

TEST(ShardedEmulatorTest, DegenerateConfigurationsStillComplete) {
  workload_config workload = churn_workload();
  workload.request_count = 300;
  const generator gen(workload);
  const auto events = gen.generate();

  auto reference_table = make_table("consistent", fast_options());
  emulator reference(*reference_table, 256);
  const run_stats expected = reference.run(events);

  for (const auto membership : {membership_mode::snapshot,
                                membership_mode::replicated}) {
    for (const std::size_t buffer : {std::size_t{1}, std::size_t{7}}) {
      sharded_config config;
      config.shards = 2;
      config.buffer_capacity = buffer;  // every event its own batch, odd size
      config.membership = membership;
      sharded_emulator emu(factory_for("consistent"), config);
      const sharded_report report = emu.run(events);
      EXPECT_EQ(report.merged.load, expected.load) << "buffer=" << buffer;
    }
  }
}

TEST(ShardedEmulatorTest, RequestPartitionIsStable) {
  sharded_config config;
  config.shards = 8;
  sharded_emulator emu(factory_for("consistent"), config);
  for (request_id r = 1; r < 100; ++r) {
    const std::size_t shard = emu.shard_of(r);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, emu.shard_of(r));
  }
}

TEST(ShardedEmulatorTest, WorkerExceptionsPropagate) {
  // A leave for an unknown server faults inside a worker thread; the
  // error must surface on the calling thread, not crash the process.
  sharded_config config;
  config.shards = 2;
  sharded_emulator emu(factory_for("consistent"), config);
  const std::vector<event> events = {{event_kind::leave, 404}};
  EXPECT_THROW(emu.run(events), precondition_error);
}

TEST(ShardedEmulatorTest, MultiProducerMeshStaysDeterministic) {
  // The tentpole guarantee of the ingest mesh: M pinned producers
  // splitting the stream by index range, feeding lock-free SPSC lanes,
  // reproduce the single-table reference histogram bit for bit — the
  // epoch pre-scan sequences membership, so partitioning the request
  // stream cannot reorder anything observable.
  const generator gen(churn_workload());
  const auto events = gen.generate();
  auto reference_table = make_table("hd-hierarchical", fast_options());
  emulator reference(*reference_table, 256);
  const run_stats expected = reference.run(events);

  for (const std::size_t producers : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      sharded_config config;
      config.shards = shards;
      config.producers = producers;
      config.membership = membership_mode::snapshot;
      sharded_emulator emu(factory_for("hd-hierarchical"), config);
      const sharded_report report = emu.run(events);
      EXPECT_EQ(report.merged.load, expected.load)
          << "producers=" << producers << " shards=" << shards;
      EXPECT_EQ(report.merged.requests, expected.requests);
      EXPECT_EQ(report.merged.joins, expected.joins);
      EXPECT_EQ(report.merged.leaves, expected.leaves);
      // Worker layout: decode workers first, producer threads after.
      EXPECT_EQ(report.workers.size(), shards);
      EXPECT_EQ(report.producer_workers.size(), producers);
    }
  }
}

TEST(ShardedEmulatorTest, MutexChannelProducesIdenticalResults) {
  // --channel mutex is the A/B reference: swapping the channel
  // implementation must never change a single assignment, with one
  // producer or several.
  const generator gen(churn_workload());
  const auto events = gen.generate();
  auto reference_table = make_table("hd-hierarchical", fast_options());
  emulator reference(*reference_table, 256);
  const run_stats expected = reference.run(events);

  for (const std::size_t producers : {std::size_t{1}, std::size_t{2}}) {
    sharded_config config;
    config.shards = 2;
    config.producers = producers;
    config.channel = channel_kind::mutex;
    sharded_emulator emu(factory_for("hd-hierarchical"), config);
    const sharded_report report = emu.run(events);
    EXPECT_EQ(report.merged.load, expected.load) << "producers=" << producers;
    EXPECT_EQ(report.channel, channel_kind::mutex);
  }
}

TEST(ShardedEmulatorTest, MultiProducerSweepMatchesReference) {
  shard_sweep_config config;
  config.shard_counts = {1, 2};
  config.servers = 16;
  config.requests = 2000;
  config.churn_rate = 0.01;
  config.producers = 2;
  const auto series =
      run_shard_sweep("hd-hierarchical", config, fast_options());
  for (const shard_sweep_point& point : series) {
    EXPECT_TRUE(point.matches_reference) << "shards=" << point.shards;
    EXPECT_EQ(point.producers, 2u);
  }
}

TEST(ShardedEmulatorTest, RejectsInvalidConfiguration) {
  sharded_config zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(sharded_emulator(factory_for("consistent"), zero_shards),
               precondition_error);
  sharded_config zero_buffer;
  zero_buffer.buffer_capacity = 0;
  EXPECT_THROW(sharded_emulator(factory_for("consistent"), zero_buffer),
               precondition_error);
  sharded_config zero_producers;
  zero_producers.producers = 0;
  EXPECT_THROW(sharded_emulator(factory_for("consistent"), zero_producers),
               precondition_error);
  // Replicated membership broadcasts events in stream order — that
  // needs the single-producer pipeline.
  sharded_config multi_replicated;
  multi_replicated.producers = 2;
  multi_replicated.membership = membership_mode::replicated;
  EXPECT_THROW(sharded_emulator(factory_for("consistent"), multi_replicated),
               precondition_error);
  sharded_config zero_depth;
  zero_depth.channel_depth = 0;
  EXPECT_THROW(sharded_emulator(factory_for("consistent"), zero_depth),
               precondition_error);
}

TEST(RunStatsMergeTest, SumsCountersAndLoadHistograms) {
  run_stats a;
  a.requests = 10;
  a.joins = 2;
  a.leaves = 1;
  a.batches = 3;
  a.mismatches = 4;
  a.invalid_assignments = 1;
  a.total_request_ns = 50.0;
  a.load[7] = 6;
  a.load[9] = 4;
  run_stats b;
  b.requests = 5;
  b.batches = 1;
  b.total_request_ns = 25.0;
  b.load[9] = 2;
  b.load[11] = 3;

  const std::vector<run_stats> parts = {a, b};
  const run_stats merged = merge(parts);
  EXPECT_EQ(merged.requests, 15u);
  EXPECT_EQ(merged.joins, 2u);
  EXPECT_EQ(merged.leaves, 1u);
  EXPECT_EQ(merged.batches, 4u);
  EXPECT_EQ(merged.mismatches, 4u);
  EXPECT_EQ(merged.invalid_assignments, 1u);
  EXPECT_DOUBLE_EQ(merged.total_request_ns, 75.0);
  EXPECT_EQ(merged.load.at(7), 6u);
  EXPECT_EQ(merged.load.at(9), 6u);
  EXPECT_EQ(merged.load.at(11), 3u);
  EXPECT_DOUBLE_EQ(merged.avg_request_ns(), 5.0);
}

TEST(ShardSweepDriverTest, SweepIsDeterministicAtEveryShardCount) {
  shard_sweep_config config;
  config.shard_counts = {1, 2, 4};
  config.servers = 16;
  config.requests = 3000;
  config.churn_rate = 0.01;
  const auto series =
      run_shard_sweep("hd-hierarchical", config, fast_options());
  ASSERT_EQ(series.size(), 3u);
  for (const shard_sweep_point& point : series) {
    EXPECT_TRUE(point.matches_reference) << "shards=" << point.shards;
    EXPECT_EQ(point.merged.requests, 3000u);
    EXPECT_GT(point.aggregate_requests_per_second, 0.0);
    EXPECT_GT(point.wall_requests_per_second, 0.0);
  }
  EXPECT_DOUBLE_EQ(series[0].aggregate_speedup, 1.0);
}

}  // namespace
}  // namespace hdhash
