#include "util/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(Splitmix64Test, MatchesReferenceSequence) {
  // Reference outputs of SplitMix64 seeded with 0 (Vigna's splitmix64.c).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
}

TEST(Splitmix64Test, AdvancesState) {
  std::uint64_t state = 123;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 123u);
}

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  xoshiro256 a(42);
  xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  xoshiro256 a(1);
  xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, ZeroSeedIsUsable) {
  xoshiro256 rng(0);
  // SplitMix64 seeding guarantees a non-degenerate state.
  EXPECT_NE(rng(), 0u);
}

TEST(Xoshiro256Test, JumpChangesStream) {
  xoshiro256 a(9);
  xoshiro256 b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(UniformBelowTest, AlwaysWithinBound) {
  xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(uniform_below(rng, bound), bound);
    }
  }
}

TEST(UniformBelowTest, BoundOneAlwaysZero) {
  xoshiro256 rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(uniform_below(rng, 1), 0u);
  }
}

TEST(UniformBelowTest, ZeroBoundThrows) {
  xoshiro256 rng(1);
  EXPECT_THROW(uniform_below(rng, 0), precondition_error);
}

TEST(UniformBelowTest, CoversAllResidues) {
  xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(uniform_below(rng, 7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(UniformBelowTest, RoughlyUniform) {
  xoshiro256 rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[uniform_below(rng, kBound)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(UniformUnitTest, WithinHalfOpenInterval) {
  xoshiro256 rng(21);
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform_unit(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformUnitTest, MeanNearHalf) {
  xoshiro256 rng(22);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += uniform_unit(rng);
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(SampleDistinctTest, ProducesDistinctValuesInRange) {
  xoshiro256 rng(31);
  const auto sample = sample_distinct(rng, 1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const std::size_t v : sample) {
    EXPECT_LT(v, 1000u);
  }
}

TEST(SampleDistinctTest, FullUniverseIsPermutation) {
  xoshiro256 rng(32);
  const auto sample = sample_distinct(rng, 64, 64);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 64u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 63u);
}

TEST(SampleDistinctTest, CountZeroIsEmpty) {
  xoshiro256 rng(33);
  EXPECT_TRUE(sample_distinct(rng, 10, 0).empty());
}

TEST(SampleDistinctTest, OverdrawThrows) {
  xoshiro256 rng(34);
  EXPECT_THROW(sample_distinct(rng, 5, 6), precondition_error);
}

TEST(SampleDistinctTest, UniformCoverage) {
  // Each index of a universe of 20 should be picked ~ count/universe of
  // the time over many trials.
  xoshiro256 rng(35);
  std::vector<int> hits(20, 0);
  constexpr int kTrials = 20'000;
  for (int t = 0; t < kTrials; ++t) {
    for (const std::size_t v : sample_distinct(rng, 20, 5)) {
      ++hits[v];
    }
  }
  for (const int h : hits) {
    EXPECT_NEAR(h, kTrials / 4, 400);
  }
}

TEST(ShuffleTest, ProducesPermutationDeterministically) {
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> copy = items;
  xoshiro256 rng_a(77);
  xoshiro256 rng_b(77);
  shuffle(rng_a, items);
  shuffle(rng_b, copy);
  EXPECT_EQ(items, copy);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(ShuffleTest, EmptyAndSingletonAreNoops) {
  std::vector<int> empty;
  std::vector<int> one{42};
  xoshiro256 rng(1);
  shuffle(rng, empty);
  shuffle(rng, one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one.front(), 42);
}

}  // namespace
}  // namespace hdhash
