#include "stats/chi_squared.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(ChiSquaredStatisticTest, PerfectlyUniformIsZero) {
  const std::vector<std::uint64_t> counts{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(chi_squared_statistic_uniform(counts), 0.0);
}

TEST(ChiSquaredStatisticTest, HandComputedExample) {
  // counts {10, 20, 30}: E = 20; chi2 = (100 + 0 + 100)/20 = 10.
  const std::vector<std::uint64_t> counts{10, 20, 30};
  EXPECT_DOUBLE_EQ(chi_squared_statistic_uniform(counts), 10.0);
}

TEST(ChiSquaredStatisticTest, SingleBinIsZero) {
  const std::vector<std::uint64_t> counts{42};
  EXPECT_DOUBLE_EQ(chi_squared_statistic_uniform(counts), 0.0);
}

TEST(ChiSquaredStatisticTest, AllMassInOneBin) {
  // counts {N, 0}: E = N/2; chi2 = 2 * (N/2)^2 / (N/2) = N.
  const std::vector<std::uint64_t> counts{1000, 0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic_uniform(counts), 1000.0);
}

TEST(ChiSquaredStatisticTest, EmptyOrZeroTotalThrows) {
  EXPECT_THROW(chi_squared_statistic_uniform({}), precondition_error);
  const std::vector<std::uint64_t> zeros{0, 0};
  EXPECT_THROW(chi_squared_statistic_uniform(zeros), precondition_error);
}

TEST(ChiSquaredSurvivalTest, MatchesCriticalValueTables) {
  // Standard critical values at alpha = 0.05.
  EXPECT_NEAR(chi_squared_survival(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(chi_squared_survival(5.991, 2), 0.05, 1e-3);
  EXPECT_NEAR(chi_squared_survival(18.307, 10), 0.05, 1e-3);
}

TEST(ChiSquaredSurvivalTest, TwoDofIsExponential) {
  for (const double x : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(chi_squared_survival(x, 2), std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquaredSurvivalTest, ZeroStatisticIsCertain) {
  EXPECT_DOUBLE_EQ(chi_squared_survival(0.0, 5), 1.0);
}

TEST(ChiSquaredSurvivalTest, InvalidArgumentsThrow) {
  EXPECT_THROW(chi_squared_survival(-1.0, 2), precondition_error);
  EXPECT_THROW(chi_squared_survival(1.0, 0), precondition_error);
}

TEST(ChiSquaredUniformTest, FullResultFields) {
  const std::vector<std::uint64_t> counts{50, 50, 50, 50, 50};
  const auto result = chi_squared_uniform(counts);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.degrees_of_freedom, 4.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquaredUniformTest, SkewedCountsRejectUniformity) {
  const std::vector<std::uint64_t> counts{400, 100, 100, 100, 100, 100,
                                          100, 100, 100, 100};
  const auto result = chi_squared_uniform(counts);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquaredUniformTest, PlausiblyUniformSampleAccepted) {
  const std::vector<std::uint64_t> counts{98, 105, 102, 95, 100};
  EXPECT_GT(chi_squared_uniform(counts).p_value, 0.5);
}

}  // namespace
}  // namespace hdhash
