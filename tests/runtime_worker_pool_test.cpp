/// placement_plan policy → CPU mapping on canned topologies, auto
/// shard sizing, and the pinned worker_pool's execution contract
/// (per-worker FIFO, cross-worker concurrency, error propagation,
/// graceful pinning degradation).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "runtime/worker_pool.hpp"
#include "util/require.hpp"

namespace hdhash::runtime {
namespace {

/// Hand-built topologies (no sysfs involved): the placement mapping is
/// a pure function of the topology object, so tests construct exactly
/// the shapes they assert about.
logical_cpu make_cpu(unsigned id, unsigned package, unsigned core,
                     unsigned node, bool allowed = true) {
  logical_cpu cpu;
  cpu.id = id;
  cpu.package = package;
  cpu.core = core;
  cpu.node = node;
  cpu.allowed = allowed;
  return cpu;
}

/// 1 socket, 4 cores, SMT-2: cpu0-3 thread 0 of cores 0-3, cpu4-7
/// their hyper-twins (the kernel's usual numbering).
cpu_topology smt_box() {
  std::vector<logical_cpu> cpus;
  for (unsigned id = 0; id < 8; ++id) {
    cpus.push_back(make_cpu(id, 0, id % 4, 0));
  }
  return cpu_topology::from_cpus(std::move(cpus));
}

/// 2 sockets × 2 cores × SMT-2, one NUMA node per socket; cpu0-3
/// thread 0 (node 0: cores 0-1, node 1: cores 0-1), cpu4-7 thread 1.
cpu_topology dual_node_smt_box() {
  std::vector<logical_cpu> cpus;
  for (unsigned id = 0; id < 8; ++id) {
    const unsigned package = (id % 4) / 2;
    cpus.push_back(make_cpu(id, package, id % 2, package));
  }
  return cpu_topology::from_cpus(std::move(cpus));
}

std::vector<int> planned_cpus(const placement_plan& plan) {
  std::vector<int> cpus;
  for (const worker_placement& w : plan.workers) {
    cpus.push_back(w.cpu);
  }
  return cpus;
}

TEST(PlacementPolicyNamesTest, RoundTrip) {
  for (const auto policy :
       {placement_policy::none, placement_policy::compact,
        placement_policy::scatter, placement_policy::smt_aware}) {
    const auto parsed = parse_placement_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(parse_placement_policy("smt_aware"), placement_policy::smt_aware);
  EXPECT_FALSE(parse_placement_policy("pinned").has_value());
  EXPECT_FALSE(parse_placement_policy("").has_value());
}

TEST(PlacementPlanTest, NonePinsNothing) {
  const placement_plan plan =
      plan_placement(smt_box(), 4, placement_policy::none);
  EXPECT_EQ(plan.workers.size(), 4u);
  for (const worker_placement& w : plan.workers) {
    EXPECT_EQ(w.cpu, -1);
    EXPECT_EQ(w.node, -1);
  }
  EXPECT_FALSE(plan.oversubscribed);
}

TEST(PlacementPlanTest, CompactFillsCpusInOrderOnFlatTopology) {
  const placement_plan plan =
      plan_placement(cpu_topology::flat(4), 4, placement_policy::compact);
  EXPECT_EQ(planned_cpus(plan), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(plan.oversubscribed);
}

TEST(PlacementPlanTest, CompactKeepsSmtSiblingsAdjacent) {
  // SMT box: cores (0,4) (1,5) (2,6) (3,7) — compact fills a core's
  // two hardware threads together before moving to the next core.
  const placement_plan plan =
      plan_placement(smt_box(), 8, placement_policy::compact);
  EXPECT_EQ(planned_cpus(plan),
            (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
}

TEST(PlacementPlanTest, SmtAwareUsesEveryPhysicalCoreFirst) {
  // Thread 0 of every core before any hyper-twin.
  const placement_plan plan =
      plan_placement(smt_box(), 8, placement_policy::smt_aware);
  EXPECT_EQ(planned_cpus(plan),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Four workers on four cores: no core doubled up.
  const placement_plan four =
      plan_placement(smt_box(), 4, placement_policy::smt_aware);
  EXPECT_EQ(planned_cpus(four), (std::vector<int>{0, 1, 2, 3}));
}

TEST(PlacementPlanTest, CompactFillsOneNodeBeforeTheNext) {
  const placement_plan plan =
      plan_placement(dual_node_smt_box(), 8, placement_policy::compact);
  EXPECT_EQ(planned_cpus(plan),
            (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
  // First four workers never leave node 0.
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(plan.workers[w].node, 0) << "worker " << w;
  }
}

TEST(PlacementPlanTest, ScatterRoundRobinsAcrossNodes) {
  const placement_plan plan =
      plan_placement(dual_node_smt_box(), 8, placement_policy::scatter);
  EXPECT_EQ(planned_cpus(plan),
            (std::vector<int>{0, 2, 1, 3, 4, 6, 5, 7}));
  // Consecutive workers alternate memory controllers.
  for (std::size_t w = 0; w + 1 < 8; ++w) {
    EXPECT_NE(plan.workers[w].node, plan.workers[w + 1].node)
        << "workers " << w << "," << w + 1;
  }
}

TEST(PlacementPlanTest, OnlyAllowedCpusAreAssigned) {
  // cgroup-restricted box: of the SMT shape only cpus {1, 5, 2} may
  // run; every policy confines itself to (and wraps within) those.
  std::vector<logical_cpu> cpus;
  for (unsigned id = 0; id < 8; ++id) {
    cpus.push_back(
        make_cpu(id, 0, id % 4, 0, id == 1 || id == 5 || id == 2));
  }
  const cpu_topology topology = cpu_topology::from_cpus(std::move(cpus));
  for (const auto policy :
       {placement_policy::compact, placement_policy::scatter,
        placement_policy::smt_aware}) {
    const placement_plan plan = plan_placement(topology, 5, policy);
    EXPECT_TRUE(plan.oversubscribed);
    for (const worker_placement& w : plan.workers) {
      EXPECT_TRUE(w.cpu == 1 || w.cpu == 5 || w.cpu == 2)
          << to_string(policy) << " assigned cpu " << w.cpu;
    }
  }
  // compact keeps core 1's siblings (1, 5) adjacent, then cpu2, wrap.
  const placement_plan compact =
      plan_placement(topology, 5, placement_policy::compact);
  EXPECT_EQ(planned_cpus(compact), (std::vector<int>{1, 5, 2, 1, 5}));
}

TEST(PlacementPlanTest, WrapsAroundWhenOversubscribed) {
  const placement_plan plan =
      plan_placement(cpu_topology::flat(2), 5, placement_policy::compact);
  EXPECT_EQ(planned_cpus(plan), (std::vector<int>{0, 1, 0, 1, 0}));
  EXPECT_TRUE(plan.oversubscribed);
}

TEST(PlacementPlanTest, AutoShardCountReservesProducerCore) {
  EXPECT_EQ(auto_shard_count(cpu_topology::flat(1)), 1u);
  EXPECT_EQ(auto_shard_count(cpu_topology::flat(2)), 2u);
  // More than two cores: one is left for the producer thread.
  EXPECT_EQ(auto_shard_count(cpu_topology::flat(4)), 3u);
  EXPECT_EQ(auto_shard_count(cpu_topology::flat(16)), 15u);
}

TEST(WorkerPoolTest, RunsJobsOnEveryWorker) {
  worker_pool pool(4, placement_policy::none, cpu_topology::flat(4));
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> counts(4);
  for (std::size_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) {
      pool.submit(w, [&counts, w] { counts[w].fetch_add(1); });
    }
  }
  pool.wait_idle();
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(counts[w].load(), 10);
  }
}

TEST(WorkerPoolTest, JobsOnOneWorkerAreFifo) {
  worker_pool pool(1, placement_policy::none, cpu_topology::flat(1));
  std::vector<int> order;  // only worker 0 writes; read after wait_idle
  for (int i = 0; i < 100; ++i) {
    pool.submit(0, [&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(WorkerPoolTest, FirstJobExceptionSurfacesFromWaitIdle) {
  worker_pool pool(2, placement_policy::none, cpu_topology::flat(2));
  std::atomic<int> later_jobs{0};
  pool.submit(1, [] { throw precondition_error("boom"); });
  // Subsequent jobs still run — a faulted worker keeps draining (the
  // channel-drain protocols of the sharded emulator depend on it).
  pool.submit(1, [&later_jobs] { later_jobs.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), precondition_error);
  EXPECT_EQ(later_jobs.load(), 1);
  // The error was consumed: the pool is reusable afterwards.
  pool.submit(0, [&later_jobs] { later_jobs.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(later_jobs.load(), 2);
}

TEST(WorkerPoolTest, PinnedWorkersReportTheirPlannedCpu) {
  // On the host topology with compact placement, every worker either
  // pinned to its planned CPU (and reports cpu/node >= 0) or degraded
  // gracefully (reports unpinned) — both are legal; inconsistent
  // reporting is not.
  worker_pool pool(2, placement_policy::compact);
  const placement_plan& plan = pool.plan();
  ASSERT_EQ(plan.workers.size(), 2u);
  for (std::size_t w = 0; w < pool.size(); ++w) {
    const worker_info& info = pool.info(w);
    if (info.pinned) {
      EXPECT_TRUE(worker_pool::pinning_supported());
      EXPECT_EQ(info.cpu, plan.workers[w].cpu);
      EXPECT_EQ(info.node, plan.workers[w].node);
    } else {
      EXPECT_EQ(info.cpu, -1);
      EXPECT_EQ(info.node, -1);
    }
  }
}

TEST(WorkerPoolTest, PolicyNoneNeverPins) {
  worker_pool pool(2, placement_policy::none);
  EXPECT_FALSE(pool.any_pinned());
  for (std::size_t w = 0; w < pool.size(); ++w) {
    EXPECT_FALSE(pool.info(w).pinned);
  }
}

TEST(WorkerPoolTest, RejectsInvalidUse) {
  EXPECT_THROW(worker_pool(0, placement_policy::none, cpu_topology::flat(1)),
               precondition_error);
  worker_pool pool(1, placement_policy::none, cpu_topology::flat(1));
  EXPECT_THROW(pool.submit(1, [] {}), precondition_error);
  EXPECT_THROW(pool.submit(0, nullptr), precondition_error);
}

TEST(WorkerPoolTest, HostTopologyIsCachedAndUsable) {
  const cpu_topology& first = host_topology();
  const cpu_topology& second = host_topology();
  EXPECT_EQ(&first, &second);  // one discovery per process
  EXPECT_GE(first.allowed_cpus().size(), 1u);
}

}  // namespace
}  // namespace hdhash::runtime
