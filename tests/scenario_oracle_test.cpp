/// Shadow-oracle conformance: snapshot-mode shadows (a pristine twin
/// publisher advancing epochs in lockstep) must produce mismatch and
/// invalid-assignment counts bit-identical to the replicated-mode
/// per-shard clones, with and without fault injection — the property
/// that lets robustness scenarios run on the default snapshot
/// architecture.  Spins worker threads; runs in the TSan lane.
#include <gtest/gtest.h>

#include <vector>

#include "emu/sharded_emulator.hpp"
#include "exp/factory.hpp"
#include "fault/injector.hpp"
#include "scenario/playbooks.hpp"
#include "scenario/scenario.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 128;
  return options;
}

scenario_tuning small_tuning() {
  scenario_tuning tuning;
  tuning.phase_ticks = 32;
  tuning.base_rate = 24.0;
  tuning.servers = 16;
  tuning.rack_size = 4;
  tuning.seed = 13;
  return tuning;
}

/// The conformance workload: a churny playbook compiled unweighted (so
/// any algorithm replays it), split into the initial join burst — which
/// the factory pre-applies, putting real membership into the tables
/// *before* shadow cloning and corruption — and the live remainder.
struct oracle_workload {
  compiled_scenario compiled;
  std::span<const event> live;

  explicit oracle_workload(const char* playbook)
      : compiled(compile_scenario(make_scenario(playbook, small_tuning()),
                                  /*weighted=*/false)),
        live(std::span<const event>(compiled.events)
                 .subspan(compiled.phases.front().first_event)) {}

  sharded_emulator::table_factory factory(std::string_view algorithm) const {
    const std::span<const event> burst =
        std::span<const event>(compiled.events)
            .first(compiled.phases.front().first_event);
    return [algorithm, burst](std::size_t) {
      auto table = make_table(algorithm, fast_options());
      for (const event& e : burst) {
        table->join(e.id, e.weight);
      }
      return table;
    };
  }
};

/// Deterministic SEU corruption: every table this hook touches — each
/// replicated-mode replica, the snapshot-mode publisher table — gets
/// the identical flip set, because the injector is seeded off a
/// constant, not the shard index.
void corrupt_table(dynamic_table& table, std::size_t flips) {
  bit_flip_injector injector(0xFA11);
  injector.inject_random(table, flips);
}

TEST(ScenarioOracleTest, CleanSnapshotShadowSeesNoMismatch) {
  const oracle_workload workload("rack-failure");
  sharded_config config;
  config.shards = 2;
  config.shadow = true;
  config.membership = membership_mode::snapshot;
  sharded_emulator emu(workload.factory("hd"), config);
  const sharded_report report = emu.run(workload.live);
  EXPECT_EQ(report.merged.requests, workload.compiled.requests);
  EXPECT_EQ(report.merged.mismatches, 0u);
  EXPECT_EQ(report.merged.invalid_assignments, 0u);
}

TEST(ScenarioOracleTest, CorruptionIsCountedAgainstThePristineShadow) {
  const oracle_workload workload("rack-failure");
  sharded_config config;
  config.shards = 2;
  config.shadow = true;
  config.membership = membership_mode::snapshot;
  config.corrupt = [](dynamic_table& table, std::size_t) {
    corrupt_table(table, 24);
  };
  sharded_emulator emu(workload.factory("consistent-rank"), config);
  const sharded_report report = emu.run(workload.live);
  EXPECT_EQ(report.merged.requests, workload.compiled.requests);
  // 24 flips in a 16-server ring visibly remap rank-resolved lookups;
  // the shadow (cloned before the corrupt hook ran) catches them.
  EXPECT_GT(report.merged.mismatches, 0u);
  EXPECT_LE(report.merged.invalid_assignments, report.merged.mismatches);
}

TEST(ScenarioOracleTest, SnapshotCountsMatchReplicatedBitForBit) {
  // The acceptance bar: at 1–8 shards, the snapshot-mode mismatch /
  // invalid-assignment counts equal the replicated-mode reference
  // exactly — merged and per shard (request routing is mode-invariant,
  // so per-shard totals must line up too).
  const oracle_workload workload("rack-failure");
  for (const char* algorithm : {"consistent-rank", "hd"}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      sharded_config config;
      config.shards = shards;
      config.shadow = true;
      config.corrupt = [](dynamic_table& table, std::size_t) {
        corrupt_table(table, 24);
      };

      config.membership = membership_mode::snapshot;
      sharded_emulator snap(workload.factory(algorithm), config);
      const sharded_report snap_report = snap.run(workload.live);

      config.membership = membership_mode::replicated;
      sharded_emulator repl(workload.factory(algorithm), config);
      const sharded_report repl_report = repl.run(workload.live);

      EXPECT_EQ(snap_report.merged.requests, repl_report.merged.requests)
          << algorithm << " shards=" << shards;
      EXPECT_EQ(snap_report.merged.mismatches, repl_report.merged.mismatches)
          << algorithm << " shards=" << shards;
      EXPECT_EQ(snap_report.merged.invalid_assignments,
                repl_report.merged.invalid_assignments)
          << algorithm << " shards=" << shards;
      ASSERT_EQ(snap_report.per_shard.size(), repl_report.per_shard.size());
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(snap_report.per_shard[s].mismatches,
                  repl_report.per_shard[s].mismatches)
            << algorithm << " shard " << s << "/" << shards;
        EXPECT_EQ(snap_report.per_shard[s].invalid_assignments,
                  repl_report.per_shard[s].invalid_assignments)
            << algorithm << " shard " << s << "/" << shards;
        EXPECT_EQ(snap_report.per_shard[s].requests,
                  repl_report.per_shard[s].requests)
            << algorithm << " shard " << s << "/" << shards;
      }
      if (algorithm == std::string_view("consistent-rank")) {
        // The corrupted rank table must actually diverge — a zero count
        // on both sides would make this conformance check vacuous.
        EXPECT_GT(snap_report.merged.mismatches, 0u)
            << algorithm << " shards=" << shards;
      }
    }
  }
}

TEST(ScenarioOracleTest, ShadowStaysPristineAcrossEpochChurn) {
  // Post-burst churn (the rack failing, replacements joining) advances
  // both publishers; corruption before the run must never leak into the
  // shadow's later epochs through the copy-on-write rows.  hd decodes
  // through its corrupted item memory yet the run completes with every
  // answer checked; the count is deterministic for the fixed seed.
  const oracle_workload workload("rack-failure");
  sharded_config config;
  config.shards = 4;
  config.shadow = true;
  config.membership = membership_mode::snapshot;
  config.corrupt = [](dynamic_table& table, std::size_t) {
    corrupt_table(table, 512);
  };
  sharded_emulator emu(workload.factory("hd"), config);
  const sharded_report first = emu.run(workload.live);

  sharded_emulator again(workload.factory("hd"), config);
  const sharded_report second = again.run(workload.live);
  EXPECT_EQ(first.merged.requests, second.merged.requests);
  EXPECT_EQ(first.merged.mismatches, second.merged.mismatches);
  EXPECT_EQ(first.merged.invalid_assignments,
            second.merged.invalid_assignments);
}

}  // namespace
}  // namespace hdhash
