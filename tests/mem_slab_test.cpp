/// slab_cache (src/mem/slab_cache.hpp): depot-only mode (the exact
/// legacy buffer_pool LIFO semantics), per-thread magazine hits,
/// flush-half overflow, thread-exit flush through the shared depot,
/// the buffer_pool adapter, and multi-threaded reuse — the latter a
/// TSan target (-DHDHASH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "emu/buffer_pool.hpp"
#include "mem/slab_cache.hpp"

namespace hdhash {
namespace {

mem::slab_options depot_only() {
  mem::slab_options options;
  options.magazine_capacity = 0;
  return options;
}

TEST(SlabCacheTest, DepotModeIsASharedLifoStack) {
  mem::slab_cache<int> cache(depot_only());
  int out = 0;
  EXPECT_FALSE(cache.take(out));  // empty cache: construct fresh
  cache.recycle(1);
  cache.recycle(2);
  cache.recycle(3);
  EXPECT_EQ(cache.size(), 3u);
  // LIFO: the warmest (most recently recycled) object comes back first.
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(cache.take(out));
  const mem::slab_stats stats = cache.stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.takes, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.depot_hits, 3u);
  EXPECT_EQ(stats.magazine_hits, 0u);
}

TEST(SlabCacheTest, MagazinesServeTheOwningThreadWithoutTheDepot) {
  mem::slab_cache<int> cache;  // default: magazines on
  cache.recycle(42);
  int out = 0;
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 42);
  const mem::slab_stats stats = cache.stats();
  EXPECT_EQ(stats.magazine_hits, 1u);
  EXPECT_EQ(stats.depot_hits, 0u);
  EXPECT_EQ(stats.depot_size, 0u);  // never touched the shared stack
}

TEST(SlabCacheTest, FullMagazineFlushesItsOlderHalfToTheDepot) {
  mem::slab_options options;
  options.magazine_capacity = 4;
  mem::slab_cache<int> cache(options);
  for (int i = 1; i <= 5; ++i) {
    cache.recycle(int{i});  // the fifth recycle overflows the magazine
  }
  EXPECT_EQ(cache.size(), 5u);  // nothing lost
  const mem::slab_stats stats = cache.stats();
  EXPECT_EQ(stats.depot_size, 2u);  // the *older* half moved out
  // The magazine kept the warmest objects: 5 comes back first.
  int out = 0;
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 5);
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 4);
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 3);
  // Magazine dry: the depot serves the flushed older half.
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 1);
}

TEST(SlabCacheTest, ThreadExitFlushesItsMagazineToTheDepot) {
  mem::slab_cache<int> cache;  // magazines on
  std::thread worker([&] { cache.recycle(7); });
  worker.join();
  // The worker's magazine flushed on thread exit: its object is now
  // visible to every other thread through the depot.
  int out = 0;
  ASSERT_TRUE(cache.take(out));
  EXPECT_EQ(out, 7);
  EXPECT_EQ(cache.stats().depot_hits, 1u);
}

TEST(SlabCacheTest, ThreadExitAfterCacheDestructionIsSafe) {
  // A magazine pins the depot via shared_ptr, so a thread outliving the
  // cache flushes into still-alive memory (ASan proves it).
  auto cache = std::make_unique<mem::slab_cache<std::vector<int>>>();
  std::mutex mutex;
  std::condition_variable cv;
  bool recycled = false;
  bool destroyed = false;
  std::thread worker([&] {
    cache->recycle(std::vector<int>(64, 1));
    {
      const std::lock_guard lock(mutex);
      recycled = true;
    }
    cv.notify_all();
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return destroyed; });
    // thread exit: magazine dtor flushes into the (still live) depot
  });
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return recycled; });
  }
  cache.reset();
  {
    const std::lock_guard lock(mutex);
    destroyed = true;
  }
  cv.notify_all();
  worker.join();
}

TEST(SlabCacheTest, DistinctCachesNeverShareMagazines) {
  // Magazines are keyed by a monotonic cache id, so a new cache cannot
  // inherit a destroyed cache's thread-local stash.
  auto first = std::make_unique<mem::slab_cache<int>>();
  first->recycle(1);
  first.reset();
  mem::slab_cache<int> second;
  int out = 0;
  EXPECT_FALSE(second.take(out));
}

TEST(SlabCacheTest, CrossThreadRoundTripUnderLoad) {
  // The ingest-mesh shape: worker threads recycle, a producer takes.
  // Depot-only mode makes every recycle immediately visible.
  mem::slab_cache<std::vector<int>> cache(depot_only());
  constexpr int kWorkers = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&cache] {
      for (int i = 0; i < kRounds; ++i) {
        std::vector<int> buffer;
        if (!cache.take(buffer)) {
          buffer.reserve(32);
        }
        buffer.clear();
        buffer.push_back(i);
        cache.recycle(std::move(buffer));
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const mem::slab_stats stats = cache.stats();
  EXPECT_EQ(stats.puts, static_cast<std::uint64_t>(kWorkers) * kRounds);
  EXPECT_EQ(stats.takes + stats.misses,
            static_cast<std::uint64_t>(kWorkers) * kRounds);
  EXPECT_EQ(cache.size(), stats.puts - stats.takes);
}

TEST(BufferPoolTest, AdapterPreservesTheLegacyRecycleTakeContract) {
  buffer_pool<std::vector<int>> pool;
  std::vector<int> batch;
  EXPECT_FALSE(pool.take(batch));
  EXPECT_EQ(pool.size(), 0u);

  std::vector<int> first(100, 1);
  const int* storage = first.data();
  pool.recycle(std::move(first));
  EXPECT_EQ(pool.size(), 1u);

  std::vector<int> reused;
  ASSERT_TRUE(pool.take(reused));
  // The round-trip hands back the same buffer — capacity (and NUMA
  // placement) survives the recycle.
  EXPECT_EQ(reused.data(), storage);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolTest, RecycleFromAnotherThreadIsImmediatelyTakeable) {
  buffer_pool<std::vector<int>> pool;
  std::thread consumer([&] { pool.recycle(std::vector<int>(8, 3)); });
  consumer.join();
  std::vector<int> batch;
  ASSERT_TRUE(pool.take(batch));
  EXPECT_EQ(batch.size(), 8u);
  EXPECT_EQ(pool.stats().depot_hits, 1u);
}

}  // namespace
}  // namespace hdhash
