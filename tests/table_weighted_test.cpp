/// Weighted-membership suite: the v2 join(server, weight) contract.
///
/// Correctness: weight accessors round-trip, unweighted algorithms
/// reject non-unit weights, weight 1 is the default everywhere.
///
/// Statistics: a Pearson χ² comparison shows each weighted algorithm
/// skews load *proportionally* to weight — the observed per-server
/// counts must fit the weight-proportional expectation far better than
/// the uniform expectation, and for the natively weighted algorithm
/// (weighted-rendezvous, where P[s wins] is exactly proportional) the
/// fit must also pass an absolute χ² goodness-of-fit bar.
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/factory.hpp"
#include "exp/table_spec.hpp"
#include "hashing/splitmix_hash.hpp"
#include "stats/chi_squared.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 2048;
  options.hd.capacity = 512;
  options.maglev_table_size = 4099;
  return options;
}

struct weighted_member {
  server_id server;
  double weight;
};

/// Routes `requests` pseudo-random ids and returns per-member counts in
/// pool order.
std::vector<std::uint64_t> measure_loads(const dynamic_table& table,
                                         const std::vector<weighted_member>& pool,
                                         std::size_t requests,
                                         std::uint64_t seed) {
  std::vector<request_id> block;
  block.reserve(requests);
  xoshiro256 rng(seed);
  for (std::size_t i = 0; i < requests; ++i) {
    block.push_back(splitmix_hash::mix(rng()));
  }
  const std::vector<server_id> answers = table.lookup_batch(block);
  std::map<server_id, std::uint64_t> counts;
  for (const server_id s : answers) {
    ++counts[s];
  }
  std::vector<std::uint64_t> loads;
  loads.reserve(pool.size());
  for (const weighted_member& m : pool) {
    loads.push_back(counts[m.server]);
  }
  return loads;
}

/// Pearson χ² of observed loads against expectations proportional to
/// `shares` (normalized internally).
double chi_squared_against(const std::vector<std::uint64_t>& loads,
                           const std::vector<double>& shares) {
  double total_load = 0.0;
  double total_share = 0.0;
  for (const std::uint64_t c : loads) {
    total_load += static_cast<double>(c);
  }
  for (const double s : shares) {
    total_share += s;
  }
  double chi = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double expected = total_load * shares[i] / total_share;
    const double diff = static_cast<double>(loads[i]) - expected;
    chi += diff * diff / expected;
  }
  return chi;
}

/// The proportionality assertion shared by the weighted algorithms:
/// the weight-proportional model must explain the observed loads far
/// better than the uniform model, and every weight class must receive
/// more load than the next lighter one.
void expect_proportional_loads(std::string_view algorithm,
                               const std::vector<weighted_member>& pool,
                               const std::vector<std::uint64_t>& loads,
                               double fit_ratio) {
  std::vector<double> weighted_shares;
  std::vector<double> uniform_shares(pool.size(), 1.0);
  for (const weighted_member& m : pool) {
    weighted_shares.push_back(m.weight);
  }
  const double chi_weighted = chi_squared_against(loads, weighted_shares);
  const double chi_uniform = chi_squared_against(loads, uniform_shares);
  EXPECT_LT(chi_weighted * fit_ratio, chi_uniform)
      << algorithm << ": weighted fit " << chi_weighted << " vs uniform "
      << chi_uniform;

  // Aggregate per weight class: heavier classes must carry more load
  // per member.
  std::map<double, std::pair<double, double>> per_class;  // weight -> (load, n)
  for (std::size_t i = 0; i < pool.size(); ++i) {
    per_class[pool[i].weight].first += static_cast<double>(loads[i]);
    per_class[pool[i].weight].second += 1.0;
  }
  double previous_mean = 0.0;
  for (const auto& [weight, load_n] : per_class) {
    const double mean = load_n.first / load_n.second;
    EXPECT_GT(mean, previous_mean)
        << algorithm << ": weight class " << weight
        << " carries less load per member than a lighter class";
    previous_mean = mean;
  }
}

void expect_proportional_skew(std::string_view algorithm,
                              const dynamic_table& table,
                              const std::vector<weighted_member>& pool,
                              std::size_t requests, double fit_ratio) {
  expect_proportional_loads(algorithm, pool,
                            measure_loads(table, pool, requests, 0x5eed),
                            fit_ratio);
}

TEST(WeightedMembershipTest, UnweightedAlgorithmsRequireUnitWeight) {
  for (const auto algorithm :
       {"modular", "rendezvous", "bounded", "jump", "maglev"}) {
    auto table = make_table(algorithm, fast_options());
    EXPECT_THROW(table->join(1, 2.0), precondition_error) << algorithm;
    table->join(1);  // weight defaults to 1 and is accepted
    EXPECT_EQ(table->weight(1), 1.0) << algorithm;
    EXPECT_THROW(table->weight(2), precondition_error) << algorithm;
  }
}

TEST(WeightedMembershipTest, WeightedAlgorithmsRoundTripWeights) {
  for (const auto algorithm :
       {"consistent", "weighted-rendezvous", "hd", "hd-hierarchical"}) {
    auto table = make_table(algorithm, fast_options());
    table->join(10, 2.0);
    table->join(20);  // default weight
    EXPECT_EQ(table->weight(10), 2.0) << algorithm;
    EXPECT_EQ(table->weight(20), 1.0) << algorithm;
    EXPECT_THROW(table->weight(30), precondition_error) << algorithm;
    EXPECT_THROW(table->join(10, 3.0), precondition_error) << algorithm;
    EXPECT_THROW(table->join(30, -1.0), precondition_error) << algorithm;
    table->leave(10);
    EXPECT_THROW(table->weight(10), precondition_error) << algorithm;
    EXPECT_EQ(table->server_count(), 1u) << algorithm;
  }
}

TEST(WeightedMembershipTest, HdWeightReportsEffectiveReplication) {
  // hd replicates round(weight) circle slots; weight() must report that
  // effective replication, not the raw request — weights 1.0 and 1.4
  // build identical tables and must be indistinguishable, and the
  // chi-squared expectation built from weight() must match the share
  // the member actually serves.
  for (const auto algorithm : {"hd", "hd-hierarchical"}) {
    auto table = make_table(algorithm, fast_options());
    table->join(10, 1.4);   // rounds down to 1 replica
    table->join(20, 2.5);   // llround: 3 replicas (round half away)
    table->join(30, 0.2);   // clamps to the 1-replica minimum
    EXPECT_EQ(table->weight(10), 1.0) << algorithm;
    EXPECT_EQ(table->weight(20), 3.0) << algorithm;
    EXPECT_EQ(table->weight(30), 1.0) << algorithm;
  }
}

TEST(WeightedMembershipTest, ConsistentWeightReportsRingResolution) {
  // Ring-point multiplicity realizes weights at a resolution of
  // 1/virtual_nodes; weight() reports what the ring actually serves.
  auto coarse = make_table("consistent", fast_options());  // 1 vnode
  coarse->join(10, 1.4);  // rounds to 1 ring point
  coarse->join(20, 2.0);
  EXPECT_EQ(coarse->weight(10), 1.0);
  EXPECT_EQ(coarse->weight(20), 2.0);

  table_options options = fast_options();
  options.consistent_vnodes = 10;
  auto fine = make_table("consistent", options);
  fine->join(10, 1.4);   // 14 ring points — exactly representable
  fine->join(20, 1.44);  // rounds to 14 points too
  EXPECT_DOUBLE_EQ(fine->weight(10), 1.4);
  EXPECT_DOUBLE_EQ(fine->weight(20), 1.4);
}

TEST(WeightedMembershipTest, HdFractionalWeightsBuildIdenticalTables) {
  auto exact = make_table("hd", fast_options());
  auto fractional = make_table("hd", fast_options());
  for (server_id s = 1; s <= 10; ++s) {
    exact->join(s * 271, 2.0);
    fractional->join(s * 271, 2.4);  // same round(w) == same replication
  }
  // Identical replication must mean identical reported weights, memory
  // footprint and assignments.
  EXPECT_EQ(exact->stats().memory_bytes, fractional->stats().memory_bytes);
  for (server_id s = 1; s <= 10; ++s) {
    EXPECT_EQ(exact->weight(s * 271), fractional->weight(s * 271));
  }
  for (request_id r = 0; r < 1000; ++r) {
    EXPECT_EQ(exact->lookup(r), fractional->lookup(r));
  }
}

TEST(WeightedMembershipTest, RunawayWeightsAreRejectedWhereTheyReplicate) {
  // Weight translates into physical replication for consistent (ring
  // points) and hd (circle slots); both must refuse weights whose
  // replication would exhaust memory instead of hanging.
  table_options options = fast_options();
  options.consistent_vnodes = 64;
  auto ring = make_table("consistent", options);
  EXPECT_THROW(ring->join(1, 1e12), precondition_error);
  auto hd = make_table("hd", options);
  EXPECT_THROW(hd->join(1, 1e12), precondition_error);
}

TEST(WeightedMembershipTest, WeightOneMatchesLegacyUnweightedBehaviour) {
  // join(s) and join(s, 1.0) must be indistinguishable — existing
  // deployments upgrading to v2 see identical assignments.
  for (const auto algorithm : {"consistent", "hd", "weighted-rendezvous"}) {
    auto legacy = make_table(algorithm, fast_options());
    auto weighted = make_table(algorithm, fast_options());
    for (server_id s = 1; s <= 12; ++s) {
      legacy->join(s * 97);
      weighted->join(s * 97, 1.0);
    }
    for (request_id r = 0; r < 500; ++r) {
      EXPECT_EQ(legacy->lookup(r), weighted->lookup(r)) << algorithm;
    }
  }
}

TEST(WeightedMembershipTest, WeightedRendezvousSkewsProportionally) {
  // Native weighting: P[s wins] is exactly w_s / Σw, so the observed
  // loads must pass an absolute χ² goodness-of-fit test against the
  // proportional expectation, not just a relative comparison.
  auto table = make_table("weighted-rendezvous", fast_options());
  const std::vector<weighted_member> pool = {
      {1, 1.0}, {2, 1.0}, {3, 2.0}, {4, 2.0},
      {5, 3.0}, {6, 3.0}, {7, 4.0}, {8, 4.0}};
  for (const weighted_member& m : pool) {
    table->join(m.server, m.weight);
  }
  const std::size_t requests = 40'000;
  const auto loads = measure_loads(*table, pool, requests, 0x5eed);
  std::vector<double> shares;
  for (const weighted_member& m : pool) {
    shares.push_back(m.weight);
  }
  const double chi = chi_squared_against(loads, shares);
  const double dof = static_cast<double>(pool.size() - 1);
  // The proportional model must not be rejected even at a generous
  // significance level.
  EXPECT_GT(chi_squared_survival(chi, dof), 1e-4) << "chi2 = " << chi;
  expect_proportional_skew("weighted-rendezvous", *table, pool, requests,
                           4.0);
}

TEST(WeightedMembershipTest, ConsistentSkewsProportionally) {
  // Ring-point multiplicity: resolution is one ring point, so give the
  // ring enough virtual nodes that arc variance stays well under the
  // weight signal.
  table_options options = fast_options();
  options.consistent_vnodes = 200;
  auto table = make_table("consistent", options);
  const std::vector<weighted_member> pool = {
      {1, 1.0}, {2, 1.0}, {3, 2.0}, {4, 2.0}, {5, 3.0}, {6, 3.0}};
  for (const weighted_member& m : pool) {
    table->join(m.server, m.weight);
  }
  expect_proportional_skew("consistent", *table, pool, 60'000, 4.0);
}

TEST(WeightedMembershipTest, HdSkewsProportionally) {
  // Circle-slot replication: a weight-w member stores round(w) rows, so
  // its share is w rows' worth of circle arcs.  A single row's arc has
  // the variance of 1-vnode consistent hashing, so the statistic
  // aggregates over several independent circle constructions (varying
  // the table seed) before testing proportionality — cheap through the
  // batch path, which decodes each circle slot at most once per run.
  std::vector<weighted_member> pool;
  server_id next = 1;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(weighted_member{next++ * 131, 1.0});
  }
  for (int i = 0; i < 6; ++i) {
    pool.push_back(weighted_member{next++ * 131, 3.0});
  }
  std::vector<std::uint64_t> aggregated(pool.size(), 0);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    auto table = table_spec::hd()
                     .dimension(1024)
                     .capacity(256)
                     .seed(0x9D0C'AB1E + trial)
                     .build();
    for (const weighted_member& m : pool) {
      table->join(m.server, m.weight);
    }
    const auto loads = measure_loads(*table, pool, 20'000, 0x5eed + trial);
    for (std::size_t i = 0; i < loads.size(); ++i) {
      aggregated[i] += loads[i];
    }
  }
  expect_proportional_loads("hd", pool, aggregated, 2.0);
}

}  // namespace
}  // namespace hdhash
