#include "hdc/item_memory.hpp"

#include <gtest/gtest.h>

#include "hdc/ops.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {
namespace {

TEST(ItemMemoryTest, StartsEmpty) {
  item_memory memory(64);
  EXPECT_TRUE(memory.empty());
  EXPECT_EQ(memory.size(), 0u);
  EXPECT_FALSE(memory.query(hypervector(64)).has_value());
}

TEST(ItemMemoryTest, ZeroDimensionThrows) {
  EXPECT_THROW(item_memory(0), precondition_error);
}

TEST(ItemMemoryTest, InsertContainsAt) {
  item_memory memory(128);
  xoshiro256 rng(1);
  const auto hv = hypervector::random(128, rng);
  memory.insert(7, hv);
  EXPECT_TRUE(memory.contains(7));
  EXPECT_FALSE(memory.contains(8));
  EXPECT_EQ(memory.at(7), hv);
  EXPECT_EQ(memory.size(), 1u);
}

TEST(ItemMemoryTest, DuplicateInsertThrows) {
  item_memory memory(64);
  memory.insert(1, hypervector(64));
  EXPECT_THROW(memory.insert(1, hypervector(64)), precondition_error);
}

TEST(ItemMemoryTest, DimensionMismatchThrows) {
  item_memory memory(64);
  EXPECT_THROW(memory.insert(1, hypervector(65)), precondition_error);
  memory.insert(1, hypervector(64));
  EXPECT_THROW(memory.query(hypervector(63)), precondition_error);
}

TEST(ItemMemoryTest, EraseRemoves) {
  item_memory memory(64);
  memory.insert(1, hypervector(64));
  memory.insert(2, hypervector::ones(64));
  memory.erase(1);
  EXPECT_FALSE(memory.contains(1));
  EXPECT_TRUE(memory.contains(2));
  EXPECT_THROW(memory.erase(1), precondition_error);
  EXPECT_THROW(memory.at(1), precondition_error);
}

TEST(ItemMemoryTest, QueryFindsNearestNeighbour) {
  item_memory memory(10'000);
  xoshiro256 rng(2);
  const auto anchor = hypervector::random(10'000, rng);
  memory.insert(10, anchor);
  memory.insert(20, flip_random_bits(anchor, 3000, rng));
  memory.insert(30, hypervector::random(10'000, rng));

  const auto probe = flip_random_bits(anchor, 100, rng);
  const auto result = memory.query(probe);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->key, 10u);
  EXPECT_DOUBLE_EQ(result->best_score, 10'000.0 - 100.0);
  EXPECT_GT(result->margin(), 0.0);
}

TEST(ItemMemoryTest, RunnerUpTracksSecondBest) {
  item_memory memory(1000);
  xoshiro256 rng(3);
  const auto anchor = hypervector::random(1000, rng);
  memory.insert(1, anchor);
  memory.insert(2, flip_random_bits(anchor, 10, rng));
  const auto result = memory.query(anchor);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->key, 1u);
  EXPECT_DOUBLE_EQ(result->best_score, 1000.0);
  EXPECT_DOUBLE_EQ(result->runner_up, 990.0);
  EXPECT_DOUBLE_EQ(result->margin(), 10.0);
}

TEST(ItemMemoryTest, TieBreaksTowardSmallestKey) {
  item_memory memory(64);
  const hypervector same(64);
  memory.insert(42, same);
  memory.insert(7, same);
  memory.insert(99, same);
  const auto result = memory.query(same);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->key, 7u);
  // All tie: runner-up score equals the best score.
  EXPECT_DOUBLE_EQ(result->runner_up, result->best_score);
}

TEST(ItemMemoryTest, CosineMetricSameArgmax) {
  item_memory hamming_memory(4096, metric::inverse_hamming);
  item_memory cosine_memory(4096, metric::cosine);
  xoshiro256 rng(4);
  for (std::uint64_t key = 0; key < 8; ++key) {
    const auto hv = hypervector::random(4096, rng);
    hamming_memory.insert(key, hv);
    cosine_memory.insert(key, hv);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const auto probe = hypervector::random(4096, rng);
    EXPECT_EQ(hamming_memory.query(probe)->key, cosine_memory.query(probe)->key);
  }
}

TEST(ItemMemoryTest, KeysInInsertionOrder) {
  item_memory memory(64);
  memory.insert(5, hypervector(64));
  memory.insert(3, hypervector(64));
  memory.insert(9, hypervector(64));
  EXPECT_EQ(memory.keys(), (std::vector<std::uint64_t>{5, 3, 9}));
}

TEST(ItemMemoryTest, StorageExposesOneRegionPerEntry) {
  item_memory memory(130);
  memory.insert(1, hypervector(130));
  memory.insert(2, hypervector(130));
  const auto regions = memory.storage();
  ASSERT_EQ(regions.size(), 2u);
  for (const auto& region : regions) {
    EXPECT_EQ(region.size(), 3u);  // 130 bits -> 3 words
  }
}

TEST(ItemMemoryTest, StorageWritesAffectQueries) {
  item_memory memory(64);
  memory.insert(1, hypervector(64));             // all zeros
  memory.insert(2, hypervector::ones(64));       // all ones
  // Probe of all ones resolves to key 2...
  EXPECT_EQ(memory.query(hypervector::ones(64))->key, 2u);
  // ...until we overwrite entry 2's storage with zeros.
  auto regions = memory.storage();
  regions[1][0] = 0;
  EXPECT_EQ(memory.query(hypervector::ones(64))->key, 1u);
}

}  // namespace
}  // namespace hdhash::hdc
