#include "hdc/basis.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "hdc/similarity.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {
namespace {

TEST(RandomSetTest, SizeAndDimension) {
  xoshiro256 rng(1);
  const auto set = random_set(12, 10'000, rng);
  ASSERT_EQ(set.size(), 12u);
  for (const auto& hv : set) {
    EXPECT_EQ(hv.dim(), 10'000u);
  }
}

TEST(RandomSetTest, PairwiseQuasiOrthogonal) {
  // Figure 2, left panel: all off-diagonal cosine similarities ≈ 0.
  xoshiro256 rng(2);
  const auto set = random_set(12, 10'000, rng);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      EXPECT_NEAR(cosine(set[i], set[j]), 0.0, 0.06)
          << "pair " << i << "," << j;
    }
  }
}

TEST(RandomSetTest, EmptyThrows) {
  xoshiro256 rng(3);
  EXPECT_THROW(random_set(0, 100, rng), precondition_error);
}

struct level_case {
  std::size_t count;
  std::size_t dim;
};

class LevelSetFreshTest : public ::testing::TestWithParam<level_case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelSetFreshTest,
    ::testing::Values(level_case{2, 1000}, level_case{5, 1000},
                      level_case{12, 10'000}, level_case{16, 4096},
                      level_case{33, 10'000}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.count) + "_d" +
             std::to_string(info.param.dim);
    });

TEST_P(LevelSetFreshTest, SimilarityDecaysMonotonically) {
  // Figure 2, middle panel: the first row of the similarity matrix
  // decreases with index distance.
  const auto [count, dim] = GetParam();
  xoshiro256 rng(4);
  const auto set = level_set(count, dim, rng, flip_policy::fresh_bits);
  ASSERT_EQ(set.size(), count);
  std::size_t previous = 0;
  for (std::size_t j = 1; j < count; ++j) {
    const std::size_t d = hamming_distance(set[0], set[j]);
    EXPECT_GT(d, previous) << "level " << j;
    previous = d;
  }
}

TEST_P(LevelSetFreshTest, ProfileIsExactlyLinear) {
  // fresh_bits flips disjoint chunks, so distances are exact chunk sums:
  // hamming(c_0, c_j) == floor(j * (d/2) / (count-1)) within rounding.
  const auto [count, dim] = GetParam();
  xoshiro256 rng(5);
  const auto set = level_set(count, dim, rng, flip_policy::fresh_bits);
  const auto total = static_cast<double>(dim / 2);
  for (std::size_t j = 1; j < count; ++j) {
    const double expected =
        total * static_cast<double>(j) / static_cast<double>(count - 1);
    EXPECT_NEAR(static_cast<double>(hamming_distance(set[0], set[j])),
                expected, 1.0)
        << "level " << j;
  }
}

TEST_P(LevelSetFreshTest, EndpointsQuasiOrthogonal) {
  const auto [count, dim] = GetParam();
  xoshiro256 rng(6);
  const auto set = level_set(count, dim, rng, flip_policy::fresh_bits);
  EXPECT_NEAR(cosine(set.front(), set.back()), 0.0, 2.0 / dim + 1e-9);
}

TEST(LevelSetIndependentTest, LiteralPolicyStillMonotoneInExpectation) {
  // Independent flips can collide, so we only assert a decreasing trend
  // with slack, plus the saturation effect near the end of the chain.
  xoshiro256 rng(7);
  const auto set = level_set(20, 10'000, rng, flip_policy::independent);
  const auto first_step = hamming_distance(set[0], set[1]);
  const auto total = hamming_distance(set.front(), set.back());
  EXPECT_EQ(first_step, 10'000u / 20u);  // first step has no collisions
  // 19 steps of 500 independent flips saturate near
  // d * (1 - (1 - 2*500/d)^19) / 2 ~ 4324 differing bits — growth far
  // beyond one step, but strictly below the fresh-bits value of d/2.
  EXPECT_GT(total, 3800u);
  EXPECT_LT(total, 4800u);
}

TEST(LevelSetTest, SingleLevelThrows) {
  xoshiro256 rng(8);
  EXPECT_THROW(level_set(1, 100, rng), precondition_error);
}

TEST(LevelSetTest, DimensionTooSmallForFreshThrows) {
  xoshiro256 rng(9);
  // dim/2 = 5 distinct flip positions cannot cover 10 steps.
  EXPECT_THROW(level_set(11, 10, rng, flip_policy::fresh_bits),
               precondition_error);
}

TEST(LevelSetTest, DeterministicPerSeed) {
  xoshiro256 a(10);
  xoshiro256 b(10);
  EXPECT_EQ(level_set(8, 512, a), level_set(8, 512, b));
}

TEST(LevelSetTest, AdjacentLevelsMostSimilar) {
  xoshiro256 rng(11);
  const auto set = level_set(10, 10'000, rng);
  for (std::size_t i = 0; i + 2 < set.size(); ++i) {
    EXPECT_LT(hamming_distance(set[i], set[i + 1]),
              hamming_distance(set[i], set[i + 2]));
  }
}

}  // namespace
}  // namespace hdhash::hdc
