/// table_spec builder suite: the typed v2 construction API, its
/// equivalence with the v1 string factory shim, the improved
/// unknown-algorithm diagnostics, and the stats() introspection every
/// algorithm must fill in.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hd_table.hpp"
#include "exp/factory.hpp"
#include "exp/table_spec.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 256;
  options.maglev_table_size = 4099;
  return options;
}

TEST(TableSpecTest, NamedConstructorsBuildTheirAlgorithm) {
  EXPECT_EQ(table_spec::modular().build()->name(), "modular");
  EXPECT_EQ(table_spec::consistent().build()->name(), "consistent");
  EXPECT_EQ(table_spec::consistent_rank().build()->name(),
            "consistent-rank");
  EXPECT_EQ(table_spec::rendezvous().build()->name(), "rendezvous");
  EXPECT_EQ(table_spec::weighted_rendezvous().build()->name(),
            "weighted-rendezvous");
  EXPECT_EQ(table_spec::bounded().build()->name(), "bounded");
  EXPECT_EQ(table_spec::jump().build()->name(), "jump");
  EXPECT_EQ(table_spec::maglev().build()->name(), "maglev");
  EXPECT_EQ(table_spec::hd().dimension(512).capacity(64).build()->name(),
            "hd");
  EXPECT_EQ(table_spec::hd_hierarchical()
                .dimension(512)
                .capacity(256)
                .groups(4)
                .build()
                ->name(),
            "hd-hierarchical");
}

TEST(TableSpecTest, GenericAlgorithmCoversTheFullRegistry) {
  for (const auto name : all_algorithms()) {
    auto table = table_spec::algorithm(name).options(fast_options()).build();
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->name(), name);
  }
}

TEST(TableSpecTest, UnknownAlgorithmErrorListsValidNames) {
  try {
    table_spec::algorithm("quantum");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("quantum"), std::string::npos);
    for (const auto name : all_algorithms()) {
      EXPECT_NE(message.find(std::string(name)), std::string::npos)
          << "error should list " << name;
    }
  }
}

TEST(TableSpecTest, ShimAndBuilderProduceIdenticalTables) {
  // The fluent chain of the issue's motivating example...
  auto built = table_spec::hd().dimension(1024).capacity(256).seed(7).build();
  // ...must equal the v1 string path with the same knob values.
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 256;
  options.hd.seed = 7;
  options.seed = 7;
  auto shimmed = make_table("hd", options);
  for (server_id s = 1; s <= 10; ++s) {
    built->join(s * 11);
    shimmed->join(s * 11);
  }
  for (request_id r = 0; r < 400; ++r) {
    EXPECT_EQ(built->lookup(r), shimmed->lookup(r));
  }
}

TEST(TableSpecTest, KnobsReachTheBuiltTable) {
  const auto table = table_spec::hd()
                         .dimension(512)
                         .capacity(128)
                         .slot_cache(true)
                         .lattice_decode(false)
                         .build();
  const auto* hd = dynamic_cast<const hd_table*>(table.get());
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->config().dimension, 512u);
  EXPECT_EQ(hd->config().capacity, 128u);
  EXPECT_TRUE(hd->config().slot_cache);
  EXPECT_FALSE(hd->config().lattice_decode);
}

TEST(TableSpecTest, HashKnobSelectsTheHashFunction) {
  // Different hashes must give a different mapping; same hash, the same.
  auto sip = table_spec::consistent().hash("siphash24");
  auto xx = table_spec::consistent();  // default xxhash64
  auto sip_table = sip.build();
  auto sip_again = sip.build();
  auto xx_table = xx.build();
  for (server_id s = 1; s <= 16; ++s) {
    sip_table->join(s * 5);
    sip_again->join(s * 5);
    xx_table->join(s * 5);
  }
  std::size_t differing = 0;
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_EQ(sip_table->lookup(r), sip_again->lookup(r));
    differing += sip_table->lookup(r) != xx_table->lookup(r) ? 1 : 0;
  }
  EXPECT_GT(differing, 0u);
  EXPECT_THROW(table_spec::consistent().hash("md5").build(),
               precondition_error);
}

TEST(TableSpecTest, CopiedSpecSurvivesTheOriginal) {
  // options_.hash_name views spec-owned storage; copies must re-point it
  // rather than dangle into the source spec.
  table_spec copy = table_spec::modular();
  {
    table_spec original =
        table_spec::modular().hash(std::string("siphash24"));
    copy = original;
  }
  auto table = copy.build();
  EXPECT_EQ(copy.current_options().hash_name, "siphash24");
  EXPECT_EQ(table->name(), "modular");
}

TEST(TableStatsTest, EveryAlgorithmReportsLiveState) {
  for (const auto name : all_algorithms()) {
    auto table = table_spec::algorithm(name).options(fast_options()).build();
    for (server_id s = 1; s <= 12; ++s) {
      table->join(s * 17);
    }
    const table_stats stats = table->stats();
    EXPECT_GT(stats.memory_bytes, 0u) << name;
    EXPECT_GT(stats.expected_lookup_cost, 0.0) << name;
  }
}

TEST(TableStatsTest, CostsReflectTheFigure4Ordering) {
  // The introspection must reproduce the paper's qualitative cost
  // ordering at a large pool: O(1) maglev < O(log n) consistent ring <
  // O(n) rendezvous scan < the HD row sweep on scalar hardware.
  table_options options = fast_options();
  const std::vector<std::string_view> ordering = {"maglev", "consistent",
                                                  "rendezvous", "hd"};
  double previous = 0.0;
  for (const auto name : ordering) {
    auto table = table_spec::algorithm(name).options(options).build();
    for (server_id s = 1; s <= 100; ++s) {
      table->join(s * 19);
    }
    const double cost = table->stats().expected_lookup_cost;
    EXPECT_GT(cost, previous) << name;
    previous = cost;
  }
}

TEST(TableStatsTest, SlotCacheFlattensTheHdCost) {
  table_options options = fast_options();
  auto scan = table_spec::hd().options(options).build();
  auto accel = table_spec::hd().options(options).slot_cache(true).build();
  for (server_id s = 1; s <= 32; ++s) {
    scan->join(s * 23);
    accel->join(s * 23);
  }
  EXPECT_GT(scan->stats().expected_lookup_cost, 100.0);
  EXPECT_EQ(accel->stats().expected_lookup_cost, 1.0);
}

TEST(TableStatsTest, MemoryGrowsWithMembership) {
  for (const auto name : all_algorithms()) {
    auto table = table_spec::algorithm(name).options(fast_options()).build();
    table->join(1);
    const std::size_t small = table->stats().memory_bytes;
    for (server_id s = 2; s <= 24; ++s) {
      table->join(s * 29);
    }
    EXPECT_GT(table->stats().memory_bytes, small) << name;
  }
}

}  // namespace
}  // namespace hdhash
