#include "fault/injector.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "fault/error_model.hpp"
#include "util/bits.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

/// Minimal fault surface over caller-owned buffers.
class test_surface final : public fault_surface {
 public:
  explicit test_surface(std::vector<std::size_t> region_sizes) {
    for (const std::size_t size : region_sizes) {
      buffers_.emplace_back(size, std::byte{0});
    }
  }

  std::vector<memory_region> fault_regions() override {
    std::vector<memory_region> regions;
    for (auto& buffer : buffers_) {
      regions.push_back(
          memory_region{std::span(buffer.data(), buffer.size()), "test"});
    }
    return regions;
  }

  std::size_t set_bits() const {
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      for (std::size_t bit = 0; bit < buffer.size() * 8; ++bit) {
        total += test_bit_in_bytes(buffer, bit) ? 1 : 0;
      }
    }
    return total;
  }

  std::vector<std::vector<std::byte>> buffers_;
};

TEST(FaultSurfaceTest, FaultBitsSumsRegions) {
  test_surface surface({4, 8});
  EXPECT_EQ(surface.fault_bits(), 96u);
}

TEST(InjectorTest, InjectsExactDistinctCount) {
  test_surface surface({16, 16});
  bit_flip_injector injector(1);
  const auto flips = injector.inject_random(surface, 20);
  EXPECT_EQ(flips.size(), 20u);
  EXPECT_EQ(surface.set_bits(), 20u);  // all distinct, all applied
}

TEST(InjectorTest, ZeroFlipsIsNoop) {
  test_surface surface({8});
  bit_flip_injector injector(2);
  EXPECT_TRUE(injector.inject_random(surface, 0).empty());
  EXPECT_EQ(surface.set_bits(), 0u);
}

TEST(InjectorTest, OverdrawThrows) {
  test_surface surface({1});  // 8 bits
  bit_flip_injector injector(3);
  EXPECT_THROW(injector.inject_random(surface, 9), precondition_error);
}

TEST(InjectorTest, DeterministicPerSeed) {
  test_surface a({32});
  test_surface b({32});
  bit_flip_injector ia(7);
  bit_flip_injector ib(7);
  EXPECT_EQ(ia.inject_random(a, 10), ib.inject_random(b, 10));
  EXPECT_EQ(a.buffers_, b.buffers_);
}

TEST(InjectorTest, UndoRestoresExactly) {
  test_surface surface({16, 8});
  // Pre-existing content.
  surface.buffers_[0][3] = std::byte{0xa5};
  surface.buffers_[1][7] = std::byte{0x5a};
  const auto original = surface.buffers_;
  bit_flip_injector injector(9);
  const auto flips = injector.inject_random(surface, 30);
  EXPECT_NE(surface.buffers_, original);
  bit_flip_injector::undo(surface, flips);
  EXPECT_EQ(surface.buffers_, original);
}

TEST(InjectorTest, FlipsSpreadAcrossRegions) {
  test_surface surface({64, 64});
  bit_flip_injector injector(11);
  const auto flips = injector.inject_random(surface, 200);
  bool saw_first = false;
  bool saw_second = false;
  for (const auto& flip : flips) {
    saw_first |= flip.region == 0;
    saw_second |= flip.region == 1;
  }
  EXPECT_TRUE(saw_first);
  EXPECT_TRUE(saw_second);
}

TEST(InjectorTest, BurstBitsAreAdjacentWithinOneRegion) {
  test_surface surface({32, 32});
  bit_flip_injector injector(13);
  const auto flips = injector.inject_burst(surface, 10);
  ASSERT_FALSE(flips.empty());
  ASSERT_LE(flips.size(), 10u);
  for (std::size_t i = 1; i < flips.size(); ++i) {
    EXPECT_EQ(flips[i].region, flips[0].region);
    EXPECT_EQ(flips[i].bit, flips[0].bit + i);
  }
  EXPECT_EQ(surface.set_bits(), flips.size());
}

TEST(InjectorTest, BurstClampsAtRegionEnd) {
  test_surface surface({1});  // 8 bits only
  bit_flip_injector injector(17);
  for (int trial = 0; trial < 20; ++trial) {
    test_surface fresh({1});
    bit_flip_injector i(static_cast<std::uint64_t>(trial));
    const auto flips = i.inject_burst(fresh, 6);
    EXPECT_GE(flips.size(), 1u);
    EXPECT_LE(flips.size(), 6u);
    for (const auto& flip : flips) {
      EXPECT_LT(flip.bit, 8u);
    }
  }
}

TEST(InjectorTest, BurstLengthZeroThrows) {
  test_surface surface({4});
  bit_flip_injector injector(19);
  EXPECT_THROW(injector.inject_burst(surface, 0), precondition_error);
}

TEST(ScopedInjectionTest, RestoresOnScopeExit) {
  test_surface surface({16});
  const auto original = surface.buffers_;
  bit_flip_injector injector(23);
  {
    scoped_injection injection(injector, surface, 12);
    EXPECT_EQ(injection.flips().size(), 12u);
    EXPECT_NE(surface.buffers_, original);
  }
  EXPECT_EQ(surface.buffers_, original);
}

TEST(ErrorModelTest, DescribeIsHumanReadable) {
  EXPECT_EQ((error_model{upset_kind::seu, 3, 1}).describe(), "seu x3");
  EXPECT_EQ((error_model{upset_kind::mcu, 1, 10}).describe(),
            "mcu x1 (burst 10)");
}

TEST(ErrorModelTest, TotalBitsAccounting) {
  EXPECT_EQ((error_model{upset_kind::seu, 5, 1}).total_bits(), 5u);
  EXPECT_EQ((error_model{upset_kind::mcu, 3, 4}).total_bits(), 12u);
}

TEST(ErrorModelTest, SeuSweepCoversRange) {
  const auto sweep = seu_sweep(10);
  ASSERT_EQ(sweep.size(), 11u);
  EXPECT_EQ(sweep.front().events, 0u);
  EXPECT_EQ(sweep.back().events, 10u);
  for (const auto& model : sweep) {
    EXPECT_EQ(model.kind, upset_kind::seu);
  }
}

TEST(ErrorModelTest, McuMixRespectsIbeRatios) {
  const auto mix = mcu_mix_events(100);
  ASSERT_EQ(mix.size(), 100u);
  std::size_t four_bit = 0;
  std::size_t eight_bit = 0;
  for (const auto& model : mix) {
    four_bit += model.burst_length == 4 ? 1 : 0;
    eight_bit += model.burst_length == 8 ? 1 : 0;
  }
  EXPECT_EQ(four_bit, 9u);   // every 10th except the 100th
  EXPECT_EQ(eight_bit, 1u);  // every 100th
}

TEST(ErrorModelTest, ApplyModelInjectsAndReturnsFlips) {
  test_surface surface({64});
  bit_flip_injector injector(29);
  const error_model model{upset_kind::mcu, 2, 4};
  const auto flips = apply_error_model(model, injector, surface);
  EXPECT_GE(flips.size(), 2u);
  EXPECT_LE(flips.size(), 8u);
  bit_flip_injector::undo(surface, flips);
  EXPECT_EQ(surface.set_bits(), 0u);
}

}  // namespace
}  // namespace hdhash
