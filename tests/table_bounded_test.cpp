#include "table/bounded.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "table/consistent.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(BoundedTableTest, BalanceFactorMustExceedOne) {
  EXPECT_THROW(bounded_consistent_table(default_hash(), 1.0),
               precondition_error);
  EXPECT_THROW(bounded_consistent_table(default_hash(), 0.5),
               precondition_error);
}

TEST(BoundedTableTest, LookupWithoutAssignmentsMatchesConsistent) {
  // With zero recorded load every server has spare capacity, so the
  // bounded walk stops at the plain clockwise successor.
  bounded_consistent_table bounded(default_hash(), 1.25);
  consistent_table plain(default_hash());
  for (server_id s = 1; s <= 24; ++s) {
    bounded.join(s * 401);
    plain.join(s * 401);
  }
  for (request_id r = 0; r < 3000; ++r) {
    EXPECT_EQ(bounded.lookup(r), plain.lookup(r));
  }
}

TEST(BoundedTableTest, AssignRecordsLoad) {
  bounded_consistent_table table(default_hash());
  table.join(10);
  table.join(20);
  const server_id first = table.assign(123);
  EXPECT_EQ(table.total_load(), 1u);
  EXPECT_EQ(table.load_of(first), 1u);
  table.reset_loads();
  EXPECT_EQ(table.total_load(), 0u);
  EXPECT_EQ(table.load_of(first), 0u);
}

TEST(BoundedTableTest, PeakLoadRespectsBalanceFactor) {
  // The defining guarantee: after m assignments over k servers, no
  // server holds more than ceil(c * m / k) — here within one cap step.
  constexpr double kFactor = 1.25;
  bounded_consistent_table table(default_hash(), kFactor);
  constexpr std::size_t kServers = 16;
  for (server_id s = 1; s <= kServers; ++s) {
    table.join(s * 1013);
  }
  constexpr std::size_t kAssignments = 16'000;
  for (request_id r = 0; r < kAssignments; ++r) {
    table.assign(r * 0x9e3779b97f4a7c15ULL);
  }
  const auto cap = static_cast<std::uint64_t>(
      std::ceil(kFactor * kAssignments / kServers));
  for (const server_id s : table.servers()) {
    EXPECT_LE(table.load_of(s), cap) << "server " << s;
    EXPECT_GT(table.load_of(s), 0u) << "server " << s;
  }
}

TEST(BoundedTableTest, BeatsPlainConsistentPeakToMean) {
  // Compare peak/mean of recorded assignments against the stateless
  // routing of plain consistent hashing on the same keys.
  constexpr std::size_t kServers = 16;
  constexpr std::size_t kRequests = 20'000;

  bounded_consistent_table bounded(default_hash(), 1.25);
  consistent_table plain(default_hash());
  for (server_id s = 1; s <= kServers; ++s) {
    bounded.join(s * 719);
    plain.join(s * 719);
  }
  std::map<server_id, std::size_t> plain_load;
  for (request_id r = 0; r < kRequests; ++r) {
    const auto key = r * 0x9e3779b97f4a7c15ULL;
    bounded.assign(key);
    ++plain_load[plain.lookup(key)];
  }
  std::size_t plain_peak = 0;
  for (const auto& [s, c] : plain_load) {
    plain_peak = std::max(plain_peak, c);
  }
  std::uint64_t bounded_peak = 0;
  for (const server_id s : bounded.servers()) {
    bounded_peak = std::max(bounded_peak, bounded.load_of(s));
  }
  const double mean_load = static_cast<double>(kRequests) / kServers;
  EXPECT_LE(static_cast<double>(bounded_peak) / mean_load, 1.26);
  EXPECT_GT(static_cast<double>(plain_peak) / mean_load, 1.5);
}

TEST(BoundedTableTest, LeaveReleasesLoadAccounting) {
  bounded_consistent_table table(default_hash());
  table.join(1);
  table.join(2);
  for (request_id r = 0; r < 100; ++r) {
    table.assign(r);
  }
  const std::uint64_t before = table.total_load();
  const std::uint64_t departed_load = table.load_of(1);
  table.leave(1);
  EXPECT_EQ(table.total_load(), before - departed_load);
  EXPECT_EQ(table.load_of(1), 0u);
  EXPECT_FALSE(table.contains(1));
}

TEST(BoundedTableTest, CapGrowsWithLoad) {
  bounded_consistent_table table(default_hash(), 2.0);
  table.join(1);
  table.join(2);
  EXPECT_EQ(table.current_cap(), 1u);  // ceil(2 * 1 / 2)
  table.assign(5);
  table.assign(6);
  EXPECT_EQ(table.current_cap(), 3u);  // ceil(2 * 3 / 2)
}

TEST(BoundedTableTest, OverflowWalksToNextServer) {
  // Force one server to saturate: with two servers and c just above 1,
  // assignments must alternate within one unit.
  bounded_consistent_table table(default_hash(), 1.01);
  table.join(1);
  table.join(2);
  for (request_id r = 0; r < 100; ++r) {
    table.assign(r);
  }
  const auto a = table.load_of(1);
  const auto b = table.load_of(2);
  EXPECT_EQ(a + b, 100u);
  EXPECT_LE(a > b ? a - b : b - a, 2u);
}

TEST(BoundedTableTest, BatchLookupMatchesScalarUnderLoadState) {
  // The batched override sorts the block by ring position and walks the
  // ring once with per-successor memoization; under a saturated load
  // state (where capped walks actually detour) it must agree with
  // element-wise lookup() exactly.
  bounded_consistent_table table(default_hash(), 1.1, 4);
  for (server_id s = 1; s <= 12; ++s) {
    table.join(s * 811);
  }
  // Saturate: with c = 1.1 most servers sit at the cap, so lookups of
  // fresh keys routinely overflow to clockwise neighbours.
  for (request_id r = 0; r < 6000; ++r) {
    table.assign(r * 0x9e3779b97f4a7c15ULL);
  }
  std::vector<request_id> block;
  for (request_id r = 0; r < 4000; ++r) {
    block.push_back((r + 17) * 0xc2b2ae3d27d4eb4fULL);
  }
  std::vector<server_id> batched(block.size());
  table.lookup_batch(block, batched);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(batched[i], table.lookup(block[i])) << "request " << i;
  }
}

TEST(BoundedTableTest, BatchLookupAgreesAcrossLoadEpochs) {
  // The agreement must hold at every load state, not just one: verify
  // before any assignment, mid-stream, and after a reset.
  bounded_consistent_table table(default_hash(), 1.25);
  for (server_id s = 1; s <= 8; ++s) {
    table.join(s * 131);
  }
  const std::vector<request_id> block = {1, 99, 1234, 5678, 424242,
                                         7, 99, 31337, 8, 65536};
  auto check = [&](const char* where) {
    std::vector<server_id> batched(block.size());
    table.lookup_batch(block, batched);
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(batched[i], table.lookup(block[i])) << where << " idx " << i;
    }
  };
  check("empty-load");
  for (request_id r = 0; r < 500; ++r) {
    table.assign(r);
  }
  check("mid-stream");
  table.reset_loads();
  check("after-reset");
}

TEST(BoundedTableTest, CloneCarriesLoadState) {
  bounded_consistent_table table(default_hash());
  table.join(1);
  table.join(2);
  table.assign(7);
  const auto copy = table.clone();
  auto* bounded_copy = dynamic_cast<bounded_consistent_table*>(copy.get());
  ASSERT_NE(bounded_copy, nullptr);
  EXPECT_EQ(bounded_copy->total_load(), 1u);
}

TEST(BoundedTableTest, FaultSurfaceIsTheRing) {
  bounded_consistent_table table(default_hash(), 1.25, 2);
  table.join(9);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].label, "ring");
  EXPECT_EQ(regions[0].bytes.size(), 32u);  // 2 vnodes x 16 bytes
}

}  // namespace
}  // namespace hdhash
