/// Epoch-published table snapshots (emu/snapshot.hpp) and the sharded
/// emulator's snapshot membership mode: copy-on-write immutability,
/// incremental slot-cache maintenance versus cold decoding, publisher
/// epoch accounting, determinism of heavy churn interleaved with
/// lookups across 1/2/4/8 shards, and the ~one-replica memory claim.
/// These tests exercise real worker threads sharing one snapshot and
/// are a primary TSan target (-DHDHASH_SANITIZE=thread) alongside
/// emu_sharded_test.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hd_table.hpp"
#include "emu/emulator.hpp"
#include "emu/generator.hpp"
#include "emu/sharded_emulator.hpp"
#include "emu/snapshot.hpp"
#include "exp/factory.hpp"
#include "exp/sharded.hpp"
#include "fault/injector.hpp"
#include "hashing/registry.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 128;
  return options;
}

workload_config heavy_churn_workload() {
  workload_config config;
  config.initial_servers = 24;
  config.request_count = 6000;
  config.churn_rate = 0.05;  // heavy: a membership event every ~20 slots
  config.seed = 23;
  return config;
}

TEST(TableSnapshotTest, EveryAlgorithmSnapshotsItsCurrentMapping) {
  for (const auto algorithm : all_algorithms()) {
    auto table = make_table(algorithm, fast_options());
    for (server_id s = 1; s <= 10; ++s) {
      table->join(s * 101);
    }
    const auto snap = table->snapshot();
    for (request_id r = 0; r < 300; ++r) {
      EXPECT_EQ(snap->lookup(r), table->lookup(r)) << algorithm;
    }
  }
}

TEST(TableSnapshotTest, SnapshotSurvivesChurnOnTheSource) {
  for (const auto algorithm : all_algorithms()) {
    auto table = make_table(algorithm, fast_options());
    for (server_id s = 1; s <= 10; ++s) {
      table->join(s * 101);
    }
    const auto snap = table->snapshot();
    std::vector<server_id> before(400);
    for (request_id r = 0; r < 400; ++r) {
      before[r] = snap->lookup(r);
    }
    // Churn the source: the published snapshot must keep answering with
    // the membership it captured.
    table->leave(101);
    table->leave(505);
    table->join(99'991);
    for (request_id r = 0; r < 400; ++r) {
      EXPECT_EQ(snap->lookup(r), before[r]) << algorithm;
    }
  }
}

TEST(TableSnapshotTest, FaultInjectionNeverReachesASnapshot) {
  // hd shares item-memory rows with its snapshots copy-on-write; the
  // fault surface must un-share before corrupting, or a published epoch
  // would silently change under the workers.
  hd_table_config config;
  config.dimension = 1024;
  config.capacity = 128;
  hd_table table(hash_by_name("xxhash64"), config);
  for (server_id s = 1; s <= 8; ++s) {
    table.join(s * 777);
  }
  const auto snap = table.snapshot();
  std::vector<server_id> before(300);
  for (request_id r = 0; r < 300; ++r) {
    before[r] = snap->lookup(r);
  }
  // Zero every row of the source through its fault surface.
  for (memory_region& region : table.fault_regions()) {
    for (std::byte& b : region.bytes) {
      b = std::byte{0};
    }
  }
  for (request_id r = 0; r < 300; ++r) {
    EXPECT_EQ(snap->lookup(r), before[r]) << "request " << r;
  }
  // And the source really is corrupted (all rows equal → smallest row
  // key wins everywhere), so the COW break happened on the right side.
  std::size_t diffs = 0;
  for (request_id r = 0; r < 300; ++r) {
    diffs += table.lookup(r) != before[r] ? 1 : 0;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(TableSnapshotTest, SharedBytesAccountTheCowRows) {
  hd_table_config config;
  config.dimension = 1024;
  config.capacity = 128;
  hd_table table(hash_by_name("xxhash64"), config);
  for (server_id s = 1; s <= 8; ++s) {
    table.join(s * 31);
  }
  const std::size_t row_bytes = 8 * (1024 / 64) * sizeof(std::uint64_t);
  EXPECT_EQ(table.stats().shared_bytes, 0u);
  const auto snap = table.snapshot();
  // All 8 rows are now jointly held by the snapshot.
  EXPECT_EQ(table.stats().shared_bytes, row_bytes);
  EXPECT_EQ(snap->stats().shared_bytes, row_bytes);
  // The snapshot's marginal residency is bookkeeping, not rows.
  EXPECT_LT(snap->stats().memory_bytes - snap->stats().shared_bytes,
            row_bytes);
}

TEST(TableSnapshotTest, CloneOfASnapshotIsIndependentlyMutable) {
  // clone() promises an independently mutable copy with identical
  // mapping; a clone taken *from a frozen snapshot* must therefore
  // thaw — its memoized slot cache has to track its own membership
  // changes, not stay pinned to the snapshot's epoch.
  hd_table_config config;
  config.dimension = 1024;
  config.capacity = 128;
  config.slot_cache = true;
  hd_table table(hash_by_name("xxhash64"), config);
  for (server_id s = 1; s <= 10; ++s) {
    table.join(s * 11);
  }
  const auto snap = table.snapshot();
  const auto thawed = snap->clone();
  thawed->leave(11);
  thawed->join(4242);
  hd_table_config plain_config = config;
  plain_config.slot_cache = false;
  hd_table twin(hash_by_name("xxhash64"), plain_config);
  for (server_id s = 2; s <= 10; ++s) {
    twin.join(s * 11);
  }
  twin.join(4242);
  for (request_id r = 0; r < 500; ++r) {
    ASSERT_EQ(thawed->lookup(r), twin.lookup(r)) << "request " << r;
    ASSERT_NE(thawed->lookup(r), 11u);
  }
}

TEST(SlotCacheMaintenanceTest, MaintainedCacheEqualsColdDecodeUnderChurn) {
  // The incremental maintenance contract: after any join/leave history,
  // a cached table answers bit-identically to an uncached twin.  This
  // is the invariant the sharded determinism check rides on.
  hd_table_config cached_config;
  cached_config.dimension = 1024;
  cached_config.capacity = 128;
  cached_config.slot_cache = true;
  hd_table_config plain_config = cached_config;
  plain_config.slot_cache = false;
  hd_table cached(hash_by_name("xxhash64"), cached_config);
  hd_table plain(hash_by_name("xxhash64"), plain_config);

  auto check = [&](const char* when) {
    for (request_id r = 0; r < 600; ++r) {
      ASSERT_EQ(cached.lookup(r), plain.lookup(r)) << when << " r=" << r;
    }
  };

  for (server_id s = 1; s <= 20; ++s) {
    cached.join(s * 17);
    plain.join(s * 17);
  }
  cached.warm_slot_cache();
  check("after join burst");

  // Interleave joins and leaves with lookups so every maintenance path
  // runs against a warm cache: join-beats-incumbent, leave-invalidation
  // and lazy re-decode.
  for (int round = 0; round < 6; ++round) {
    const server_id leaver = (round * 3 + 1) * 17;
    cached.leave(leaver);
    plain.leave(leaver);
    check("after leave");
    const server_id joiner = 10'000 + round;
    cached.join(joiner);
    plain.join(joiner);
    check("after join");
  }

  // Weighted joins exercise multi-row maintenance (replica rows).
  cached.join(77'777, 3.0);
  plain.join(77'777, 3.0);
  check("after weighted join");
}

TEST(SnapshotPublisherTest, PublishesLazilyOncePerObservedEpoch) {
  auto owned = make_table("hd", fast_options());
  snapshot_publisher publisher(std::move(owned));
  publisher.join(1);
  publisher.join(2);
  publisher.join(3);
  EXPECT_EQ(publisher.epoch(), 3u);
  EXPECT_EQ(publisher.published_epochs(), 0u);  // nothing observed yet

  const auto first = publisher.current();
  EXPECT_EQ(first->epoch(), 3u);
  EXPECT_EQ(publisher.published_epochs(), 1u);
  // Stable within an epoch: same snapshot object, no re-publication.
  EXPECT_EQ(publisher.current(), first);
  EXPECT_EQ(publisher.published_epochs(), 1u);

  // Consecutive membership events collapse into one publication.
  publisher.leave(1);
  publisher.join(4);
  EXPECT_EQ(publisher.epoch(), 5u);
  const auto second = publisher.current();
  EXPECT_NE(second, first);
  EXPECT_EQ(second->epoch(), 5u);
  EXPECT_EQ(publisher.published_epochs(), 2u);

  // The first epoch still answers with its captured membership.
  EXPECT_TRUE(first->table().contains(1));
  EXPECT_FALSE(second->table().contains(1));
  EXPECT_FALSE(first->table().contains(4));
  EXPECT_TRUE(second->table().contains(4));
}

TEST(ShardedSnapshotModeTest, HeavyChurnHistogramMatchesReferenceAtEveryShardCount) {
  // The acceptance bar: heavy churn interleaved with lookups, 1/2/4/8
  // shards, snapshot mode — merged load histogram bit-identical to the
  // single-table reference (which runs with the slot cache *off*, so
  // this simultaneously certifies the maintained cache).
  const generator gen(heavy_churn_workload());
  const auto events = gen.generate();
  for (const auto algorithm : {"hd", "hd-hierarchical"}) {
    shard_sweep_config config;
    config.shard_counts = {1, 2, 4, 8};
    config.servers = heavy_churn_workload().initial_servers;
    config.requests = heavy_churn_workload().request_count;
    config.churn_rate = heavy_churn_workload().churn_rate;
    config.seed = heavy_churn_workload().seed;
    config.membership = membership_mode::snapshot;
    const auto series = run_shard_sweep(algorithm, config, fast_options());
    ASSERT_EQ(series.size(), 4u);
    for (const shard_sweep_point& point : series) {
      EXPECT_TRUE(point.matches_reference)
          << algorithm << " shards=" << point.shards;
      EXPECT_EQ(point.merged.requests, heavy_churn_workload().request_count)
          << algorithm;
      EXPECT_GT(point.snapshots_published, 0u) << algorithm;
      // Epochs that no request observed are never published.
      EXPECT_LE(point.snapshots_published,
                point.merged.joins + point.merged.leaves + 1)
          << algorithm;
    }
  }
}

TEST(ShardedSnapshotModeTest, TableMemoryIsOneReplicaNotN) {
  const generator gen(heavy_churn_workload());
  const auto events = gen.generate();

  auto run_mode = [&](membership_mode membership, std::size_t shards) {
    // Same construction in both modes (slot cache on), so the only
    // difference in the byte counts is replication versus sharing.
    table_options options = fast_options();
    options.hd.slot_cache = true;
    sharded_config config;
    config.shards = shards;
    config.membership = membership;
    sharded_emulator emu(
        [&options](std::size_t) {
          return make_table("hd-hierarchical", options);
        },
        config);
    return emu.run(events).table_memory_bytes;
  };

  const std::size_t one_replica = run_mode(membership_mode::replicated, 1);
  const std::size_t eight_replicas =
      run_mode(membership_mode::replicated, 8);
  const std::size_t snapshot_1 = run_mode(membership_mode::snapshot, 1);
  const std::size_t snapshot_8 = run_mode(membership_mode::snapshot, 8);

  // Replicated memory scales with the shard count...
  EXPECT_GE(eight_replicas, 7 * one_replica);
  // ...snapshot memory does not: it is independent of the shard count
  // (one producer table + the live epoch's bookkeeping)...
  EXPECT_EQ(snapshot_8, snapshot_1);
  // ...and stays within one replica plus epsilon (the resolved slot
  // arrays and member maps), far below the N-fold replication.
  EXPECT_LT(snapshot_8, 3 * one_replica);
  EXPECT_LT(3 * snapshot_8, eight_replicas);
}

TEST(ShardedSnapshotModeTest, PerShardStatsCarryNoMembershipEvents) {
  const generator gen(heavy_churn_workload());
  const auto events = gen.generate();
  sharded_config config;
  config.shards = 4;
  config.membership = membership_mode::snapshot;
  sharded_emulator emu(
      [](std::size_t) { return make_table("consistent", fast_options()); },
      config);
  const sharded_report report = emu.run(events);
  EXPECT_GT(report.merged.joins, 0u);
  std::size_t shard_requests = 0;
  for (const run_stats& shard : report.per_shard) {
    // Membership is applied once by the producer, not per shard.
    EXPECT_EQ(shard.joins, 0u);
    EXPECT_EQ(shard.leaves, 0u);
    shard_requests += shard.requests;
  }
  EXPECT_EQ(shard_requests, report.merged.requests);
  // The producer table holds the end-of-run pool, visible via table()
  // (merged.joins includes the initial join burst).
  EXPECT_EQ(emu.table(0).server_count(),
            report.merged.joins - report.merged.leaves);
}

}  // namespace
}  // namespace hdhash
