#include "table/consistent.hpp"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "support/scripted_hash.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(ConsistentTableTest, ZeroVirtualNodesThrows) {
  EXPECT_THROW(consistent_table(default_hash(), 0), precondition_error);
}

TEST(ConsistentTableTest, RingHoldsVnodesPerServer) {
  consistent_table table(default_hash(), 4);
  table.join(1);
  table.join(2);
  EXPECT_EQ(table.ring_size(), 8u);
  EXPECT_EQ(table.server_count(), 2u);
  table.leave(1);
  EXPECT_EQ(table.ring_size(), 4u);
}

TEST(ConsistentTableTest, ClockwiseSuccessorSemantics) {
  // Pin ring positions: server A at 100, server B at 200 (single vnode,
  // pinned via the pair hash used for replica 0).
  testing::scripted_hash hash;
  hash.pin_pair(1, 0, 100);
  hash.pin_pair(2, 0, 200);
  hash.pin_u64(50, 150);   // request between A and B -> clockwise hits B
  hash.pin_u64(51, 250);   // past B -> wraps to A
  hash.pin_u64(52, 100);   // exactly on A: upper_bound moves past -> B
  hash.pin_u64(53, 99);    // just before A -> A
  consistent_table table(hash, 1);
  table.join(1);
  table.join(2);
  EXPECT_EQ(table.lookup(50), 2u);
  EXPECT_EQ(table.lookup(51), 1u);
  EXPECT_EQ(table.lookup(52), 2u);
  EXPECT_EQ(table.lookup(53), 1u);
}

TEST(ConsistentTableTest, WrapAroundAtRingTop) {
  testing::scripted_hash hash;
  hash.pin_pair(9, 0, 500);
  hash.pin_u64(1000, ~std::uint64_t{0});  // request at the very top
  consistent_table table(hash, 1);
  table.join(9);
  EXPECT_EQ(table.lookup(1000), 9u);
}

TEST(ConsistentTableTest, MoreVnodesSmoothLoad) {
  // Peak-to-mean load must improve (weakly) when vnodes go 1 -> 64.
  auto load_peak_ratio = [](std::size_t vnodes) {
    consistent_table table(default_hash(), vnodes);
    for (server_id s = 1; s <= 16; ++s) {
      table.join(s * 1013);
    }
    std::map<server_id, double> counts;
    constexpr int kRequests = 30'000;
    for (request_id r = 0; r < kRequests; ++r) {
      ++counts[table.lookup(r * 0x9e3779b97f4a7c15ULL)];
    }
    double peak = 0;
    for (const auto& [s, c] : counts) {
      peak = std::max(peak, c);
    }
    return peak / (static_cast<double>(kRequests) / 16.0);
  };
  EXPECT_LT(load_peak_ratio(64), load_peak_ratio(1));
}

TEST(ConsistentTableTest, FaultRegionIsTheRing) {
  consistent_table table(default_hash(), 2);
  table.join(1);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].label, "ring");
  // Two vnodes x 16 bytes per ring point.
  EXPECT_EQ(regions[0].bytes.size(), 32u);
}

TEST(ConsistentTableTest, EmptyFaultSurfaceWhenEmpty) {
  consistent_table table(default_hash());
  EXPECT_TRUE(table.fault_regions().empty());
  EXPECT_EQ(table.fault_bits(), 0u);
}

TEST(ConsistentTableTest, CorruptedRingChangesLookups) {
  // Sanity for the Figure 5 mechanism: smashing the ring's sorted order
  // mis-routes requests deterministically (and never crashes).
  consistent_table table(default_hash());
  for (server_id s = 1; s <= 64; ++s) {
    table.join(s * 997);
  }
  const auto pristine = table.clone();
  auto regions = table.fault_regions();
  // Invert the top byte of a mid-ring point's position: the point jumps
  // across the ring and the array is no longer sorted.
  regions[0].bytes[32 * 16 + 7] ^= std::byte{0xff};
  std::size_t mismatches = 0;
  for (request_id r = 0; r < 2000; ++r) {
    mismatches += table.lookup(r) != pristine->lookup(r) ? 1 : 0;
  }
  EXPECT_GT(mismatches, 0u);
}

TEST(ConsistentTableTest, RankModeMatchesBisectOnIntactRing) {
  // The two successor resolutions are the same function on sound memory.
  consistent_table bisect(default_hash(), 3);
  consistent_table rank(default_hash(), 3, 0, ring_lookup_mode::rank);
  for (server_id s = 1; s <= 40; ++s) {
    bisect.join(s * 503);
    rank.join(s * 503);
  }
  for (request_id r = 0; r < 5000; ++r) {
    EXPECT_EQ(bisect.lookup(r), rank.lookup(r));
  }
}

TEST(ConsistentTableTest, RankModeDegradesMoreUnderCorruption) {
  // The Figure 5 mechanism: a displaced position shifts the rank of every
  // request in its displacement span, so rank resolution loses far more
  // lookups to the same corruption than bisection does.
  auto mismatch_under_flip = [](ring_lookup_mode mode) {
    consistent_table table(default_hash(), 1, 0, mode);
    for (server_id s = 1; s <= 256; ++s) {
      table.join(s * 997);
    }
    const auto pristine = table.clone();
    auto regions = table.fault_regions();
    // Displace one position (entry 100 — deep in the bisection tree, so
    // bisect only mis-routes its small subtree) by half the key space.
    regions[0].bytes[100 * 16 + 7] ^= std::byte{0x80};
    std::size_t mismatches = 0;
    for (request_id r = 0; r < 4000; ++r) {
      mismatches += table.lookup(r) != pristine->lookup(r) ? 1 : 0;
    }
    return mismatches;
  };
  const std::size_t rank_loss = mismatch_under_flip(ring_lookup_mode::rank);
  const std::size_t bisect_loss =
      mismatch_under_flip(ring_lookup_mode::bisect);
  EXPECT_GT(rank_loss, 1000u);  // ~half the key space off by one
  EXPECT_GT(rank_loss, 4 * bisect_loss);
}

TEST(ConsistentTableTest, RankModeNamesItself) {
  consistent_table table(default_hash(), 1, 0, ring_lookup_mode::rank);
  EXPECT_EQ(table.name(), "consistent-rank");
  EXPECT_EQ(table.lookup_mode(), ring_lookup_mode::rank);
}

TEST(ConsistentTableTest, ServersListsEachServerOnce) {
  consistent_table table(default_hash(), 8);
  table.join(5);
  table.join(6);
  const auto servers = table.servers();
  EXPECT_EQ(servers.size(), 2u);
}

}  // namespace
}  // namespace hdhash
