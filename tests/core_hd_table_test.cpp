#include "core/hd_table.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "hashing/registry.hpp"
#include "hdc/similarity.hpp"
#include "support/scripted_hash.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

hd_table_config small_config() {
  hd_table_config config;
  config.dimension = 2048;
  config.capacity = 64;
  return config;
}

TEST(HdTableTest, EmptyLookupThrows) {
  const hd_table table(default_hash(), small_config());
  EXPECT_THROW(table.lookup(1), precondition_error);
}

TEST(HdTableTest, JoinLeaveContains) {
  hd_table table(default_hash(), small_config());
  table.join(10);
  table.join(20);
  EXPECT_TRUE(table.contains(10));
  EXPECT_TRUE(table.contains(20));
  EXPECT_EQ(table.server_count(), 2u);
  table.leave(10);
  EXPECT_FALSE(table.contains(10));
  EXPECT_EQ(table.server_count(), 1u);
}

TEST(HdTableTest, DuplicateJoinThrows) {
  hd_table table(default_hash(), small_config());
  table.join(10);
  EXPECT_THROW(table.join(10), precondition_error);
}

TEST(HdTableTest, LeaveAbsentThrows) {
  hd_table table(default_hash(), small_config());
  EXPECT_THROW(table.leave(10), precondition_error);
}

TEST(HdTableTest, CapacityEnforced) {
  hd_table_config config;
  config.dimension = 512;
  config.capacity = 4;
  hd_table table(default_hash(), config);
  table.join(1);
  table.join(2);
  table.join(3);  // k = 3, n = 4: n > k still holds
  EXPECT_THROW(table.join(4), precondition_error);
}

TEST(HdTableTest, SingleServerTakesAll) {
  hd_table table(default_hash(), small_config());
  table.join(77);
  for (request_id r = 0; r < 200; ++r) {
    EXPECT_EQ(table.lookup(r), 77u);
  }
}

TEST(HdTableTest, LookupMatchesNearestOnCircleGeometry) {
  // Pin servers to known slots; every request must resolve to the server
  // whose slot is closest on the circle (the paper's Figure 1 semantics).
  testing::scripted_hash hash;
  constexpr std::size_t kCapacity = 32;
  hash.pin_u64(101, 4);    // server 101 -> slot 4
  hash.pin_u64(102, 20);   // server 102 -> slot 20
  hash.pin_u64(5001, 6);   // request near slot 4
  hash.pin_u64(5002, 19);  // request near slot 20
  hash.pin_u64(5003, 28);  // wraps: distance 8 to slot 4, 8 to slot 20 (tie)

  hd_table_config config;
  config.dimension = 4096;
  config.capacity = kCapacity;
  hd_table table(hash, config);
  table.join(101);
  table.join(102);

  EXPECT_EQ(table.lookup(5001), 101u);
  EXPECT_EQ(table.lookup(5002), 102u);
  // Exact tie in circle distance: both stored vectors are equidistant,
  // and the argmax must break toward the smaller server id.
  EXPECT_EQ(table.lookup(5003), 101u);
}

TEST(HdTableTest, DirectionOfRotationDoesNotMatter) {
  // Unlike consistent hashing, HD hashing picks the *nearest* node in
  // either direction (paper Figure 1 caption).
  testing::scripted_hash hash;
  hash.pin_u64(1, 10);    // server at slot 10
  hash.pin_u64(2, 16);    // server at slot 16
  hash.pin_u64(900, 12);  // request at slot 12: 2 away CW from 10, 4 from 16
  hd_table_config config;
  config.dimension = 4096;
  config.capacity = 32;
  hd_table table(hash, config);
  table.join(1);
  table.join(2);
  // Consistent hashing (clockwise successor) would pick 16 -> server 2;
  // HD hashing must pick the nearer slot 10 -> server 1.
  EXPECT_EQ(table.lookup(900), 1u);
}

TEST(HdTableTest, LookupDetailedExposesMargin) {
  hd_table table(default_hash(), small_config());
  table.join(1);
  table.join(2);
  const auto detail = table.lookup_detailed(1234);
  EXPECT_EQ(detail.key, table.lookup(1234));
  EXPECT_GE(detail.margin(), 0.0);
  EXPECT_GT(detail.best_score, 0.0);
}

TEST(HdTableTest, CloneBehavesIdentically) {
  hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 10; ++s) {
    table.join(s * 111);
  }
  const auto copy = table.clone();
  EXPECT_EQ(copy->name(), table.name());
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_EQ(copy->lookup(r), table.lookup(r));
  }
}

TEST(HdTableTest, SlotCacheGivesIdenticalAnswers) {
  hd_table_config cached = small_config();
  cached.slot_cache = true;
  hd_table plain(default_hash(), small_config());
  hd_table with_cache(default_hash(), cached);
  for (server_id s = 1; s <= 12; ++s) {
    plain.join(s * 7);
    with_cache.join(s * 7);
  }
  for (request_id r = 0; r < 1000; ++r) {
    EXPECT_EQ(plain.lookup(r), with_cache.lookup(r));
  }
  // Membership change invalidates the cache.
  plain.leave(7);
  with_cache.leave(7);
  for (request_id r = 0; r < 1000; ++r) {
    EXPECT_EQ(plain.lookup(r), with_cache.lookup(r));
  }
}

TEST(HdTableTest, WarmedCacheAnswersLikeColdCache) {
  hd_table_config cached = small_config();
  cached.slot_cache = true;
  hd_table warm(default_hash(), cached);
  hd_table cold(default_hash(), small_config());
  for (server_id s = 1; s <= 9; ++s) {
    warm.join(s * 13);
    cold.join(s * 13);
  }
  warm.warm_slot_cache();
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_EQ(warm.lookup(r), cold.lookup(r));
  }
}

TEST(HdTableTest, WarmCacheIsNoopWhenDisabled) {
  hd_table table(default_hash(), small_config());
  table.join(1);
  table.warm_slot_cache();  // must not crash or allocate a cache
  EXPECT_EQ(table.lookup(5), 1u);
}

TEST(HdTableTest, FaultRegionsCoverServerRows) {
  hd_table table(default_hash(), small_config());
  table.join(1);
  table.join(2);
  table.join(3);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 3u);
  for (const auto& region : regions) {
    EXPECT_EQ(region.label, "server-hypervectors");
    EXPECT_EQ(region.bytes.size(), 2048u / 8u);
  }
  EXPECT_EQ(table.fault_bits(), 3u * 2048u);
}

TEST(HdTableTest, RobustToFlipsWithinMargin) {
  // The paper's core robustness claim, as an exact property: flipping
  // strictly fewer than margin/2 bits of the winning row can never
  // change any request's assignment.
  hd_table table(default_hash(), small_config());
  for (server_id s = 1; s <= 8; ++s) {
    table.join(s * 1000);
  }
  const auto shadow = table.clone();

  // A request whose winner/runner-up margin exceeds 2*budget can never be
  // remapped by `budget` flips (each flip moves one similarity by 1).
  // Requests sitting exactly between two servers have margin 0 and are
  // legitimately sensitive, so the guarantee is conditioned on margin.
  constexpr std::size_t kBudget = 9;
  std::vector<request_id> safe_requests;
  for (request_id r = 0; r < 200; ++r) {
    if (table.lookup_detailed(r).margin() > 2.0 * kBudget) {
      safe_requests.push_back(r);
    }
  }
  ASSERT_GT(safe_requests.size(), 100u);  // margins are typically huge

  bit_flip_injector injector(1234);
  for (int trial = 0; trial < 5; ++trial) {
    scoped_injection injection(injector, table, kBudget);
    for (const request_id r : safe_requests) {
      EXPECT_EQ(table.lookup(r), shadow->lookup(r)) << "request " << r;
    }
  }
}

TEST(HdTableTest, FaultInjectionInvalidatesSlotCache) {
  // With the cache enabled, corruption must not serve stale pre-fault
  // results: fault_regions() clears the memoization.
  hd_table_config config;
  config.dimension = 256;
  config.capacity = 8;
  config.slot_cache = true;
  hd_table table(default_hash(), config);
  table.join(1);
  table.join(2);
  // Warm the cache.
  std::vector<server_id> before;
  for (request_id r = 0; r < 50; ++r) {
    before.push_back(table.lookup(r));
  }
  // Massive corruption: zero server 1's entire row via the fault surface.
  {
    auto regions = table.fault_regions();
    for (auto& b : regions[0].bytes) {
      b = std::byte{0xff};
    }
  }
  // At least one request must now answer differently (d=256 is small
  // enough that a fully inverted row loses every query it used to win).
  std::size_t changed = 0;
  for (request_id r = 0; r < 50; ++r) {
    changed += table.lookup(r) != before[r] ? 1 : 0;
  }
  EXPECT_GT(changed, 0u);
}

TEST(HdTableTest, ConfigAccessors) {
  const hd_table table(default_hash(), small_config());
  EXPECT_EQ(table.config().dimension, 2048u);
  EXPECT_EQ(table.encoder().size(), 64u);
  EXPECT_EQ(table.name(), "hd");
}

}  // namespace
}  // namespace hdhash
