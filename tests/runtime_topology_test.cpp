/// cpu_topology against canned sysfs fixture trees: single-socket SMT,
/// dual-node, cgroup-restricted cpuset, and the missing-/sys portable
/// fallback — plus the cpulist parser the kernel formats feed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/cpu_topology.hpp"

namespace hdhash::runtime {
namespace {

namespace fs = std::filesystem;

/// Builds a throwaway sysfs-shaped tree under the system temp dir and
/// removes it on destruction.  write() creates parents as needed, so a
/// fixture spells out only the files a test cares about — exactly how
/// sparse real sysfs trees are.
class sysfs_fixture {
 public:
  explicit sysfs_fixture(const std::string& name)
      : root_(fs::temp_directory_path() /
              ("hdhash_topo_" + name + "_" + std::to_string(::getpid()))) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~sysfs_fixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  sysfs_fixture(const sysfs_fixture&) = delete;
  sysfs_fixture& operator=(const sysfs_fixture&) = delete;

  void write(const std::string& relative, const std::string& content) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << content << "\n";
  }

  /// One cpuN entry with its topology attributes.
  void add_cpu(unsigned id, unsigned package, unsigned core) {
    const std::string base =
        "devices/system/cpu/cpu" + std::to_string(id) + "/topology/";
    write(base + "physical_package_id", std::to_string(package));
    write(base + "core_id", std::to_string(core));
  }

  void set_online(const std::string& list) {
    write("devices/system/cpu/online", list);
  }

  void add_node(unsigned id, const std::string& cpulist) {
    write("devices/system/node/node" + std::to_string(id) + "/cpulist",
          cpulist);
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

/// 1 socket, 4 physical cores, SMT-2 in the kernel's usual numbering:
/// cpu0-3 are thread 0 of cores 0-3, cpu4-7 their hyper-twins.
void populate_single_socket_smt(sysfs_fixture& fixture) {
  fixture.set_online("0-7");
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    fixture.add_cpu(cpu, 0, cpu % 4);
  }
  fixture.add_node(0, "0-7");
}

/// 2 sockets × 4 cores, no SMT, one NUMA node per socket.
void populate_dual_node(sysfs_fixture& fixture) {
  fixture.set_online("0-7");
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    fixture.add_cpu(cpu, cpu / 4, cpu % 4);
  }
  fixture.add_node(0, "0-3");
  fixture.add_node(1, "4-7");
}

TEST(CpuListParserTest, HandlesKernelFormats) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-1,4,6-7"),
            (std::vector<unsigned>{0, 1, 4, 6, 7}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<unsigned>{5}));
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(parse_cpu_list("3,1,1-2"), (std::vector<unsigned>{1, 2, 3}));
  EXPECT_TRUE(parse_cpu_list("").empty());
  // Malformed input refuses a partial parse outright.
  EXPECT_TRUE(parse_cpu_list("2-1").empty());
  EXPECT_TRUE(parse_cpu_list("0-").empty());
  EXPECT_TRUE(parse_cpu_list("a-b").empty());
}

TEST(CpuTopologyTest, SingleSocketSmtTree) {
  sysfs_fixture fixture("smt");
  populate_single_socket_smt(fixture);
  const auto topology = cpu_topology::from_sysfs(fixture.root());
  ASSERT_TRUE(topology.has_value());
  EXPECT_TRUE(topology->from_sysfs_tree());
  EXPECT_EQ(topology->logical_cpus(), 8u);
  EXPECT_EQ(topology->physical_cores(), 4u);
  EXPECT_EQ(topology->packages(), 1u);
  EXPECT_EQ(topology->numa_nodes(), 1u);
  EXPECT_EQ(topology->smt_per_core(), 2u);
  // cpu0-3 are thread 0 of their cores, cpu4-7 the SMT siblings.
  for (const logical_cpu& cpu : topology->cpus()) {
    EXPECT_EQ(cpu.smt_rank, cpu.id < 4 ? 0u : 1u) << "cpu" << cpu.id;
    EXPECT_EQ(cpu.core, cpu.id % 4) << "cpu" << cpu.id;
    EXPECT_EQ(cpu.node, 0u);
  }
}

TEST(CpuTopologyTest, DualNodeTree) {
  sysfs_fixture fixture("dual");
  populate_dual_node(fixture);
  // Explicit allowed mask: without one, from_sysfs probes the *host's*
  // affinity, which a restricted test runner would bleed into the
  // fixture's assertions.
  const auto topology = cpu_topology::from_sysfs(
      fixture.root(), std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->logical_cpus(), 8u);
  EXPECT_EQ(topology->physical_cores(), 8u);
  EXPECT_EQ(topology->packages(), 2u);
  EXPECT_EQ(topology->numa_nodes(), 2u);
  EXPECT_EQ(topology->smt_per_core(), 1u);
  EXPECT_EQ(topology->node_of(2), 0u);
  EXPECT_EQ(topology->node_of(6), 1u);
  EXPECT_EQ(topology->allowed_physical_cores(), 8u);
}

TEST(CpuTopologyTest, CgroupRestrictedCpuset) {
  // A container granted cpus {1, 2, 5}: topology still shows the whole
  // machine, the allowed mask shows what placement may actually use.
  sysfs_fixture fixture("restricted");
  populate_dual_node(fixture);
  const auto topology = cpu_topology::from_sysfs(
      fixture.root(), std::vector<unsigned>{1, 2, 5});
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->logical_cpus(), 8u);
  EXPECT_EQ(topology->allowed_cpus(), (std::vector<unsigned>{1, 2, 5}));
  EXPECT_EQ(topology->allowed_physical_cores(), 3u);
  for (const logical_cpu& cpu : topology->cpus()) {
    EXPECT_EQ(cpu.allowed, cpu.id == 1 || cpu.id == 2 || cpu.id == 5);
  }
}

TEST(CpuTopologyTest, DisjointAffinityMaskFallsBackToAllAllowed) {
  // A mask naming only CPUs the tree does not show (affinity probed in
  // another namespace): planning an empty set would make every policy a
  // no-op, so everything becomes allowed instead.
  sysfs_fixture fixture("disjoint");
  populate_dual_node(fixture);
  const auto topology = cpu_topology::from_sysfs(
      fixture.root(), std::vector<unsigned>{64, 65});
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->allowed_cpus().size(), 8u);
}

TEST(CpuTopologyTest, OnlineListRestrictsEnumeration) {
  // cpu6/cpu7 hot-unplugged: directories exist, online list excludes
  // them, so the topology must not place workers there.
  sysfs_fixture fixture("offline");
  fixture.set_online("0-5");
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    fixture.add_cpu(cpu, 0, cpu);
  }
  const auto topology = cpu_topology::from_sysfs(fixture.root());
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->logical_cpus(), 6u);
}

TEST(CpuTopologyTest, MissingSysfsYieldsNullopt) {
  EXPECT_FALSE(
      cpu_topology::from_sysfs("/nonexistent/hdhash/sysfs").has_value());
  // An existing root without a cpu tree is equally unusable.
  const sysfs_fixture fixture("empty");
  EXPECT_FALSE(cpu_topology::from_sysfs(fixture.root()).has_value());
}

TEST(CpuTopologyTest, SparseTreeWithoutTopologyAttributesStillWorks) {
  // Fixture with cpu dirs but no topology/ attributes and no node
  // tree: every CPU defaults to its own core on package 0 / node 0.
  sysfs_fixture fixture("sparse");
  fixture.set_online("0-3");
  const auto topology = cpu_topology::from_sysfs(fixture.root());
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->logical_cpus(), 4u);
  EXPECT_EQ(topology->physical_cores(), 4u);
  EXPECT_EQ(topology->numa_nodes(), 1u);
  EXPECT_EQ(topology->smt_per_core(), 1u);
}

TEST(CpuTopologyTest, FlatFallbackShape) {
  const cpu_topology topology = cpu_topology::flat(6);
  EXPECT_FALSE(topology.from_sysfs_tree());
  EXPECT_EQ(topology.logical_cpus(), 6u);
  EXPECT_EQ(topology.physical_cores(), 6u);
  EXPECT_EQ(topology.packages(), 1u);
  EXPECT_EQ(topology.numa_nodes(), 1u);
  EXPECT_EQ(topology.allowed_cpus().size(), 6u);
  // Degenerate input still yields a usable one-CPU machine.
  EXPECT_EQ(cpu_topology::flat(0).logical_cpus(), 1u);
}

TEST(CpuTopologyTest, DiscoverAlwaysYieldsSomethingUsable) {
  // On any platform — real /sys, masked /sys, no /sys — discovery must
  // produce at least one allowed CPU for the pool to run on.
  const cpu_topology topology = cpu_topology::discover();
  EXPECT_GE(topology.logical_cpus(), 1u);
  EXPECT_GE(topology.allowed_cpus().size(), 1u);
  EXPECT_GE(topology.physical_cores(), 1u);
}

}  // namespace
}  // namespace hdhash::runtime
