#include "table/jump.hpp"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(JumpBucketTest, SingleBucketAlwaysZero) {
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(jump_table::jump_bucket(key * 77, 1), 0u);
  }
}

TEST(JumpBucketTest, WithinRange) {
  for (std::uint64_t key = 0; key < 1000; ++key) {
    for (const std::size_t buckets : {2u, 3u, 10u, 100u}) {
      EXPECT_LT(jump_table::jump_bucket(key * 0x9e3779b9, buckets), buckets);
    }
  }
}

TEST(JumpBucketTest, ZeroBucketsThrows) {
  EXPECT_THROW(jump_table::jump_bucket(1, 0), precondition_error);
}

TEST(JumpBucketTest, MonotoneGrowthProperty) {
  // The defining jump property: growing the bucket count either keeps a
  // key in place or moves it to one of the newly added buckets.
  for (std::uint64_t key = 1; key <= 500; ++key) {
    const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
    std::size_t previous = jump_table::jump_bucket(mixed, 8);
    for (std::size_t buckets = 9; buckets <= 24; ++buckets) {
      const std::size_t current = jump_table::jump_bucket(mixed, buckets);
      if (current != previous) {
        EXPECT_GE(current, buckets - 1);
      }
      previous = current;
    }
  }
}

TEST(JumpBucketTest, ExpectedMoveFractionOnGrowth) {
  // Growing n -> n+1 moves ~1/(n+1) of the keys.
  constexpr std::size_t kKeys = 20'000;
  constexpr std::size_t kBuckets = 10;
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ULL + 1;
    moved += jump_table::jump_bucket(mixed, kBuckets) !=
                     jump_table::jump_bucket(mixed, kBuckets + 1)
                 ? 1
                 : 0;
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_NEAR(fraction, 1.0 / (kBuckets + 1), 0.02);
}

TEST(JumpBucketTest, UniformDistribution) {
  constexpr std::size_t kBuckets = 16;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::uint64_t key = 0; key < 32'000; ++key) {
    ++counts[jump_table::jump_bucket(key * 0x9e3779b97f4a7c15ULL, kBuckets)];
  }
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 2000.0, 300.0);
  }
}

TEST(JumpTableTest, LeaveBackfillsWithLastSlot) {
  jump_table table(default_hash());
  table.join(100);
  table.join(200);
  table.join(300);
  table.leave(200);
  const auto servers = table.servers();
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[0], 100u);
  EXPECT_EQ(servers[1], 300u);  // tail moved into the hole
}

TEST(JumpTableTest, LookupUsesJumpBucket) {
  jump_table table(default_hash());
  table.join(7);
  table.join(8);
  table.join(9);
  const hash64& h = default_hash();
  for (request_id r = 0; r < 200; ++r) {
    const std::size_t bucket = jump_table::jump_bucket(h.hash_u64(r, 0), 3);
    EXPECT_EQ(table.lookup(r), table.servers()[bucket]);
  }
}

TEST(JumpTableTest, FaultRegionIsSlotArray) {
  jump_table table(default_hash());
  table.join(1);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].label, "bucket-slots");
}

}  // namespace
}  // namespace hdhash
