/// Channel conformance and torture suite: every contract in the
/// shard-channel concept (emu/channel.hpp), asserted against BOTH
/// implementations — the lock-free spsc_ring and the mutex_channel
/// reference — through the shard_channel run-time wrapper, plus the
/// M-producer × N-shard ingest mesh and the standalone buffer_pool.
///
/// The threaded tests here are the TSan targets for the ingest layer
/// (ctest -L channel): SPSC wraparound under concurrent push/pop,
/// close-while-full (the PR-7 deadlock regression), close-while-empty,
/// cross-producer mesh interleavings, and pool recycling reuse.
#include "emu/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "emu/batch_channel.hpp"
#include "emu/buffer_pool.hpp"
#include "emu/ingest.hpp"
#include "emu/spsc_ring.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

// ---------------------------------------------------------------------
// Conformance: every contract test runs against both implementations.

class ChannelConformanceTest
    : public ::testing::TestWithParam<channel_kind> {};

INSTANTIATE_TEST_SUITE_P(BothKinds, ChannelConformanceTest,
                         ::testing::Values(channel_kind::ring,
                                           channel_kind::mutex),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(ChannelConformanceTest, ReportsItsKind) {
  shard_channel<int> channel(GetParam(), 4);
  EXPECT_EQ(channel.kind(), GetParam());
  EXPECT_GE(channel.capacity(), 4u);
}

TEST_P(ChannelConformanceTest, FifoOrder) {
  shard_channel<int> channel(GetParam(), 8);
  for (int i = 0; i < 8; ++i) {
    channel.push(int{i});
  }
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(channel.try_pop(out), pop_status::ok);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(channel.try_pop(out), pop_status::empty);
}

TEST_P(ChannelConformanceTest, TryPushReportsFullWithoutConsuming) {
  shard_channel<int> channel(GetParam(), 2);
  const std::size_t capacity = channel.capacity();
  for (std::size_t i = 0; i < capacity; ++i) {
    int item = static_cast<int>(i);
    ASSERT_EQ(channel.try_push(item), push_status::ok);
  }
  int extra = 99;
  EXPECT_EQ(channel.try_push(extra), push_status::full);
  EXPECT_EQ(extra, 99);  // untouched on full
}

TEST_P(ChannelConformanceTest, SingleThreadedWraparound) {
  // Many push/pop rounds through a tiny channel exercise index
  // wraparound (for the ring: free-running cursors crossing the mask).
  shard_channel<std::uint64_t> channel(GetParam(), 2);
  std::uint64_t out = 0;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    channel.push(round * 2);
    channel.push(round * 2 + 1);
    ASSERT_TRUE(channel.pop(out));
    EXPECT_EQ(out, round * 2);
    ASSERT_TRUE(channel.pop(out));
    EXPECT_EQ(out, round * 2 + 1);
  }
  EXPECT_EQ(channel.try_pop(out), pop_status::empty);
}

TEST_P(ChannelConformanceTest, PushAfterCloseThrowsLoudly) {
  shard_channel<int> channel(GetParam(), 4);
  channel.push(1);
  channel.close();
  EXPECT_TRUE(channel.closed());
  EXPECT_THROW(channel.push(2), channel_closed);
  int item = 3;
  EXPECT_EQ(channel.try_push(item), push_status::closed);
}

TEST_P(ChannelConformanceTest, PopDrainsThenReportsClosed) {
  shard_channel<int> channel(GetParam(), 4);
  channel.push(7);
  channel.push(8);
  channel.close();
  int out = -1;
  EXPECT_EQ(channel.try_pop(out), pop_status::ok);
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(channel.pop(out));  // blocking pop still drains
  EXPECT_EQ(out, 8);
  EXPECT_EQ(channel.try_pop(out), pop_status::closed);
  EXPECT_FALSE(channel.pop(out));
}

TEST_P(ChannelConformanceTest, CloseWhileEmptyWakesBlockedPop) {
  shard_channel<int> channel(GetParam(), 4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    int out = -1;
    const bool got = channel.pop(out);  // blocks: channel is empty
    EXPECT_FALSE(got);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  channel.close();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

// The PR-7 deadlock regression: a push already *blocked* on a full
// channel must wake and throw channel_closed when close() arrives —
// the old batch_channel::push waited on a condition close() never
// signalled and hung forever.
TEST_P(ChannelConformanceTest, CloseWhileFullWakesBlockedPush) {
  shard_channel<int> channel(GetParam(), 1);
  const std::size_t capacity = channel.capacity();
  for (std::size_t i = 0; i < capacity; ++i) {
    channel.push(static_cast<int>(i));  // fill to the brim
  }
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      channel.push(999);  // blocks: channel is full
      ADD_FAILURE() << "push into a closed channel returned";
    } catch (const channel_closed&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(threw.load());  // still blocked, not spuriously failed
  channel.close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST_P(ChannelConformanceTest, SpscTortureKeepsOrderAndLosesNothing) {
  // One producer races one consumer through a tiny channel long enough
  // to wrap the ring cursors thousands of times.  FIFO means the
  // consumer must see exactly 0,1,2,...,N-1.
  constexpr std::uint64_t kItems = 200'000;
  shard_channel<std::uint64_t> under_test(GetParam(), 4);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      under_test.push(std::uint64_t{i});
    }
    under_test.close();
  });
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (under_test.pop(out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// ---------------------------------------------------------------------
// spsc_ring specifics.

TEST(SpscRingTest, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(spsc_ring<int>(1).capacity(), 1u);
  EXPECT_EQ(spsc_ring<int>(2).capacity(), 2u);
  EXPECT_EQ(spsc_ring<int>(3).capacity(), 4u);
  EXPECT_EQ(spsc_ring<int>(5).capacity(), 8u);
  EXPECT_EQ(spsc_ring<int>(64).capacity(), 64u);
}

TEST(SpscRingTest, ZeroCapacityThrows) {
  EXPECT_THROW(spsc_ring<int>(0), precondition_error);
}

TEST(SpscRingTest, MovesItemsThrough) {
  // Move-only payloads prove the ring never copies.
  spsc_ring<std::unique_ptr<int>> ring(2);
  ring.push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRingTest, ItemPushedBeforeCloseIsNeverDropped) {
  // Regression for the try_pop close race: the consumer must re-check
  // emptiness after observing the closed flag, or an item published
  // between the two loads is silently lost.
  for (int round = 0; round < 200; ++round) {
    spsc_ring<int> ring(4);
    std::thread producer([&] {
      ring.push(1);
      ring.close();
    });
    int out = 0;
    int got = 0;
    while (ring.pop(out)) {
      ++got;
    }
    producer.join();
    EXPECT_EQ(got, 1);
  }
}

// ---------------------------------------------------------------------
// channel_kind parsing / environment selection.

TEST(ChannelKindTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(channel_kind::ring), "ring");
  EXPECT_EQ(to_string(channel_kind::mutex), "mutex");
  EXPECT_EQ(parse_channel_kind("ring"), channel_kind::ring);
  EXPECT_EQ(parse_channel_kind("mutex"), channel_kind::mutex);
  EXPECT_FALSE(parse_channel_kind("lockfree").has_value());
  EXPECT_FALSE(parse_channel_kind("").has_value());
}

TEST(ChannelKindTest, DefaultHonorsEnvironment) {
  ::unsetenv("HDHASH_CHANNEL");
  EXPECT_EQ(default_channel_kind(), channel_kind::ring);
  ::setenv("HDHASH_CHANNEL", "mutex", 1);
  EXPECT_EQ(default_channel_kind(), channel_kind::mutex);
  ::setenv("HDHASH_CHANNEL", "bogus", 1);
  EXPECT_THROW(default_channel_kind(), precondition_error);
  ::unsetenv("HDHASH_CHANNEL");
}

// ---------------------------------------------------------------------
// buffer_pool: the recycling half of the old batch_channel, standalone.

TEST(BufferPoolTest, TakeFromEmptyPoolFails) {
  buffer_pool<std::vector<int>> pool;
  std::vector<int> buffer;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.take(buffer));
}

TEST(BufferPoolTest, RecycledBufferKeepsItsAllocation) {
  buffer_pool<std::vector<int>> pool;
  std::vector<int> buffer;
  buffer.reserve(1024);
  const int* storage = buffer.data();
  pool.recycle(std::move(buffer));
  EXPECT_EQ(pool.size(), 1u);

  std::vector<int> reused;
  ASSERT_TRUE(pool.take(reused));
  EXPECT_EQ(reused.data(), storage);  // same allocation came back
  EXPECT_EQ(reused.capacity(), 1024u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolTest, LifoReuseUnderManyThreads) {
  buffer_pool<std::vector<int>> pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 5'000;
  std::vector<std::thread> threads;
  std::atomic<int> takes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        std::vector<int> buffer;
        if (pool.take(buffer)) {
          takes.fetch_add(1, std::memory_order_relaxed);
        }
        buffer.clear();
        pool.recycle(std::move(buffer));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every recycle stays in the pool, so at most kThreads buffers exist.
  EXPECT_LE(pool.size(), static_cast<std::size_t>(kThreads));
  EXPECT_GT(takes.load(), 0);
}

// ---------------------------------------------------------------------
// The M×N ingest mesh.

struct tagged_item {
  std::size_t producer = 0;
  std::uint64_t sequence = 0;
};

TEST(IngestMeshTest, LaneIndexingIsProducerMajor) {
  ingest_mesh<int> mesh(2, 3, 4, channel_kind::ring);
  EXPECT_EQ(mesh.producers(), 2u);
  EXPECT_EQ(mesh.shards(), 3u);
  mesh.lane(1, 2).push(42);
  int out = 0;
  EXPECT_EQ(mesh.lane(1, 2).try_pop(out), pop_status::ok);
  EXPECT_EQ(out, 42);
  EXPECT_EQ(mesh.lane(0, 2).try_pop(out), pop_status::empty);
}

TEST(IngestMeshTest, ConsumerClosesOnlyWhenAllLanesClose) {
  ingest_mesh<int> mesh(2, 1, 4, channel_kind::ring);
  auto consumer = mesh.consumer(0);
  auto session0 = mesh.session(0);
  auto session1 = mesh.session(1);

  session0.push(0, 10);
  session0.close();
  int out = 0;
  ASSERT_EQ(consumer.try_pop(out), pop_status::ok);
  EXPECT_EQ(out, 10);
  // One producer still open: the column reads empty, not closed.
  EXPECT_EQ(consumer.try_pop(out), pop_status::empty);
  session1.push(0, 11);
  session1.close();
  ASSERT_EQ(consumer.try_pop(out), pop_status::ok);
  EXPECT_EQ(out, 11);
  EXPECT_EQ(consumer.try_pop(out), pop_status::closed);
}

TEST(IngestMeshTest, RoundRobinScanDoesNotStarveLanes) {
  // Producer 0 keeps its lane full; producer 1's items must still get
  // through within a bounded number of pops.
  ingest_mesh<tagged_item> mesh(2, 1, 4, channel_kind::ring);
  auto consumer = mesh.consumer(0);
  mesh.lane(0, 0).push({0, 0});
  mesh.lane(0, 0).push({0, 1});
  mesh.lane(1, 0).push({1, 0});

  bool saw_producer1 = false;
  tagged_item out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(consumer.try_pop(out), pop_status::ok);
    if (out.producer == 1) {
      saw_producer1 = true;
    }
  }
  EXPECT_TRUE(saw_producer1);
}

class IngestMeshTortureTest : public ::testing::TestWithParam<channel_kind> {};

INSTANTIATE_TEST_SUITE_P(BothKinds, IngestMeshTortureTest,
                         ::testing::Values(channel_kind::ring,
                                           channel_kind::mutex),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(IngestMeshTortureTest, MxNMeshDeliversEverythingInPerProducerOrder) {
  // M producer threads each stream kItems tagged items round-robin at N
  // consumer threads.  Every consumer checks per-producer FIFO (the
  // mesh's ordering guarantee) and the totals prove nothing was lost
  // or duplicated.
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kShards = 2;
  constexpr std::uint64_t kItems = 20'000;
  ingest_mesh<tagged_item> mesh(kProducers, kShards, 4, GetParam());

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<int> order_faults{0};
  for (std::size_t s = 0; s < kShards; ++s) {
    threads.emplace_back([&mesh, &delivered, &order_faults, s] {
      auto consumer = mesh.consumer(s);
      // Items from one producer arrive in strictly increasing sequence
      // (each producer round-robins shards, so shard s sees every
      // kShards-th item of that producer's stream).
      std::vector<std::uint64_t> last_seen(kProducers, 0);
      std::vector<bool> any_seen(kProducers, false);
      tagged_item item;
      while (consumer.pop(item)) {
        if (any_seen[item.producer] &&
            item.sequence <= last_seen[item.producer]) {
          order_faults.fetch_add(1, std::memory_order_relaxed);
        }
        last_seen[item.producer] = item.sequence;
        any_seen[item.producer] = true;
        delivered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&mesh, p] {
      auto session = mesh.session(p);
      for (std::uint64_t i = 0; i < kItems; ++i) {
        session.push(i % kShards, {p, i});
      }
      session.close();
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(delivered.load(), kProducers * kItems);
  EXPECT_EQ(order_faults.load(), 0);
}

TEST_P(IngestMeshTortureTest, MeshCloseUnblocksStalledProducers) {
  // Producers blocked on full lanes (no consumer running) must all
  // wake and fail loudly when the mesh force-closes — the stop path.
  constexpr std::size_t kProducers = 2;
  ingest_mesh<int> mesh(kProducers, 1, 1, GetParam());
  std::atomic<int> threw{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mesh, &threw, p] {
      auto session = mesh.session(p);
      try {
        for (int i = 0;; ++i) {
          session.push(0, int{i});  // fills the lane, then blocks
        }
      } catch (const channel_closed&) {
        threw.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mesh.close();
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_EQ(threw.load(), static_cast<int>(kProducers));
}

// ---------------------------------------------------------------------
// The deprecated batch_channel shim still honors the historical API —
// minus the deadlock: push after close now fails loudly.

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

TEST(BatchChannelShimTest, PushPopRecycleRoundTrip) {
  batch_channel<std::vector<int>> channel;
  channel.push({1, 2, 3});
  std::vector<int> batch;
  ASSERT_TRUE(channel.pop(batch));
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3}));
  channel.recycle(std::move(batch));
  std::vector<int> reused;
  EXPECT_TRUE(channel.take_recycled(reused));
  channel.close();
  EXPECT_FALSE(channel.pop(reused));
}

TEST(BatchChannelShimTest, PushAfterCloseThrowsInsteadOfDeadlocking) {
  batch_channel<std::vector<int>> channel;
  channel.push({1});
  channel.push({2});  // full at the historical depth of 2
  channel.close();
  EXPECT_THROW(channel.push({3}), channel_closed);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace hdhash
