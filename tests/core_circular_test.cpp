#include "core/circular.hpp"

#include <string>

#include <gtest/gtest.h>

#include "hdc/similarity.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

using hdc::cosine;
using hdc::flip_policy;
using hdc::hamming_distance;

TEST(CircularDistanceTest, BasicGeometry) {
  EXPECT_EQ(circular_distance(0, 0, 12), 0u);
  EXPECT_EQ(circular_distance(0, 1, 12), 1u);
  EXPECT_EQ(circular_distance(1, 0, 12), 1u);
  EXPECT_EQ(circular_distance(0, 6, 12), 6u);   // antipode
  EXPECT_EQ(circular_distance(0, 11, 12), 1u);  // wraps
  EXPECT_EQ(circular_distance(2, 9, 12), 5u);
}

struct circle_case {
  std::size_t count;
  std::size_t dim;
};

class CircularSetFreshTest : public ::testing::TestWithParam<circle_case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CircularSetFreshTest,
    ::testing::Values(circle_case{2, 1000}, circle_case{4, 1000},
                      circle_case{12, 10'000}, circle_case{64, 10'000},
                      circle_case{128, 4096}, circle_case{1024, 10'000}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.count) + "_d" +
             std::to_string(info.param.dim);
    });

TEST_P(CircularSetFreshTest, SizeAndDimension) {
  const auto [count, dim] = GetParam();
  xoshiro256 rng(1);
  const auto set = circular_set(count, dim, rng);
  ASSERT_EQ(set.size(), count);
  for (const auto& hv : set) {
    EXPECT_EQ(hv.dim(), dim);
  }
}

TEST_P(CircularSetFreshTest, ProfileIsExactlyCircular) {
  // The defining property (fresh_bits makes it exact):
  //   hamming(c_i, c_j) == floor(d/n) * circular_distance(i, j, n).
  const auto [count, dim] = GetParam();
  xoshiro256 rng(2);
  const auto set = circular_set(count, dim, rng);
  const std::size_t weight = dim / count;
  for (std::size_t i = 0; i < count; ++i) {
    // Sampling j keeps the O(n^2) check tractable for the 1024 case.
    for (std::size_t j = i; j < count; j += (count > 64 ? 37 : 1)) {
      EXPECT_EQ(hamming_distance(set[i], set[j]),
                weight * circular_distance(i, j, count))
          << "pair " << i << "," << j;
    }
  }
}

TEST_P(CircularSetFreshTest, NoDiscontinuityAtWrapAround) {
  // The level-hypervector flaw the construction removes: the last and
  // first vectors must be as similar as any adjacent pair.
  const auto [count, dim] = GetParam();
  xoshiro256 rng(3);
  const auto set = circular_set(count, dim, rng);
  const std::size_t adjacent = hamming_distance(set[0], set[1]);
  EXPECT_EQ(hamming_distance(set[count - 1], set[0]), adjacent);
}

TEST_P(CircularSetFreshTest, AntipodeQuasiOrthogonal) {
  const auto [count, dim] = GetParam();
  if (count < 4) {
    GTEST_SKIP() << "antipode degenerate for n < 4";
  }
  xoshiro256 rng(4);
  const auto set = circular_set(count, dim, rng);
  // Antipodal distance = (n/2) * floor(d/n) ~= d/2 -> cosine ~= 0.
  EXPECT_NEAR(cosine(set[0], set[count / 2]), 0.0, 0.1);
}

TEST(CircularSetTest, DeterministicPerSeed) {
  xoshiro256 a(7);
  xoshiro256 b(7);
  EXPECT_EQ(circular_set(16, 2048, a), circular_set(16, 2048, b));
}

TEST(CircularSetTest, DifferentSeedsDiffer) {
  xoshiro256 a(7);
  xoshiro256 b(8);
  EXPECT_NE(circular_set(16, 2048, a), circular_set(16, 2048, b));
}

TEST(CircularSetTest, OddCardinalityFootnote) {
  // Odd n: generate 2n and keep every other (paper footnote 1).
  xoshiro256 rng(9);
  const std::size_t count = 13;
  const std::size_t dim = 10'000;
  const auto set = circular_set(count, dim, rng);
  ASSERT_EQ(set.size(), count);
  // Taking alternate members of a circle of 26 preserves circular
  // structure with doubled per-step weight.
  const std::size_t weight = 2 * (dim / (2 * count));
  for (std::size_t j = 0; j < count; ++j) {
    EXPECT_EQ(hamming_distance(set[0], set[j]),
              weight * circular_distance(0, j, count))
        << "j=" << j;
  }
}

TEST(CircularSetTest, IndependentPolicyApproximatesCircle) {
  // The literal Algorithm 1: profile monotone up to collisions; the
  // antipodal similarity saturates around cosine 1 - (1 - e^-1) = 0.37
  // rather than reaching 0.
  xoshiro256 rng(10);
  const std::size_t count = 64;
  const std::size_t dim = 10'000;
  const auto set = circular_set(count, dim, rng, flip_policy::independent);
  // Adjacent distance is exact (single transformation, no collisions).
  EXPECT_EQ(hamming_distance(set[0], set[1]), dim / count);
  // Wrap-around still continuous.
  EXPECT_EQ(hamming_distance(set[count - 1], set[0]), dim / count);
  const double antipodal = cosine(set[0], set[count / 2]);
  EXPECT_GT(antipodal, 0.2);  // saturation: never reaches orthogonality
  EXPECT_LT(antipodal, 0.55);
}

TEST(CircularSetTest, SimilarityDecaysOutToAntipode) {
  xoshiro256 rng(11);
  const auto set = circular_set(32, 10'000, rng);
  std::size_t previous = 0;
  for (std::size_t j = 1; j <= 16; ++j) {
    const std::size_t d = hamming_distance(set[0], set[j]);
    EXPECT_GT(d, previous);
    previous = d;
  }
  // And rises again symmetrically on the way back.
  for (std::size_t j = 17; j < 32; ++j) {
    const std::size_t d = hamming_distance(set[0], set[j]);
    EXPECT_LT(d, previous);
    previous = d;
  }
}

TEST(CircularSetTest, TooFewNodesThrows) {
  xoshiro256 rng(12);
  EXPECT_THROW(circular_set(1, 100, rng), precondition_error);
}

TEST(CircularSetTest, DimensionSmallerThanCircleThrows) {
  xoshiro256 rng(13);
  // weight = dim / count == 0 is rejected.
  EXPECT_THROW(circular_set(128, 100, rng), precondition_error);
}

TEST(CircularSetTest, MinimalCircleOfTwo) {
  xoshiro256 rng(14);
  const auto set = circular_set(2, 1000, rng);
  ASSERT_EQ(set.size(), 2u);
  // One forward step of weight d/2: the pair is quasi-orthogonal.
  EXPECT_EQ(hamming_distance(set[0], set[1]), 500u);
}

}  // namespace
}  // namespace hdhash
