#include "hdc/ops.hpp"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "hdc/similarity.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {
namespace {

TEST(BindTest, SelfInverse) {
  xoshiro256 rng(1);
  const auto a = hypervector::random(1000, rng);
  const auto t = hypervector::random(1000, rng);
  EXPECT_EQ(bind(bind(a, t), t), a);
}

TEST(BindTest, CommutativeAndAssociative) {
  xoshiro256 rng(2);
  const auto a = hypervector::random(512, rng);
  const auto b = hypervector::random(512, rng);
  const auto c = hypervector::random(512, rng);
  EXPECT_EQ(bind(a, b), bind(b, a));
  EXPECT_EQ(bind(bind(a, b), c), bind(a, bind(b, c)));
}

TEST(BindTest, PreservesDistances) {
  // Binding with the same vector is an isometry of Hamming space.
  xoshiro256 rng(3);
  const auto a = hypervector::random(2048, rng);
  const auto b = hypervector::random(2048, rng);
  const auto t = hypervector::random(2048, rng);
  EXPECT_EQ(hamming_distance(a, b), hamming_distance(bind(a, t), bind(b, t)));
}

TEST(BindTest, RandomizesSimilarity) {
  // bind(a, t) is quasi-orthogonal to a for random t.
  xoshiro256 rng(4);
  const auto a = hypervector::random(10'000, rng);
  const auto t = hypervector::random(10'000, rng);
  EXPECT_NEAR(normalized_hamming(a, bind(a, t)), 0.5, 0.05);
}

TEST(BundleOddTest, MajorityOfThree) {
  hypervector a(4);
  hypervector b(4);
  hypervector c(4);
  a.set(0, true);  // bit 0: 1 vote -> 0
  a.set(1, true);
  b.set(1, true);  // bit 1: 2 votes -> 1
  a.set(2, true);
  b.set(2, true);
  c.set(2, true);  // bit 2: 3 votes -> 1
  const auto m = bundle_odd(std::vector<hypervector>{a, b, c});
  EXPECT_FALSE(m.test(0));
  EXPECT_TRUE(m.test(1));
  EXPECT_TRUE(m.test(2));
  EXPECT_FALSE(m.test(3));
}

TEST(BundleOddTest, EvenCountThrows) {
  const std::vector<hypervector> two(2, hypervector(8));
  EXPECT_THROW(bundle_odd(two), precondition_error);
}

TEST(BundleOddTest, SingletonIsIdentity) {
  xoshiro256 rng(5);
  const auto a = hypervector::random(128, rng);
  EXPECT_EQ(bundle_odd(std::vector<hypervector>{a}), a);
}

TEST(BundleTest, EmptyThrows) {
  xoshiro256 rng(6);
  EXPECT_THROW(bundle({}, rng), precondition_error);
}

TEST(BundleTest, DimensionMismatchThrows) {
  xoshiro256 rng(7);
  const std::vector<hypervector> mixed{hypervector(8), hypervector(16)};
  EXPECT_THROW(bundle(mixed, rng), precondition_error);
}

TEST(BundleTest, BundleIsCloserToMembersThanRandom) {
  // The defining property: the bundle of a set is similar to every member.
  xoshiro256 rng(8);
  std::vector<hypervector> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(hypervector::random(10'000, rng));
  }
  const auto m = bundle_odd(members);
  const auto unrelated = hypervector::random(10'000, rng);
  for (const auto& member : members) {
    EXPECT_LT(normalized_hamming(m, member), 0.40);
  }
  EXPECT_NEAR(normalized_hamming(m, unrelated), 0.5, 0.05);
}

TEST(BundleTest, EvenTieBreakDeterministicPerSeed) {
  hypervector a(64);
  const auto b = invert(a);  // every bit ties
  xoshiro256 rng_1(9);
  xoshiro256 rng_2(9);
  const auto m1 = bundle(std::vector<hypervector>{a, b}, rng_1);
  const auto m2 = bundle(std::vector<hypervector>{a, b}, rng_2);
  EXPECT_EQ(m1, m2);
  // Tie bits are random: about half set.
  EXPECT_NEAR(static_cast<double>(m1.popcount()), 32.0, 20.0);
}

TEST(PermuteTest, ZeroShiftIsIdentity) {
  xoshiro256 rng(10);
  const auto a = hypervector::random(100, rng);
  EXPECT_EQ(permute(a, 0), a);
  EXPECT_EQ(permute(a, 100), a);  // full rotation
}

TEST(PermuteTest, PreservesPopcount) {
  xoshiro256 rng(11);
  const auto a = hypervector::random(333, rng);
  EXPECT_EQ(permute(a, 17).popcount(), a.popcount());
}

TEST(PermuteTest, InverseRotationRestores) {
  xoshiro256 rng(12);
  const auto a = hypervector::random(200, rng);
  EXPECT_EQ(permute(permute(a, 77), 200 - 77), a);
}

TEST(PermuteTest, ShiftsIndividualBits) {
  hypervector a(10);
  a.set(9, true);
  const auto shifted = permute(a, 1);
  EXPECT_TRUE(shifted.test(0));  // wraps around
  EXPECT_EQ(shifted.popcount(), 1u);
}

TEST(PermuteTest, DecorrelatesFromSelf) {
  xoshiro256 rng(13);
  const auto a = hypervector::random(10'000, rng);
  EXPECT_NEAR(normalized_hamming(a, permute(a, 1)), 0.5, 0.05);
}

TEST(InvertTest, ComplementsEveryBit) {
  xoshiro256 rng(14);
  const auto a = hypervector::random(130, rng);
  const auto inv = invert(a);
  EXPECT_EQ(inv.popcount(), 130 - a.popcount());
  EXPECT_EQ(hamming_distance(a, inv), 130u);
  EXPECT_EQ(invert(inv), a);
}

TEST(FlipMaskTest, ExactWeight) {
  xoshiro256 rng(15);
  for (const std::size_t count : {0u, 1u, 10u, 64u, 500u}) {
    EXPECT_EQ(random_flip_mask(500, count, rng).popcount(), count);
  }
}

TEST(FlipMaskTest, OverweightThrows) {
  xoshiro256 rng(16);
  EXPECT_THROW(random_flip_mask(10, 11, rng), precondition_error);
}

TEST(FlipRandomBitsTest, ChangesExactlyCountBits) {
  xoshiro256 rng(17);
  const auto a = hypervector::random(1000, rng);
  const auto b = flip_random_bits(a, 25, rng);
  EXPECT_EQ(hamming_distance(a, b), 25u);
}

TEST(FlipRandomBitsTest, ZeroFlipsIsIdentity) {
  xoshiro256 rng(18);
  const auto a = hypervector::random(64, rng);
  EXPECT_EQ(flip_random_bits(a, 0, rng), a);
}

}  // namespace
}  // namespace hdhash::hdc
