#include "core/encoder.hpp"

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "support/scripted_hash.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(CircleEncoderTest, SlotIsHashModCircleSize) {
  testing::scripted_hash hash;
  hash.pin_u64(1234, 7);
  hash.pin_u64(5678, 7 + 64);  // same slot modulo 64
  const circle_encoder encoder(64, 1024, hash, /*seed=*/0);
  EXPECT_EQ(encoder.slot_of(1234), 7u);
  EXPECT_EQ(encoder.slot_of(5678), 7u);
  EXPECT_EQ(&encoder.encode(1234), &encoder.encode(5678));
}

TEST(CircleEncoderTest, EncodeReturnsCircleMember) {
  const circle_encoder encoder(32, 2048, default_hash(), 1);
  for (std::uint64_t x = 0; x < 100; ++x) {
    const auto slot = encoder.slot_of(x);
    EXPECT_LT(slot, 32u);
    EXPECT_EQ(&encoder.encode(x), &encoder.at(slot));
  }
}

TEST(CircleEncoderTest, SameParametersSameCircle) {
  const circle_encoder a(16, 1024, default_hash(), 99);
  const circle_encoder b(16, 1024, default_hash(), 99);
  for (std::size_t slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(a.at(slot), b.at(slot));
  }
}

TEST(CircleEncoderTest, DifferentSeedsDifferentCircle) {
  const circle_encoder a(16, 1024, default_hash(), 1);
  const circle_encoder b(16, 1024, default_hash(), 2);
  EXPECT_NE(a.at(0), b.at(0));
}

TEST(CircleEncoderTest, SlotOutOfRangeThrows) {
  const circle_encoder encoder(8, 512, default_hash(), 0);
  EXPECT_THROW(encoder.at(8), precondition_error);
}

TEST(CircleEncoderTest, SizeAndDim) {
  const circle_encoder encoder(8, 512, default_hash(), 0);
  EXPECT_EQ(encoder.size(), 8u);
  EXPECT_EQ(encoder.dim(), 512u);
}

TEST(CircleEncoderTest, SlotsCoverCircleUniformly) {
  const circle_encoder encoder(16, 512, default_hash(), 5);
  std::vector<int> hits(16, 0);
  for (std::uint64_t x = 0; x < 16'000; ++x) {
    ++hits[encoder.slot_of(x)];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 700);
    EXPECT_LT(h, 1300);
  }
}

}  // namespace
}  // namespace hdhash
