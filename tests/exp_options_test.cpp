/// The unified emulator flag parser (exp/emulator_options.hpp): flag
/// forms, auto sizing, error collection, apply() onto sharded_config,
/// and the deprecated per-flag shims it replaced.
#include "exp/emulator_options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sharded.hpp"
#include "runtime/cpu_topology.hpp"
#include "runtime/placement_plan.hpp"
#include "scenario/playbooks.hpp"

namespace hdhash {
namespace {

/// argv builder: gtest's argv is const-hostile, so tests assemble one.
emulator_options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "driver");
  return parse_emulator_options(
      static_cast<int>(args.size()),
      const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(EmulatorOptionsTest, DefaultsWhenNoFlagsGiven) {
  ::unsetenv("HDHASH_PIN");
  ::unsetenv("HDHASH_CHANNEL");
  const emulator_options opts = parse({});
  EXPECT_TRUE(opts.ok());
  EXPECT_FALSE(opts.shards_set);
  EXPECT_EQ(opts.shards, 0u);
  EXPECT_FALSE(opts.producers_set);
  EXPECT_EQ(opts.producers, 1u);
  EXPECT_FALSE(opts.placement_set);
  EXPECT_EQ(opts.membership, membership_mode::snapshot);
  EXPECT_FALSE(opts.channel_set);
  EXPECT_EQ(opts.channel, channel_kind::ring);
}

TEST(EmulatorOptionsTest, ParsesBothFlagForms) {
  const emulator_options equals = parse({"--shards=8", "--producers=2"});
  EXPECT_TRUE(equals.ok());
  EXPECT_TRUE(equals.shards_set);
  EXPECT_EQ(equals.shards, 8u);
  EXPECT_EQ(equals.producers, 2u);

  const emulator_options spaced = parse({"--shards", "8", "--producers", "2"});
  EXPECT_TRUE(spaced.ok());
  EXPECT_EQ(spaced.shards, 8u);
  EXPECT_EQ(spaced.producers, 2u);
}

TEST(EmulatorOptionsTest, ParsesMembershipPlacementAndChannel) {
  const emulator_options opts =
      parse({"--replicated", "--pin=scatter", "--channel=mutex"});
  EXPECT_TRUE(opts.ok());
  EXPECT_EQ(opts.membership, membership_mode::replicated);
  EXPECT_TRUE(opts.placement_set);
  EXPECT_EQ(opts.placement, runtime::placement_policy::scatter);
  EXPECT_TRUE(opts.channel_set);
  EXPECT_EQ(opts.channel, channel_kind::mutex);
}

TEST(EmulatorOptionsTest, AutoValuesResolveAgainstTopology) {
  const emulator_options opts = parse({"--shards=auto", "--producers=auto"});
  EXPECT_TRUE(opts.ok());
  EXPECT_TRUE(opts.shards_auto);
  EXPECT_GE(opts.shards, 1u);
  EXPECT_TRUE(opts.producers_auto);
  EXPECT_EQ(opts.producers,
            runtime::plan_io_shard_split(runtime::host_topology()).io_threads);
}

TEST(EmulatorOptionsTest, ParsesMemBacking) {
  const emulator_options opts = parse({"--mem=page"});
  EXPECT_TRUE(opts.ok());
  EXPECT_TRUE(opts.mem_set);
  EXPECT_EQ(opts.mem, mem::mem_request::page);
  // apply() installs the request process-wide (wins over HDHASH_MEM).
  sharded_config config;
  opts.apply(config);
  EXPECT_EQ(mem::select_mem_request(), mem::mem_request::page);
  mem::clear_mem_request_override();

  const emulator_options bad = parse({"--mem=hugepages"});
  EXPECT_FALSE(bad.ok());
  ASSERT_EQ(bad.errors.size(), 1u);
  EXPECT_NE(bad.errors[0].find("--mem"), std::string::npos);

  const emulator_options absent = parse({});
  EXPECT_FALSE(absent.mem_set);
}

TEST(EmulatorOptionsTest, UnknownFlagsAreIgnored) {
  const emulator_options opts =
      parse({"--json=out.json", "--requests=100", "--shards=4"});
  EXPECT_TRUE(opts.ok());
  EXPECT_EQ(opts.shards, 4u);
}

TEST(EmulatorOptionsTest, CollectsEveryMalformedFlag) {
  const emulator_options opts =
      parse({"--shards=zero", "--pin=everywhere", "--channel=lockfree"});
  EXPECT_FALSE(opts.ok());
  EXPECT_EQ(opts.errors.size(), 3u);
}

TEST(EmulatorOptionsTest, ParsesScenarioByName) {
  for (const std::string_view name : scenario_names()) {
    const std::string flag = "--scenario=" + std::string(name);
    const emulator_options opts = parse({flag.c_str()});
    EXPECT_TRUE(opts.ok()) << name;
    EXPECT_TRUE(opts.scenario_set);
    EXPECT_EQ(opts.scenario, name);
  }
  const emulator_options spaced = parse({"--scenario", "rack-failure"});
  EXPECT_TRUE(spaced.ok());
  EXPECT_EQ(spaced.scenario, "rack-failure");
}

TEST(EmulatorOptionsTest, UnknownScenarioCollectsAnErrorListingAll) {
  for (const auto bad : {"--scenario=warp-drive", "--scenario="}) {
    const emulator_options opts = parse({bad});
    EXPECT_FALSE(opts.ok()) << bad;
    EXPECT_TRUE(opts.scenario_set);
    EXPECT_TRUE(opts.scenario.empty());
    ASSERT_EQ(opts.errors.size(), 1u);
    for (const std::string_view name : scenario_names()) {
      EXPECT_NE(opts.errors.front().find(name), std::string::npos) << name;
    }
  }
  // A malformed scenario joins the other errors instead of aborting.
  const emulator_options opts =
      parse({"--scenario=warp-drive", "--shards=zero"});
  EXPECT_EQ(opts.errors.size(), 2u);
}

TEST(EmulatorOptionsTest, RejectsMultiProducerReplicated) {
  const emulator_options opts = parse({"--producers=2", "--replicated"});
  EXPECT_FALSE(opts.ok());
}

TEST(EmulatorOptionsTest, ApplyCopiesOntoShardedConfig) {
  const emulator_options opts =
      parse({"--shards=4", "--producers=2", "--pin=none", "--channel=mutex"});
  ASSERT_TRUE(opts.ok());
  sharded_config config;
  opts.apply(config);
  EXPECT_EQ(config.shards, 4u);
  EXPECT_EQ(config.producers, 2u);
  EXPECT_EQ(config.placement, runtime::placement_policy::none);
  EXPECT_EQ(config.channel, channel_kind::mutex);
  EXPECT_EQ(config.membership, membership_mode::snapshot);
}

TEST(EmulatorOptionsTest, ApplyLeavesUnsetKnobsAlone) {
  const emulator_options opts = parse({"--replicated"});
  ASSERT_TRUE(opts.ok());
  sharded_config config;
  config.shards = 7;
  config.producers = 1;
  opts.apply(config);
  EXPECT_EQ(config.shards, 7u);  // absent flag leaves the default
  EXPECT_EQ(config.membership, membership_mode::replicated);
}

TEST(EmulatorOptionsTest, ParsePositiveValueIsStrict) {
  EXPECT_EQ(parse_positive_value("17"), 17u);
  EXPECT_EQ(parse_positive_value("0"), 0u);
  EXPECT_EQ(parse_positive_value("-3"), 0u);
  EXPECT_EQ(parse_positive_value("1e3"), 0u);
  EXPECT_EQ(parse_positive_value(""), 0u);
  EXPECT_EQ(parse_positive_value("12abc"), 0u);
}

// The deprecated shims must keep their historical semantics while
// delegating to the unified parser.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

TEST(DeprecatedFlagShimsTest, ProjectTheUnifiedParser) {
  std::vector<const char*> args = {"driver", "--shards=4", "--pin=compact",
                                   "--replicated"};
  const int argc = static_cast<int>(args.size());
  char** argv = const_cast<char**>(const_cast<const char**>(args.data()));

  const shards_flag shards = parse_shards_flag(argc, argv);
  EXPECT_TRUE(shards.present);
  EXPECT_EQ(shards.value, 4u);
  EXPECT_FALSE(shards.auto_sized);

  const pin_flag pin = parse_pin_flag(argc, argv);
  EXPECT_TRUE(pin.present);
  EXPECT_TRUE(pin.valid);
  EXPECT_EQ(pin.policy, runtime::placement_policy::compact);

  EXPECT_TRUE(parse_replicated_flag(argc, argv));
}

TEST(DeprecatedFlagShimsTest, MalformedPinReportsInvalid) {
  std::vector<const char*> args = {"driver", "--pin=everywhere"};
  const pin_flag pin = parse_pin_flag(
      static_cast<int>(args.size()),
      const_cast<char**>(const_cast<const char**>(args.data())));
  EXPECT_TRUE(pin.present);
  EXPECT_FALSE(pin.valid);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace hdhash
