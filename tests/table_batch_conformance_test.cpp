/// Batch-lookup conformance: for every algorithm, lookup_batch must
/// produce exactly the assignments of element-wise lookup() — including
/// on fault-injected tables, where the batch path must reproduce the
/// scalar path's (possibly corrupted) answers bit for bit.  This is the
/// contract that lets the emulator and experiment drivers feed batches
/// everywhere without changing any measured result.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hd_table.hpp"
#include "exp/factory.hpp"
#include "fault/injector.hpp"
#include "hashing/registry.hpp"
#include "hashing/splitmix_hash.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 2048;  // keep HD construction fast in unit tests
  options.hd.capacity = 256;
  options.maglev_table_size = 4099;  // small prime
  return options;
}

std::vector<request_id> request_block(std::size_t count,
                                      std::uint64_t seed = 0x8a7c) {
  std::vector<request_id> block;
  block.reserve(count);
  xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    block.push_back(splitmix_hash::mix(rng()));
  }
  return block;
}

class BatchConformanceTest
    : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BatchConformanceTest,
                         ::testing::Values("modular", "consistent",
                                           "consistent-rank", "rendezvous",
                                           "weighted-rendezvous", "bounded",
                                           "jump", "maglev", "hd",
                                           "hd-hierarchical"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(BatchConformanceTest, BatchMatchesScalarLookup) {
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 24; ++s) {
    table->join(s * 1009);
  }
  const auto requests = request_block(2000);
  std::vector<server_id> batched(requests.size());
  table->lookup_batch(requests, batched);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], table->lookup(requests[i])) << "request " << i;
  }
}

TEST_P(BatchConformanceTest, AllocatingOverloadAgrees) {
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 8; ++s) {
    table->join(s * 37);
  }
  const auto requests = request_block(300);
  const std::vector<server_id> batched = table->lookup_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], table->lookup(requests[i]));
  }
}

TEST_P(BatchConformanceTest, EmptyBlockIsANoopEvenOnEmptyPool) {
  auto table = make_table(GetParam(), fast_options());
  table->lookup_batch(std::span<const request_id>{},
                      std::span<server_id>{});  // must not throw
}

TEST_P(BatchConformanceTest, MismatchedSpansThrow) {
  auto table = make_table(GetParam(), fast_options());
  table->join(5);
  const std::vector<request_id> requests{1, 2, 3};
  std::vector<server_id> out(2);
  EXPECT_THROW(table->lookup_batch(requests, out), precondition_error);
}

TEST_P(BatchConformanceTest, NonEmptyBlockOnEmptyPoolThrows) {
  auto table = make_table(GetParam(), fast_options());
  const std::vector<request_id> requests{1};
  std::vector<server_id> out(1);
  EXPECT_THROW(table->lookup_batch(requests, out), precondition_error);
}

TEST_P(BatchConformanceTest, BatchMatchesScalarUnderFaultInjection) {
  // The batch path must reproduce the scalar path's answers even when
  // the table's live memory is corrupted — the robustness experiments
  // depend on batch and scalar sweeps measuring the same thing.
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 16; ++s) {
    table->join(s * 271);
  }
  const auto requests = request_block(800, 0x1dea);
  bit_flip_injector injector(99);
  for (int trial = 0; trial < 3; ++trial) {
    scoped_injection injection(injector, *table, 8);
    std::vector<server_id> batched(requests.size());
    table->lookup_batch(requests, batched);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(batched[i], table->lookup(requests[i]))
          << "trial " << trial << " request " << i;
    }
  }
}

TEST(BatchHdTest, SlotCacheAndBatchAgree) {
  // A cold batched table, a scalar-warmed cached table and a plain
  // scalar table must agree on every assignment.
  table_options options = fast_options();
  auto plain = make_table("hd", options);
  options.hd.slot_cache = true;
  auto cached = make_table("hd", options);
  for (server_id s = 1; s <= 12; ++s) {
    plain->join(s * 101);
    cached->join(s * 101);
  }
  const auto requests = request_block(1500, 0xcafe);
  // Warm the cache through the batch path.
  std::vector<server_id> cached_batch(requests.size());
  cached->lookup_batch(requests, cached_batch);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(cached_batch[i], plain->lookup(requests[i]));
    EXPECT_EQ(cached->lookup(requests[i]), plain->lookup(requests[i]));
  }
}

TEST(BatchHdTest, RawArgmaxDecodingAlsoConforms) {
  // lattice_decode off exercises the raw Eq. 2 scoring in the tiled
  // sweep, including floating-point tie behaviour.
  table_options options = fast_options();
  options.hd.lattice_decode = false;
  auto table = make_table("hd", options);
  for (server_id s = 1; s <= 10; ++s) {
    table->join(s * 53);
  }
  const auto requests = request_block(1200, 0xbeef);
  std::vector<server_id> batched(requests.size());
  table->lookup_batch(requests, batched);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], table->lookup(requests[i]));
  }
}

TEST(BatchHdTest, CosineMetricAlsoConforms) {
  table_options options = fast_options();
  options.hd.metric = hdc::metric::cosine;
  options.hd.lattice_decode = false;
  auto table = make_table("hd", options);
  for (server_id s = 1; s <= 10; ++s) {
    table->join(s * 67);
  }
  const auto requests = request_block(800, 0xfeed);
  std::vector<server_id> batched(requests.size());
  table->lookup_batch(requests, batched);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], table->lookup(requests[i]));
  }
}

TEST(BatchHdTest, WeightedPoolConforms) {
  table_options options = fast_options();
  auto table = make_table("hd", options);
  table->join(100, 1.0);
  table->join(200, 2.0);
  table->join(300, 3.0);
  const auto requests = request_block(1000, 0xf00d);
  std::vector<server_id> batched(requests.size());
  table->lookup_batch(requests, batched);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batched[i], table->lookup(requests[i]));
  }
}

}  // namespace
}  // namespace hdhash
