#include "table/maglev.hpp"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(IsPrimeTest, ClassifiesSmallNumbers) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(13));
  EXPECT_FALSE(is_prime(15));
  EXPECT_TRUE(is_prime(4099));
  EXPECT_TRUE(is_prime(65537));
  EXPECT_FALSE(is_prime(65536));
}

TEST(MaglevTableTest, NonPrimeTableSizeThrows) {
  EXPECT_THROW(maglev_table(default_hash(), 100), precondition_error);
}

TEST(MaglevTableTest, BalancedSlotShares) {
  // The NSDI paper's guarantee: each backend owns M/n slots within a few
  // percent for M >> n.
  maglev_table table(default_hash(), 4099);
  constexpr std::size_t kServers = 8;
  for (server_id s = 1; s <= kServers; ++s) {
    table.join(s * 577);
  }
  std::map<server_id, std::size_t> counts;
  for (request_id r = 0; r < 40'000; ++r) {
    ++counts[table.lookup(r * 0x9e3779b97f4a7c15ULL)];
  }
  const double expected = 40'000.0 / kServers;
  for (const auto& [server, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.15)
        << "server " << server;
  }
}

TEST(MaglevTableTest, PoolLimitedByTableSize) {
  maglev_table table(default_hash(), 5);
  table.join(1);
  table.join(2);
  table.join(3);
  table.join(4);
  table.join(5);
  EXPECT_THROW(table.join(6), precondition_error);
}

TEST(MaglevTableTest, LeaveCausesBoundedDisruption) {
  maglev_table table(default_hash(), 4099);
  for (server_id s = 1; s <= 10; ++s) {
    table.join(s * 41);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 8000; ++r) {
    before.push_back(table.lookup(r));
  }
  table.leave(5 * 41);
  std::size_t moved_from_survivors = 0;
  for (request_id r = 0; r < 8000; ++r) {
    const server_id now = table.lookup(r);
    if (before[r] != 5 * 41 && now != before[r]) {
      ++moved_from_survivors;
    }
  }
  // Maglev trades perfect minimality for O(1) lookups; the NSDI paper
  // reports a small residual churn. Bound it loosely.
  EXPECT_LT(moved_from_survivors, 8000u / 5);
}

TEST(MaglevTableTest, FaultSurfaceIncludesLookupTable) {
  maglev_table table(default_hash(), 4099);
  table.join(1);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].label, "lookup-table");
  EXPECT_EQ(regions[0].bytes.size(), 4099u * sizeof(std::uint32_t));
  EXPECT_EQ(regions[1].label, "server-ids");
}

TEST(MaglevTableTest, CorruptedLookupEntryReturnsObservableInvalidId) {
  maglev_table table(default_hash(), 4099);
  table.join(1);
  auto regions = table.fault_regions();
  // Set every lookup entry to an out-of-range server index.
  for (auto& b : regions[0].bytes) {
    b = std::byte{0xff};
  }
  const server_id answer = table.lookup(123);
  EXPECT_NE(answer, 1u);  // mismatch is observable, not UB
}

}  // namespace
}  // namespace hdhash
