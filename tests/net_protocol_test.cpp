/// Wire-protocol parser coverage: malformed frames, truncated/partial
/// reads, oversized payloads, pipelined mixed command streams — every
/// case either rejected with a recoverable error, latched fatal, or
/// resumed cleanly, never undefined behaviour (this file runs in the
/// ASan/UBSan CI lanes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace hdhash::net {
namespace {

/// Feeds the whole stream at once and pulls every result.
std::vector<parse_result> pull_all(wire_parser& parser,
                                   std::vector<wire_command>& commands) {
  std::vector<parse_result> results;
  wire_command cmd;
  for (;;) {
    const parse_result r = parser.next(cmd);
    if (r == parse_result::need_more) {
      break;
    }
    results.push_back(r);
    if (r == parse_result::command) {
      commands.push_back(cmd);
    }
    if (parser.failed()) {
      break;
    }
  }
  return results;
}

TEST(WireParser, ParsesEveryCommandForm) {
  wire_parser parser;
  parser.feed("PING\r\nROUTE 42\r\nJOIN 7\r\nJOIN 8 2.5\r\n"
              "LEAVE 7\r\nSTATS\r\n");
  std::vector<wire_command> commands;
  const auto results = pull_all(parser, commands);
  ASSERT_EQ(results.size(), 6u);
  for (const parse_result r : results) {
    EXPECT_EQ(r, parse_result::command);
  }
  ASSERT_EQ(commands.size(), 6u);
  EXPECT_EQ(commands[0].kind, command_kind::ping);
  EXPECT_EQ(commands[1].kind, command_kind::route);
  EXPECT_EQ(commands[1].id, 42u);
  EXPECT_EQ(commands[2].kind, command_kind::join);
  EXPECT_EQ(commands[2].id, 7u);
  EXPECT_DOUBLE_EQ(commands[2].weight, 1.0);
  EXPECT_EQ(commands[3].kind, command_kind::join);
  EXPECT_DOUBLE_EQ(commands[3].weight, 2.5);
  EXPECT_EQ(commands[4].kind, command_kind::leave);
  EXPECT_EQ(commands[5].kind, command_kind::stats);
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_FALSE(parser.failed());
}

TEST(WireParser, AcceptsBareLfTermination) {
  wire_parser parser;
  parser.feed("PING\nROUTE 1\n");
  std::vector<wire_command> commands;
  pull_all(parser, commands);
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[1].id, 1u);
}

TEST(WireParser, ResumesAcrossArbitraryTruncation) {
  // The same stream fed one byte at a time must produce the same
  // commands — mid-token, mid-CRLF, mid-everything.
  const std::string stream = "ROUTE 123456789\r\nJOIN 5 0.25\r\nPING\r\n";
  wire_parser parser;
  std::vector<wire_command> commands;
  wire_command cmd;
  for (const char byte : stream) {
    parser.feed(std::string_view(&byte, 1));
    while (parser.next(cmd) == parse_result::command) {
      commands.push_back(cmd);
    }
  }
  ASSERT_EQ(commands.size(), 3u);
  EXPECT_EQ(commands[0].id, 123456789u);
  EXPECT_EQ(commands[1].kind, command_kind::join);
  EXPECT_DOUBLE_EQ(commands[1].weight, 0.25);
  EXPECT_EQ(commands[2].kind, command_kind::ping);
  EXPECT_FALSE(parser.failed());
}

TEST(WireParser, MalformedCommandsAreRecoverable) {
  // Each bad line answers `error` once, is consumed, and parsing
  // continues with the next line.
  const std::vector<std::string> bad = {
      "NOSUCH\r\n",          // unknown verb
      "ROUTE\r\n",           // missing id
      "ROUTE x\r\n",         // non-decimal id
      "ROUTE -1\r\n",        // signed id
      "ROUTE 1 2\r\n",       // extra argument
      "ROUTE  1\r\n",        // doubled separator (empty token)
      "JOIN 1 0\r\n",        // non-positive weight
      "JOIN 1 -2\r\n",       // negative weight
      "JOIN 1 2 3\r\n",      // arity overflow
      "PING extra\r\n",      // PING takes no arguments
      "LEAVE\r\n",           // missing id
      "\r\n",                // empty command
      " PING\r\n",           // leading separator
      "ROUTE 99999999999999999999999\r\n",  // uint64 overflow
  };
  for (const std::string& line : bad) {
    wire_parser parser;
    parser.feed(line + "PING\r\n");
    wire_command cmd;
    EXPECT_EQ(parser.next(cmd), parse_result::error) << line;
    EXPECT_FALSE(parser.error_message().empty()) << line;
    EXPECT_FALSE(parser.failed()) << line;
    // The stream resumes right after the bad line.
    EXPECT_EQ(parser.next(cmd), parse_result::command) << line;
    EXPECT_EQ(cmd.kind, command_kind::ping) << line;
  }
}

TEST(WireParser, EmbeddedControlBytesAreRejected) {
  wire_parser parser;
  parser.feed(std::string_view("ROUTE 1\0\r\nPING\r\n", 16));
  wire_command cmd;
  EXPECT_EQ(parser.next(cmd), parse_result::error);
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(parser.next(cmd), parse_result::command);
  EXPECT_EQ(cmd.kind, command_kind::ping);
}

TEST(WireParser, OversizedLineIsFatal) {
  wire_parser parser;
  const std::string flood(kMaxLineBytes, 'A');  // no terminator at all
  parser.feed(flood);
  wire_command cmd;
  EXPECT_EQ(parser.next(cmd), parse_result::error);
  EXPECT_TRUE(parser.failed());
  // Latched: more input is sunk, next() keeps answering error.
  parser.feed("PING\r\n");
  EXPECT_EQ(parser.next(cmd), parse_result::error);
  EXPECT_TRUE(parser.failed());
}

TEST(WireParser, OversizedTerminatedLineIsAlsoFatal) {
  // A terminator past the cap must not rescue the flood.
  wire_parser parser;
  std::string flood(kMaxLineBytes + 7, 'B');
  flood += "\r\n";
  parser.feed(flood);
  wire_command cmd;
  EXPECT_EQ(parser.next(cmd), parse_result::error);
  EXPECT_TRUE(parser.failed());
}

TEST(WireParser, LongestLegitimateLineFits) {
  // 20-digit ids and a weight: well inside kMaxLineBytes.
  wire_parser parser;
  parser.feed("JOIN 18446744073709551615 1.25\r\n");
  wire_command cmd;
  ASSERT_EQ(parser.next(cmd), parse_result::command);
  EXPECT_EQ(cmd.id, 18446744073709551615ull);
}

TEST(WireParser, PipelinedMixedStreamWithErrorsInTheMiddle) {
  wire_parser parser;
  parser.feed("JOIN 1\r\nROUTE 10\r\nBOGUS\r\nROUTE 11\r\n"
              "LEAVE 1\r\nSTATS\r\n");
  std::vector<wire_command> commands;
  const auto results = pull_all(parser, commands);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[2], parse_result::error);
  ASSERT_EQ(commands.size(), 5u);
  EXPECT_EQ(commands[0].kind, command_kind::join);
  EXPECT_EQ(commands[1].id, 10u);
  EXPECT_EQ(commands[2].id, 11u);
  EXPECT_EQ(commands[3].kind, command_kind::leave);
  EXPECT_EQ(commands[4].kind, command_kind::stats);
  EXPECT_FALSE(parser.failed());
}

TEST(WireParser, BufferCompactionPreservesTheStream) {
  // Enough traffic to force several internal compactions.
  wire_parser parser;
  wire_command cmd;
  std::size_t parsed = 0;
  for (int i = 0; i < 10'000; ++i) {
    parser.feed("ROUTE " + std::to_string(i) + "\r\n");
    while (parser.next(cmd) == parse_result::command) {
      EXPECT_EQ(cmd.id, parsed);
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, 10'000u);
  EXPECT_EQ(parser.buffered(), 0u);
}

// --- reply side --------------------------------------------------------

TEST(ReplyParser, ParsesEveryReplyKind) {
  std::string stream;
  encode_ok(stream);
  encode_pong(stream);
  encode_route_reply(stream, 77);
  encode_error(stream, "nope");
  encode_bulk(stream, "key=value");
  reply_parser parser;
  parser.feed(stream);
  wire_reply reply;
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.type, wire_reply::kind::status);
  EXPECT_EQ(reply.text, "OK");
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.text, "PONG");
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.type, wire_reply::kind::integer);
  EXPECT_EQ(reply.value, 77u);
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.type, wire_reply::kind::error);
  EXPECT_EQ(reply.text, "ERR nope");
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.type, wire_reply::kind::bulk);
  EXPECT_EQ(reply.text, "key=value");
  EXPECT_EQ(parser.next(reply), parse_result::need_more);
}

TEST(ReplyParser, ResumesSplitBulkFrames) {
  std::string stream;
  encode_bulk(stream, "0123456789");
  reply_parser parser;
  wire_reply reply;
  // Feed in three fragments that split the header and the payload.
  parser.feed(stream.substr(0, 2));
  EXPECT_EQ(parser.next(reply), parse_result::need_more);
  parser.feed(stream.substr(2, 7));
  EXPECT_EQ(parser.next(reply), parse_result::need_more);
  parser.feed(stream.substr(9));
  ASSERT_EQ(parser.next(reply), parse_result::command);
  EXPECT_EQ(reply.type, wire_reply::kind::bulk);
  EXPECT_EQ(reply.text, "0123456789");
}

TEST(ReplyParser, MalformedRepliesAreFatal) {
  const std::vector<std::string> bad = {
      "*3\r\n",       // unknown tag
      ":\r\n",        // empty integer
      ":12x\r\n",     // junk in integer
      "$abc\r\n",     // junk bulk length
      "+OK\n",        // LF without CR
      "$3\r\nabcX\n", // bulk payload not CRLF-terminated
  };
  for (const std::string& stream : bad) {
    reply_parser parser;
    parser.feed(stream);
    wire_reply reply;
    EXPECT_EQ(parser.next(reply), parse_result::error) << stream;
    EXPECT_TRUE(parser.failed()) << stream;
  }
}

TEST(ReplyParser, OversizedBulkHeaderIsFatal) {
  reply_parser parser(1024);
  parser.feed("$9999\r\n");
  wire_reply reply;
  EXPECT_EQ(parser.next(reply), parse_result::error);
  EXPECT_TRUE(parser.failed());
}

}  // namespace
}  // namespace hdhash::net
