/// Io-core reservation in the auto shard sizing: `--shards auto` must
/// leave the reserved (io/producer) workers their own physical cores
/// when the topology has them, and fall back to sharing the full core
/// set on machines too small to honour the reservation.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/placement_plan.hpp"

namespace hdhash::runtime {
namespace {

logical_cpu make_cpu(unsigned id, unsigned package, unsigned core,
                     unsigned node, bool allowed = true) {
  logical_cpu cpu;
  cpu.id = id;
  cpu.package = package;
  cpu.core = core;
  cpu.node = node;
  cpu.allowed = allowed;
  return cpu;
}

/// 1 socket, `cores` physical cores, no SMT.
cpu_topology flat_box(unsigned cores) {
  std::vector<logical_cpu> cpus;
  for (unsigned id = 0; id < cores; ++id) {
    cpus.push_back(make_cpu(id, 0, id, 0));
  }
  return cpu_topology::from_cpus(std::move(cpus));
}

TEST(AutoShardReservation, DefaultReservationMatchesLegacyOverload) {
  for (unsigned cores = 1; cores <= 16; ++cores) {
    const cpu_topology topo = flat_box(cores);
    EXPECT_EQ(auto_shard_count(topo), auto_shard_count(topo, 1))
        << cores << " cores";
  }
}

TEST(AutoShardReservation, ReservesCoresWhenRoomRemains) {
  // 8 cores, 2 reserved for io → 6 shard cores.
  EXPECT_EQ(auto_shard_count(flat_box(8), 2), 6u);
  // 8 cores, 4 reserved → 4 shards (still > reservation + 1? 8 > 5 yes).
  EXPECT_EQ(auto_shard_count(flat_box(8), 4), 4u);
}

TEST(AutoShardReservation, SmallMachinesShareInsteadOfStarving) {
  // Reservation >= cores - 1: dedicating cores would leave the shards
  // 0 or 1 of them — every worker shares the full set instead.
  EXPECT_EQ(auto_shard_count(flat_box(2), 2), 2u);
  EXPECT_EQ(auto_shard_count(flat_box(4), 3), 4u);
  EXPECT_EQ(auto_shard_count(flat_box(1), 1), 1u);
  EXPECT_EQ(auto_shard_count(flat_box(1), 4), 1u);
}

TEST(AutoShardReservation, NeverReturnsZero) {
  for (unsigned cores = 1; cores <= 8; ++cores) {
    for (std::size_t reserved = 0; reserved <= 8; ++reserved) {
      EXPECT_GE(auto_shard_count(flat_box(cores), reserved), 1u)
          << cores << " cores, " << reserved << " reserved";
    }
  }
}

TEST(AutoShardReservation, CountsPhysicalCoresNotSmtSiblings) {
  // 4 physical cores with SMT-2 (8 logical CPUs): the reservation and
  // the shard budget are both in physical cores.
  std::vector<logical_cpu> cpus;
  for (unsigned id = 0; id < 8; ++id) {
    cpus.push_back(make_cpu(id, 0, id % 4, 0));
  }
  const cpu_topology topo = cpu_topology::from_cpus(std::move(cpus));
  EXPECT_EQ(auto_shard_count(topo, 1), 3u);
  EXPECT_EQ(auto_shard_count(topo, 2), 2u);
}

TEST(IoShardSplit, AutoIoScalesWithCores) {
  // One reactor per four physical cores, clamped to [1, 4].
  EXPECT_EQ(plan_io_shard_split(flat_box(1)).io_threads, 1u);
  EXPECT_EQ(plan_io_shard_split(flat_box(4)).io_threads, 1u);
  EXPECT_EQ(plan_io_shard_split(flat_box(8)).io_threads, 2u);
  EXPECT_EQ(plan_io_shard_split(flat_box(16)).io_threads, 4u);
  EXPECT_EQ(plan_io_shard_split(flat_box(32)).io_threads, 4u);
}

TEST(IoShardSplit, ShardsGetTheRemainingCores) {
  const io_shard_split split = plan_io_shard_split(flat_box(16));
  EXPECT_EQ(split.io_threads, 4u);
  EXPECT_EQ(split.shards, 12u);
  // io + shards never oversubscribes a machine with room to split.
  EXPECT_LE(split.io_threads + split.shards, 16u);
}

TEST(IoShardSplit, RequestedIoIsCappedToTheTopology) {
  const io_shard_split split = plan_io_shard_split(flat_box(2), 8);
  EXPECT_EQ(split.io_threads, 2u);
  EXPECT_GE(split.shards, 1u);
}

TEST(IoShardSplit, SingleCoreBoxStillRunsEverything) {
  const io_shard_split split = plan_io_shard_split(flat_box(1), 4);
  EXPECT_EQ(split.io_threads, 1u);
  EXPECT_EQ(split.shards, 1u);
}

}  // namespace
}  // namespace hdhash::runtime
