#include "stats/descriptive.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(MeanTest, SimpleAverage) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
}

TEST(MeanTest, SingletonIsItself) {
  const std::vector<double> values{7.5};
  EXPECT_DOUBLE_EQ(mean(values), 7.5);
}

TEST(MeanTest, EmptyThrows) {
  EXPECT_THROW(mean({}), precondition_error);
}

TEST(StddevTest, ConstantSampleIsZero) {
  const std::vector<double> values{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev_population(values), 0.0);
}

TEST(StddevTest, KnownValue) {
  // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
  const std::vector<double> values{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev_population(values), 2.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  const std::vector<double> values{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> values{4.0, 2.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 9.0);
}

TEST(PercentileTest, OutOfRangeThrows) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(percentile(values, -1.0), precondition_error);
  EXPECT_THROW(percentile(values, 101.0), precondition_error);
}

TEST(SummarizeTest, AllFieldsConsistent) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const auto s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_GT(s.stddev, 0.0);
}

}  // namespace
}  // namespace hdhash
