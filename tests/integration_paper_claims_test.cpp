/// End-to-end reproduction of the paper's qualitative claims at reduced
/// scale (full scale runs in bench/).  Each test states the claim it
/// checks, with the paper section in parentheses.
#include <vector>

#include <gtest/gtest.h>

#include "exp/efficiency.hpp"
#include "exp/factory.hpp"
#include "exp/robustness.hpp"
#include "exp/uniformity.hpp"

namespace hdhash {
namespace {

table_options integration_options() {
  table_options options;
  // Paper dimensionality; a 320-node circle over 128 servers gives a
  // lattice step of 10000/320 = 31 bits, so any error pattern of up to
  // 15 total bit flips provably cannot remap a single request (see
  // hd_table_config::lattice_decode) — the exact-zero regime the paper
  // reports.
  options.hd.dimension = 10'000;
  options.hd.capacity = 320;
  return options;
}

TEST(PaperClaimsTest, HdHashingIsUnaffectedByTenBitErrors) {
  // Claim (abstract, Section 5.3): "a realistic level of memory errors
  // causes more than 20% mismatches for consistent hashing while HD
  // hashing remains unaffected"; at 10 flips HD has zero mismatches.
  robustness_config config;
  config.servers = 128;
  config.requests = 2000;
  config.max_bit_flips = 10;
  config.trials = 3;
  const auto hd = run_mismatch_sweep("hd", config, integration_options());
  for (const auto& point : hd) {
    EXPECT_EQ(point.mismatch_rate, 0.0)
        << "HD mismatched at " << point.bit_flips << " flips";
    EXPECT_EQ(point.worst_trial, 0.0);
  }
}

TEST(PaperClaimsTest, ConsistentHashingDegradesWithBitErrors) {
  // Claim (Figure 5): consistent hashing's mismatch rate grows with the
  // number of bit errors and is the worst of the three algorithms.
  robustness_config config;
  config.servers = 128;
  config.requests = 2000;
  config.max_bit_flips = 10;
  config.trials = 3;
  const auto series =
      run_mismatch_sweep("consistent", config, integration_options());
  EXPECT_EQ(series.front().mismatch_rate, 0.0);
  EXPECT_GT(series.back().mismatch_rate, 0.01);
  // Growing trend: the second half of the sweep is worse than the first.
  double first_half = 0.0;
  double second_half = 0.0;
  for (std::size_t i = 1; i <= 5; ++i) {
    first_half += series[i].mismatch_rate;
    second_half += series[i + 5].mismatch_rate;
  }
  EXPECT_GT(second_half, first_half);
}

TEST(PaperClaimsTest, RendezvousMismatchesLessThanConsistentAt512Servers) {
  // Claim (Section 1): "With 512 servers and a 10-bit MCU ... rendezvous
  // and consistent hashing mismatch 4% and 12% of requests" — rendezvous
  // sits between HD (zero) and consistent.  The ordering is
  // scale-dependent: rendezvous mismatch scales like flips/k (corrupted
  // identifiers own a 1/k share each), so the paper's pool size matters.
  robustness_config config;
  config.servers = 512;
  config.requests = 2000;
  config.max_bit_flips = 10;
  config.trials = 25;  // consistent's loss distribution is heavy-tailed
  const auto rendezvous =
      run_mismatch_sweep("rendezvous", config, integration_options());
  const auto consistent =
      run_mismatch_sweep("consistent-rank", config, integration_options());
  EXPECT_GT(rendezvous.back().mismatch_rate, 0.0);
  EXPECT_LT(rendezvous.back().mismatch_rate,
            consistent.back().mismatch_rate);
  // Paper headline magnitudes: rendezvous ~4%, consistent ~12% (here the
  // trial mean sits above 5% with worst trials far higher).
  EXPECT_NEAR(rendezvous.back().mismatch_rate, 0.04, 0.03);
  EXPECT_GT(consistent.back().mismatch_rate, 0.05);
  EXPECT_GT(consistent.back().worst_trial, 0.10);
}

TEST(PaperClaimsTest, McuBurstLeavesHdUnaffected) {
  // Claim (Section 1): a 10-bit MCU (one burst) leaves HD unaffected.
  robustness_config config;
  config.servers = 128;
  config.requests = 1500;
  config.max_bit_flips = 10;
  config.trials = 3;
  config.kind = upset_kind::mcu;
  const auto hd = run_mismatch_sweep("hd", config, integration_options());
  for (const auto& point : hd) {
    EXPECT_EQ(point.mismatch_rate, 0.0);
  }
}

TEST(PaperClaimsTest, EfficiencyOrderingMatchesFigure4) {
  // Claim (Figure 4): rendezvous is O(n) and clearly slowest at scale;
  // HD hashing scales "similarly to consistent hashing" in shape — on a
  // CPU its absolute time is higher (no accelerator), so the assertable
  // ordering is rendezvous-dominates and consistent-grows-slowly.
  efficiency_config config;
  config.server_counts = {16, 256};
  config.requests = 2000;
  const auto consistent =
      run_efficiency("consistent", config, integration_options());
  const auto rendezvous =
      run_efficiency("rendezvous", config, integration_options());
  // Rendezvous at 256 servers is much slower than consistent.
  EXPECT_GT(rendezvous[1].avg_request_ns,
            4.0 * consistent[1].avg_request_ns);
  // Rendezvous grows ~linearly: 16 -> 256 servers costs >4x.
  EXPECT_GT(rendezvous[1].avg_request_ns,
            4.0 * rendezvous[0].avg_request_ns);
  // Consistent hashing's O(log n) growth is modest by comparison.
  EXPECT_LT(consistent[1].avg_request_ns,
            8.0 * consistent[0].avg_request_ns);
}

TEST(PaperClaimsTest, HdDistributesMoreUniformlyThanConsistent) {
  // Claim (Figure 6): "HD hashing distribute[s] requests more uniformly
  // than consistent hashing in an ideal scenario".
  uniformity_config config;
  config.server_counts = {128};
  config.bit_flip_levels = {0};
  config.requests = 50'000;
  const auto hd = run_uniformity("hd", config, integration_options());
  const auto consistent =
      run_uniformity("consistent", config, integration_options());
  EXPECT_LT(hd[0].chi_squared, consistent[0].chi_squared);
}

TEST(PaperClaimsTest, BitErrorsWorsenConsistentUniformityButNotHd) {
  // Claim (Figure 6): "the presence of bit errors worsens the uniformity
  // of consistent hashing even more, while that of HD hashing remains
  // intact".
  uniformity_config config;
  config.server_counts = {64};
  config.bit_flip_levels = {0, 10};
  config.requests = 30'000;
  config.trials = 3;
  const auto hd = run_uniformity("hd", config, integration_options());
  const auto consistent =
      run_uniformity("consistent", config, integration_options());
  ASSERT_EQ(hd.size(), 2u);
  // HD: statistically indistinguishable with and without errors.
  EXPECT_NEAR(hd[1].chi_squared, hd[0].chi_squared,
              0.05 * hd[0].chi_squared + 1.0);
  // Consistent: errors add a visible penalty.
  EXPECT_GT(consistent[1].chi_squared, consistent[0].chi_squared);
}

TEST(PaperClaimsTest, ModularHashingMotivation) {
  // Claim (Section 1): modular hashing remaps "virtually all" requests
  // when the pool grows — the motivation for the whole problem.
  auto table = make_table("modular", integration_options());
  for (server_id s = 1; s <= 100; ++s) {
    table->join(s * 17);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 3000; ++r) {
    before.push_back(table->lookup(r));
  }
  table->join(101 * 17);
  std::size_t moved = 0;
  for (request_id r = 0; r < 3000; ++r) {
    moved += table->lookup(r) != before[r] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(moved) / 3000.0, 0.9);
}

}  // namespace
}  // namespace hdhash
