#include "table/weighted_rendezvous.hpp"

#include <map>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "table/rendezvous.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(WeightedRendezvousTest, RejectsInvalidWeights) {
  weighted_rendezvous_table table(default_hash());
  EXPECT_THROW(table.join_weighted(1, 0.0), precondition_error);
  EXPECT_THROW(table.join_weighted(1, -2.0), precondition_error);
  table.join_weighted(1, 1.0);
  EXPECT_THROW(table.set_weight(1, 0.0), precondition_error);
  EXPECT_THROW(table.set_weight(99, 1.0), precondition_error);
}

TEST(WeightedRendezvousTest, WeightAccessors) {
  weighted_rendezvous_table table(default_hash());
  table.join_weighted(5, 2.5);
  table.join(6);  // default weight 1
  EXPECT_DOUBLE_EQ(table.weight_of(5), 2.5);
  EXPECT_DOUBLE_EQ(table.weight_of(6), 1.0);
  table.set_weight(5, 4.0);
  EXPECT_DOUBLE_EQ(table.weight_of(5), 4.0);
}

TEST(WeightedRendezvousTest, EqualWeightsSpreadUniformly) {
  weighted_rendezvous_table table(default_hash());
  constexpr std::size_t kServers = 8;
  for (server_id s = 1; s <= kServers; ++s) {
    table.join(s * 577);
  }
  std::map<server_id, std::size_t> counts;
  constexpr std::size_t kRequests = 40'000;
  for (request_id r = 0; r < kRequests; ++r) {
    ++counts[table.lookup(r * 0x9e3779b97f4a7c15ULL)];
  }
  const double expected = static_cast<double>(kRequests) / kServers;
  for (const auto& [server, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.10);
  }
}

TEST(WeightedRendezvousTest, SharesProportionalToWeights) {
  // Server weights 1 : 2 : 3 should carry 1/6, 2/6, 3/6 of the traffic.
  weighted_rendezvous_table table(default_hash());
  table.join_weighted(101, 1.0);
  table.join_weighted(102, 2.0);
  table.join_weighted(103, 3.0);
  std::map<server_id, std::size_t> counts;
  constexpr std::size_t kRequests = 60'000;
  for (request_id r = 0; r < kRequests; ++r) {
    ++counts[table.lookup(r * 0x9e3779b97f4a7c15ULL)];
  }
  EXPECT_NEAR(static_cast<double>(counts[101]), kRequests / 6.0,
              kRequests * 0.01);
  EXPECT_NEAR(static_cast<double>(counts[102]), kRequests / 3.0,
              kRequests * 0.015);
  EXPECT_NEAR(static_cast<double>(counts[103]), kRequests / 2.0,
              kRequests * 0.015);
}

TEST(WeightedRendezvousTest, LeaveOnlyMovesDepartedServersKeys) {
  weighted_rendezvous_table table(default_hash());
  for (server_id s = 1; s <= 10; ++s) {
    table.join_weighted(s * 31, 0.5 + static_cast<double>(s % 3));
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 3000; ++r) {
    before.push_back(table.lookup(r));
  }
  table.leave(4 * 31);
  for (request_id r = 0; r < 3000; ++r) {
    if (before[r] != 4 * 31) {
      EXPECT_EQ(table.lookup(r), before[r]);
    } else {
      EXPECT_NE(table.lookup(r), 4 * 31);
    }
  }
}

TEST(WeightedRendezvousTest, WeightIncreaseOnlyAttractsKeys) {
  // Raising one server's weight must only move requests *to* it.
  weighted_rendezvous_table table(default_hash());
  for (server_id s = 1; s <= 10; ++s) {
    table.join(s * 83);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 3000; ++r) {
    before.push_back(table.lookup(r));
  }
  table.set_weight(5 * 83, 3.0);
  for (request_id r = 0; r < 3000; ++r) {
    const server_id now = table.lookup(r);
    if (now != before[r]) {
      EXPECT_EQ(now, 5u * 83u) << "request " << r;
    }
  }
}

TEST(WeightedRendezvousTest, UnitWeightsAgreeWithScoringInvariance) {
  // The -w/ln(u) transform is monotone in u for fixed w, so with all
  // weights equal the winner is the plain HRW argmax.
  weighted_rendezvous_table weighted(default_hash());
  rendezvous_table plain(default_hash());
  for (server_id s = 1; s <= 16; ++s) {
    weighted.join(s * 409);
    plain.join(s * 409);
  }
  for (request_id r = 0; r < 2000; ++r) {
    EXPECT_EQ(weighted.lookup(r), plain.lookup(r));
  }
}

TEST(WeightedRendezvousTest, CloneCarriesWeights) {
  weighted_rendezvous_table table(default_hash());
  table.join_weighted(1, 2.0);
  const auto copy = table.clone();
  auto* weighted_copy =
      dynamic_cast<weighted_rendezvous_table*>(copy.get());
  ASSERT_NE(weighted_copy, nullptr);
  EXPECT_DOUBLE_EQ(weighted_copy->weight_of(1), 2.0);
}

TEST(WeightedRendezvousTest, FaultSurfaceCoversIdsAndWeights) {
  weighted_rendezvous_table table(default_hash());
  table.join(1);
  table.join(2);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].label, "server-entries");
  EXPECT_EQ(regions[0].bytes.size(), 2 * 16u);  // (id, weight) pairs
}

}  // namespace
}  // namespace hdhash
