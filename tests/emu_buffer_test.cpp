#include "emu/event_buffer.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(EventBufferTest, StartsEmpty) {
  event_buffer buffer(4);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.full());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(EventBufferTest, ZeroCapacityThrows) {
  EXPECT_THROW(event_buffer(0), precondition_error);
}

TEST(EventBufferTest, FifoOrder) {
  event_buffer buffer(3);
  EXPECT_TRUE(buffer.push(event{event_kind::request, 1}));
  EXPECT_TRUE(buffer.push(event{event_kind::join, 2}));
  EXPECT_TRUE(buffer.push(event{event_kind::leave, 3}));
  EXPECT_EQ(buffer.pop()->id, 1u);
  EXPECT_EQ(buffer.pop()->id, 2u);
  EXPECT_EQ(buffer.pop()->id, 3u);
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(EventBufferTest, RejectsWhenFull) {
  event_buffer buffer(2);
  EXPECT_TRUE(buffer.push(event{event_kind::request, 1}));
  EXPECT_TRUE(buffer.push(event{event_kind::request, 2}));
  EXPECT_TRUE(buffer.full());
  EXPECT_FALSE(buffer.push(event{event_kind::request, 3}));
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(EventBufferTest, WrapsAroundRing) {
  event_buffer buffer(2);
  for (std::uint64_t round = 0; round < 10; ++round) {
    EXPECT_TRUE(buffer.push(event{event_kind::request, round}));
    EXPECT_TRUE(buffer.push(event{event_kind::request, round + 100}));
    EXPECT_EQ(buffer.pop()->id, round);
    EXPECT_EQ(buffer.pop()->id, round + 100);
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(EventBufferTest, InterleavedPushPop) {
  event_buffer buffer(3);
  buffer.push(event{event_kind::request, 1});
  buffer.push(event{event_kind::request, 2});
  EXPECT_EQ(buffer.pop()->id, 1u);
  buffer.push(event{event_kind::request, 3});
  buffer.push(event{event_kind::request, 4});
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.pop()->id, 2u);
  EXPECT_EQ(buffer.pop()->id, 3u);
  EXPECT_EQ(buffer.pop()->id, 4u);
}

TEST(EventBufferTest, PreservesEventKind) {
  event_buffer buffer(1);
  buffer.push(event{event_kind::leave, 9});
  const auto e = buffer.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, event_kind::leave);
  EXPECT_EQ(e->id, 9u);
}

}  // namespace
}  // namespace hdhash
