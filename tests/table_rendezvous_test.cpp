#include "table/rendezvous.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "hashing/registry.hpp"
#include "support/scripted_hash.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(RendezvousTableTest, PicksHighestWeight) {
  testing::scripted_hash hash;
  hash.pin_pair(10, 500, 111);  // h(server=10, request=500)
  hash.pin_pair(20, 500, 999);
  hash.pin_pair(30, 500, 555);
  rendezvous_table table(hash);
  table.join(10);
  table.join(20);
  table.join(30);
  EXPECT_EQ(table.lookup(500), 20u);
}

TEST(RendezvousTableTest, WeightTieBreaksTowardSmallerId) {
  testing::scripted_hash hash;
  hash.pin_pair(40, 7, 1000);
  hash.pin_pair(15, 7, 1000);
  rendezvous_table table(hash);
  table.join(40);
  table.join(15);
  EXPECT_EQ(table.lookup(7), 15u);
}

TEST(RendezvousTableTest, MatchesBruteForceArgmax) {
  const hash64& h = default_hash();
  rendezvous_table table(h);
  std::vector<server_id> pool;
  for (server_id s = 1; s <= 32; ++s) {
    table.join(s * 733);
    pool.push_back(s * 733);
  }
  for (request_id r = 0; r < 500; ++r) {
    server_id expected = 0;
    std::uint64_t best = 0;
    for (const server_id s : pool) {
      const std::uint64_t w = h.hash_pair(s, r, 0);
      if (w > best || expected == 0) {
        best = w;
        expected = s;
      }
    }
    EXPECT_EQ(table.lookup(r), expected);
  }
}

TEST(RendezvousTableTest, StableUnderUnrelatedLeave) {
  // Removing a server that wasn't the argmax never remaps a request.
  rendezvous_table table(default_hash());
  for (server_id s = 1; s <= 16; ++s) {
    table.join(s * 211);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 2000; ++r) {
    before.push_back(table.lookup(r));
  }
  table.leave(5 * 211);
  for (request_id r = 0; r < 2000; ++r) {
    if (before[r] != 5 * 211) {
      EXPECT_EQ(table.lookup(r), before[r]);
    }
  }
}

TEST(RendezvousTableTest, FaultRegionIsServerIds) {
  rendezvous_table table(default_hash());
  table.join(1);
  table.join(2);
  auto regions = table.fault_regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].label, "server-ids");
  EXPECT_EQ(regions[0].bytes.size(), 16u);
}

TEST(RendezvousTableTest, CorruptedIdMisroutesSomeRequests) {
  // The Figure 5 mechanism for rendezvous: a corrupted stored id
  // re-randomizes that server's weights.
  rendezvous_table table(default_hash());
  for (server_id s = 1; s <= 64; ++s) {
    table.join(s * 331);
  }
  const auto pristine = table.clone();
  auto regions = table.fault_regions();
  regions[0].bytes[3] ^= std::byte{0x10};  // one bit of server 0's id
  std::size_t mismatches = 0;
  for (request_id r = 0; r < 5000; ++r) {
    mismatches += table.lookup(r) != pristine->lookup(r) ? 1 : 0;
  }
  // Roughly the corrupted server's 1/64 share (plus takeovers); must be
  // small but non-zero.
  EXPECT_GT(mismatches, 0u);
  EXPECT_LT(mismatches, 1000u);
}

}  // namespace
}  // namespace hdhash
