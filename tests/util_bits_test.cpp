#include "util/bits.hpp"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace hdhash {
namespace {

TEST(WordsForBitsTest, RoundsUp) {
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(63), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(10'000), 157u);
}

TEST(TailMaskTest, ExactMultipleKeepsAllBits) {
  EXPECT_EQ(tail_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(tail_mask(128), ~std::uint64_t{0});
}

TEST(TailMaskTest, PartialTailMasksHighBits) {
  EXPECT_EQ(tail_mask(1), 1u);
  EXPECT_EQ(tail_mask(3), 0b111u);
  EXPECT_EQ(tail_mask(65), 1u);
  EXPECT_EQ(tail_mask(10'000), (std::uint64_t{1} << 16) - 1);  // 10000 % 64 = 16
}

TEST(BitAccessTest, SetTestFlipRoundTrip) {
  std::vector<std::uint64_t> words(3, 0);
  for (const std::size_t index : {0u, 1u, 63u, 64u, 100u, 191u}) {
    EXPECT_FALSE(test_bit(words, index));
    set_bit(words, index, true);
    EXPECT_TRUE(test_bit(words, index));
    flip_bit(words, index);
    EXPECT_FALSE(test_bit(words, index));
    flip_bit(words, index);
    EXPECT_TRUE(test_bit(words, index));
    set_bit(words, index, false);
    EXPECT_FALSE(test_bit(words, index));
  }
}

TEST(BitAccessTest, IndependentBits) {
  std::vector<std::uint64_t> words(2, 0);
  set_bit(words, 5, true);
  set_bit(words, 70, true);
  EXPECT_TRUE(test_bit(words, 5));
  EXPECT_TRUE(test_bit(words, 70));
  EXPECT_FALSE(test_bit(words, 6));
  EXPECT_FALSE(test_bit(words, 69));
  EXPECT_EQ(popcount(words), 2u);
}

TEST(PopcountTest, CountsAcrossWords) {
  std::vector<std::uint64_t> words{~std::uint64_t{0}, 0, 0b1011};
  EXPECT_EQ(popcount(words), 64u + 3u);
}

TEST(PopcountTest, EmptyIsZero) {
  std::vector<std::uint64_t> words;
  EXPECT_EQ(popcount(words), 0u);
}

TEST(ByteBitsTest, FlipAndTestWithinBytes) {
  std::array<std::byte, 4> bytes{};
  EXPECT_FALSE(test_bit_in_bytes(bytes, 0));
  flip_bit_in_bytes(bytes, 0);
  EXPECT_TRUE(test_bit_in_bytes(bytes, 0));
  EXPECT_EQ(static_cast<unsigned>(bytes[0]), 1u);

  flip_bit_in_bytes(bytes, 9);  // bit 1 of byte 1
  EXPECT_TRUE(test_bit_in_bytes(bytes, 9));
  EXPECT_EQ(static_cast<unsigned>(bytes[1]), 2u);

  flip_bit_in_bytes(bytes, 31);  // top bit of byte 3
  EXPECT_EQ(static_cast<unsigned>(bytes[3]), 0x80u);

  flip_bit_in_bytes(bytes, 0);
  EXPECT_FALSE(test_bit_in_bytes(bytes, 0));
}

TEST(ByteBitsTest, FlipIsInvolutive) {
  std::array<std::byte, 8> bytes{};
  bytes.fill(std::byte{0xa5});
  const auto original = bytes;
  for (std::size_t bit = 0; bit < 64; ++bit) {
    flip_bit_in_bytes(bytes, bit);
  }
  EXPECT_NE(bytes, original);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    flip_bit_in_bytes(bytes, bit);
  }
  EXPECT_EQ(bytes, original);
}

}  // namespace
}  // namespace hdhash
