#include <algorithm>

#include <gtest/gtest.h>

#include "exp/disruption.hpp"
#include "exp/efficiency.hpp"
#include "exp/factory.hpp"
#include "exp/robustness.hpp"
#include "exp/similarity_matrix.hpp"
#include "exp/uniformity.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 256;
  options.maglev_table_size = 4099;
  return options;
}

TEST(FactoryTest, CreatesEveryRegisteredAlgorithm) {
  for (const auto name : all_algorithms()) {
    auto table = make_table(name, fast_options());
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->name(), name);
  }
}

TEST(FactoryTest, UnknownAlgorithmThrows) {
  EXPECT_THROW(make_table("quantum"), precondition_error);
}

TEST(FactoryTest, PaperAlgorithmsAreSubsetOfAll) {
  const auto paper = paper_algorithms();
  const auto all = all_algorithms();
  for (const auto name : paper) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
  }
  EXPECT_EQ(paper.size(), 3u);
}

TEST(EfficiencyDriverTest, ProducesOnePointPerPoolSize) {
  efficiency_config config;
  config.server_counts = {2, 8, 32};
  config.requests = 500;
  const auto series = run_efficiency("consistent", config, fast_options());
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].servers, config.server_counts[i]);
    EXPECT_GT(series[i].avg_request_ns, 0.0);
  }
}

TEST(EfficiencyDriverTest, RendezvousScalesWorseThanConsistent) {
  efficiency_config config;
  config.server_counts = {512};
  config.requests = 2000;
  const auto consistent =
      run_efficiency("consistent", config, fast_options());
  const auto rendezvous =
      run_efficiency("rendezvous", config, fast_options());
  // At 512 servers the O(n) scan must be clearly slower than the
  // O(log n) binary search.
  EXPECT_GT(rendezvous[0].avg_request_ns, 2.0 * consistent[0].avg_request_ns);
}

TEST(RobustnessDriverTest, ZeroFlipsMeansZeroMismatch) {
  robustness_config config;
  config.servers = 32;
  config.requests = 500;
  config.max_bit_flips = 0;
  config.trials = 2;
  for (const auto algorithm : all_algorithms()) {
    const auto series = run_mismatch_sweep(algorithm, config, fast_options());
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].mismatch_rate, 0.0) << algorithm;
    EXPECT_EQ(series[0].invalid_rate, 0.0) << algorithm;
  }
}

TEST(RobustnessDriverTest, SweepIsWellFormed) {
  robustness_config config;
  config.servers = 32;
  config.requests = 400;
  config.max_bit_flips = 4;
  config.trials = 2;
  const auto series = run_mismatch_sweep("consistent", config, fast_options());
  ASSERT_EQ(series.size(), 5u);
  for (std::size_t e = 0; e < series.size(); ++e) {
    EXPECT_EQ(series[e].bit_flips, e);
    EXPECT_GE(series[e].mismatch_rate, 0.0);
    EXPECT_LE(series[e].mismatch_rate, 1.0);
    EXPECT_LE(series[e].invalid_rate, series[e].mismatch_rate + 1e-12);
    EXPECT_GE(series[e].worst_trial, series[e].mismatch_rate);
  }
}

TEST(RobustnessDriverTest, TrialsLeaveTableRestored) {
  // Two identical sweeps must agree exactly: undo restores all state.
  robustness_config config;
  config.servers = 16;
  config.requests = 300;
  config.max_bit_flips = 3;
  config.trials = 2;
  const auto a = run_mismatch_sweep("rendezvous", config, fast_options());
  const auto b = run_mismatch_sweep("rendezvous", config, fast_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mismatch_rate, b[i].mismatch_rate);
  }
}

TEST(UniformityDriverTest, CleanRendezvousIsNearIdealChiSquared) {
  uniformity_config config;
  config.server_counts = {64};
  config.bit_flip_levels = {0};
  config.requests = 30'000;
  const auto series = run_uniformity("rendezvous", config, fast_options());
  ASSERT_EQ(series.size(), 1u);
  // chi2/dof concentrates around 1 for a perfectly uniform hash
  // assignment; allow wide slack for sampling noise.
  EXPECT_GT(series[0].chi_over_dof, 0.5);
  EXPECT_LT(series[0].chi_over_dof, 1.7);
  EXPECT_EQ(series[0].invalid_fraction, 0.0);
}

TEST(UniformityDriverTest, GridShapeMatchesConfig) {
  uniformity_config config;
  config.server_counts = {8, 32};
  config.bit_flip_levels = {0, 4};
  config.requests = 4000;
  config.trials = 2;
  const auto series = run_uniformity("hd", config, fast_options());
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].servers, 8u);
  EXPECT_EQ(series[0].bit_flips, 0u);
  EXPECT_EQ(series[3].servers, 32u);
  EXPECT_EQ(series[3].bit_flips, 4u);
}

TEST(WeightedUniformityDriverTest, WeightedRendezvousTracksRequestedShares) {
  weighted_uniformity_config config;
  config.server_counts = {24};
  config.weight_cycle = {1.0, 2.0, 4.0};
  config.requests = 30'000;
  const auto series =
      run_weighted_uniformity("weighted-rendezvous", config, fast_options());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].servers, 24u);
  // Native weighting: chi2 against the weight-proportional expectation
  // concentrates around dof, like an unweighted uniform hash does
  // against the uniform expectation.
  EXPECT_GT(series[0].chi_over_dof, 0.3);
  EXPECT_LT(series[0].chi_over_dof, 2.5);
  EXPECT_LT(series[0].max_share_error, 0.02);
}

TEST(WeightedUniformityDriverTest, HeavierServersReceiveMoreTraffic) {
  // The coarse property every weighted algorithm must deliver, even
  // those whose per-server chi2 is variance- or quantization-limited
  // (consistent's ring points, hd's slot replication): the weight-4
  // half of the pool collectively receives ~4/5 of the traffic, far
  // above the 1/2 head-count share weights-ignored would give it.
  weighted_uniformity_config config;
  config.server_counts = {12};
  config.weight_cycle = {1.0, 4.0};
  config.requests = 20'000;
  for (const auto algorithm : {"consistent", "weighted-rendezvous", "hd"}) {
    const auto series =
        run_weighted_uniformity(algorithm, config, fast_options());
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series[0].heavy_share_expected, 0.8);
    EXPECT_GT(series[0].heavy_share, 0.65)
        << algorithm << " ignored its weights";
    EXPECT_LT(series[0].heavy_share, 0.95) << algorithm;
  }
}

TEST(DisruptionDriverTest, ModularRemapsAlmostEverything) {
  disruption_config config;
  config.servers = 32;
  config.requests = 4000;
  config.events = 3;
  const auto result = run_disruption("modular", config, fast_options());
  EXPECT_GT(result.join_remap, 0.8);
  EXPECT_GT(result.leave_remap, 0.8);
}

TEST(DisruptionDriverTest, ConsistentStyleAlgorithmsAreNearMinimal) {
  disruption_config config;
  config.servers = 32;
  config.requests = 4000;
  config.events = 3;
  for (const auto algorithm : {"consistent", "rendezvous", "hd"}) {
    const auto result = run_disruption(algorithm, config, fast_options());
    // Joins move exactly the newcomer's share for these algorithms.
    EXPECT_NEAR(result.join_remap, result.join_minimum, 1e-9) << algorithm;
    EXPECT_NEAR(result.leave_remap, result.leave_minimum, 1e-9) << algorithm;
    EXPECT_LT(result.join_remap, 0.35) << algorithm;
  }
}

TEST(SimilarityMatrixTest, ShapeDiagonalAndSymmetry) {
  for (const auto kind :
       {basis_kind::random, basis_kind::level, basis_kind::circular}) {
    const auto matrix = similarity_matrix(kind, 12, 4096, 5);
    ASSERT_EQ(matrix.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
      ASSERT_EQ(matrix[i].size(), 12u);
      EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
      for (std::size_t j = 0; j < 12; ++j) {
        EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
      }
    }
  }
}

TEST(SimilarityMatrixTest, KindsHaveDistinctProfiles) {
  // Random: off-diagonal ~0; level: ends dissimilar; circular: wraps.
  const auto random = similarity_matrix(basis_kind::random, 12, 10'000, 1);
  const auto level = similarity_matrix(basis_kind::level, 12, 10'000, 1);
  const auto circular =
      similarity_matrix(basis_kind::circular, 12, 10'000, 1);
  EXPECT_NEAR(random[0][11], 0.0, 0.1);
  EXPECT_NEAR(level[0][11], 0.0, 0.1);        // endpoints orthogonal
  EXPECT_GT(circular[0][11], 0.7);            // wrap-around adjacency
  EXPECT_NEAR(circular[0][6], 0.0, 0.1);      // antipode orthogonal
  EXPECT_GT(level[0][1], 0.8);                // adjacent levels similar
}

TEST(BasisKindNameTest, NamesAreStable) {
  EXPECT_EQ(basis_kind_name(basis_kind::random), "random");
  EXPECT_EQ(basis_kind_name(basis_kind::level), "level");
  EXPECT_EQ(basis_kind_name(basis_kind::circular), "circular");
}

}  // namespace
}  // namespace hdhash
