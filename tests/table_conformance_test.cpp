/// Interface-conformance suite: every algorithm in the library must
/// satisfy the dynamic_table contract and the qualitative properties the
/// paper's problem statement demands (determinism, stability, coverage,
/// bounded disruption where applicable).
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/factory.hpp"
#include "stats/chi_squared.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 2048;  // keep HD construction fast in unit tests
  options.hd.capacity = 256;
  options.maglev_table_size = 4099;  // small prime
  return options;
}

class TableConformanceTest
    : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TableConformanceTest,
                         ::testing::Values("modular", "consistent",
                                           "consistent-rank", "rendezvous",
                                           "weighted-rendezvous", "bounded",
                                           "jump", "maglev", "hd",
                                           "hd-hierarchical"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(TableConformanceTest, EmptyLookupThrows) {
  auto table = make_table(GetParam(), fast_options());
  EXPECT_THROW(table->lookup(1), precondition_error);
  EXPECT_EQ(table->server_count(), 0u);
}

TEST_P(TableConformanceTest, NameMatchesFactoryKey) {
  auto table = make_table(GetParam(), fast_options());
  EXPECT_EQ(table->name(), GetParam());
}

TEST_P(TableConformanceTest, JoinDuplicateThrows) {
  auto table = make_table(GetParam(), fast_options());
  table->join(5);
  EXPECT_THROW(table->join(5), precondition_error);
}

TEST_P(TableConformanceTest, LeaveAbsentThrows) {
  auto table = make_table(GetParam(), fast_options());
  table->join(5);
  EXPECT_THROW(table->leave(6), precondition_error);
}

TEST_P(TableConformanceTest, SingleServerTakesEverything) {
  auto table = make_table(GetParam(), fast_options());
  table->join(123);
  for (request_id r = 0; r < 100; ++r) {
    EXPECT_EQ(table->lookup(r), 123u);
  }
}

TEST_P(TableConformanceTest, ContainsAndServersTrackMembership) {
  auto table = make_table(GetParam(), fast_options());
  const std::vector<server_id> ids{11, 22, 33, 44};
  for (const auto id : ids) {
    table->join(id);
  }
  EXPECT_EQ(table->server_count(), 4u);
  const auto listed = table->servers();
  EXPECT_EQ(std::set<server_id>(listed.begin(), listed.end()),
            std::set<server_id>(ids.begin(), ids.end()));
  table->leave(22);
  EXPECT_FALSE(table->contains(22));
  EXPECT_TRUE(table->contains(33));
  EXPECT_EQ(table->server_count(), 3u);
}

TEST_P(TableConformanceTest, LookupIsDeterministic) {
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 16; ++s) {
    table->join(s * 101);
  }
  for (request_id r = 0; r < 200; ++r) {
    EXPECT_EQ(table->lookup(r), table->lookup(r));
  }
}

TEST_P(TableConformanceTest, LookupReturnsPoolMember) {
  auto table = make_table(GetParam(), fast_options());
  std::set<server_id> pool;
  for (server_id s = 1; s <= 16; ++s) {
    table->join(s * 101);
    pool.insert(s * 101);
  }
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_TRUE(pool.count(table->lookup(r))) << "request " << r;
  }
}

TEST_P(TableConformanceTest, CloneAnswersIdentically) {
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 12; ++s) {
    table->join(s * 37);
  }
  const auto copy = table->clone();
  for (request_id r = 0; r < 300; ++r) {
    EXPECT_EQ(copy->lookup(r), table->lookup(r));
  }
}

TEST_P(TableConformanceTest, CloneIsIndependentState) {
  auto table = make_table(GetParam(), fast_options());
  table->join(1);
  table->join(2);
  auto copy = table->clone();
  copy->leave(2);
  EXPECT_TRUE(table->contains(2));
  EXPECT_FALSE(copy->contains(2));
}

TEST_P(TableConformanceTest, EveryServerReceivesSomeLoad) {
  auto table = make_table(GetParam(), fast_options());
  constexpr std::size_t kServers = 16;
  for (server_id s = 1; s <= kServers; ++s) {
    table->join(s * 1009);
  }
  std::map<server_id, std::size_t> counts;
  for (request_id r = 0; r < 20'000; ++r) {
    ++counts[table->lookup(r * 0x9e3779b97f4a7c15ULL)];
  }
  EXPECT_EQ(counts.size(), kServers);
  for (const auto& [server, count] : counts) {
    // No starvation and no >60% hot spot (loose: consistent hashing with
    // a single ring point per server is legitimately imbalanced).
    EXPECT_GT(count, 0u) << "server " << server;
    EXPECT_LT(count, 12'000u) << "server " << server;
  }
}

TEST_P(TableConformanceTest, FaultSurfaceNonEmptyWhenPopulated) {
  auto table = make_table(GetParam(), fast_options());
  table->join(1);
  table->join(2);
  EXPECT_GT(table->fault_bits(), 0u);
}

/// Minimal-disruption suite — excludes modular hashing, whose total
/// remapping on resize is the paper's motivating failure.
class MinimalDisruptionTest
    : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(ConsistentStyleAlgorithms, MinimalDisruptionTest,
                         ::testing::Values("consistent", "rendezvous",
                                           "weighted-rendezvous", "bounded",
                                           "jump", "hd", "hd-hierarchical"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(MinimalDisruptionTest, JoinOnlyMovesKeysToTheNewcomer) {
  // The monotonicity property: when a server joins, every remapped
  // request must move *to* the new server (never between old servers).
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 20; ++s) {
    table->join(s * 71);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 5000; ++r) {
    before.push_back(table->lookup(r));
  }
  const server_id newcomer = 99'991;
  table->join(newcomer);
  std::size_t moved = 0;
  for (request_id r = 0; r < 5000; ++r) {
    const server_id now = table->lookup(r);
    if (now != before[r]) {
      EXPECT_EQ(now, newcomer) << "request " << r;
      ++moved;
    }
  }
  // The newcomer takes roughly 1/21 of the keys; allow generous slack
  // (consistent hashing with one ring point has high arc variance).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 1500u);
}

TEST_P(MinimalDisruptionTest, LeaveOnlyMovesTheDepartedServersKeys) {
  auto table = make_table(GetParam(), fast_options());
  for (server_id s = 1; s <= 20; ++s) {
    table->join(s * 71);
  }
  std::vector<server_id> before;
  for (request_id r = 0; r < 5000; ++r) {
    before.push_back(table->lookup(r));
  }
  const server_id victim = 7 * 71;
  table->leave(victim);
  for (request_id r = 0; r < 5000; ++r) {
    const server_id now = table->lookup(r);
    if (before[r] != victim) {
      if (GetParam() == "jump") {
        // Jump's backfill moves one extra slot's keys; tolerated.
        continue;
      }
      EXPECT_EQ(now, before[r]) << "request " << r;
    } else {
      EXPECT_NE(now, victim);
    }
  }
}

}  // namespace
}  // namespace hdhash
