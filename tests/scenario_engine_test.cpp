/// Scenario DSL: deterministic compilation, exact phase boundaries,
/// per-process properties (diurnal rate integral, correlated rack
/// failure, autoscale triggering, grey decay) and the weighted /
/// unweighted stream-identity contract the matrix depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "emu/emulator.hpp"
#include "emu/generator.hpp"
#include "exp/factory.hpp"
#include "scenario/playbooks.hpp"
#include "scenario/scenario.hpp"
#include "util/require.hpp"

namespace hdhash {
namespace {

/// Small but structurally complete tuning for unit runs.
scenario_tuning small_tuning() {
  scenario_tuning tuning;
  tuning.phase_ticks = 32;
  tuning.base_rate = 16.0;
  tuning.servers = 16;
  tuning.rack_size = 4;
  tuning.seed = 7;
  return tuning;
}

TEST(ScenarioCompileTest, SameConfigCompilesBitIdentically) {
  for (const std::string_view name : scenario_names()) {
    const scenario_config config = make_scenario(name, small_tuning());
    const compiled_scenario a = compile_scenario(config);
    const compiled_scenario b = compile_scenario(config);
    EXPECT_EQ(a.events, b.events) << name;
    EXPECT_EQ(a.event_ticks, b.event_ticks) << name;
    EXPECT_EQ(a.initial_servers, b.initial_servers) << name;
    ASSERT_EQ(a.markers.size(), b.markers.size()) << name;
    for (std::size_t i = 0; i < a.markers.size(); ++i) {
      EXPECT_EQ(a.markers[i].label, b.markers[i].label);
      EXPECT_EQ(a.markers[i].tick, b.markers[i].tick);
      EXPECT_EQ(a.markers[i].event_index, b.markers[i].event_index);
      EXPECT_EQ(a.markers[i].disruptive, b.markers[i].disruptive);
    }
  }
}

TEST(ScenarioCompileTest, PhaseBoundariesAreExact) {
  const scenario_config config =
      make_scenario("rack-failure", small_tuning());
  const compiled_scenario compiled = compile_scenario(config);

  ASSERT_EQ(compiled.phases.size(), config.phases.size());
  // The initial join burst sits before phase 0 (all on tick 0).
  EXPECT_EQ(compiled.phases.front().first_event, config.initial_servers);
  EXPECT_EQ(compiled.phases.front().first_tick, 0u);
  for (std::size_t i = 0; i < config.initial_servers; ++i) {
    EXPECT_EQ(compiled.events[i].kind, event_kind::join);
    EXPECT_EQ(compiled.event_ticks[i], 0u);
  }

  std::size_t requests = 0;
  std::size_t joins = config.initial_servers;
  std::size_t leaves = 0;
  for (std::size_t p = 0; p < compiled.phases.size(); ++p) {
    const phase_span& span = compiled.phases[p];
    EXPECT_EQ(span.name, config.phases[p].name);
    EXPECT_EQ(span.end_tick - span.first_tick, config.phases[p].ticks);
    if (p + 1 < compiled.phases.size()) {
      // Spans tile the stream and the tick axis with no gaps.
      EXPECT_EQ(span.end_event, compiled.phases[p + 1].first_event);
      EXPECT_EQ(span.end_tick, compiled.phases[p + 1].first_tick);
    }
    std::size_t span_requests = 0;
    std::size_t span_joins = 0;
    std::size_t span_leaves = 0;
    for (std::size_t i = span.first_event; i < span.end_event; ++i) {
      EXPECT_GE(compiled.event_ticks[i], span.first_tick);
      EXPECT_LT(compiled.event_ticks[i], span.end_tick);
      switch (compiled.events[i].kind) {
        case event_kind::request: ++span_requests; break;
        case event_kind::join: ++span_joins; break;
        case event_kind::leave: ++span_leaves; break;
      }
    }
    EXPECT_EQ(span.requests, span_requests);
    EXPECT_EQ(span.joins, span_joins);
    EXPECT_EQ(span.leaves, span_leaves);
    requests += span_requests;
    joins += span_joins;
    leaves += span_leaves;
  }
  EXPECT_EQ(compiled.phases.back().end_event, compiled.events.size());
  EXPECT_EQ(compiled.phases.back().end_tick, compiled.total_ticks);
  EXPECT_EQ(compiled.requests, requests);
  EXPECT_EQ(compiled.joins, joins);
  EXPECT_EQ(compiled.leaves, leaves);
  EXPECT_EQ(compiled.events.size(), compiled.event_ticks.size());
}

TEST(ScenarioCompileTest, DiurnalRequestCountTracksRateIntegral) {
  const scenario_config config = make_scenario("diurnal", small_tuning());
  const compiled_scenario compiled = compile_scenario(config);
  ASSERT_EQ(compiled.phases.size(), 1u);
  const scenario_phase& phase = config.phases.front();
  double integral = 0.0;
  for (std::size_t t = 0; t < phase.ticks; ++t) {
    integral += phase.arrival.rate_at(t, phase.ticks);
  }
  // Error diffusion: the emitted request count is the floor-tracked
  // rate integral, never off by a full request.
  EXPECT_LT(std::abs(static_cast<double>(compiled.phases[0].requests) -
                     integral),
            1.0);
  EXPECT_GT(compiled.phases[0].requests, 0u);
}

TEST(ScenarioCompileTest, ArrivalShapesEvaluateAsDocumented) {
  const arrival_process constant = arrival_process::constant(10.0);
  EXPECT_DOUBLE_EQ(constant.rate_at(0, 8), 10.0);
  EXPECT_DOUBLE_EQ(constant.rate_at(7, 8), 10.0);

  const arrival_process ramp = arrival_process::ramp(4.0, 12.0);
  EXPECT_DOUBLE_EQ(ramp.rate_at(0, 5), 4.0);
  EXPECT_DOUBLE_EQ(ramp.rate_at(4, 5), 12.0);
  EXPECT_DOUBLE_EQ(ramp.rate_at(2, 5), 8.0);

  const arrival_process flash = arrival_process::flash_crowd(5.0, 4.0, 3, 2);
  EXPECT_DOUBLE_EQ(flash.rate_at(2, 10), 5.0);
  EXPECT_DOUBLE_EQ(flash.rate_at(3, 10), 20.0);
  EXPECT_DOUBLE_EQ(flash.rate_at(4, 10), 20.0);
  EXPECT_DOUBLE_EQ(flash.rate_at(5, 10), 5.0);

  // Diurnal: mean-centred sine, one cycle per phase by default — the
  // quarter-cycle peak hits mean * (1 + amplitude).
  const arrival_process diurnal = arrival_process::diurnal(8.0, 0.5);
  EXPECT_DOUBLE_EQ(diurnal.rate_at(0, 16), 8.0);
  EXPECT_NEAR(diurnal.rate_at(4, 16), 12.0, 1e-9);
  EXPECT_NEAR(diurnal.rate_at(12, 16), 4.0, 1e-9);
}

TEST(ScenarioCompileTest, RackFailureRemovesExactlyTheRack) {
  const scenario_tuning tuning = small_tuning();
  const scenario_config config = make_scenario("rack-failure", tuning);
  const compiled_scenario compiled = compile_scenario(config);

  // The playbook fails rack 1: join-burst positions [rack_size, 2*rack_size).
  std::set<std::uint64_t> rack;
  for (std::size_t i = tuning.rack_size; i < 2 * tuning.rack_size; ++i) {
    rack.insert(generator::server_id_at(tuning.seed, i));
  }

  const scenario_marker* failure = nullptr;
  const scenario_marker* restored = nullptr;
  for (const scenario_marker& marker : compiled.markers) {
    if (marker.label == "rack-failure") {
      failure = &marker;
    } else if (marker.label == "capacity-restored") {
      restored = &marker;
    }
  }
  ASSERT_NE(failure, nullptr);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(failure->disruptive);
  EXPECT_FALSE(restored->disruptive);

  // Every leave on the failure tick is a rack member, and every rack
  // member leaves — the correlated group goes down as one episode.
  std::set<std::uint64_t> left;
  for (std::size_t i = 0; i < compiled.events.size(); ++i) {
    if (compiled.event_ticks[i] == failure->tick &&
        compiled.events[i].kind == event_kind::leave) {
      left.insert(compiled.events[i].id);
    }
  }
  EXPECT_EQ(left, rack);

  // An equal count of *fresh* servers joins at the recovery tick.
  std::size_t rejoined = 0;
  for (std::size_t i = 0; i < compiled.events.size(); ++i) {
    if (compiled.event_ticks[i] == restored->tick &&
        compiled.events[i].kind == event_kind::join) {
      EXPECT_EQ(rack.count(compiled.events[i].id), 0u);
      ++rejoined;
    }
  }
  EXPECT_EQ(rejoined, rack.size());
  EXPECT_EQ(restored->tick - failure->tick, tuning.phase_ticks / 4);
}

TEST(ScenarioCompileTest, AutoscaleFiresOnThresholdAndHonoursCooldown) {
  // Ramp 0 → 80 over 40 ticks against a 4-requests-per-server trigger:
  // re-derive the expected trigger schedule from the process spec and
  // demand the compiled markers/joins match it exactly.
  scenario_config config;
  config.name = "autoscale-probe";
  config.initial_servers = 8;
  config.rack_size = 2;
  config.seed = 21;
  scenario_phase phase;
  phase.name = "ramp";
  phase.ticks = 40;
  phase.arrival = arrival_process::ramp(0.0, 80.0);
  phase.churn = churn_process::autoscale(4.0, 2, 5);
  config.phases.push_back(phase);
  const compiled_scenario compiled = compile_scenario(config);

  std::vector<std::size_t> expected_ticks;
  std::size_t pool = config.initial_servers;
  std::size_t last = 0;
  bool scaled = false;
  for (std::size_t t = 0; t < phase.ticks; ++t) {
    const double rate = phase.arrival.rate_at(t, phase.ticks);
    if (rate / static_cast<double>(pool) > 4.0 &&
        (!scaled || t - last >= 5)) {
      expected_ticks.push_back(t);
      pool += 2;
      last = t;
      scaled = true;
    }
  }
  ASSERT_GE(expected_ticks.size(), 2u);  // the probe must actually scale

  std::vector<std::size_t> marker_ticks;
  for (const scenario_marker& marker : compiled.markers) {
    ASSERT_EQ(marker.label, "autoscale");
    // Only the first trigger anchors a recovery clock.
    EXPECT_EQ(marker.disruptive, marker_ticks.empty());
    marker_ticks.push_back(marker.tick);
  }
  EXPECT_EQ(marker_ticks, expected_ticks);
  for (std::size_t i = 1; i < marker_ticks.size(); ++i) {
    EXPECT_GE(marker_ticks[i] - marker_ticks[i - 1], 5u);
  }
  // Two joins per trigger, no other membership traffic.
  EXPECT_EQ(compiled.joins,
            config.initial_servers + 2 * expected_ticks.size());
  EXPECT_EQ(compiled.leaves, 0u);
}

TEST(ScenarioCompileTest, BernoulliChurnAlternatesJoinAndLeave) {
  const scenario_config config = make_scenario("diurnal", small_tuning());
  const compiled_scenario compiled = compile_scenario(config);
  bool expect_join = true;
  std::size_t churn_events = 0;
  for (std::size_t i = config.initial_servers; i < compiled.events.size();
       ++i) {
    const event& e = compiled.events[i];
    if (e.kind == event_kind::request) {
      continue;
    }
    EXPECT_EQ(e.kind, expect_join ? event_kind::join : event_kind::leave)
        << "churn event " << churn_events;
    expect_join = !expect_join;
    ++churn_events;
  }
  EXPECT_GT(churn_events, 0u);
}

TEST(ScenarioCompileTest, GreyDecayHalvesWeightsDownToTheFloor) {
  const scenario_tuning tuning = small_tuning();
  const scenario_config config = make_scenario("grey-server", tuning);
  const compiled_scenario compiled = compile_scenario(config);

  // Victims are the first rack_size join-burst servers, starting at
  // weight 4 and decaying 4 → 2 → 1, then holding at the floor.
  for (std::size_t v = 0; v < tuning.rack_size; ++v) {
    const std::uint64_t id = compiled.initial_servers[v];
    std::vector<double> weights;
    for (const event& e : compiled.events) {
      if (e.kind == event_kind::join && e.id == id) {
        weights.push_back(e.weight);
      }
    }
    EXPECT_EQ(weights, (std::vector<double>{4.0, 2.0, 1.0})) << "victim " << v;
  }
  // Exactly two decay steps happen; the third interval finds every
  // victim at the floor and emits nothing.
  std::size_t decay_markers = 0;
  for (const scenario_marker& marker : compiled.markers) {
    if (marker.label == "grey-decay") {
      EXPECT_EQ(marker.disruptive, decay_markers == 0);
      ++decay_markers;
    }
  }
  EXPECT_EQ(decay_markers, 2u);
}

TEST(ScenarioCompileTest, UnweightedCompileKeepsKindsIdsAndTicks) {
  const scenario_config config = make_scenario("grey-server", small_tuning());
  const compiled_scenario weighted = compile_scenario(config, true);
  const compiled_scenario clamped = compile_scenario(config, false);

  ASSERT_EQ(weighted.events.size(), clamped.events.size());
  EXPECT_EQ(weighted.event_ticks, clamped.event_ticks);
  bool saw_heavy = false;
  for (std::size_t i = 0; i < weighted.events.size(); ++i) {
    EXPECT_EQ(weighted.events[i].kind, clamped.events[i].kind);
    EXPECT_EQ(weighted.events[i].id, clamped.events[i].id);
    EXPECT_DOUBLE_EQ(clamped.events[i].weight, 1.0);
    saw_heavy |= weighted.events[i].weight > 1.0;
  }
  EXPECT_TRUE(saw_heavy);  // the weighted stream really carries weights
  EXPECT_EQ(weighted.requests, clamped.requests);
  EXPECT_EQ(weighted.joins, clamped.joins);
  EXPECT_EQ(weighted.leaves, clamped.leaves);
}

TEST(ScenarioCompileTest, CompiledStreamFeedsTheEmulatorUnchanged) {
  // The tentpole contract: a compiled scenario is a plain event stream
  // any existing consumer replays without modification.
  const scenario_config config =
      make_scenario("rolling-upgrade", small_tuning());
  const compiled_scenario compiled = compile_scenario(config, false);
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 128;
  auto table = make_table("hd", options);
  emulator emu(*table, 256);
  const run_stats stats = emu.run(compiled.events);
  EXPECT_EQ(stats.requests, compiled.requests);
  EXPECT_EQ(stats.joins, compiled.joins);
  EXPECT_EQ(stats.leaves, compiled.leaves);
  EXPECT_EQ(table->server_count(), compiled.joins - compiled.leaves);
}

TEST(ScenarioPlaybookTest, EveryNamedPlaybookCompiles) {
  for (const std::string_view name : scenario_names()) {
    EXPECT_TRUE(is_scenario_name(name));
    const compiled_scenario compiled =
        compile_scenario(make_scenario(name, small_tuning()));
    EXPECT_EQ(compiled.name, name);
    EXPECT_GT(compiled.requests, 0u) << name;
    EXPECT_GT(compiled.total_ticks, 0u) << name;
    EXPECT_GE(compiled.max_pool_size, 1u) << name;
    EXPECT_GE(compiled.max_pool_weight, compiled.max_pool_size) << name;
  }
  EXPECT_FALSE(is_scenario_name("no-such-playbook"));
}

TEST(ScenarioPlaybookTest, UnknownNameThrowsListingEveryPlaybook) {
  try {
    make_scenario("banana", small_tuning());
    FAIL() << "unknown playbook must throw";
  } catch (const precondition_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("banana"), std::string::npos);
    for (const std::string_view name : scenario_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(ScenarioValidationTest, DegenerateConfigsFailLoudly) {
  scenario_config empty;
  empty.name = "empty";
  EXPECT_THROW(compile_scenario(empty), precondition_error);

  scenario_config zero_ticks = make_scenario("steady", small_tuning());
  zero_ticks.phases.front().ticks = 0;
  EXPECT_THROW(compile_scenario(zero_ticks), precondition_error);

  scenario_config bad_amplitude = make_scenario("diurnal", small_tuning());
  bad_amplitude.phases.front().arrival.amplitude = 1.5;
  EXPECT_THROW(compile_scenario(bad_amplitude), precondition_error);

  scenario_config missing_rack = make_scenario("rack-failure", small_tuning());
  missing_rack.phases[1].churn.rack = 99;  // not in the join burst
  EXPECT_THROW(compile_scenario(missing_rack), precondition_error);

  scenario_config bad_decay = make_scenario("grey-server", small_tuning());
  bad_decay.phases[1].weight.decay_factor = 1.0;  // must be in (0, 1)
  EXPECT_THROW(compile_scenario(bad_decay), precondition_error);

  scenario_tuning tiny;
  tiny.phase_ticks = 4;  // below the 16-tick floor
  EXPECT_THROW(make_scenario("steady", tiny), precondition_error);
}

}  // namespace
}  // namespace hdhash
