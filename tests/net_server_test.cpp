/// End-to-end loopback tests of the TCP front-end: raw-socket command
/// smoke, protocol-error handling over a live connection, graceful
/// shutdown with in-flight work, and the determinism contract — the
/// routing answers delivered over the socket are bit-identical to the
/// in-process emulator/table on the same event stream.
///
/// Table dimensions are kept small (dimension 2048, capacity 64) so
/// the suite stays fast under the ASan/UBSan CI lanes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "emu/emulator.hpp"
#include "emu/event.hpp"
#include "exp/factory.hpp"
#include "net/load_gen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hdhash::net {
namespace {

table_options small_options() {
  table_options options;
  options.hd.dimension = 2048;
  options.hd.capacity = 64;
  options.hd.slot_cache = true;
  return options;
}

net_server make_server(std::size_t shards = 2, std::size_t io_threads = 1) {
  server_config config;
  config.io_threads = io_threads;
  config.shards = shards;
  config.batch_capacity = 64;
  config.drain_timeout_seconds = 10.0;
  return net_server(
      [] { return make_table("hd-hierarchical", small_options()); }, config);
}

#if defined(__unix__) || defined(__APPLE__)

void write_all(int fd, const std::string& bytes) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t written =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    ASSERT_GT(written, 0) << "write failed";
    offset += static_cast<std::size_t>(written);
  }
}

/// Blocking-reads until `expected` reply frames parsed (or the parser
/// faults / the peer closes, which fails the test).
std::vector<wire_reply> read_replies(int fd, reply_parser& parser,
                                     std::size_t expected) {
  std::vector<wire_reply> replies;
  wire_reply reply;
  char buffer[8192];
  while (replies.size() < expected) {
    while (replies.size() < expected &&
           parser.next(reply) == parse_result::command) {
      replies.push_back(reply);
    }
    if (replies.size() == expected) {
      break;
    }
    EXPECT_FALSE(parser.failed()) << parser.error_message();
    if (parser.failed()) {
      break;
    }
    const ssize_t received = ::read(fd, buffer, sizeof buffer);
    EXPECT_GT(received, 0) << "peer closed with replies outstanding";
    if (received <= 0) {
      break;
    }
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(received)));
  }
  return replies;
}

/// One blocking request/response exchange on a fresh parser.
std::vector<wire_reply> exchange(int fd, reply_parser& parser,
                                 const std::string& commands,
                                 std::size_t expected) {
  write_all(fd, commands);
  return read_replies(fd, parser, expected);
}

#endif  // unix

TEST(NetServer, RawSocketCommandSmoke) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  net_server server = make_server();
  server.start();
  ASSERT_NE(server.port(), 0);

  std::string error;
  const unique_fd fd = tcp_connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  reply_parser parser;

  // Empty pool: ROUTE is rejected without touching the shard workers.
  auto replies = exchange(fd.get(), parser, "ROUTE 5\r\n", 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, wire_reply::kind::error);

  // Mixed pipelined stream: replies come back in command order.
  replies = exchange(fd.get(), parser,
                     "PING\r\nJOIN 1\r\nJOIN 2 2.0\r\nROUTE 5\r\n"
                     "STATS\r\nLEAVE 2\r\nROUTE 5\r\n",
                     7);
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_EQ(replies[0].type, wire_reply::kind::status);
  EXPECT_EQ(replies[0].text, "PONG");
  EXPECT_EQ(replies[1].type, wire_reply::kind::status);
  EXPECT_EQ(replies[2].type, wire_reply::kind::status);
  EXPECT_EQ(replies[3].type, wire_reply::kind::integer);
  EXPECT_TRUE(replies[3].value == 1 || replies[3].value == 2);
  EXPECT_EQ(replies[4].type, wire_reply::kind::bulk);
  EXPECT_NE(replies[4].text.find("requests_routed="), std::string::npos);
  EXPECT_NE(replies[4].text.find("io_backend=epoll"), std::string::npos);
  EXPECT_EQ(replies[5].type, wire_reply::kind::status);
  // Only server 1 remains.
  EXPECT_EQ(replies[6].type, wire_reply::kind::integer);
  EXPECT_EQ(replies[6].value, 1u);

  // Recoverable command errors keep the connection alive.
  replies = exchange(fd.get(), parser,
                     "BOGUS\r\nROUTE nope\r\nJOIN 1\r\nLEAVE 99\r\nPING\r\n",
                     5);
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[0].type, wire_reply::kind::error);  // unknown verb
  EXPECT_EQ(replies[1].type, wire_reply::kind::error);  // bad id
  EXPECT_EQ(replies[2].type, wire_reply::kind::error);  // duplicate join
  EXPECT_EQ(replies[3].type, wire_reply::kind::error);  // unknown leave
  EXPECT_EQ(replies[4].text, "PONG");

  server.stop();
  const server_counters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.requests_routed, 2u);
  EXPECT_EQ(counters.joins, 2u);
  EXPECT_EQ(counters.leaves, 1u);
  EXPECT_GE(counters.protocol_errors, 2u);
}

TEST(NetServer, OversizedLineIsAnsweredThenClosed) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  net_server server = make_server(1, 1);
  server.start();
  std::string error;
  const unique_fd fd = tcp_connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;

  write_all(fd.get(), std::string(2 * kMaxLineBytes, 'A'));
  reply_parser parser;
  const auto replies = read_replies(fd.get(), parser, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, wire_reply::kind::error);
  // The server closes after flushing the error reply.
  char byte = 0;
  EXPECT_EQ(::read(fd.get(), &byte, 1), 0);
  server.stop();
}

/// The tentpole determinism assertion: a single connection interleaving
/// JOIN/LEAVE/ROUTE over the socket gets exactly the answers the
/// in-process table gives for the same command sequence, and the
/// delivered load histogram is bit-identical to a plain emulator run
/// over the equivalent event stream.
TEST(NetServer, SingleConnectionChurnMatchesInProcessEmulator) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  // Deterministic interleaved stream: join burst, routed traffic with
  // periodic membership churn (all weights 1.0 — event streams carry
  // no weights).
  std::vector<event> events;
  std::uint64_t state = 0x1234'5678;
  const auto next_id = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % 100'000;
  };
  std::vector<std::uint64_t> live;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    events.push_back({event_kind::join, s});
    live.push_back(s);
  }
  std::uint64_t next_server = 9;
  for (int i = 0; i < 4000; ++i) {
    if (i % 97 == 96 && live.size() < 30) {
      events.push_back({event_kind::join, next_server});
      live.push_back(next_server++);
    } else if (i % 131 == 130 && live.size() > 2) {
      events.push_back({event_kind::leave, live.front()});
      live.erase(live.begin());
    } else {
      events.push_back({event_kind::request, next_id()});
    }
  }

  // Socket run.
  net_server server = make_server(4, 1);
  server.start();
  std::string error;
  const unique_fd fd = tcp_connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::string commands;
  for (const event& e : events) {
    switch (e.kind) {
      case event_kind::request:
        commands += "ROUTE " + std::to_string(e.id) + "\r\n";
        break;
      case event_kind::join:
        commands += "JOIN " + std::to_string(e.id) + "\r\n";
        break;
      case event_kind::leave:
        commands += "LEAVE " + std::to_string(e.id) + "\r\n";
        break;
    }
  }
  reply_parser parser;
  const auto replies = exchange(fd.get(), parser, commands, events.size());
  ASSERT_EQ(replies.size(), events.size());
  server.stop();

  // In-process replay of the identical command sequence.
  auto table = make_table("hd-hierarchical", small_options());
  std::unordered_map<server_id, std::uint64_t> socket_load;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const event& e = events[i];
    const wire_reply& reply = replies[i];
    switch (e.kind) {
      case event_kind::request: {
        ASSERT_EQ(reply.type, wire_reply::kind::integer) << "event " << i;
        const server_id expected = table->lookup(e.id);
        if (reply.value != expected) {
          ++mismatches;
        }
        ++socket_load[reply.value];
        break;
      }
      case event_kind::join:
        ASSERT_EQ(reply.type, wire_reply::kind::status) << "event " << i;
        table->join(e.id);
        break;
      case event_kind::leave:
        ASSERT_EQ(reply.type, wire_reply::kind::status) << "event " << i;
        table->leave(e.id);
        break;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << "socket answers diverged from the in-process table";

  // And the merged histogram against a plain emulator run.
  auto reference_table = make_table("hd-hierarchical", small_options());
  emulator reference(*reference_table, 64);
  const run_stats expected = reference.run(events);
  EXPECT_EQ(socket_load, expected.load)
      << "delivered load histogram diverged from the emulator";
}

/// Multi-connection determinism under a static pool: every connection's
/// answers must equal the in-process table's lookups of its exact id
/// stream (order across connections is irrelevant without churn).
TEST(NetServer, MultiConnectionLoadGenMatchesInProcessTable) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  net_server server = make_server(4, 2);
  server.start();
  for (std::uint64_t s = 1; s <= 16; ++s) {
    server.router().join(s);
  }

  load_gen_config load;
  load.port = server.port();
  load.connections = 8;
  load.requests_per_connection = 2000;
  load.pipeline_depth = 64;
  load.record_answers = true;
  const load_gen_report report = run_load_gen(load);
  server.stop();

  ASSERT_EQ(report.requests, load.connections * load.requests_per_connection);
  EXPECT_EQ(report.errors, 0u);
  ASSERT_EQ(report.answers.size(), load.connections);

  auto table = make_table("hd-hierarchical", small_options());
  for (std::uint64_t s = 1; s <= 16; ++s) {
    table->join(s);
  }
  for (std::size_t c = 0; c < load.connections; ++c) {
    const std::vector<request_id> ids = load_gen_ids(load, c);
    ASSERT_EQ(report.answers[c].size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(report.answers[c][i], table->lookup(ids[i]))
          << "connection " << c << ", request " << i;
    }
  }
}

TEST(NetServer, GracefulShutdownCompletesInflightWork) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  net_server server = make_server(2, 1);
  server.start();
  for (std::uint64_t s = 1; s <= 4; ++s) {
    server.router().join(s);
  }
  std::string error;
  const unique_fd fd = tcp_connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;

  // A pipelined burst the server will still be routing when stop()
  // lands: the drain contract says every accepted request is answered
  // before the connection closes.
  const std::size_t burst = 5000;
  std::string commands;
  for (std::size_t i = 0; i < burst; ++i) {
    commands += "ROUTE " + std::to_string(i) + "\r\n";
  }
  write_all(fd.get(), commands);
  // Wait until the server has parsed and submitted the whole burst
  // (drain stops reading, so commands still in the socket would be
  // dropped — in-flight means submitted, not half-sent).
  while (server.counters().requests_routed < burst) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&server] { server.stop(); });

  reply_parser parser;
  std::vector<wire_reply> replies;
  wire_reply reply;
  char buffer[8192];
  for (;;) {
    const ssize_t received = ::read(fd.get(), buffer, sizeof buffer);
    if (received <= 0) {
      break;  // drained and closed
    }
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(received)));
    while (parser.next(reply) == parse_result::command) {
      replies.push_back(reply);
    }
  }
  stopper.join();
  ASSERT_EQ(replies.size(), burst);
  for (const wire_reply& r : replies) {
    EXPECT_EQ(r.type, wire_reply::kind::integer);
  }
  EXPECT_FALSE(server.running());
  // stop() is idempotent.
  server.stop();
}

TEST(NetServer, StopWithoutTrafficIsClean) {
  if (!net_server::supported()) {
    GTEST_SKIP() << "epoll reactor unsupported on this platform";
  }
  net_server server = make_server(1, 2);
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(NetServer, BackendProbeIsReported) {
  net_server server = make_server(1, 1);
  EXPECT_EQ(to_string(server.backend()), "epoll");
  // The probe ran on this host; on Linux epoll is always available.
#if defined(__linux__)
  EXPECT_TRUE(server.probe().epoll_supported);
#endif
}

}  // namespace
}  // namespace hdhash::net
