#include "emu/generator.hpp"

#include <limits>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace hdhash {
namespace {

TEST(GeneratorTest, JoinBurstPrecedesRequests) {
  workload_config config;
  config.initial_servers = 5;
  config.request_count = 20;
  const generator gen(config);
  const auto events = gen.generate();
  ASSERT_EQ(events.size(), 25u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].kind, event_kind::join);
  }
  for (std::size_t i = 5; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, event_kind::request);
  }
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  workload_config config;
  config.seed = 77;
  config.request_count = 100;
  const generator gen(config);
  EXPECT_EQ(gen.generate(), gen.generate());
}

TEST(GeneratorTest, SeedChangesStream) {
  workload_config a;
  a.seed = 1;
  workload_config b;
  b.seed = 2;
  EXPECT_NE(generator(a).generate(), generator(b).generate());
}

TEST(GeneratorTest, InitialServerIdsMatchJoinEvents) {
  workload_config config;
  config.initial_servers = 8;
  const generator gen(config);
  const auto ids = gen.initial_server_ids();
  const auto events = gen.generate();
  ASSERT_EQ(ids.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].id, ids[i]);
  }
}

TEST(GeneratorTest, ServerIdsAreUnique) {
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < 5000; ++i) {
    ids.insert(generator::server_id_at(42, i));
  }
  EXPECT_EQ(ids.size(), 5000u);
}

TEST(GeneratorTest, ChurnInterleavesJoinsAndLeaves) {
  workload_config config;
  config.initial_servers = 10;
  config.request_count = 2000;
  config.churn_rate = 0.05;
  const generator gen(config);
  const auto events = gen.generate();
  std::size_t joins = 0;
  std::size_t leaves = 0;
  for (std::size_t i = 10; i < events.size(); ++i) {
    joins += events[i].kind == event_kind::join ? 1 : 0;
    leaves += events[i].kind == event_kind::leave ? 1 : 0;
  }
  EXPECT_GT(joins, 20u);
  EXPECT_GT(leaves, 20u);
  // Alternation keeps the two counts within one of each other.
  EXPECT_NEAR(static_cast<double>(joins), static_cast<double>(leaves), 1.0);
}

TEST(GeneratorTest, ChurnLeavesReferToLivePool) {
  // Replaying the stream against a set must never remove a non-member.
  workload_config config;
  config.initial_servers = 4;
  config.request_count = 3000;
  config.churn_rate = 0.1;
  config.seed = 5;
  const generator gen(config);
  std::set<std::uint64_t> pool;
  for (const auto& e : gen.generate()) {
    switch (e.kind) {
      case event_kind::join:
        EXPECT_TRUE(pool.insert(e.id).second);
        break;
      case event_kind::leave:
        EXPECT_EQ(pool.erase(e.id), 1u);
        break;
      case event_kind::request:
        break;
    }
  }
}

TEST(GeneratorTest, UniformKeysSpreadOverUniverse) {
  workload_config config;
  config.request_count = 20'000;
  config.key_universe = 100;  // collisions expected: ids repeat
  const generator gen(config);
  std::set<std::uint64_t> distinct;
  for (const auto& e : gen.generate()) {
    if (e.kind == event_kind::request) {
      distinct.insert(e.id);
    }
  }
  EXPECT_EQ(distinct.size(), 100u);  // all keys hit with high probability
}

TEST(GeneratorTest, ZipfModeSkewsPopularity) {
  workload_config config;
  config.request_count = 30'000;
  config.key_universe = 1000;
  config.distribution = request_distribution::zipf;
  config.zipf_skew = 1.2;
  const generator gen(config);
  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& e : gen.generate()) {
    if (e.kind == event_kind::request) {
      ++counts[e.id];
    }
  }
  std::size_t max_count = 0;
  for (const auto& [id, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // The hottest key dominates far beyond the uniform expectation (~30).
  EXPECT_GT(max_count, 2000u);
}

TEST(GeneratorTest, InvalidConfigThrows) {
  workload_config bad_universe;
  bad_universe.key_universe = 0;
  EXPECT_THROW(generator{bad_universe}, precondition_error);
  workload_config bad_churn;
  bad_churn.churn_rate = 1.5;
  EXPECT_THROW(generator{bad_churn}, precondition_error);
  workload_config negative_churn;
  negative_churn.churn_rate = -0.1;
  EXPECT_THROW(generator{negative_churn}, precondition_error);
  workload_config nan_churn;
  nan_churn.churn_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(generator{nan_churn}, precondition_error);

  // Zipf skew is validated at construction too — but only when the
  // distribution actually samples it.
  workload_config negative_skew;
  negative_skew.distribution = request_distribution::zipf;
  negative_skew.zipf_skew = -1.0;
  EXPECT_THROW(generator{negative_skew}, precondition_error);
  workload_config infinite_skew;
  infinite_skew.distribution = request_distribution::zipf;
  infinite_skew.zipf_skew = std::numeric_limits<double>::infinity();
  EXPECT_THROW(generator{infinite_skew}, precondition_error);
  workload_config unused_skew;
  unused_skew.distribution = request_distribution::uniform;
  unused_skew.zipf_skew = -1.0;  // uniform never reads it
  unused_skew.request_count = 16;
  EXPECT_NO_THROW(generator{unused_skew});
}

}  // namespace
}  // namespace hdhash
