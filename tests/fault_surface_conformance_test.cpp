/// Fault-surface contract, verified for every algorithm in the library:
/// injections are undoable, clones are isolated from corruption of the
/// original, and the declared regions really are the table's live
/// routing state (corrupting them heavily must perturb behaviour for
/// every non-trivial algorithm).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "emu/generator.hpp"
#include "exp/factory.hpp"
#include "fault/injector.hpp"

namespace hdhash {
namespace {

table_options fast_options() {
  table_options options;
  options.hd.dimension = 1024;
  options.hd.capacity = 128;
  options.maglev_table_size = 4099;
  return options;
}

class FaultSurfaceConformanceTest
    : public ::testing::TestWithParam<std::string_view> {
 protected:
  std::unique_ptr<dynamic_table> populated_table() const {
    auto table = make_table(GetParam(), fast_options());
    workload_config workload;
    workload.initial_servers = 24;
    workload.seed = 17;
    const generator gen(workload);
    for (const auto id : gen.initial_server_ids()) {
      table->join(id);
    }
    return table;
  }
};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FaultSurfaceConformanceTest,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(FaultSurfaceConformanceTest, SurfaceIsNonEmptyOncePopulated) {
  auto table = populated_table();
  EXPECT_GT(table->fault_bits(), 0u);
  for (const auto& region : table->fault_regions()) {
    EXPECT_FALSE(region.bytes.empty());
    EXPECT_FALSE(region.label.empty());
  }
}

TEST_P(FaultSurfaceConformanceTest, InjectUndoRoundTripsBehaviour) {
  auto table = populated_table();
  std::vector<server_id> before;
  for (request_id r = 0; r < 500; ++r) {
    before.push_back(table->lookup(r));
  }
  bit_flip_injector injector(23);
  const auto flips = injector.inject_random(*table, 16);
  bit_flip_injector::undo(*table, flips);
  for (request_id r = 0; r < 500; ++r) {
    EXPECT_EQ(table->lookup(r), before[r]) << "request " << r;
  }
}

TEST_P(FaultSurfaceConformanceTest, ScopedInjectionRestoresOnThrow) {
  auto table = populated_table();
  std::vector<server_id> before;
  for (request_id r = 0; r < 200; ++r) {
    before.push_back(table->lookup(r));
  }
  bit_flip_injector injector(29);
  try {
    scoped_injection injection(injector, *table, 8);
    throw std::runtime_error("experiment aborted mid-trial");
  } catch (const std::runtime_error&) {
    // The guard must have restored the table on unwind.
  }
  for (request_id r = 0; r < 200; ++r) {
    EXPECT_EQ(table->lookup(r), before[r]);
  }
}

TEST_P(FaultSurfaceConformanceTest, CloneIsIsolatedFromCorruption) {
  auto table = populated_table();
  const auto pristine = table->clone();
  std::vector<server_id> expected;
  for (request_id r = 0; r < 300; ++r) {
    expected.push_back(pristine->lookup(r));
  }
  bit_flip_injector injector(31);
  // Heavy corruption of the original only.
  injector.inject_random(*table, std::min<std::size_t>(
                                     256, table->fault_bits() / 2));
  for (request_id r = 0; r < 300; ++r) {
    EXPECT_EQ(pristine->lookup(r), expected[r]) << "request " << r;
  }
}

TEST_P(FaultSurfaceConformanceTest, MembershipOpsInvalidateOldRegions) {
  // Regions fetched before a mutation must not be reused; re-fetching
  // after join/leave must reflect the new state size.
  auto table = populated_table();
  const std::size_t bits_before = table->fault_bits();
  table->leave(generator::server_id_at(17, 0));
  const std::size_t bits_after = table->fault_bits();
  if (GetParam() == "hd") {
    // Exactly one hypervector row disappears.
    EXPECT_EQ(bits_before - bits_after, 1024u);
  } else {
    // hd-hierarchical may additionally drop a router row when a shard
    // empties; maglev's lookup table is fixed-size but the id array
    // shrinks.  In every case the surface must get strictly smaller.
    EXPECT_LT(bits_after, bits_before);
  }
}

TEST_P(FaultSurfaceConformanceTest, HeavyCorruptionPerturbsRouting) {
  // The declared surface must actually be load-bearing: flipping half
  // of the live state changes at least one routing decision.  (This is
  // what distinguishes a real fault surface from decorative metadata.)
  auto table = populated_table();
  const auto pristine = table->clone();
  bit_flip_injector injector(37);
  injector.inject_random(*table, table->fault_bits() / 2);
  std::size_t changed = 0;
  for (request_id r = 0; r < 2000; ++r) {
    changed += table->lookup(r) != pristine->lookup(r) ? 1 : 0;
  }
  EXPECT_GT(changed, 0u);
}

}  // namespace
}  // namespace hdhash
