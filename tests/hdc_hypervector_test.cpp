#include "hdc/hypervector.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/require.hpp"

namespace hdhash::hdc {
namespace {

TEST(HypervectorTest, ConstructionZeroed) {
  const hypervector hv(100);
  EXPECT_EQ(hv.dim(), 100u);
  EXPECT_EQ(hv.word_count(), 2u);
  EXPECT_EQ(hv.popcount(), 0u);
}

TEST(HypervectorTest, ZeroDimensionThrows) {
  EXPECT_THROW(hypervector(0), precondition_error);
}

TEST(HypervectorTest, SetTestFlip) {
  hypervector hv(70);
  hv.set(0, true);
  hv.set(69, true);
  EXPECT_TRUE(hv.test(0));
  EXPECT_TRUE(hv.test(69));
  EXPECT_FALSE(hv.test(1));
  EXPECT_EQ(hv.popcount(), 2u);
  hv.flip(69);
  EXPECT_FALSE(hv.test(69));
  EXPECT_EQ(hv.popcount(), 1u);
}

TEST(HypervectorTest, OutOfRangeAccessThrows) {
  hypervector hv(10);
  EXPECT_THROW(hv.test(10), precondition_error);
  EXPECT_THROW(hv.set(10, true), precondition_error);
  EXPECT_THROW(hv.flip(11), precondition_error);
}

TEST(HypervectorTest, OnesRespectsCanonicalTail) {
  const auto hv = hypervector::ones(70);
  EXPECT_EQ(hv.popcount(), 70u);
  // The tail word's unused 58 bits must be zero.
  EXPECT_EQ(hv.words()[1] & ~tail_mask(70), 0u);
}

TEST(HypervectorTest, RandomHasCanonicalTail) {
  xoshiro256 rng(3);
  for (const std::size_t dim : {1u, 63u, 64u, 65u, 1000u, 10'000u}) {
    const auto hv = hypervector::random(dim, rng);
    EXPECT_EQ(hv.words().back() & ~tail_mask(dim), 0u) << "dim " << dim;
  }
}

TEST(HypervectorTest, RandomIsBalanced) {
  xoshiro256 rng(4);
  const auto hv = hypervector::random(10'000, rng);
  // Each bit Bernoulli(1/2): popcount within 5 sigma of d/2.
  EXPECT_NEAR(static_cast<double>(hv.popcount()), 5000.0, 5.0 * 50.0);
}

TEST(HypervectorTest, RandomDeterministicPerSeed) {
  xoshiro256 a(9);
  xoshiro256 b(9);
  EXPECT_EQ(hypervector::random(256, a), hypervector::random(256, b));
}

TEST(HypervectorTest, XorSelfIsZero) {
  xoshiro256 rng(5);
  const auto hv = hypervector::random(500, rng);
  EXPECT_EQ((hv ^ hv).popcount(), 0u);
}

TEST(HypervectorTest, XorDimensionMismatchThrows) {
  hypervector a(64);
  hypervector b(65);
  EXPECT_THROW(a ^= b, precondition_error);
}

TEST(HypervectorTest, XorIsInvolutive) {
  xoshiro256 rng(6);
  const auto a = hypervector::random(300, rng);
  const auto b = hypervector::random(300, rng);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(HypervectorTest, EqualityIsValueBased) {
  hypervector a(64);
  hypervector b(64);
  EXPECT_EQ(a, b);
  a.set(3, true);
  EXPECT_NE(a, b);
  b.set(3, true);
  EXPECT_EQ(a, b);
}

TEST(HypervectorTest, CanonicalizeTailRepairsRawWrites) {
  hypervector hv(10);
  hv.words_mut()[0] = ~std::uint64_t{0};  // raw write breaks the invariant
  hv.canonicalize_tail();
  EXPECT_EQ(hv.popcount(), 10u);
}

}  // namespace
}  // namespace hdhash::hdc
